"""AP PRNG benchmark tests: structure, determinism, output quality."""

import numpy as np
import pytest
from scipy import stats

from repro.benchmarks.apprng import (
    build_apprng_benchmark,
    extract_output,
    markov_chain_automaton,
    random_input,
)
from repro.engines import ReferenceEngine, VectorEngine


class TestStructure:
    def test_state_counts_match_table1(self):
        # Table I: 20 states/chain (4-sided), 72 states/chain (8-sided)
        assert markov_chain_automaton(4).n_states == 20
        assert markov_chain_automaton(8).n_states == 72

    def test_benchmark_scaling(self):
        bench = build_apprng_benchmark(4, n_chains=10)
        assert bench.n_states == 200
        assert len(bench.connected_components()) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            markov_chain_automaton(1)
        with pytest.raises(ValueError):
            markov_chain_automaton(300)


class TestExecution:
    def test_one_report_per_cycle_per_chain(self):
        automaton = markov_chain_automaton(4, chain_id=0, seed=1)
        data = random_input(200, seed=2)
        result = ReferenceEngine(automaton).run(data)
        # reports start at cycle 1 (face known after first transition)
        assert result.report_count == 199

    def test_deterministic_for_fixed_input(self):
        automaton = markov_chain_automaton(8, chain_id=0, seed=3)
        data = random_input(100, seed=4)
        a = extract_output(automaton, data)
        b = extract_output(automaton, data)
        assert a == b

    def test_chains_differ(self):
        bench = build_apprng_benchmark(4, n_chains=2, seed=5, uniform=False)
        data = random_input(300, seed=6)
        output = extract_output(bench, data)
        assert output[0] != output[1]


class TestOutputQuality:
    def test_uniform_die_is_uniform(self):
        """Chi-square uniformity of the face sequence (the paper's
        'high-quality pseudo-random behaviour' claim)."""
        automaton = markov_chain_automaton(4, chain_id=0, seed=7)
        data = random_input(6000, seed=8)
        faces = extract_output(automaton, data, engine=VectorEngine(automaton))[0]
        counts = np.bincount(faces, minlength=4)
        _, p_value = stats.chisquare(counts)
        assert p_value > 0.001

    def test_eight_sided_covers_all_faces(self):
        automaton = markov_chain_automaton(8, chain_id=0, seed=9)
        data = random_input(4000, seed=10)
        faces = extract_output(automaton, data)[0]
        assert set(faces) == set(range(8))

    def test_nonuniform_die_skewed(self):
        automaton = markov_chain_automaton(4, chain_id=0, seed=11, uniform=False)
        data = random_input(6000, seed=12)
        faces = extract_output(automaton, data)[0]
        counts = np.bincount(faces, minlength=4)
        # random weights 1..8: very unlikely to look uniform
        _, p_value = stats.chisquare(counts)
        assert p_value < 0.5
