"""Entity Resolution benchmark tests."""

import random

import pytest

from repro.benchmarks.entity import (
    build_entity_benchmark,
    detected_pairs,
    name_filter,
)
from repro.engines import VectorEngine
from repro.inputs.names import (
    Name,
    build_name_stream,
    corrupt,
    format_record,
    generate_names,
)


class TestNameGeneration:
    def test_unique_names(self):
        names = generate_names(200, seed=0)
        assert len({n.full for n in names}) == 200

    def test_deterministic(self):
        assert generate_names(20, seed=1) == generate_names(20, seed=1)

    def test_format_variants(self):
        name = Name("Brandon", "Thorex")
        assert format_record(name, 0) == "Brandon Thorex"
        assert format_record(name, 1) == "B. Thorex"
        assert format_record(name, 2) == "Thorex, Brandon"
        with pytest.raises(ValueError):
            format_record(name, 3)

    def test_corrupt_changes_text(self):
        rng = random.Random(0)
        original = "Brandon Thorex"
        corrupted = corrupt(original, rng, 1)
        assert corrupted != original
        assert abs(len(corrupted) - len(original)) <= 1


class TestNameFilter:
    NAME = Name("Kled", "Barun")

    def test_exact_full_name(self):
        automaton = name_filter(self.NAME, 7)
        hits = VectorEngine(automaton).run(b"... Kled Barun ...").reports
        assert any(e.code[0] == 7 for e in hits)

    def test_typo_tolerated(self):
        automaton = name_filter(self.NAME, 7)
        assert VectorEngine(automaton).run(b"Kled Barin").report_count > 0  # sub
        assert VectorEngine(automaton).run(b"Kled Brun").report_count > 0  # del
        assert VectorEngine(automaton).run(b"Kleed Barun").report_count > 0  # ins

    def test_two_typos_rejected(self):
        automaton = name_filter(self.NAME, 7)
        assert VectorEngine(automaton).run(b"Klid Barin zz").report_count == 0

    def test_initial_variant(self):
        automaton = name_filter(self.NAME, 7)
        assert VectorEngine(automaton).run(b"K. Barun").report_count > 0

    def test_last_first_variant(self):
        automaton = name_filter(self.NAME, 7)
        assert VectorEngine(automaton).run(b"Barun, Kled").report_count > 0


class TestEntityBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return build_entity_benchmark(n_names=40, n_records=300, seed=9)

    def test_three_components_per_name(self, bench):
        # each name filter = Levenshtein mesh + two format-variant chains
        assert len(bench.automaton.connected_components()) == 3 * 40

    def test_duplicates_planted(self, bench):
        assert len(bench.duplicates) > 10

    def test_recall_on_noisy_duplicates(self, bench):
        result = VectorEngine(bench.automaton).run(bench.stream)
        detected = detected_pairs(bench, result.reports)
        truth = set(bench.duplicates)
        recall = len(truth & detected) / len(truth)
        # full-format duplicates (even with one typo) and clean variant
        # records must be found; corrupted variant records can be missed
        assert recall > 0.6

    def test_uncorrupted_full_records_all_found(self):
        names = generate_names(15, seed=3)
        stream, duplicates = build_name_stream(
            names, 120, seed=4, duplicate_fraction=0.3, error_fraction=0.0
        )
        bench = build_entity_benchmark(n_names=15, n_records=1, seed=3)
        # rebuild with the clean stream
        result = VectorEngine(bench.automaton).run(stream)
        hit_names = {
            e.code[0] if isinstance(e.code, tuple) else e.code
            for e in result.reports
        }
        assert {ni for _, ni in duplicates} <= hit_names


class TestResolutionKernel:
    """The full deduplication kernel: clustering + quality metrics."""

    @pytest.fixture(scope="class")
    def bench(self):
        return build_entity_benchmark(n_names=30, n_records=400, seed=13)

    def test_clusters_are_sorted_unique(self, bench):
        from repro.benchmarks.entity import resolve_duplicates

        clusters = resolve_duplicates(bench)
        for records in clusters.values():
            assert records == sorted(set(records))

    def test_quality_reasonable(self, bench):
        from repro.benchmarks.entity import resolution_quality, resolve_duplicates

        clusters = resolve_duplicates(bench)
        precision, recall = resolution_quality(bench, clusters)
        assert recall > 0.6  # finds most planted duplicates
        assert precision > 0.5  # without drowning in false matches

    def test_empty_clusters_edge_case(self, bench):
        from repro.benchmarks.entity import resolution_quality

        precision, recall = resolution_quality(bench, {})
        assert (precision, recall) == (1.0, 0.0)
