"""Tests for the edge-labelled NFA and homogenisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CharSet, NFA, StartMode
from repro.engines import ReferenceEngine
from repro.errors import AutomatonError


def simple_nfa(anchored=False):
    """NFA accepting 'ab' (anywhere unless anchored)."""
    nfa = NFA()
    nfa.add_state(0, start=anchored, start_all=not anchored)
    nfa.add_state(1)
    nfa.add_state(2, accept=True, report_code="hit")
    nfa.add_transition(0, CharSet.from_chars("a"), 1)
    nfa.add_transition(1, CharSet.from_chars("b"), 2)
    return nfa


class TestNFARun:
    def test_unanchored(self):
        assert simple_nfa().run(b"xabxab") == [(2, "hit"), (5, "hit")]

    def test_anchored(self):
        assert simple_nfa(anchored=True).run(b"abab") == [(1, "hit")]
        assert simple_nfa(anchored=True).run(b"xab") == []

    def test_empty_charset_transition_ignored(self):
        nfa = NFA()
        nfa.add_state(0, start=True)
        nfa.add_state(1, accept=True)
        nfa.add_transition(0, CharSet.none(), 1)
        assert nfa.n_transitions == 0

    def test_transition_endpoint_validation(self):
        nfa = NFA()
        nfa.add_state(0)
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, CharSet.from_chars("a"), 99)

    def test_counts(self):
        nfa = simple_nfa()
        assert nfa.n_states == 3
        assert nfa.n_transitions == 2


class TestHomogenisation:
    def test_equivalent_reports(self):
        nfa = simple_nfa()
        automaton = nfa.to_homogeneous()
        engine = ReferenceEngine(automaton)
        data = b"xabxxabb"
        nfa_offsets = sorted({offset for offset, _ in nfa.run(data)})
        homog_offsets = sorted(engine.run(data).reporting_cycles())
        assert homog_offsets == nfa_offsets

    def test_start_modes_transfer(self):
        unanchored = simple_nfa().to_homogeneous()
        assert any(
            s.start is StartMode.ALL_INPUT for s in unanchored.stes()
        )
        anchored = simple_nfa(anchored=True).to_homogeneous()
        assert any(s.start is StartMode.START_OF_DATA for s in anchored.stes())
        assert not any(s.start is StartMode.ALL_INPUT for s in anchored.stes())

    def test_state_split_on_distinct_incoming_labels(self):
        # state 1 entered on 'a' OR on 'b': must split into two STEs
        nfa = NFA()
        nfa.add_state(0, start_all=True)
        nfa.add_state(1, accept=True)
        nfa.add_transition(0, CharSet.from_chars("a"), 1)
        nfa.add_transition(0, CharSet.from_chars("b"), 1)
        automaton = nfa.to_homogeneous()
        assert automaton.n_states == 2

    def test_accepting_start_rejected(self):
        nfa = NFA()
        nfa.add_state(0, start=True, accept=True)
        with pytest.raises(AutomatonError):
            nfa.to_homogeneous()

    @settings(max_examples=60, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(0, 4),
                st.frozensets(st.sampled_from(list(b"abc")), min_size=1, max_size=2),
                st.integers(0, 4),
            ),
            max_size=10,
        ),
        accepts=st.sets(st.integers(1, 4), max_size=3),
        data=st.binary(max_size=20).map(lambda raw: bytes(b"abc"[x % 3] for x in raw)),
    )
    def test_homogenisation_equivalence_property(self, edges, accepts, data):
        nfa = NFA()
        nfa.add_state(0, start_all=True)
        for s in range(1, 5):
            nfa.add_state(s, accept=s in accepts, report_code=s)
        for src, symbols, dst in edges:
            nfa.add_transition(src, CharSet(symbols), dst)
        automaton = nfa.to_homogeneous()
        nfa_offsets = sorted({offset for offset, _ in nfa.run(data)})
        homog_offsets = sorted(ReferenceEngine(automaton).run(data).reporting_cycles())
        assert homog_offsets == nfa_offsets
