"""Streaming execution tests: chunk boundaries must be invisible."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Automaton, CharSet, CounterMode, StartMode
from repro.engines import LazyDFAEngine, ReferenceEngine, VectorEngine
from repro.regex import compile_regex

ENGINES = [ReferenceEngine, VectorEngine, LazyDFAEngine]
COUNTER_ENGINES = [ReferenceEngine, VectorEngine]


def chunked_reports(engine, data, cuts, record_active=False):
    session = engine.stream(record_active=record_active)
    reports = []
    previous = 0
    for cut in sorted(cuts) + [len(data)]:
        cut = min(max(cut, previous), len(data))
        reports.extend(session.feed(data[previous:cut]))
        previous = cut
    return reports, session


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestChunkInvariance:
    def test_match_across_chunk_boundary(self, engine_cls):
        automaton = compile_regex("abcd", report_code="r")
        engine = engine_cls(automaton)
        session = engine.stream()
        assert session.feed(b"xxab") == []
        hits = session.feed(b"cdyy")
        assert [r.offset for r in hits] == [5]

    def test_anchored_only_matches_stream_start(self, engine_cls):
        automaton = compile_regex("^ab")
        engine = engine_cls(automaton)
        session = engine.stream()
        assert len(session.feed(b"ab")) == 1
        assert session.feed(b"ab") == []  # offset 2: not the stream start

    def test_offsets_are_stream_global(self, engine_cls):
        automaton = compile_regex("z")
        engine = engine_cls(automaton)
        session = engine.stream()
        session.feed(b"aaaa")
        assert [r.offset for r in session.feed(b"z")] == [4]
        assert session.offset == 5

    def test_active_recording_spans_chunks(self, engine_cls):
        automaton = compile_regex("ab")
        engine = engine_cls(automaton)
        reports, session = chunked_reports(engine, b"aabb", [2], record_active=True)
        assert len(session.active_per_cycle) == 4

    def test_empty_feeds_are_noops(self, engine_cls):
        automaton = compile_regex("ab")
        engine = engine_cls(automaton)
        session = engine.stream()
        assert session.feed(b"") == []
        session.feed(b"a")
        assert session.feed(b"") == []
        assert [r.offset for r in session.feed(b"b")] == [1]


@pytest.mark.parametrize("engine_cls", COUNTER_ENGINES)
class TestCounterStreaming:
    def test_counter_state_persists(self, engine_cls):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c", 3, mode=CounterMode.STOP, report=True, report_code="x")
        a.add_edge("s", "c")
        session = engine_cls(a).stream()
        assert session.feed(b"a") == []
        assert session.feed(b"a") == []
        assert [r.offset for r in session.feed(b"a")] == [2]


@settings(max_examples=80, deadline=None)
@given(
    pattern=st.sampled_from(["ab", "a+b", "[ab]{3}", "a.?b"]),
    data=st.binary(max_size=30).map(lambda raw: bytes(b"ab"[x % 2] for x in raw)),
    cuts=st.lists(st.integers(0, 30), max_size=4),
    engine_index=st.integers(0, 2),
)
def test_any_chunking_equals_run_property(pattern, data, cuts, engine_index):
    engine = ENGINES[engine_index](compile_regex(pattern))
    whole = engine.run(data).reports
    chunked, _ = chunked_reports(engine, data, cuts)
    assert sorted(chunked) == whole
