"""Property tests for the semantics-preserving transforms.

Randomized automata come from the conformance generator
(:mod:`repro.conformance.generator`) so the transforms are exercised on
the same structurally-diverse corners the fuzzer produces: counter
elements, ALL_INPUT starts, empty charsets, dead states, empty inputs.
Each property is checked directly against the reference engine — these
tests are independent of the differential runner's own projections.
"""

import pytest

from repro.conformance import random_case
from repro.conformance.runner import reference_outcome
from repro.core import Automaton, CharSet, StartMode
from repro.errors import AutomatonError
from repro.transforms import (
    merge_bidirectional,
    merge_common_prefixes,
    merge_common_suffixes,
    pack_bits,
    stride,
    widen,
)

MERGES = [
    pytest.param(merge_common_prefixes, id="prefix"),
    pytest.param(merge_common_suffixes, id="suffix"),
    pytest.param(merge_bidirectional, id="bidirectional"),
]


def _event_set(automaton, data):
    return reference_outcome(automaton, data).event_set()


def _counter_automaton():
    a = Automaton("counted")
    a.add_ste("tick", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
    a.add_counter("cnt", target=2, report=True, report_code=99)
    a.add_edge("tick", "cnt")
    return a


class TestMergeProperties:
    @pytest.mark.parametrize("merge", MERGES)
    def test_event_set_preserved_on_random_automata(self, merge):
        merged_any = False
        for seed in range(60):
            case = random_case(seed)
            merged, stats = merge(case.automaton)
            merged_any |= merged.n_states < case.automaton.n_states
            assert _event_set(merged, case.data) == _event_set(
                case.automaton, case.data
            ), f"seed {seed}"
        assert merged_any, "60 seeds never produced a mergeable automaton"

    @pytest.mark.parametrize("merge", MERGES)
    def test_counters_survive_merging(self, merge):
        a = _counter_automaton()
        merged, _stats = merge(a)
        for data in (b"", b"a", b"aa", b"aaab"):
            before = reference_outcome(a, data)
            after = reference_outcome(merged, data)
            assert after.event_set() == before.event_set(), data
            assert after.counters == before.counters, data

    @pytest.mark.parametrize("merge", MERGES)
    def test_empty_input(self, merge):
        for seed in range(20):
            case = random_case(seed)
            merged, _stats = merge(case.automaton)
            assert _event_set(merged, b"") == _event_set(case.automaton, b"")


class TestWidenProperties:
    def test_reports_move_to_pad_offsets(self):
        checked = 0
        for seed in range(80):
            case = random_case(seed)
            a = case.automaton
            if any(True for _ in a.counters()):
                continue
            if any(ste.charset.matches(0) for ste in a.stes()) or 0 in case.data:
                continue
            checked += 1
            wide_data = bytes(b for sym in case.data for b in (sym, 0))
            want = sorted(
                (2 * off + 1, code)
                for off, _ident, code in reference_outcome(a, case.data).reports
            )
            got = sorted(
                (off, code)
                for off, _ident, code in reference_outcome(widen(a), wide_data).reports
            )
            assert want == got, f"seed {seed}"
        assert checked >= 10, "too few widening-eligible seeds to be meaningful"

    def test_widen_empty_input(self):
        case = random_case(1)
        if not any(True for _ in case.automaton.counters()):
            assert reference_outcome(widen(case.automaton), b"").reports == []

    def test_widen_rejects_counters(self):
        with pytest.raises(AutomatonError):
            widen(_counter_automaton())


class TestStrideProperties:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_bit_reports_land_in_blocks(self, k):
        for seed in range(40):
            case = random_case(seed, bit_level=True)
            usable = len(case.data) - len(case.data) % k
            want = {
                (off // k, code)
                for off, _ident, code in reference_outcome(
                    case.automaton, case.data
                ).reports
                if off < usable
            }
            packed = pack_bits(case.data[:usable], k=k)
            got = {
                (off, code)
                for off, _ident, code in reference_outcome(
                    stride(case.automaton, k), packed
                ).reports
            }
            assert want == got, f"seed {seed}"

    def test_stride_rejects_counters(self):
        with pytest.raises(AutomatonError):
            stride(_counter_automaton(), 2)

    def test_stride_rejects_blocks_wider_than_a_byte(self):
        a = Automaton("bytes")
        a.add_ste("s", CharSet.from_chars("ab"), start=StartMode.ALL_INPUT, report=True)
        with pytest.raises(AutomatonError):
            stride(a, 2)  # 7-bit alphabet * 2 > 8 bits

    def test_stride_requires_positive_k(self):
        case = random_case(0, bit_level=True)
        with pytest.raises(ValueError):
            stride(case.automaton, 0)


class TestPackBitsEdges:
    def test_empty(self):
        assert pack_bits(b"", k=4) == b""

    def test_partial_trailing_block_dropped(self):
        assert pack_bits(bytes([1, 0, 1, 1, 1]), k=2) == bytes([0b10, 0b11])

    def test_rejects_non_bit_symbols(self):
        with pytest.raises(ValueError):
            pack_bits(b"ab", k=2)

    def test_msb_first(self):
        assert pack_bits(bytes([1, 0, 0, 0]), k=4) == bytes([0b1000])


class TestZeroLengthFeeds:
    """Chunk boundaries and zero-length feeds must be invisible, also on
    transformed automata."""

    @pytest.mark.parametrize("merge", MERGES)
    def test_merged_automata_under_zero_feeds(self, merge):
        from repro.conformance.runner import engine_outcome
        from repro.engines.reference import ReferenceEngine

        for seed in range(15):
            case = random_case(seed)
            merged, _stats = merge(case.automaton)
            whole = reference_outcome(merged, case.data)
            chunked = engine_outcome(
                ReferenceEngine(merged), case.data, chunk=3, zero_feeds=True
            )
            assert chunked.reports == whole.reports, f"seed {seed}"
            assert chunked.counters == whole.counters, f"seed {seed}"
