"""The differential conformance subsystem (repro.conformance).

Fast fixed-seed smoke lives here in tier-1; the long campaign is behind
``-m fuzz`` (see tests/conftest.py and docs/TESTING.md).
"""

import json

import pytest

from repro.conformance import (
    CaseConfig,
    check_goldens,
    load_goldens,
    load_repro,
    random_case,
    run_campaign,
    run_case,
    save_goldens,
    save_repro,
    shrink_case,
    summary_dict,
)
from repro.benchmarks import BENCHMARK_NAMES
from repro.cli import main
from repro.core import Automaton, CharSet, CounterElement, StartMode
from repro.engines import BitsetEngine
from repro.engines.cache import automaton_fingerprint


class FaultyBitsetEngine(BitsetEngine):
    """Deliberate fault: state 0 wrongly also enables the last state."""

    def __init__(self, automaton):
        super().__init__(automaton)
        if self._n >= 2:
            self._succ_int[0] |= 1 << (self._n - 1)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = random_case(42)
        b = random_case(42)
        assert automaton_fingerprint(a.automaton) == automaton_fingerprint(b.automaton)
        assert a.data == b.data

    def test_seeds_differ(self):
        assert random_case(1).data != random_case(2).data or automaton_fingerprint(
            random_case(1).automaton
        ) != automaton_fingerprint(random_case(2).automaton)

    def test_structural_diversity(self):
        """Over a seed range the generator must hit every targeted corner."""
        saw_counter = saw_all_input = saw_reporting_start = False
        saw_dead = saw_empty_input = saw_out_of_alphabet = saw_empty_charset = False
        for seed in range(150):
            case = random_case(seed)
            a = case.automaton
            if any(isinstance(e, CounterElement) for e in a.elements()):
                saw_counter = True
            for ste in a.stes():
                if ste.start is StartMode.ALL_INPUT:
                    saw_all_input = True
                if ste.is_start() and ste.report:
                    saw_reporting_start = True
                if not ste.is_start() and not a.predecessors(ste.ident):
                    saw_dead = True
                if ste.charset.is_empty():
                    saw_empty_charset = True
            if not case.data:
                saw_empty_input = True
            if any(b not in b"abcd" for b in case.data):
                saw_out_of_alphabet = True
        assert all(
            [
                saw_counter,
                saw_all_input,
                saw_reporting_start,
                saw_dead,
                saw_empty_input,
                saw_out_of_alphabet,
                saw_empty_charset,
            ]
        )

    def test_bit_level_cases_are_strideable(self):
        for seed in range(30):
            case = random_case(seed, bit_level=True)
            assert all(b in (0, 1) for b in case.data)
            assert all(
                ste.charset.issubset(CharSet([0, 1])) for ste in case.automaton.stes()
            )
            assert not any(True for _ in case.automaton.counters())


class TestDifferentialSmoke:
    """Fixed-seed smoke: all engines and transforms agree with reference."""

    def test_byte_level_seeds_clean(self):
        for seed in range(40):
            case = random_case(seed)
            divergences = run_case(case.automaton, case.data)
            assert not divergences, f"seed {seed}: {divergences}"

    def test_bit_level_seeds_clean(self):
        for seed in range(12):
            case = random_case(seed, bit_level=True)
            divergences = run_case(case.automaton, case.data, bit_level=True)
            assert not divergences, f"seed {seed}: {divergences}"

    def test_empty_input_clean(self):
        case = random_case(5)
        assert not run_case(case.automaton, b"")

    def test_campaign_api_clean(self):
        report = run_campaign(16)
        assert report.clean
        summary = summary_dict(report)
        assert summary["seeds"] == 16
        assert summary["clean"] is True
        assert summary["divergences"] == []


class TestFaultInjection:
    """A perturbed successor mask must be caught and shrunk small."""

    factories = {"bitset": FaultyBitsetEngine}

    def _first_caught(self):
        for seed in range(60):
            case = random_case(seed)
            divergences = run_case(
                case.automaton,
                case.data,
                engine_factories=self.factories,
                include_transforms=False,
            )
            if divergences:
                return case, divergences
        pytest.fail("injected fault never caught in 60 seeds")

    def test_fault_is_caught_and_shrunk_to_tiny_repro(self, tmp_path):
        case, divergences = self._first_caught()
        subject = divergences[0].subject

        def check(a, d):
            return any(
                x.subject == subject
                for x in run_case(
                    a, d, engine_factories=self.factories, include_transforms=False
                )
            )

        small, small_data = shrink_case(case.automaton, case.data, check)
        assert small.n_states <= 8  # the ISSUE acceptance bound
        assert len(small_data) <= len(case.data)
        assert check(small, small_data)  # still reproduces after shrinking

        path = save_repro(tmp_path / "case_fault", small, small_data, {"subject": subject})
        loaded, loaded_data, meta = load_repro(path)
        assert loaded_data == small_data
        assert meta["subject"] == subject
        assert check(loaded, loaded_data)  # repro survives serialization

    def test_campaign_records_and_serialises_divergence(self, tmp_path):
        # seed 16 is the first the injected fault trips on (see _first_caught)
        report = run_campaign(
            5,
            start_seed=14,
            engine_factories=self.factories,
            repro_dir=tmp_path / "repros",
        )
        assert not report.clean
        record = report.records[0]
        assert record.shrunk_states is not None and record.shrunk_states <= 8
        assert record.repro_path is not None
        loaded, _data, meta = load_repro(record.repro_path)
        assert meta["seed"] == record.seed
        summary = summary_dict(report)
        assert summary["clean"] is False
        assert summary["divergences"][0]["subject"].startswith("engine:bitset")


class TestShrinker:
    def test_rejects_passing_case(self):
        case = random_case(0)
        with pytest.raises(ValueError):
            shrink_case(case.automaton, case.data, lambda a, d: False)

    def test_minimises_a_crafted_predicate(self):
        a = Automaton("big")
        for i in range(10):
            a.add_ste(f"s{i}", CharSet.from_chars("ab"), start=StartMode.ALL_INPUT, report=True, report_code=i)
        for i in range(9):
            a.add_edge(f"s{i}", f"s{i+1}")

        def check(auto, data):
            return "s7" in auto and b"a" in data

        small, small_data = shrink_case(a, b"xxaxbbay", check)
        assert small.n_states == 1 and "s7" in small
        assert small_data == b"a"


class TestGoldens:
    def test_registry_covers_every_benchmark(self):
        golden = load_goldens()
        assert set(golden) == set(BENCHMARK_NAMES)
        for entry in golden.values():
            assert {"fingerprint", "input_sha256", "report_sha256"} <= set(entry)

    def test_tampered_golden_is_detected(self, tmp_path):
        golden = load_goldens()
        name = "Snort"
        golden[name] = dict(golden[name], report_sha256="0" * 64)
        path = save_goldens(golden, tmp_path / "goldens.json")
        problems = check_goldens(names=[name], path=path)
        assert problems and "report_sha256 drifted" in problems[0]

    def test_missing_entry_is_detected(self, tmp_path):
        path = save_goldens({}, tmp_path / "goldens.json")
        problems = check_goldens(names=["Snort"], path=path)
        assert problems == ["Snort: no golden entry (run --update-goldens)"]

    @pytest.mark.slow
    def test_all_24_generators_match_goldens(self):
        """The single regression test: any behavioral drift in a generator,
        input stimulus, engine or transform feeding them fails here.
        Intentional changes: ``repro conformance --update-goldens``."""
        assert check_goldens() == []


class TestCLI:
    def test_conformance_command_clean(self, tmp_path, capsys):
        out = tmp_path / "CONFORMANCE.json"
        code = main(
            [
                "conformance",
                "--seeds",
                "8",
                "--skip-goldens",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        summary = json.loads(out.read_text())
        assert summary["seeds"] == 8 and summary["clean"] is True
        assert "clean" in capsys.readouterr().out

    def test_conformance_golden_check_subset_via_api(self):
        # The CLI's golden check is check_goldens(); verify a cheap subset
        # end-to-end here (the full 24 run in the slow golden test).
        assert check_goldens(names=["Snort", "File Carving"]) == []


@pytest.mark.fuzz
class TestLongCampaign:
    """The long campaign: ``pytest -m fuzz``.  Hundreds of seeds across
    both alphabets plus a larger-automaton sweep."""

    def test_500_seed_campaign_clean(self):
        report = run_campaign(500)
        assert report.clean, summary_dict(report)

    def test_big_config_campaign_clean(self):
        report = run_campaign(
            250,
            start_seed=10_000,
            config=CaseConfig(max_states=18, max_input_len=120),
        )
        assert report.clean, summary_dict(report)


class TestCampaignResilience:
    """Time budgets and checkpointed resume (docs/RESILIENCE.md)."""

    def test_max_seconds_truncates_with_valid_summary(self):
        report = run_campaign(10_000, max_seconds=0.2)
        assert report.truncated
        assert 0 < report.completed_seeds < 10_000
        summary = summary_dict(report)
        json.dumps(summary)  # still a complete, valid document
        assert summary["truncated"] is True
        assert summary["completed_seeds"] == report.completed_seeds

    def test_unbudgeted_campaign_is_not_truncated(self):
        report = run_campaign(8)
        assert not report.truncated
        assert report.completed_seeds == 8

    def test_truncated_campaign_keeps_journal_and_resumes(self, tmp_path):
        ckpt = tmp_path / "c.ckpt.json"
        # tiny budget: some seeds finish, the journal survives
        first = run_campaign(200, max_seconds=0.15, checkpoint=ckpt)
        assert first.truncated
        assert ckpt.exists()
        done_before = first.completed_seeds
        assert len(json.loads(ckpt.read_text())["cells"]) == done_before

        resumed = run_campaign(200, checkpoint=ckpt, resume=True)
        assert not resumed.truncated
        assert resumed.completed_seeds == 200
        assert not ckpt.exists()
        # resumed records match a straight-through campaign
        straight = run_campaign(200)
        key = lambda rec: (rec.seed, rec.divergence.subject)
        assert sorted(map(key, resumed.records)) == sorted(
            map(key, straight.records)
        )
