"""CLI tests (direct main() invocation with captured output)."""

import json

import pytest

from repro.cli import main
from repro.io import from_anml, from_mnrl


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Snort" in out
        assert "AP PRNG 8-sided" in out
        assert len(out.strip().splitlines()) == 25


class TestBuild:
    def test_build_and_export_mnrl(self, tmp_path, capsys):
        out = tmp_path / "h.mnrl"
        stim = tmp_path / "h.input"
        code = main(
            [
                "build",
                "Hamming 18x3",
                "--scale",
                "0.005",
                "--output",
                str(out),
                "--input-output",
                str(stim),
            ]
        )
        assert code == 0
        automaton = from_mnrl(json.loads(out.read_text()))
        assert automaton.n_states > 0
        assert stim.stat().st_size > 0

    def test_build_and_export_anml(self, tmp_path):
        out = tmp_path / "f.anml"
        assert main(["build", "File Carving", "--output", str(out)]) == 0
        automaton = from_anml(out.read_text())
        assert automaton.n_states > 0


class TestRun:
    def test_run_prints_stats(self, capsys):
        code = main(
            ["run", "Protomata", "--scale", "0.01", "--limit", "2000",
             "--show-reports", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "states:" in out
        assert "mean active:" in out

    @pytest.mark.parametrize("engine", ["reference", "vector", "dfa"])
    def test_engines_selectable(self, engine, capsys):
        code = main(
            ["run", "File Carving", "--limit", "500", "--engine", engine]
        )
        assert code == 0


class TestStats:
    def test_stats_of_exported_file(self, tmp_path, capsys):
        out = tmp_path / "b.mnrl"
        main(["build", "Brill", "--scale", "0.01", "--output", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "edges/node" in text
        assert "compressed" in text


class TestTable1:
    def test_subset_table(self, capsys):
        code = main(
            [
                "table1",
                "--scale",
                "0.005",
                "--limit",
                "1000",
                "--names",
                "Hamming 18x3",
                "AP PRNG 4-sided",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Hamming 18x3" in out
        assert "NA" in out  # AP PRNG compression column


class TestGrep:
    def test_grep_finds_pattern(self, tmp_path, capsys):
        target = tmp_path / "data.bin"
        target.write_bytes(b"xxx match42 yyy")
        assert main(["grep", r"match[0-9]+", str(target)]) == 0
        assert "match42" in capsys.readouterr().out

    def test_grep_exit_code_on_no_match(self, tmp_path):
        target = tmp_path / "data.bin"
        target.write_bytes(b"nothing here")
        assert main(["grep", "zzz9", str(target)]) == 1


class TestProfile:
    def test_profile_smoke_writes_json(self, tmp_path, capsys):
        out = tmp_path / "PROFILE.json"
        code = main(
            ["profile", "--smoke", "--names", "Snort", "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Snort" in text and "cache:" in text
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.profile/1"
        assert payload["smoke"] is True
        engines = payload["benchmarks"]["Snort"]["engines"]
        assert set(engines) == {"bitset", "vector"}
        for row in engines.values():
            assert row["scan_s"] >= 0 and row["counters"]

    def test_profile_engine_flag_and_no_out(self, capsys):
        code = main(
            ["profile", "--smoke", "--names", "Snort",
             "--engine", "dfa", "--out", ""]
        )
        assert code == 0
        assert "dfa" in capsys.readouterr().out


class TestExportSuite:
    def test_export_and_reload(self, tmp_path, capsys):
        code = main(
            [
                "export-suite",
                str(tmp_path / "zoo"),
                "--scale",
                "0.004",
                "--names",
                "Protomata",
            ]
        )
        assert code == 0
        from repro.distribution import load_benchmark

        bench = load_benchmark(tmp_path / "zoo", "Protomata")
        assert bench.states > 0


class TestVerify:
    def test_verify_subset_ok(self, capsys):
        code = main(
            ["verify", "--scale", "0.004", "--names", "Protomata", "Hamming 18x3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("ok") == 2


class TestTypedExitCodes:
    """Typed failures map to distinct exit codes (docs/RESILIENCE.md)."""

    def test_mapping_is_stable(self):
        from repro import errors
        from repro.cli import exit_code_for

        cases = [
            (errors.RegexError("x"), 2),
            (errors.InputError("f", 0, "bad"), 5),
            (errors.ScanTimeout("vector", 10, 0.5), 6),
            (errors.MemoryBudgetExceeded("lazydfa", 10, 5), 7),
            (errors.WorkerCrash(1, 2), 8),
            (errors.EngineFailure("dfa", "boom"), 9),
            (errors.CapacityError("too big"), 10),
            (errors.EngineError("nope"), 11),
            (errors.CheckpointMismatch("p", "meta changed"), 12),
        ]
        assert [exit_code_for(e) for e, _ in cases] == [c for _, c in cases]

    def test_cli_prints_one_line_and_exits_typed(self, tmp_path, capsys):
        target = tmp_path / "haystack.txt"
        target.write_text("nothing")
        code = main(["grep", "(", str(target)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.strip() == "repro: RegexError: unterminated group"

    def test_debug_reraises(self, tmp_path):
        from repro.errors import RegexError

        target = tmp_path / "haystack.txt"
        target.write_text("nothing")
        with pytest.raises(RegexError):
            main(["--debug", "grep", "(", str(target)])

    def test_completed_sweep_cleans_up_journal(self, tmp_path, capsys):
        ckpt = tmp_path / "t.ckpt.json"
        assert (
            main(
                ["table1", "--names", "Snort", "--scale", "0.002",
                 "--checkpoint", str(ckpt)]
            )
            == 0
        )
        assert not ckpt.exists()  # completed sweeps clean up their journal
        # leave a journal from a different sweep shape behind
        assert (
            main(
                ["table1", "--names", "Snort", "--scale", "0.002",
                 "--checkpoint", str(ckpt), "--resume"]
            )
            == 0
        )  # resume with no journal is a fresh start
        capsys.readouterr()


class TestTable1Checkpoint:
    def test_meta_mismatch_is_a_typed_failure(self, tmp_path, capsys):
        from repro.resilience.checkpoint import SweepCheckpoint

        ckpt = tmp_path / "t1.ckpt.json"
        journal = SweepCheckpoint.open(
            ckpt, {"names": ["Snort"], "scale": 0.005, "seed": 0, "limit": 2000}
        )
        journal.record("Snort::row", {})
        # resuming a sweep with different parameters must refuse, not mix
        code = main(["table1", "--names", "Snort", "--scale", "0.002",
                     "--limit", "2000", "--checkpoint", str(ckpt), "--resume"])
        err = capsys.readouterr().err
        assert code == 12
        assert "CheckpointMismatch" in err

    def test_resume_reuses_journaled_rows(self, tmp_path, capsys, monkeypatch):
        args = ["table1", "--names", "Snort", "--scale", "0.002",
                "--limit", "2000"]
        assert main(args) == 0
        expected = capsys.readouterr().out

        ckpt = tmp_path / "t1.ckpt.json"
        assert main(args + ["--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()

        # interrupt before cleanup by copying the journal mid-sweep is
        # fiddly; instead journal a full sweep, then verify --resume with a
        # pre-seeded journal skips the build entirely.
        import repro.cli as cli_module
        from repro.resilience.checkpoint import SweepCheckpoint
        import dataclasses
        from repro.benchmarks import build_benchmark
        from repro.stats import summarize_benchmark

        meta = {"names": ["Snort"], "scale": 0.002, "seed": 0, "limit": 2000}
        bench = build_benchmark("Snort", scale=0.002, seed=0)
        row = summarize_benchmark(
            bench.name, bench.domain, bench.input_desc, bench.automaton,
            bench.input_data[:2000], compress=bench.compressible,
        )
        journal = SweepCheckpoint.open(ckpt, meta)
        journal.record("Snort::row", dataclasses.asdict(row))

        def boom(*a, **k):
            raise AssertionError("resume must not rebuild journaled benchmarks")

        monkeypatch.setattr(cli_module, "build_benchmark", boom)
        assert main(args + ["--checkpoint", str(ckpt), "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == expected
