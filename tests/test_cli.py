"""CLI tests (direct main() invocation with captured output)."""

import json

import pytest

from repro.cli import main
from repro.io import from_anml, from_mnrl


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Snort" in out
        assert "AP PRNG 8-sided" in out
        assert len(out.strip().splitlines()) == 25


class TestBuild:
    def test_build_and_export_mnrl(self, tmp_path, capsys):
        out = tmp_path / "h.mnrl"
        stim = tmp_path / "h.input"
        code = main(
            [
                "build",
                "Hamming 18x3",
                "--scale",
                "0.005",
                "--output",
                str(out),
                "--input-output",
                str(stim),
            ]
        )
        assert code == 0
        automaton = from_mnrl(json.loads(out.read_text()))
        assert automaton.n_states > 0
        assert stim.stat().st_size > 0

    def test_build_and_export_anml(self, tmp_path):
        out = tmp_path / "f.anml"
        assert main(["build", "File Carving", "--output", str(out)]) == 0
        automaton = from_anml(out.read_text())
        assert automaton.n_states > 0


class TestRun:
    def test_run_prints_stats(self, capsys):
        code = main(
            ["run", "Protomata", "--scale", "0.01", "--limit", "2000",
             "--show-reports", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "states:" in out
        assert "mean active:" in out

    @pytest.mark.parametrize("engine", ["reference", "vector", "dfa"])
    def test_engines_selectable(self, engine, capsys):
        code = main(
            ["run", "File Carving", "--limit", "500", "--engine", engine]
        )
        assert code == 0


class TestStats:
    def test_stats_of_exported_file(self, tmp_path, capsys):
        out = tmp_path / "b.mnrl"
        main(["build", "Brill", "--scale", "0.01", "--output", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "edges/node" in text
        assert "compressed" in text


class TestTable1:
    def test_subset_table(self, capsys):
        code = main(
            [
                "table1",
                "--scale",
                "0.005",
                "--limit",
                "1000",
                "--names",
                "Hamming 18x3",
                "AP PRNG 4-sided",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Hamming 18x3" in out
        assert "NA" in out  # AP PRNG compression column


class TestGrep:
    def test_grep_finds_pattern(self, tmp_path, capsys):
        target = tmp_path / "data.bin"
        target.write_bytes(b"xxx match42 yyy")
        assert main(["grep", r"match[0-9]+", str(target)]) == 0
        assert "match42" in capsys.readouterr().out

    def test_grep_exit_code_on_no_match(self, tmp_path):
        target = tmp_path / "data.bin"
        target.write_bytes(b"nothing here")
        assert main(["grep", "zzz9", str(target)]) == 1


class TestProfile:
    def test_profile_smoke_writes_json(self, tmp_path, capsys):
        out = tmp_path / "PROFILE.json"
        code = main(
            ["profile", "--smoke", "--names", "Snort", "--out", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Snort" in text and "cache:" in text
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.profile/1"
        assert payload["smoke"] is True
        engines = payload["benchmarks"]["Snort"]["engines"]
        assert set(engines) == {"bitset", "vector"}
        for row in engines.values():
            assert row["scan_s"] >= 0 and row["counters"]

    def test_profile_engine_flag_and_no_out(self, capsys):
        code = main(
            ["profile", "--smoke", "--names", "Snort",
             "--engine", "dfa", "--out", ""]
        )
        assert code == 0
        assert "dfa" in capsys.readouterr().out


class TestExportSuite:
    def test_export_and_reload(self, tmp_path, capsys):
        code = main(
            [
                "export-suite",
                str(tmp_path / "zoo"),
                "--scale",
                "0.004",
                "--names",
                "Protomata",
            ]
        )
        assert code == 0
        from repro.distribution import load_benchmark

        bench = load_benchmark(tmp_path / "zoo", "Protomata")
        assert bench.states > 0


class TestVerify:
    def test_verify_subset_ok(self, capsys):
        code = main(
            ["verify", "--scale", "0.004", "--names", "Protomata", "Hamming 18x3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("ok") == 2
