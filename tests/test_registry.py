"""Suite registry tests: every benchmark builds, runs, and scales."""

import pytest

from repro.benchmarks import BENCHMARK_NAMES, Benchmark, build_benchmark, build_suite
from repro.engines import VectorEngine
from repro.stats import compute_static_stats, summarize_benchmark

SCALE = 0.004
SEED = 3


@pytest.fixture(scope="module")
def suite():
    return {name: build_benchmark(name, scale=SCALE, seed=SEED) for name in BENCHMARK_NAMES}


class TestRegistry:
    def test_all_table1_rows_present(self):
        expected = {
            "Snort", "ClamAV", "Protomata", "Brill",
            "Random Forest A", "Random Forest B", "Random Forest C",
            "Hamming 18x3", "Hamming 22x5", "Hamming 31x10",
            "Levenshtein 19x3", "Levenshtein 24x5", "Levenshtein 37x10",
            "Seq. Match 6w 6p", "Seq. Match 6w 6p wC",
            "Seq. Match 6w 10p", "Seq. Match 6w 10p wC",
            "Entity Resolution", "CRISPR CasOffinder", "CRISPR CasOT",
            "YARA", "YARA Wide", "File Carving",
            "AP PRNG 4-sided", "AP PRNG 8-sided",
        }
        assert set(BENCHMARK_NAMES) == expected
        assert len(BENCHMARK_NAMES) == 25  # Table I's 25 rows

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("Fermi")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_benchmark("Snort", scale=0)

    def test_every_benchmark_valid_and_runnable(self, suite):
        for name, bench in suite.items():
            assert isinstance(bench, Benchmark)
            bench.automaton.validate()
            assert bench.states > 0
            assert len(bench.input_data) > 0
            # run a slice of the standard input end to end
            result = VectorEngine(bench.automaton).run(
                bench.input_data[:1500], record_active=True
            )
            assert result.cycles == min(1500, len(bench.input_data))

    def test_scaling_grows_benchmarks(self):
        small = build_benchmark("Hamming 18x3", scale=0.005, seed=1)
        large = build_benchmark("Hamming 18x3", scale=0.02, seed=1)
        assert large.states > 2 * small.states
        assert len(large.input_data) > len(small.input_data)

    def test_deterministic_builds(self):
        a = build_benchmark("Protomata", scale=0.01, seed=7)
        b = build_benchmark("Protomata", scale=0.01, seed=7)
        assert a.states == b.states
        assert a.input_data == b.input_data

    def test_build_suite_subset(self):
        suite = build_suite(scale=0.005, seed=1, names=["Snort", "YARA"])
        assert [b.name for b in suite] == ["Snort", "YARA"]

    def test_apprng_marked_incompressible(self, suite):
        assert suite["AP PRNG 4-sided"].compressible is False
        assert suite["Snort"].compressible is True


class TestTable1Shapes:
    """Structural relationships Table I exhibits must hold at any scale."""

    def test_levenshtein_denser_than_hamming(self, suite):
        ham = compute_static_stats(suite["Hamming 22x5"].automaton)
        lev = compute_static_stats(suite["Levenshtein 24x5"].automaton)
        assert lev.edges_per_node > 2 * ham.edges_per_node

    def test_mesh_size_grows_with_distance(self, suite):
        sizes = [
            suite[f"Hamming {l}x{d}"].states
            for l, d in ((18, 3), (22, 5), (31, 10))
        ]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_rf_c_is_largest_forest(self, suite):
        assert suite["Random Forest C"].states > suite["Random Forest B"].states

    def test_seqmatch_wc_adds_one_counter_per_pattern(self, suite):
        plain = suite["Seq. Match 6w 6p"]
        counted = suite["Seq. Match 6w 6p wC"]
        n_patterns = plain.meta["patterns"]
        n_counters = sum(1 for _ in counted.automaton.counters())
        assert n_counters == n_patterns
        assert counted.states == plain.states + n_patterns

    def test_crispr_ot_larger_than_off(self, suite):
        assert suite["CRISPR CasOT"].states > suite["CRISPR CasOffinder"].states

    def test_summarize_row(self, suite):
        bench = suite["Hamming 18x3"]
        row = summarize_benchmark(
            bench.name,
            bench.domain,
            bench.input_desc,
            bench.automaton,
            bench.input_data[:2000],
        )
        assert row.static.states == bench.states
        assert row.compressed_states <= bench.states
        assert row.dynamic.mean_active_set > 0
