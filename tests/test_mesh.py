"""Mesh automata vs the independent CPU baselines (semantic oracles)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import MyersMatcher, hamming_matches, levenshtein_matches
from repro.benchmarks.mesh import hamming_automaton, levenshtein_automaton
from repro.engines import ReferenceEngine, VectorEngine
from repro.inputs.dna import plant_pattern, random_dna


def offsets(automaton, data, engine_cls=ReferenceEngine):
    return sorted({r.offset for r in engine_cls(automaton).run(data).reports})


dna = st.text(alphabet="ACGT", max_size=25).map(str.encode)
patterns = st.text(alphabet="ACGT", min_size=1, max_size=8).map(str.encode)


class TestHammingAutomaton:
    def test_exact_match_d0(self):
        a = hamming_automaton(b"ACGT", 0)
        assert offsets(a, b"TTACGTTT") == [5]

    def test_one_mismatch(self):
        a = hamming_automaton(b"ACGT", 1)
        assert offsets(a, b"TTACCTTT") == [5]

    def test_too_many_mismatches(self):
        a = hamming_automaton(b"ACGT", 1)
        assert offsets(a, b"TTAGCTTT") == []

    def test_report_carries_score(self):
        a = hamming_automaton(b"AC", 1, pattern_id=7)
        reports = ReferenceEngine(a).run(b"AC").reports
        assert {r.code for r in reports} == {(7, 0)}
        reports = ReferenceEngine(a).run(b"AG").reports
        assert {r.code for r in reports} == {(7, 1)}

    def test_validation(self):
        with pytest.raises(ValueError):
            hamming_automaton(b"", 1)
        with pytest.raises(ValueError):
            hamming_automaton(b"AC", -1)

    def test_state_count_shape(self):
        # ~2*l*(d+1) states, linear in l, linear in d.
        small = hamming_automaton(b"A" * 10, 2).n_states
        longer = hamming_automaton(b"A" * 20, 2).n_states
        assert 1.8 < longer / small < 2.2

    @settings(max_examples=80, deadline=None)
    @given(pattern=patterns, data=dna, d=st.integers(0, 3))
    def test_matches_sliding_window_oracle(self, pattern, data, d):
        automaton = hamming_automaton(pattern, d)
        assert offsets(automaton, data) == hamming_matches(pattern, data, d)

    def test_planted_pattern_found(self):
        stream = random_dna(300, seed=5)
        pattern = b"ACGTACGTACGTACGTAC"
        stream = plant_pattern(stream, pattern, 100, mutations=3, seed=9)
        automaton = hamming_automaton(pattern, 3)
        assert 100 + len(pattern) - 1 in offsets(automaton, stream)


class TestLevenshteinAutomaton:
    def test_exact_match(self):
        a = levenshtein_automaton(b"ACGT", 0)
        assert offsets(a, b"TTACGTTT") == [5]

    def test_substitution(self):
        a = levenshtein_automaton(b"ACGT", 1)
        assert 5 in offsets(a, b"TTACCTTT")

    def test_insertion(self):
        # pattern ACGT, stream contains ACGGT (one inserted G)
        a = levenshtein_automaton(b"ACGT", 1)
        assert 6 in offsets(a, b"TTACGGTTT")

    def test_deletion(self):
        # stream contains AGT (C deleted)
        a = levenshtein_automaton(b"ACGT", 1)
        assert 4 in offsets(a, b"TTAGTTT")

    def test_distance_exceeded(self):
        a = levenshtein_automaton(b"AAAA", 1)
        assert offsets(a, b"CCCCCCC") == []

    def test_validation(self):
        with pytest.raises(ValueError):
            levenshtein_automaton(b"AC", 2)  # needs l > d
        with pytest.raises(ValueError):
            levenshtein_automaton(b"", 0)

    def test_edges_denser_than_hamming(self):
        h = hamming_automaton(b"ACGTACGTAC", 3)
        l = levenshtein_automaton(b"ACGTACGTAC", 3)
        h_ratio = h.n_edges / h.n_states
        l_ratio = l.n_edges / l.n_states
        assert l_ratio > 1.5 * h_ratio  # Table I: 4-11 vs 1.7-1.9

    @settings(max_examples=80, deadline=None)
    @given(pattern=patterns, data=dna, d=st.integers(0, 3))
    def test_matches_sellers_oracle(self, pattern, data, d):
        if len(pattern) <= d:
            return
        automaton = levenshtein_automaton(pattern, d)
        assert offsets(automaton, data) == levenshtein_matches(pattern, data, d)

    @settings(max_examples=40, deadline=None)
    @given(pattern=patterns, data=dna, d=st.integers(0, 2))
    def test_matches_myers_oracle_via_vector_engine(self, pattern, data, d):
        if len(pattern) <= d:
            return
        automaton = levenshtein_automaton(pattern, d)
        assert offsets(automaton, data, VectorEngine) == MyersMatcher(pattern, d).search(
            data
        )
