"""PROSITE parsing and Protomata benchmark tests."""

import pytest

from repro.benchmarks.protomata import (
    build_protomata_benchmark,
    generate_motifs,
    generate_proteome,
    materialize_motif,
)
from repro.engines import ReferenceEngine, VectorEngine
from repro.errors import PatternError
from repro.prosite import AMINO_ACIDS, prosite_to_regex
from repro.regex import compile_regex


def offsets(regex, data):
    return {r.offset for r in ReferenceEngine(compile_regex(regex)).run(data).reports}


class TestProsite:
    def test_simple_pattern(self):
        regex = prosite_to_regex("A-C-x-V.")
        assert offsets(regex, b"AACGV") == {4}
        assert offsets(regex, b"ACV") == set()

    def test_residue_set(self):
        regex = prosite_to_regex("[AC]-G")
        assert offsets(regex, b"AG CG TG") == {1, 4}

    def test_negated_set(self):
        regex = prosite_to_regex("{ED}-G")
        assert offsets(regex, b"AG EG DG") == {1}

    def test_repetition(self):
        regex = prosite_to_regex("A-x(3)-C")
        assert offsets(regex, b"AKLMC") == {4}
        assert offsets(regex, b"AKLC") == set()

    def test_range_repetition(self):
        regex = prosite_to_regex("A-x(1,2)-C")
        assert offsets(regex, b"AKC") == {2}
        assert offsets(regex, b"AKLC") == {3}

    def test_anchored(self):
        regex = prosite_to_regex("<M-A")
        assert offsets(regex, b"MAMA") == {1}

    def test_x_means_any_residue_not_any_byte(self):
        regex = prosite_to_regex("A-x-C")
        assert offsets(regex, b"A.C") == set()  # '.' is not an amino acid

    def test_errors(self):
        for bad in ["A-B2", "A-[XZ5]", "A-x(3,1)", "", ".", "A-C>", "J"]:
            with pytest.raises(PatternError):
                prosite_to_regex(bad)


class TestProtomataBenchmark:
    def test_motif_generation_valid(self):
        motifs = generate_motifs(50, seed=1)
        assert len(motifs) == 50
        for motif in motifs:
            prosite_to_regex(motif)  # every motif must compile

    def test_materialized_motif_matches(self):
        for motif in generate_motifs(20, seed=2):
            fragment = materialize_motif(motif, seed=3)
            regex = prosite_to_regex(motif)
            assert offsets(regex, fragment), motif

    def test_proteome_alphabet(self):
        proteome = generate_proteome(500, seed=0)
        assert set(proteome) <= set(AMINO_ACIDS.encode())

    def test_planted_motifs_found(self):
        bench = build_protomata_benchmark(
            n_motifs=40, n_residues=5000, n_planted=4, seed=5
        )
        result = VectorEngine(bench.automaton).run(bench.proteome)
        found = {event.code for event in result.reports}
        assert set(bench.planted) <= found

    def test_one_subgraph_per_motif(self):
        bench = build_protomata_benchmark(n_motifs=25, n_residues=500, seed=6)
        assert len(bench.automaton.connected_components()) == 25
