"""Scale-invariance of per-subgraph statistics (a documented suite claim).

DESIGN.md promises that ``scale`` touches only pattern counts and input
lengths, never per-pattern construction, so per-subgraph statistics match
the full-size suite.  These tests pin that claim for representative
families.  (Levenshtein per-filter sizes vary by ~1% with pattern content
— repeated symbols merge some homogenisation splits — so those checks are
approximate.)
"""

import pytest

from repro.benchmarks import build_benchmark
from repro.stats import compute_static_stats

SCALES = (0.01, 0.03)  # above every generator's minimum-count clamp


def stats_at(name, scale):
    bench = build_benchmark(name, scale=scale, seed=7)
    return compute_static_stats(bench.automaton)


class TestPerSubgraphInvariance:
    @pytest.mark.parametrize("name", ["Hamming 18x3", "AP PRNG 4-sided"])
    def test_deterministic_families_exactly_invariant(self, name):
        small, large = (stats_at(name, s) for s in SCALES)
        assert small.avg_component_size == large.avg_component_size
        assert small.std_component_size == large.std_component_size

    @pytest.mark.parametrize("name", ["Levenshtein 24x5", "CRISPR CasOffinder"])
    def test_content_dependent_families_nearly_invariant(self, name):
        small, large = (stats_at(name, s) for s in SCALES)
        assert small.avg_component_size == pytest.approx(
            large.avg_component_size, rel=0.02
        )

    @pytest.mark.parametrize("name", ["Hamming 22x5", "Levenshtein 19x3"])
    def test_edge_density_nearly_constant_across_scales(self, name):
        small, large = (stats_at(name, s) for s in SCALES)
        assert small.edges_per_node == pytest.approx(large.edges_per_node, rel=0.01)

    def test_subgraph_count_scales_linearly(self):
        small, large = (stats_at("Hamming 18x3", s) for s in SCALES)
        assert large.subgraph_count == pytest.approx(
            small.subgraph_count * SCALES[1] / SCALES[0], rel=0.05
        )

    def test_input_length_scales(self):
        small = build_benchmark("Hamming 18x3", scale=SCALES[0], seed=7)
        large = build_benchmark("Hamming 18x3", scale=SCALES[1], seed=7)
        ratio = len(large.input_data) / len(small.input_data)
        assert ratio == pytest.approx(SCALES[1] / SCALES[0], rel=0.05)
