"""Tests for the profile-driven mesh design methodology (Section X)."""

import pytest

from repro.profiling import (
    ProfilePoint,
    expected_reports_per_million,
    figure1_sweep,
    hamming_match_probability,
    measure_rate,
    min_length_for_rate,
    select_pattern_length,
)


class TestAnalyticModel:
    def test_probability_bounds(self):
        assert 0 < hamming_match_probability(10, 2) < 1
        assert hamming_match_probability(5, 5) == 1.0

    def test_monotone_in_d(self):
        assert hamming_match_probability(20, 5) > hamming_match_probability(20, 3)

    def test_monotone_decreasing_in_l(self):
        assert hamming_match_probability(25, 3) < hamming_match_probability(15, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            hamming_match_probability(0, 1)
        with pytest.raises(ValueError):
            hamming_match_probability(5, -1)

    def test_reproduces_table5_hamming_lengths(self):
        """The paper's profile-chosen Hamming lengths are a mathematical
        property of random DNA; the closed form reproduces Table V exactly."""
        assert min_length_for_rate(3) == 18
        assert min_length_for_rate(5) == 22
        assert min_length_for_rate(10) == 31

    def test_no_length_meets_threshold(self):
        with pytest.raises(ValueError):
            min_length_for_rate(3, l_max=5)

    def test_binary_alphabet(self):
        # On a binary alphabet filters must be much longer.
        assert min_length_for_rate(3, alphabet_size=2) > min_length_for_rate(3)


class TestMeasuredRates:
    def test_measured_close_to_analytic(self):
        # Short filters match often; the Monte-Carlo estimate should agree
        # with the closed form within sampling noise.
        point = measure_rate(
            "hamming", 2, 8, n_filters=5, n_symbols=20_000, trials=2, seed=3
        )
        expected = expected_reports_per_million(8, 2)
        assert 0.5 * expected < point.reports_per_million < 1.5 * expected

    def test_automata_method_agrees_with_fast(self):
        kwargs = dict(n_filters=3, n_symbols=4_000, trials=1, seed=11)
        fast = measure_rate("hamming", 1, 6, method="fast", **kwargs)
        slow = measure_rate("hamming", 1, 6, method="automata", **kwargs)
        assert fast.reports_per_million == slow.reports_per_million

    def test_automata_method_agrees_for_levenshtein(self):
        kwargs = dict(n_filters=2, n_symbols=2_000, trials=1, seed=5)
        fast = measure_rate("levenshtein", 1, 6, method="fast", **kwargs)
        slow = measure_rate("levenshtein", 1, 6, method="automata", **kwargs)
        assert fast.reports_per_million == slow.reports_per_million

    def test_levenshtein_rate_above_hamming(self):
        kwargs = dict(n_filters=4, n_symbols=30_000, trials=1, seed=2)
        ham = measure_rate("hamming", 2, 10, **kwargs)
        lev = measure_rate("levenshtein", 2, 10, **kwargs)
        assert lev.reports_per_million >= ham.reports_per_million

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            measure_rate("jaccard", 1, 5)

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError):
            measure_rate("hamming", 1, 5, method="quantum", n_symbols=10, trials=1)


class TestSelection:
    def test_selects_hamming_d2(self):
        # analytic answer for d=2 is l=15; Monte-Carlo should land within 1.
        analytic = min_length_for_rate(2)
        chosen, points = select_pattern_length(
            "hamming", 2, n_filters=5, n_symbols=150_000, trials=2, seed=4
        )
        assert abs(chosen - analytic) <= 1
        assert points[-1].reports_per_million < 1.0
        # the sweep is monotone-ish decreasing
        assert points[0].reports_per_million > points[-1].reports_per_million

    def test_sweep_returns_requested_lengths(self):
        points = figure1_sweep(
            "hamming", 1, [4, 6], n_filters=2, n_symbols=5_000, trials=1
        )
        assert [p.l for p in points] == [4, 6]
        assert all(isinstance(p, ProfilePoint) for p in points)

    def test_threshold_failure(self):
        with pytest.raises(ValueError):
            select_pattern_length(
                "hamming",
                2,
                l_max=6,
                n_filters=2,
                n_symbols=2_000,
                trials=1,
            )
