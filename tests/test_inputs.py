"""Direct tests for the input stimulus generators."""

import random

import pytest

from repro.inputs.corpus import generate_tagged_corpus
from repro.inputs.diskimage import (
    DiskImage,
    build_disk_image,
    make_jpeg_like,
    make_mp4_file,
    make_mpeg2_stream,
    make_png_like,
    make_text_file,
    make_zip_file,
)
from repro.inputs.dna import DNA_ALPHABET, plant_pattern, random_dna, random_dna_patterns
from repro.inputs.pcap import SUSPICIOUS_TOKENS, synthetic_pcap


class TestDNA:
    def test_alphabet(self):
        data = random_dna(500, seed=0)
        assert set(data) <= set(DNA_ALPHABET)
        assert len(data) == 500

    def test_deterministic(self):
        assert random_dna(100, seed=1) == random_dna(100, seed=1)
        assert random_dna(100, seed=1) != random_dna(100, seed=2)

    def test_patterns(self):
        patterns = random_dna_patterns(5, 18, seed=3)
        assert len(patterns) == 5
        assert all(len(p) == 18 for p in patterns)
        assert len(set(patterns)) == 5

    def test_plant_exact(self):
        stream = random_dna(100, seed=0)
        planted = plant_pattern(stream, b"ACGTACGT", 10)
        assert planted[10:18] == b"ACGTACGT"
        assert planted[:10] == stream[:10]

    def test_plant_with_mutations(self):
        stream = random_dna(100, seed=0)
        pattern = b"AAAAAAAAAA"
        planted = plant_pattern(stream, pattern, 10, mutations=3, seed=1)
        window = planted[10:20]
        mismatches = sum(1 for a, b in zip(window, pattern) if a != b)
        assert mismatches == 3
        assert set(window) <= set(DNA_ALPHABET)

    def test_plant_bounds(self):
        with pytest.raises(ValueError):
            plant_pattern(b"ACGT", b"AAAAA", 0)
        with pytest.raises(ValueError):
            plant_pattern(b"ACGT", b"AA", -1)


class TestPcap:
    def test_http_structure(self):
        data = synthetic_pcap(100, seed=0)
        assert b"HTTP/1.1" in data
        assert b"Host: " in data
        assert b"\r\n\r\n" in data

    def test_suspicious_tokens_planted(self):
        data = synthetic_pcap(2000, seed=1)
        assert any(token in data for token in SUSPICIOUS_TOKENS)

    def test_deterministic(self):
        assert synthetic_pcap(20, seed=4) == synthetic_pcap(20, seed=4)


class TestDiskImage:
    def test_file_makers_have_magics(self):
        rng = random.Random(0)
        assert make_png_like(rng).startswith(b"\x89PNG")
        assert make_jpeg_like(rng).startswith(b"\xff\xd8\xff")
        assert make_jpeg_like(rng).endswith(b"\xff\xd9")
        assert make_zip_file(rng).startswith(b"PK\x03\x04")
        assert b"PK\x05\x06" in make_zip_file(rng)
        assert make_mpeg2_stream(rng).startswith(b"\x00\x00\x01\xba")
        assert make_mp4_file(rng)[4:8] == b"ftyp"
        assert make_text_file(rng, 50).isascii()

    def test_ground_truth_offsets(self):
        image = build_disk_image(["png", "zip", "text"], seed=2)
        assert isinstance(image, DiskImage)
        for entry in image.entries:
            blob = image.data[entry.offset : entry.offset + entry.length]
            assert len(blob) == entry.length
            if entry.kind == "png":
                assert blob.startswith(b"\x89PNG")
            if entry.kind == "zip":
                assert blob.startswith(b"PK\x03\x04")

    def test_inserts_placed_and_tracked(self):
        image = build_disk_image(
            ["text", "text"], seed=3, inserts=[("virus:X", b"\xde\xad\xbe\xef")]
        )
        entry = next(e for e in image.entries if e.kind == "virus:X")
        assert image.data[entry.offset : entry.offset + 4] == b"\xde\xad\xbe\xef"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_disk_image(["floppy"], seed=0)


class TestCorpus:
    def test_token_pairs(self):
        corpus = generate_tagged_corpus(50, seed=0)
        assert len(corpus) == 100

    def test_tag_statistics_nonuniform(self):
        """The bigram model must produce skewed tag contexts."""
        corpus = generate_tagged_corpus(5000, seed=1)
        tags = corpus[1::2]
        from collections import Counter

        counts = Counter(tags)
        assert max(counts.values()) > 2 * min(counts.values())


class TestPcapLoader:
    """libpcap container round-trip; malformed files fail typed."""

    def test_round_trip(self, tmp_path):
        from repro.inputs.pcap import load_pcap, save_pcap, synthetic_packets

        packets = synthetic_packets(40, seed=2)
        path = save_pcap(tmp_path / "t.pcap", packets)
        assert load_pcap(path) == packets

    def test_big_endian_accepted(self, tmp_path):
        import struct

        from repro.inputs.pcap import PCAP_MAGIC, load_pcap

        path = tmp_path / "be.pcap"
        payload = b"\xde\xad\xbe\xef"
        path.write_bytes(
            struct.pack(">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, 1)
            + struct.pack(">IIII", 0, 0, len(payload), len(payload))
            + payload
        )
        assert load_pcap(path) == [payload]

    @pytest.mark.parametrize(
        "mutate,expected_offset",
        [
            (lambda raw: raw[:12], 12),  # short global header
            (lambda raw: b"\x00" * len(raw), 0),  # bad magic
            (lambda raw: raw[:-3], None),  # truncated final packet
        ],
    )
    def test_malformed_raises_input_error(self, tmp_path, mutate, expected_offset):
        from repro.errors import InputError
        from repro.inputs.pcap import load_pcap, save_pcap, synthetic_packets

        path = save_pcap(tmp_path / "t.pcap", synthetic_packets(5, seed=0))
        path.write_bytes(mutate(path.read_bytes()))
        with pytest.raises(InputError) as info:
            load_pcap(path)
        assert info.value.path == str(path)
        if expected_offset is not None:
            assert info.value.offset == expected_offset


class TestCorpusLoader:
    def test_round_trip(self, tmp_path):
        from repro.inputs.corpus import generate_tagged_corpus, load_tagged_corpus

        stream = generate_tagged_corpus(500, seed=3)
        path = tmp_path / "c.bin"
        path.write_bytes(stream)
        assert load_tagged_corpus(path) == stream

    def test_odd_length_fails_typed(self, tmp_path):
        from repro.errors import InputError
        from repro.inputs.corpus import generate_tagged_corpus, load_tagged_corpus

        path = tmp_path / "c.bin"
        path.write_bytes(generate_tagged_corpus(10, seed=0) + b"\x01")
        with pytest.raises(InputError) as info:
            load_tagged_corpus(path)
        assert "odd stream length" in str(info.value)

    @pytest.mark.parametrize("position,bad_byte", [(8, 0), (8, 255), (9, 60)])
    def test_out_of_range_symbol_fails_at_offset(self, tmp_path, position, bad_byte):
        from repro.errors import InputError
        from repro.inputs.corpus import generate_tagged_corpus, load_tagged_corpus

        stream = bytearray(generate_tagged_corpus(20, seed=1))
        stream[position] = bad_byte
        path = tmp_path / "c.bin"
        path.write_bytes(bytes(stream))
        with pytest.raises(InputError) as info:
            load_tagged_corpus(path)
        assert info.value.offset == position


class TestCarver:
    def test_recovers_ground_truth(self):
        from repro.inputs.diskimage import build_disk_image, carve

        image = build_disk_image(
            ["png", "zip", "jpeg", "mp4", "mpeg2", "png"], seed=9
        )
        carved = {(e.offset, e.kind) for e in carve(image.data)}
        truth = {(e.offset, e.kind) for e in image.entries if e.kind != "text"}
        assert truth <= carved

    def test_load_disk_image_round_trip(self, tmp_path):
        from repro.inputs.diskimage import build_disk_image, load_disk_image

        image = build_disk_image(["zip", "png"], seed=4)
        path = tmp_path / "img.bin"
        path.write_bytes(image.data)
        loaded = load_disk_image(path)
        assert loaded.data == image.data
        assert any(e.kind == "zip" for e in loaded.entries)

    def test_truncated_zip_fails_typed(self, tmp_path):
        from repro.errors import InputError
        from repro.inputs.diskimage import build_disk_image, carve

        image = build_disk_image(["text", "zip"], seed=5)
        zip_entry = next(e for e in image.entries if e.kind == "zip")
        truncated = image.data[: zip_entry.offset + 18]
        with pytest.raises(InputError) as info:
            carve(truncated, path="img.bin")
        assert info.value.path == "img.bin"
        assert info.value.offset >= zip_entry.offset

    def test_zip_entry_overrunning_image_fails_typed(self):
        import struct

        from repro.errors import InputError
        from repro.inputs.diskimage import carve

        header = struct.pack(
            "<IHHHHHIIIHH", 0x04034B50, 20, 0, 0, 0, 0, 0, 10_000, 10_000, 5, 0
        )
        with pytest.raises(InputError) as info:
            carve(header + b"x.txt" + b"short", path="<memory>")
        assert "remain" in str(info.value)

    def test_png_missing_trailer_fails_typed(self):
        from repro.errors import InputError
        from repro.inputs.diskimage import carve

        with pytest.raises(InputError):
            carve(b"\x89PNG\r\n\x1a\n" + b"\x00" * 64)
