"""Direct tests for the input stimulus generators."""

import random

import pytest

from repro.inputs.corpus import generate_tagged_corpus
from repro.inputs.diskimage import (
    DiskImage,
    build_disk_image,
    make_jpeg_like,
    make_mp4_file,
    make_mpeg2_stream,
    make_png_like,
    make_text_file,
    make_zip_file,
)
from repro.inputs.dna import DNA_ALPHABET, plant_pattern, random_dna, random_dna_patterns
from repro.inputs.pcap import SUSPICIOUS_TOKENS, synthetic_pcap


class TestDNA:
    def test_alphabet(self):
        data = random_dna(500, seed=0)
        assert set(data) <= set(DNA_ALPHABET)
        assert len(data) == 500

    def test_deterministic(self):
        assert random_dna(100, seed=1) == random_dna(100, seed=1)
        assert random_dna(100, seed=1) != random_dna(100, seed=2)

    def test_patterns(self):
        patterns = random_dna_patterns(5, 18, seed=3)
        assert len(patterns) == 5
        assert all(len(p) == 18 for p in patterns)
        assert len(set(patterns)) == 5

    def test_plant_exact(self):
        stream = random_dna(100, seed=0)
        planted = plant_pattern(stream, b"ACGTACGT", 10)
        assert planted[10:18] == b"ACGTACGT"
        assert planted[:10] == stream[:10]

    def test_plant_with_mutations(self):
        stream = random_dna(100, seed=0)
        pattern = b"AAAAAAAAAA"
        planted = plant_pattern(stream, pattern, 10, mutations=3, seed=1)
        window = planted[10:20]
        mismatches = sum(1 for a, b in zip(window, pattern) if a != b)
        assert mismatches == 3
        assert set(window) <= set(DNA_ALPHABET)

    def test_plant_bounds(self):
        with pytest.raises(ValueError):
            plant_pattern(b"ACGT", b"AAAAA", 0)
        with pytest.raises(ValueError):
            plant_pattern(b"ACGT", b"AA", -1)


class TestPcap:
    def test_http_structure(self):
        data = synthetic_pcap(100, seed=0)
        assert b"HTTP/1.1" in data
        assert b"Host: " in data
        assert b"\r\n\r\n" in data

    def test_suspicious_tokens_planted(self):
        data = synthetic_pcap(2000, seed=1)
        assert any(token in data for token in SUSPICIOUS_TOKENS)

    def test_deterministic(self):
        assert synthetic_pcap(20, seed=4) == synthetic_pcap(20, seed=4)


class TestDiskImage:
    def test_file_makers_have_magics(self):
        rng = random.Random(0)
        assert make_png_like(rng).startswith(b"\x89PNG")
        assert make_jpeg_like(rng).startswith(b"\xff\xd8\xff")
        assert make_jpeg_like(rng).endswith(b"\xff\xd9")
        assert make_zip_file(rng).startswith(b"PK\x03\x04")
        assert b"PK\x05\x06" in make_zip_file(rng)
        assert make_mpeg2_stream(rng).startswith(b"\x00\x00\x01\xba")
        assert make_mp4_file(rng)[4:8] == b"ftyp"
        assert make_text_file(rng, 50).isascii()

    def test_ground_truth_offsets(self):
        image = build_disk_image(["png", "zip", "text"], seed=2)
        assert isinstance(image, DiskImage)
        for entry in image.entries:
            blob = image.data[entry.offset : entry.offset + entry.length]
            assert len(blob) == entry.length
            if entry.kind == "png":
                assert blob.startswith(b"\x89PNG")
            if entry.kind == "zip":
                assert blob.startswith(b"PK\x03\x04")

    def test_inserts_placed_and_tracked(self):
        image = build_disk_image(
            ["text", "text"], seed=3, inserts=[("virus:X", b"\xde\xad\xbe\xef")]
        )
        entry = next(e for e in image.entries if e.kind == "virus:X")
        assert image.data[entry.offset : entry.offset + 4] == b"\xde\xad\xbe\xef"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_disk_image(["floppy"], seed=0)


class TestCorpus:
    def test_token_pairs(self):
        corpus = generate_tagged_corpus(50, seed=0)
        assert len(corpus) == 100

    def test_tag_statistics_nonuniform(self):
        """The bigram model must produce skewed tag contexts."""
        corpus = generate_tagged_corpus(5000, seed=1)
        tags = corpus[1::2]
        from collections import Counter

        counts = Counter(tags)
        assert max(counts.values()) > 2 * min(counts.values())
