"""MNRL/ANML serialization round-trip tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Automaton, CharSet, CounterMode, StartMode
from repro.engines import ReferenceEngine
from repro.errors import ReproError
from repro.io import from_anml, from_mnrl, mnrl_dumps, mnrl_loads, to_anml, to_mnrl
from repro.regex import compile_ruleset


def sample_automaton():
    automaton, _ = compile_ruleset([(1, "ab+c"), (2, "[x-z]{2}")])
    return automaton


def counter_automaton():
    a = Automaton("counted")
    a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
    a.add_counter("c", 3, mode=CounterMode.ROLLOVER, report=True, report_code=9)
    a.add_edge("s", "c")
    a.add_ste("t", CharSet.from_chars("b"), report=True, report_code=2)
    a.add_edge("c", "t")
    return a


def reports(automaton, data):
    return [
        (r.offset, str(r.code))
        for r in ReferenceEngine(automaton).run(data).reports
    ]


DATA = b"abbcxyzaaabaaab"


class TestMNRL:
    def test_roundtrip_structure(self):
        original = sample_automaton()
        restored = from_mnrl(to_mnrl(original))
        assert restored.n_states == original.n_states
        assert restored.n_edges == original.n_edges
        assert sorted(restored.idents()) == sorted(original.idents())

    def test_roundtrip_semantics(self):
        original = sample_automaton()
        restored = mnrl_loads(mnrl_dumps(original))
        assert reports(restored, DATA) == reports(original, DATA)

    def test_counter_roundtrip(self):
        original = counter_automaton()
        restored = from_mnrl(to_mnrl(original))
        counter = restored["c"]
        assert counter.target == 3
        assert counter.mode is CounterMode.ROLLOVER
        assert reports(restored, DATA) == reports(original, DATA)

    def test_document_shape(self):
        doc = to_mnrl(sample_automaton())
        assert set(doc) == {"id", "nodes"}
        node = doc["nodes"][0]
        assert node["type"] == "hState"
        assert "symbolSet" in node["attributes"]
        assert node["outputDefs"][0]["portId"] == "o"

    def test_bad_node_type_rejected(self):
        with pytest.raises(ReproError):
            from_mnrl({"id": "x", "nodes": [{"id": "n", "type": "pdState"}]})

    def test_bad_symbol_set_rejected(self):
        doc = {
            "id": "x",
            "nodes": [
                {
                    "id": "n",
                    "type": "hState",
                    "attributes": {"symbolSet": "abc"},
                }
            ],
        }
        with pytest.raises(ReproError):
            from_mnrl(doc)


class TestANML:
    def test_roundtrip_structure(self):
        original = sample_automaton()
        restored = from_anml(to_anml(original))
        assert restored.n_states == original.n_states
        assert restored.n_edges == original.n_edges

    def test_roundtrip_semantics(self):
        original = sample_automaton()
        restored = from_anml(to_anml(original))
        assert reports(restored, DATA) == reports(original, DATA)

    def test_counter_roundtrip(self):
        original = counter_automaton()
        restored = from_anml(to_anml(original))
        assert restored["c"].mode is CounterMode.ROLLOVER
        assert restored["c"].report_code == 9
        assert reports(restored, DATA) == reports(original, DATA)

    def test_start_modes_roundtrip(self):
        a = Automaton()
        a.add_ste("anch", CharSet.from_chars("a"), start=StartMode.START_OF_DATA)
        a.add_ste("all", CharSet.from_chars("b"), start=StartMode.ALL_INPUT)
        a.add_ste("mid", CharSet.from_chars("c"))
        a.add_edge("anch", "mid")
        restored = from_anml(to_anml(a))
        assert restored["anch"].start is StartMode.START_OF_DATA
        assert restored["all"].start is StartMode.ALL_INPUT
        assert restored["mid"].start is StartMode.NONE

    def test_xml_is_anml_shaped(self):
        text = to_anml(sample_automaton())
        assert text.startswith("<anml")
        assert "state-transition-element" in text
        assert "activate-on-match" in text

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            from_anml("<anml version='1.0'></anml>")
        with pytest.raises(ReproError):
            from_anml(
                "<anml><automata-network id='x'><mystery id='m'/>"
                "</automata-network></anml>"
            )


charset_strategy = st.frozensets(st.integers(0, 255), min_size=1, max_size=6).map(
    CharSet
)


@st.composite
def automata(draw):
    n = draw(st.integers(1, 6))
    a = Automaton("prop")
    for i in range(n):
        a.add_ste(
            f"s{i}",
            draw(charset_strategy),
            start=draw(st.sampled_from(list(StartMode))),
            report=draw(st.booleans()),
            report_code=draw(st.integers(0, 9)),
        )
    for _ in range(draw(st.integers(0, 8))):
        a.add_edge(
            f"s{draw(st.integers(0, n - 1))}", f"s{draw(st.integers(0, n - 1))}"
        )
    return a


@settings(max_examples=80, deadline=None)
@given(automaton=automata(), data=st.binary(max_size=20))
def test_mnrl_roundtrip_property(automaton, data):
    restored = mnrl_loads(mnrl_dumps(automaton))
    assert reports(restored, data) == reports(automaton, data)


@settings(max_examples=80, deadline=None)
@given(automaton=automata(), data=st.binary(max_size=20))
def test_anml_roundtrip_property(automaton, data):
    restored = from_anml(to_anml(automaton))
    assert reports(restored, data) == reports(automaton, data)


class TestResetEdgeSerialization:
    @staticmethod
    def run_automaton():
        from repro.core.extended import exact_run_automaton

        return exact_run_automaton(CharSet.from_chars("a"), 3, report_code="r")

    def test_mnrl_roundtrip_with_reset(self):
        original = self.run_automaton()
        restored = mnrl_loads(mnrl_dumps(original))
        assert list(restored.reset_edges()) == [("B", "C")]
        assert reports(restored, b"aabaaa") == reports(original, b"aabaaa")

    def test_anml_roundtrip_with_reset(self):
        original = self.run_automaton()
        restored = from_anml(to_anml(original))
        assert list(restored.reset_edges()) == [("B", "C")]
        assert reports(restored, b"aaaabaaa") == reports(original, b"aaaabaaa")


class TestDotExport:
    def test_renders_states_and_edges(self):
        from repro.io import to_dot
        from repro.regex import compile_regex

        dot = to_dot(compile_regex("a[bc]d", report_code=1))
        assert dot.startswith("digraph")
        assert "shape=box" in dot
        assert "peripheries=2" in dot  # reporting state
        assert "->" in dot

    def test_counter_and_reset_rendering(self):
        from repro.core.extended import exact_run_automaton
        from repro.io import to_dot

        dot = to_dot(exact_run_automaton(CharSet.from_chars("a"), 4))
        assert "shape=diamond" in dot
        assert 'label="rst"' in dot
        assert "count>=4" in dot

    def test_size_guard(self):
        from repro.io import to_dot
        from repro.regex import compile_regex

        automaton = compile_regex("a{100}")
        with pytest.raises(ValueError):
            to_dot(automaton, max_states=50)
        assert to_dot(automaton, max_states=200)

    def test_hostile_names_and_charsets_escape_cleanly(self):
        from repro.core.automaton import Automaton
        from repro.io import to_dot

        a = Automaton('evil"\\name\nwith\x00ctl')
        a.add_ste('s"1', CharSet.from_chars(b'"\\\x00\x01\n'), report=True,
                  report_code=1)
        a.add_ste("s\n2", CharSet.from_ranges([(0, 31)]))
        a.add_edge('s"1', "s\n2")
        dot = to_dot(a)
        # raw control bytes would break Graphviz's quoted-string lexer
        for line in dot.splitlines():
            assert all(ch.isprintable() for ch in line), repr(line)
        # every quote inside a quoted string is escaped (even quote count
        # per line once escapes are removed)
        for line in dot.splitlines():
            stripped = line.replace("\\\\", "").replace('\\"', "")
            assert stripped.count('"') % 2 == 0, repr(line)
        assert "\\\\x00" in dot  # NUL rendered as literal \x00 text

    def test_charset_label_truncation_never_splits_escape(self):
        import re

        from repro.io.dot import _charset_label

        wide = CharSet.from_ranges([(0, 254)])  # repr full of \xNN escapes
        for max_len in range(4, 24):
            label = _charset_label(wide, max_len=max_len)
            assert label.endswith("…") or len(label) <= max_len
            body = label.rstrip("…")
            assert not re.search(r"\\(x[0-9a-fA-F]?)?$", body), (max_len, label)
