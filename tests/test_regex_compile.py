"""Glushkov compilation tests, including a differential oracle against re.

The key invariant: for unanchored patterns, the compiled automaton reports
at offset t iff some substring ending at t matches the regex; for anchored
patterns, iff the prefix data[:t+1] has a suffix-free match from position 0.
Python's re module (in bytes/ASCII mode) is the oracle.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import ReferenceEngine, VectorEngine
from repro.errors import RegexError
from repro.regex import compile_regex, compile_ruleset


def reporting_offsets(pattern, data, flags="", anchored=None):
    automaton = compile_regex(pattern, flags, anchored=anchored)
    return ReferenceEngine(automaton).run(data).reporting_cycles()


def oracle_offsets(pattern, data, anchored, re_flags=0):
    """Offsets t such that some match of pattern ends at t (inclusive)."""
    compiled = re.compile(pattern.encode("latin-1"), re_flags)
    out = set()
    for t in range(len(data)):
        starts = [0] if anchored else range(t + 1)
        for i in starts:
            m = compiled.fullmatch(data, i, t + 1)
            if m is not None and m.end() == t + 1:
                out.add(t)
                break
    return out


class TestBasicCompilation:
    def test_literal(self):
        assert reporting_offsets("abc", b"xxabcxabc") == {4, 8}

    def test_alternation(self):
        assert reporting_offsets("cat|dog", b"a cat and a dog") == {4, 14}

    def test_star(self):
        # ab*c: matches ac, abc, abbc...
        assert reporting_offsets("ab*c", b"ac abc abbc x") == {1, 5, 10}

    def test_plus(self):
        assert reporting_offsets("ab+c", b"ac abc abbc") == {5, 10}

    def test_optional(self):
        assert reporting_offsets("colou?r", b"color colour") == {4, 11}

    def test_counted(self):
        assert reporting_offsets("a{3}", b"aaaa") == {2, 3}
        assert reporting_offsets("a{2,3}", b"aaaa") == {1, 2, 3}

    def test_counted_unbounded(self):
        assert reporting_offsets("ba{2,}", b"baaa") == {2, 3}

    def test_class_and_dot(self):
        assert reporting_offsets("[0-9].[0-9]", b"1x2 3\n4") == {2, 4}

    def test_anchored(self):
        assert reporting_offsets("^ab", b"abab") == {1}
        assert reporting_offsets("ab", b"abab") == {1, 3}

    def test_anchor_override(self):
        assert reporting_offsets("ab", b"abab", anchored=True) == {1}

    def test_caseless(self):
        assert reporting_offsets("abc", b"ABC abc AbC", flags="i") == {2, 6, 10}

    def test_nullable_pattern_reports_nonempty_only(self):
        # a* matches empty everywhere; we only report nonempty matches.
        assert reporting_offsets("a*", b"ba") == {1}

    def test_empty_only_pattern_rejected(self):
        with pytest.raises(RegexError):
            compile_regex("()")

    def test_report_code_defaults_to_pattern(self):
        automaton = compile_regex("ab")
        engine = ReferenceEngine(automaton)
        assert engine.run(b"ab").reports[0].code == "ab"

    def test_nested_groups(self):
        assert reporting_offsets("(a(b|c))+d", b"abacd") == {4}

    def test_state_count_equals_positions(self):
        assert compile_regex("ab[cd]e").n_states == 4
        # counted repetitions expand positions
        assert compile_regex("a{4}").n_states == 4


class TestRuleset:
    def test_union_reports_distinct_codes(self):
        automaton, rejected = compile_ruleset([(1, "ab"), (2, "bc")])
        assert rejected == []
        reports = ReferenceEngine(automaton).run(b"abc").reports
        assert {(r.offset, r.code) for r in reports} == {(1, 1), (2, 2)}

    def test_skip_unsupported(self):
        automaton, rejected = compile_ruleset(
            [(1, "ok"), (2, r"(bad)\1"), (3, "/pcre/i")], skip_unsupported=True
        )
        assert [code for code, _ in rejected] == [2]
        assert automaton.n_states == 2 + 4

    def test_unsupported_raises_without_flag(self):
        with pytest.raises(RegexError):
            compile_ruleset([(1, r"(a)\1")])


# -- differential testing against Python's re ------------------------------

ATOMS = ["a", "b", "c", ".", "[ab]", "[^a]", r"\d"]


@st.composite
def regex_strings(draw, depth=3):
    if depth == 0:
        return draw(st.sampled_from(ATOMS))
    kind = draw(st.sampled_from(["atom", "concat", "alt", "star", "plus", "opt", "rep"]))
    if kind == "atom":
        return draw(st.sampled_from(ATOMS))
    if kind == "concat":
        return draw(regex_strings(depth=depth - 1)) + draw(regex_strings(depth=depth - 1))
    if kind == "alt":
        left = draw(regex_strings(depth=depth - 1))
        right = draw(regex_strings(depth=depth - 1))
        return f"(?:{left}|{right})"
    inner = draw(regex_strings(depth=depth - 1))
    if kind == "star":
        return f"(?:{inner})*"
    if kind == "plus":
        return f"(?:{inner})+"
    if kind == "opt":
        return f"(?:{inner})?"
    lo = draw(st.integers(0, 2))
    hi = draw(st.integers(lo, lo + 2))
    return f"(?:{inner}){{{lo},{hi}}}"


input_bytes = st.binary(max_size=14).map(
    lambda raw: bytes(b"ab1c"[b % 4] for b in raw)
)


@settings(max_examples=200, deadline=None)
@given(pattern=regex_strings(), data=input_bytes, anchored=st.booleans())
def test_matches_python_re_oracle(pattern, data, anchored):
    try:
        automaton = compile_regex(pattern, anchored=anchored)
    except RegexError:
        # pattern matches only the empty string (e.g. (?:a){0,0}); skip
        return
    got = ReferenceEngine(automaton).run(data).reporting_cycles()
    # Exclude empty matches from the oracle: ours never reports them.
    expected = {
        t
        for t in oracle_offsets(pattern, data, anchored)
    }
    # The oracle's fullmatch(i, t+1) with i == t+1 would be an empty match;
    # oracle_offsets never produces those because i <= t.
    assert got == expected


@settings(max_examples=100, deadline=None)
@given(pattern=regex_strings(), data=input_bytes)
def test_vector_engine_on_compiled_regexes(pattern, data):
    try:
        automaton = compile_regex(pattern)
    except RegexError:
        return
    ref = ReferenceEngine(automaton).run(data)
    vec = VectorEngine(automaton).run(data)
    assert vec.reports == ref.reports
