"""Shared pytest configuration: the tier-1 / long-campaign split.

Two markers partition the suite:

* ``slow`` — heavier-than-average tests (multi-second builds/training).
  They still run by default; ``pytest -m "not slow"`` is the quick dev
  loop.
* ``fuzz`` — long randomized conformance campaigns.  These are *skipped*
  unless explicitly selected (``pytest -m fuzz``), so the default tier-1
  run stays fast while the fuzz tier can run for minutes.

See ``docs/TESTING.md`` for the full testing workflow.
"""

import pytest


def pytest_collection_modifyitems(config, items):
    marker_expr = config.getoption("-m", default="") or ""
    if "fuzz" in marker_expr:
        return  # explicitly selected: let the campaign run
    skip_fuzz = pytest.mark.skip(
        reason="long fuzz campaign; select explicitly with: pytest -m fuzz"
    )
    for item in items:
        if "fuzz" in item.keywords:
            item.add_marker(skip_fuzz)
