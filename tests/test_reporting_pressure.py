"""Reporting-bottleneck analysis tests (Section V / HPCA'18 model)."""

import pytest

from repro.benchmarks.snort import build_snort_automaton
from repro.engines import ReportEvent, RunResult, VectorEngine
from repro.inputs.pcap import synthetic_pcap
from repro.snort import generate_ruleset
from repro.stats import analyze_report_pressure


def run_with_reports(offsets, cycles):
    return RunResult(
        reports=[ReportEvent(o, f"s{i}") for i, o in enumerate(offsets)],
        cycles=cycles,
    )


class TestPressureModel:
    def test_no_reports(self):
        pressure = analyze_report_pressure(run_with_reports([], 1000))
        assert pressure.total_reports == 0
        assert pressure.overflow_fraction == 0.0
        assert pressure.stall_overhead == 0.0

    def test_window_counting(self):
        result = run_with_reports([0, 1, 255, 256, 600], 1000)
        pressure = analyze_report_pressure(result, window_size=256, budget_per_window=2)
        assert pressure.n_windows == 4
        assert pressure.max_window_reports == 3  # offsets 0,1,255
        assert pressure.overflowing_windows == 1

    def test_stall_accounting(self):
        # 10 reports in one window with budget 3 -> ceil(10/3)-1 = 3 stalls
        result = run_with_reports(list(range(10)), 256)
        pressure = analyze_report_pressure(result, window_size=256, budget_per_window=3)
        assert pressure.stall_windows == 3
        assert pressure.stall_overhead == pytest.approx(3.0)

    def test_within_budget_no_stall(self):
        result = run_with_reports([0, 300, 600], 1000)
        pressure = analyze_report_pressure(result, window_size=256, budget_per_window=4)
        assert pressure.stall_windows == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_report_pressure(run_with_reports([], 10), window_size=0)
        with pytest.raises(ValueError):
            analyze_report_pressure(run_with_reports([], 10), budget_per_window=0)

    def test_mean_reports(self):
        result = run_with_reports([0, 1, 2, 3], 512)
        pressure = analyze_report_pressure(result, window_size=256)
        assert pressure.mean_reports_per_window == 2.0


class TestSnortPressure:
    """The Section V story quantified: the unfiltered ruleset causes output
    bottlenecks; the filtered benchmark drains comfortably."""

    def test_filtering_relieves_bottleneck(self):
        rules = generate_ruleset(120, seed=3)
        data = synthetic_pcap(120, seed=5)
        unfiltered, _, _ = build_snort_automaton(
            rules, exclude_modifier_rules=False, exclude_isdataat_rules=False
        )
        filtered, _, _ = build_snort_automaton(rules)
        p_unfiltered = analyze_report_pressure(
            VectorEngine(unfiltered).run(data)
        )
        p_filtered = analyze_report_pressure(VectorEngine(filtered).run(data))
        assert p_unfiltered.overflow_fraction > 0.5
        assert p_filtered.stall_overhead < p_unfiltered.stall_overhead / 2
