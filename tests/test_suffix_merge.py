"""Suffix-merge and bidirectional-merge optimization tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Automaton, CharSet, StartMode
from repro.core.extended import exact_run_automaton
from repro.engines import ReferenceEngine
from repro.regex import compile_ruleset
from repro.transforms import merge_common_prefixes
from repro.transforms.suffix_merge import merge_bidirectional, merge_common_suffixes


def report_sets(automaton, data):
    return sorted(
        {(r.offset, repr(r.code)) for r in ReferenceEngine(automaton).run(data).reports}
    )


class TestSuffixMerge:
    def test_shared_suffix_collapses(self):
        automaton, _ = compile_ruleset([(1, "xabc"), (1, "yabc")])
        merged, stats = merge_common_suffixes(automaton)
        # 'abc' tails share (same code); the x/y heads stay distinct
        assert merged.n_states == 5
        assert stats.states_before == 8

    def test_distinct_codes_keep_suffixes_apart(self):
        automaton, _ = compile_ruleset([(1, "xab"), (2, "yab")])
        merged, _ = merge_common_suffixes(automaton)
        # reporting 'b' states carry different codes: no merge there, and
        # therefore none upstream either
        assert merged.n_states == 6

    def test_semantics_preserved(self):
        automaton, _ = compile_ruleset([(5, "cart"), (5, "dart"), (6, "part")])
        merged, stats = merge_common_suffixes(automaton)
        assert stats.states_after < stats.states_before
        data = b"a cart a dart a part"
        assert report_sets(merged, data) == report_sets(automaton, data)

    def test_counters_not_merged(self):
        a = exact_run_automaton(CharSet.from_chars("a"), 3)
        b = Automaton.union([a, exact_run_automaton(CharSet.from_chars("a"), 3)])
        merged, _ = merge_common_suffixes(b)
        assert sum(1 for _ in merged.counters()) == 2
        # reset wiring survives
        assert len(list(merged.reset_edges())) == 2

    @settings(max_examples=60, deadline=None)
    @given(
        patterns=st.lists(
            st.text(alphabet="abc", min_size=1, max_size=5), min_size=1, max_size=6
        ),
        data=st.binary(max_size=25).map(lambda raw: bytes(b"abc"[x % 3] for x in raw)),
        same_code=st.booleans(),
    )
    def test_suffix_merge_preserves_report_sets(self, patterns, data, same_code):
        rules = [(0 if same_code else i, p) for i, p in enumerate(patterns)]
        automaton, _ = compile_ruleset(rules)
        merged, stats = merge_common_suffixes(automaton)
        assert stats.states_after <= stats.states_before
        assert report_sets(merged, data) == report_sets(automaton, data)


class TestBidirectional:
    def test_beats_either_single_pass(self):
        # shared prefixes AND suffixes: 'ab...yz' family
        rules = [(9, "abMyz"), (9, "abNyz"), (9, "abOyz")]
        automaton, _ = compile_ruleset(rules)
        prefix_only, _ = merge_common_prefixes(automaton)
        suffix_only, _ = merge_common_suffixes(automaton)
        both, stats = merge_bidirectional(automaton)
        assert both.n_states < prefix_only.n_states
        assert both.n_states < suffix_only.n_states
        assert both.n_states == 7  # a,b shared; M,N,O; y,z shared

    def test_fixpoint_reached(self):
        automaton, _ = compile_ruleset([(1, "aaaa"), (1, "aaab")])
        merged, _ = merge_bidirectional(automaton)
        again, stats = merge_bidirectional(merged)
        assert stats.states_after == stats.states_before

    @settings(max_examples=50, deadline=None)
    @given(
        patterns=st.lists(
            st.text(alphabet="ab", min_size=1, max_size=5), min_size=1, max_size=5
        ),
        data=st.binary(max_size=25).map(lambda raw: bytes(b"ab"[x % 2] for x in raw)),
    )
    def test_bidirectional_preserves_report_sets(self, patterns, data):
        automaton, _ = compile_ruleset(list(enumerate(patterns)))
        merged, _ = merge_bidirectional(automaton)
        assert report_sets(merged, data) == report_sets(automaton, data)
