"""Property-based cross-engine equivalence.

The three CPU engines implement one execution model; hypothesis generates
random automata and random inputs and asserts identical report streams and
active-set traces.  This is the library's central correctness invariant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Automaton, CharSet, CounterMode, StartMode
from repro.engines import LazyDFAEngine, ReferenceEngine, VectorEngine

ALPHABET = b"abcd"


@st.composite
def random_automata(draw, max_states=8, with_counters=False):
    n = draw(st.integers(1, max_states))
    a = Automaton("random")
    for i in range(n):
        symbols = draw(
            st.frozensets(st.sampled_from(list(ALPHABET)), min_size=0, max_size=4)
        )
        start = draw(
            st.sampled_from(
                [StartMode.NONE, StartMode.START_OF_DATA, StartMode.ALL_INPUT]
            )
        )
        report = draw(st.booleans())
        a.add_ste(f"s{i}", CharSet(symbols), start=start, report=report, report_code=i)
    n_edges = draw(st.integers(0, 2 * n))
    for _ in range(n_edges):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        a.add_edge(f"s{src}", f"s{dst}")
    if with_counters:
        n_counters = draw(st.integers(1, 2))
        for c in range(n_counters):
            mode = draw(st.sampled_from(list(CounterMode)))
            target = draw(st.integers(1, 4))
            report = draw(st.booleans())
            a.add_counter(f"c{c}", target, mode=mode, report=report, report_code=f"c{c}")
            feeders = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=3))
            for f in feeders:
                a.add_edge(f"s{f}", f"c{c}")
            enables = draw(st.sets(st.integers(0, n - 1), max_size=2))
            for e in enables:
                a.add_edge(f"c{c}", f"s{e}")
    return a


inputs = st.binary(max_size=40).map(
    lambda raw: bytes(ALPHABET[b % len(ALPHABET)] for b in raw)
)


@settings(max_examples=150, deadline=None)
@given(automaton=random_automata(), data=inputs)
def test_three_engines_agree(automaton, data):
    results = [
        engine_cls(automaton).run(data, record_active=True)
        for engine_cls in (ReferenceEngine, VectorEngine, LazyDFAEngine)
    ]
    baseline = results[0]
    for other in results[1:]:
        assert other.reports == baseline.reports
        assert other.cycles == baseline.cycles
        assert other.active_per_cycle == baseline.active_per_cycle


@settings(max_examples=100, deadline=None)
@given(automaton=random_automata(with_counters=True), data=inputs)
def test_counter_engines_agree(automaton, data):
    ref = ReferenceEngine(automaton).run(data, record_active=True)
    vec = VectorEngine(automaton).run(data, record_active=True)
    assert vec.reports == ref.reports
    assert vec.active_per_cycle == ref.active_per_cycle


@settings(max_examples=50, deadline=None)
@given(automaton=random_automata(), data=inputs)
def test_runs_are_deterministic(automaton, data):
    eng = VectorEngine(automaton)
    assert eng.run(data).reports == eng.run(data).reports


@settings(max_examples=50, deadline=None)
@given(automaton=random_automata(), data=inputs, split=st.integers(0, 40))
def test_dfa_memoisation_is_input_independent(automaton, data, split):
    """Running other inputs first must not change results (memo soundness)."""
    split = min(split, len(data))
    eng = LazyDFAEngine(automaton)
    eng.run(data[split:])  # warm the memo with a different stream
    fresh = LazyDFAEngine(automaton).run(data)
    assert eng.run(data).reports == fresh.reports
