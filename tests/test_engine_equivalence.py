"""Property-based cross-engine equivalence.

The CPU engines implement one execution model; hypothesis generates
random automata and random inputs and asserts identical report streams and
active-set traces.  This is the library's central correctness invariant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Automaton, CharSet, CounterMode, StartMode
from repro.engines import BitsetEngine, LazyDFAEngine, ReferenceEngine, VectorEngine

ALPHABET = b"abcd"


@st.composite
def random_automata(draw, max_states=8, with_counters=False):
    n = draw(st.integers(1, max_states))
    a = Automaton("random")
    for i in range(n):
        symbols = draw(
            st.frozensets(st.sampled_from(list(ALPHABET)), min_size=0, max_size=4)
        )
        start = draw(
            st.sampled_from(
                [StartMode.NONE, StartMode.START_OF_DATA, StartMode.ALL_INPUT]
            )
        )
        report = draw(st.booleans())
        a.add_ste(f"s{i}", CharSet(symbols), start=start, report=report, report_code=i)
    n_edges = draw(st.integers(0, 2 * n))
    for _ in range(n_edges):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        a.add_edge(f"s{src}", f"s{dst}")
    if with_counters:
        n_counters = draw(st.integers(1, 2))
        for c in range(n_counters):
            mode = draw(st.sampled_from(list(CounterMode)))
            target = draw(st.integers(1, 4))
            report = draw(st.booleans())
            a.add_counter(f"c{c}", target, mode=mode, report=report, report_code=f"c{c}")
            feeders = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=3))
            for f in feeders:
                a.add_edge(f"s{f}", f"c{c}")
            enables = draw(st.sets(st.integers(0, n - 1), max_size=2))
            for e in enables:
                a.add_edge(f"c{c}", f"s{e}")
    return a


inputs = st.binary(max_size=40).map(
    lambda raw: bytes(ALPHABET[b % len(ALPHABET)] for b in raw)
)


@settings(max_examples=150, deadline=None)
@given(automaton=random_automata(), data=inputs)
def test_engines_agree(automaton, data):
    results = [
        engine_cls(automaton).run(data, record_active=True)
        for engine_cls in (ReferenceEngine, VectorEngine, BitsetEngine, LazyDFAEngine)
    ]
    baseline = results[0]
    for other in results[1:]:
        assert other.reports == baseline.reports
        assert other.cycles == baseline.cycles
        assert other.active_per_cycle == baseline.active_per_cycle


@settings(max_examples=100, deadline=None)
@given(automaton=random_automata(with_counters=True), data=inputs)
def test_counter_engines_agree(automaton, data):
    ref = ReferenceEngine(automaton).run(data, record_active=True)
    for engine_cls in (VectorEngine, BitsetEngine):
        other = engine_cls(automaton).run(data, record_active=True)
        assert other.reports == ref.reports
        assert other.active_per_cycle == ref.active_per_cycle


@settings(max_examples=50, deadline=None)
@given(automaton=random_automata(), data=inputs)
def test_runs_are_deterministic(automaton, data):
    eng = VectorEngine(automaton)
    assert eng.run(data).reports == eng.run(data).reports


@settings(max_examples=100, deadline=None)
@given(
    automaton=random_automata(with_counters=True),
    data=inputs,
    chunk=st.integers(1, 7),
)
def test_bitset_streaming_chunks_agree(automaton, data, chunk):
    """feed() boundaries are invisible: anchors, counters and the enabled
    set must carry across chunks exactly as in a single run."""
    ref = ReferenceEngine(automaton).run(data, record_active=True)
    stream = BitsetEngine(automaton).stream(record_active=True)
    reports = []
    for i in range(0, len(data), chunk):
        reports.extend(stream.feed(data[i : i + chunk]))
    reports.sort()
    assert reports == ref.reports
    assert stream.offset == ref.cycles
    assert stream.active_per_cycle == ref.active_per_cycle


@settings(max_examples=100, deadline=None)
@given(automaton=random_automata(with_counters=True), data=inputs)
def test_bitset_block_path_agrees(automaton, data):
    """The byte-word block path is semantically identical to the sparse
    path (the density heuristic may only affect speed, never results)."""
    ref = ReferenceEngine(automaton).run(data, record_active=True)
    stream = BitsetEngine(automaton).stream(record_active=True)
    stream._use_block = True
    reports = stream.feed(data)
    assert reports == ref.reports
    assert stream.active_per_cycle == ref.active_per_cycle


def test_bitset_density_heuristic_switches_paths():
    """A dense always-matching mesh pushes the stream onto the block path;
    a dead stretch of input drops it back to sparse.  Reports agree with
    the reference engine across both switches."""
    a = Automaton("dense")
    a.add_ste("s0", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
    n_dense = 15
    for i in range(n_dense):
        a.add_ste(f"d{i}", CharSet.from_chars("a"), report=(i == 0), report_code=i)
        a.add_edge("s0", f"d{i}")
    for i in range(n_dense):
        for j in range(n_dense):
            a.add_edge(f"d{i}", f"d{j}")
    data = b"a" * 600 + b"b" * 600 + b"a" * 10
    ref = ReferenceEngine(a).run(data)
    stream = BitsetEngine(a).stream()
    assert not stream._use_block
    reports = stream.feed(b"a" * 600)
    assert stream._use_block  # dense stretch: matched count >> cutover
    reports += stream.feed(b"b" * 600)
    assert not stream._use_block  # dead stretch: back to the sparse path
    reports += stream.feed(b"a" * 10)
    reports.sort()
    assert reports == ref.reports


@settings(max_examples=50, deadline=None)
@given(automaton=random_automata(), data=inputs, split=st.integers(0, 40))
def test_dfa_memoisation_is_input_independent(automaton, data, split):
    """Running other inputs first must not change results (memo soundness)."""
    split = min(split, len(data))
    eng = LazyDFAEngine(automaton)
    eng.run(data[split:])  # warm the memo with a different stream
    fresh = LazyDFAEngine(automaton).run(data)
    assert eng.run(data).reports == fresh.reports
