"""End-to-end YARA benchmark tests: compile, scan, wide variant."""

import pytest

from repro.benchmarks.yara_bench import (
    compile_yara_rules,
    generate_malware_corpus,
    generate_yara_ruleset,
    scan,
    string_to_regex,
)
from repro.engines import VectorEngine
from repro.yara import parse_yara
from repro.yara.parser import YaraString


class TestStringToRegex:
    def test_text_string_escaped(self):
        pattern, flags = string_to_regex(YaraString("$a", "text", "a.b c"))
        assert pattern == r"a\x2eb\x20c"
        assert flags == ""

    def test_nocase_flag(self):
        _, flags = string_to_regex(
            YaraString("$a", "text", "abc", frozenset({"nocase"}))
        )
        assert flags == "i"

    def test_hex_string(self):
        pattern, _ = string_to_regex(YaraString("$a", "hex", "9C ?? A1"))
        assert pattern == r"\x9c[\x00-\xff]\xa1"

    def test_regex_string_passthrough(self):
        pattern, _ = string_to_regex(YaraString("$a", "regex", r"ab[0-9]+"))
        assert pattern == r"ab[0-9]+"


class TestCompileAndScan:
    RULES = parse_yara(
        """
        rule TextHit {
            strings:
                $a = "MAGICTOKEN"
            condition: any of them
        }
        rule BothNeeded {
            strings:
                $x = "alphapart"
                $y = { de ad be ef }
            condition: all of them
        }
        """
    )

    def test_rule_fires_on_planted_string(self):
        automaton, rejected = compile_yara_rules(self.RULES)
        assert rejected == []
        verdicts = scan(self.RULES, automaton, b"xx MAGICTOKEN yy")
        assert verdicts == {"TextHit": True, "BothNeeded": False}

    def test_all_of_them_requires_both(self):
        automaton, _ = compile_yara_rules(self.RULES)
        half = b"only alphapart here"
        both = b"alphapart plus \xde\xad\xbe\xef bytes"
        assert scan(self.RULES, automaton, half)["BothNeeded"] is False
        assert scan(self.RULES, automaton, both)["BothNeeded"] is True

    def test_report_codes_are_rule_string_pairs(self):
        automaton, _ = compile_yara_rules(self.RULES)
        reports = VectorEngine(automaton).run(b"MAGICTOKEN").reports
        assert reports[0].code == ("TextHit", "$a")


class TestWideVariant:
    RULES = parse_yara(
        """
        rule WideRule {
            strings:
                $w = "config" wide
                $n = "narrowonly"
            condition: any of them
        }
        """
    )

    def test_wide_benchmark_only_includes_wide_strings(self):
        narrow, _ = compile_yara_rules(self.RULES, wide=False)
        wide, _ = compile_yara_rules(self.RULES, wide=True)
        assert len(wide.connected_components()) == 1
        assert len(narrow.connected_components()) == 2

    def test_wide_matches_interleaved_encoding(self):
        wide, _ = compile_yara_rules(self.RULES, wide=True)
        payload = b"".join(bytes([b, 0]) for b in b"config")
        assert VectorEngine(wide).run(b"xx" + payload).report_count == 1
        assert VectorEngine(wide).run(b"config").report_count == 0

    def test_wide_state_count_doubles_narrow_string(self):
        wide, _ = compile_yara_rules(self.RULES, wide=True)
        assert wide.n_states == 2 * len("config")


class TestSyntheticRuleset:
    def test_generation_deterministic(self):
        assert generate_yara_ruleset(10, seed=3) == generate_yara_ruleset(10, seed=3)

    def test_ruleset_compiles(self):
        rules = generate_yara_ruleset(25, seed=1)
        automaton, rejected = compile_yara_rules(rules)
        assert automaton.n_states > 0
        assert len(rejected) == 0

    def test_planted_rules_detected(self):
        rules = generate_yara_ruleset(20, seed=2)
        automaton, _ = compile_yara_rules(rules)
        corpus, planted = generate_malware_corpus(rules, 8, seed=4)
        assert planted
        verdicts = scan(rules, automaton, corpus)
        for name in planted:
            assert verdicts[name], f"planted rule {name} did not fire"

    def test_unplanted_mostly_silent(self):
        rules = generate_yara_ruleset(20, seed=5)
        automaton, _ = compile_yara_rules(rules)
        corpus, planted = generate_malware_corpus(rules, 4, seed=6)
        verdicts = scan(rules, automaton, corpus)
        fired = {name for name, hit in verdicts.items() if hit}
        false_positives = fired - planted
        # short hex strings can fire by chance; the bulk must be planted
        assert len(false_positives) <= max(2, len(planted))

    def test_wide_corpus_triggers_wide_benchmark(self):
        rules = generate_yara_ruleset(30, seed=7, wide_fraction=0.8)
        wide_auto, _ = compile_yara_rules(rules, wide=True)
        corpus, planted = generate_malware_corpus(
            rules, 10, seed=8, wide=True, plant_fraction=0.9
        )
        result = VectorEngine(wide_auto).run(corpus)
        fired_rules = {code[0] for code in (e.code for e in result.reports)}
        wide_rules_planted = {
            r.name
            for r in rules
            if r.name in planted and any(s.is_wide for s in r.strings)
        }
        assert wide_rules_planted <= fired_rules
