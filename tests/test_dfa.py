"""Ahead-of-time DFA compilation and minimization tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Automaton, CharSet, StartMode
from repro.core.dfa import DFA
from repro.engines import VectorEngine
from repro.errors import CapacityError, EngineError
from repro.regex import compile_regex, compile_ruleset


def nfa_fingerprint(automaton, data):
    return sorted(
        {(r.offset, repr(r.code)) for r in VectorEngine(automaton).run(data).reports}
    )


def dfa_fingerprint(dfa, data):
    return sorted({(r.offset, repr(r.code)) for r in dfa.run(data).reports})


class TestConstruction:
    def test_literal(self):
        dfa = DFA.from_automaton(compile_regex("abc", report_code=1))
        assert dfa_fingerprint(dfa, b"xabcabc") == [(3, "1"), (6, "1")]

    def test_alphabet_compression(self):
        dfa = DFA.from_automaton(compile_regex("ab"))
        # distinct columns: 'a', 'b', everything else
        assert dfa.n_symbol_classes == 3

    def test_rulesets_merge_reports(self):
        automaton, _ = compile_ruleset([(1, "ab"), (2, "b")])
        dfa = DFA.from_automaton(automaton)
        assert dfa_fingerprint(dfa, b"ab") == [(1, "1"), (1, "2")]

    def test_counter_rejected(self):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c", 2)
        a.add_edge("s", "c")
        with pytest.raises(EngineError):
            DFA.from_automaton(a)

    def test_state_budget(self):
        # a.{12}b forces exponential subset growth
        automaton = compile_regex("a.{12}b")
        with pytest.raises(CapacityError):
            DFA.from_automaton(automaton, max_states=50)

    def test_anchored_pattern(self):
        dfa = DFA.from_automaton(compile_regex("^ab", report_code="r"))
        assert dfa_fingerprint(dfa, b"abab") == [(1, "'r'")]


class TestMinimization:
    def test_minimize_preserves_language(self):
        automaton, _ = compile_ruleset([(1, "cart"), (2, "card"), (3, "cargo")])
        dfa = DFA.from_automaton(automaton)
        minimal = dfa.minimize()
        assert minimal.n_states <= dfa.n_states
        data = b"a cargo of cards in a cart"
        assert dfa_fingerprint(minimal, data) == dfa_fingerprint(dfa, data)

    def test_redundant_states_collapse(self):
        # two identical rules: subset construction tracks both reporting
        # STEs but distinct codes keep them apart; with equal codes the
        # minimal machine is as small as a single rule's
        single = DFA.from_automaton(compile_regex("abc", report_code="x")).minimize()
        automaton, _ = compile_ruleset([("x", "abc"), ("x", "abc")])
        double = DFA.from_automaton(automaton).minimize()
        assert double.n_states == single.n_states

    def test_minimize_idempotent(self):
        dfa = DFA.from_automaton(compile_regex("a[bc]+d")).minimize()
        assert dfa.minimize().n_states == dfa.n_states


@settings(max_examples=80, deadline=None)
@given(
    pattern=st.sampled_from(
        ["ab", "a+b", "a[bc]d", "(?:ab|cd)+", "a{2,4}", "[^a]b", "a.?b"]
    ),
    data=st.binary(max_size=25).map(lambda raw: bytes(b"abcd"[x % 4] for x in raw)),
)
def test_dfa_equivalent_to_nfa_property(pattern, data):
    automaton = compile_regex(pattern, report_code="r")
    dfa = DFA.from_automaton(automaton)
    assert dfa_fingerprint(dfa, data) == nfa_fingerprint(automaton, data)
    minimal = dfa.minimize()
    assert dfa_fingerprint(minimal, data) == nfa_fingerprint(automaton, data)
