"""End-to-end Random Forest automata kernel tests (Section VI/VIII)."""

import numpy as np
import pytest

from repro.benchmarks.randomforest import (
    DELIM,
    VARIANTS,
    classify_with_automaton,
    encode_samples,
    forest_to_automaton,
    train_variant,
)
from repro.baselines import NativeForest
from repro.engines import VectorEngine
from repro.ml import RandomForest, make_digits, select_features


@pytest.fixture(scope="module")
def trained():
    """A small forest + automaton used across tests."""
    digits = make_digits(n_train=500, n_test=120, seed=3)
    features = select_features(digits.train_x, digits.train_y, 30)
    train_x = digits.train_x[:, features]
    test_x = digits.test_x[:, features]
    forest = RandomForest(n_trees=5, max_leaves=30, seed=3).fit(
        train_x, digits.train_y
    )
    automaton = forest_to_automaton(forest, 30)
    return forest, automaton, test_x, digits.test_y


class TestEncoding:
    def test_delimiter_prefix(self):
        x = np.array([[10, 20], [30, 40]], dtype=np.uint8)
        assert encode_samples(x) == bytes([DELIM, 10, 20, DELIM, 30, 40])

    def test_values_clipped_below_delim(self):
        x = np.array([[255]], dtype=np.uint8)
        assert encode_samples(x) == bytes([DELIM, 254])


class TestAutomatonStructure:
    def test_one_subgraph_per_path(self, trained):
        forest, automaton, _, _ = trained
        components = automaton.connected_components()
        assert len(components) == forest.total_leaves()

    def test_validates(self, trained):
        _, automaton, _, _ = trained
        automaton.validate()

    def test_each_tree_reports_once_per_sample(self, trained):
        forest, automaton, test_x, _ = trained
        result = VectorEngine(automaton).run(encode_samples(test_x[:20]))
        f = test_x.shape[1]
        for sample in range(20):
            trees = [
                e.code[0]
                for e in result.reports
                if e.offset // (f + 1) == sample
            ]
            # paths of a tree partition feature space: exactly one report
            # per tree per sample
            assert sorted(trees) == list(range(len(forest.trees)))


class TestClassificationEquivalence:
    def test_automaton_matches_python_forest(self, trained):
        forest, automaton, test_x, _ = trained
        expected = forest.predict(test_x[:60])
        got = classify_with_automaton(automaton, test_x[:60], n_classes=10)
        assert np.array_equal(got, expected)

    def test_automaton_matches_native_forest(self, trained):
        forest, automaton, test_x, _ = trained
        native = NativeForest(forest).predict(test_x[:40])
        got = classify_with_automaton(automaton, test_x[:40], n_classes=10)
        assert np.array_equal(got, native)


class TestVariants:
    def test_variant_parameters_match_table2(self):
        assert (VARIANTS["A"].n_features, VARIANTS["A"].max_leaves) == (270, 400)
        assert (VARIANTS["B"].n_features, VARIANTS["B"].max_leaves) == (200, 400)
        assert (VARIANTS["C"].n_features, VARIANTS["C"].max_leaves) == (200, 800)
        assert all(v.n_trees == 20 for v in VARIANTS.values())

    @pytest.mark.slow
    def test_scaled_training_relationships(self):
        """At reduced scale the Table II shape must hold: A streams more
        symbols than B; C has more states than B."""
        kwargs = dict(n_train=400, n_test=100, seed=5, scale=0.12)
        a = train_variant(VARIANTS["A"], **kwargs)
        b = train_variant(VARIANTS["B"], **kwargs)
        c = train_variant(VARIANTS["C"], **kwargs)
        assert a.symbols_per_classification > b.symbols_per_classification
        ratio = a.symbols_per_classification / b.symbols_per_classification
        assert 1.2 < ratio < 1.5  # paper: 1.35x runtime
        assert c.states > 1.5 * b.states
        # far above 10-class chance even at 12% scale
        for variant in (a, b, c):
            assert variant.accuracy > 0.35
