"""File Carving benchmark tests (bit-level builder + strided patterns)."""

import random
import struct

import pytest

from repro.bitlevel import BitPatternBuilder, bits_of, bytes_to_bits
from repro.benchmarks.filecarving import (
    build_filecarving_automaton,
    carving_patterns,
    zip_local_header_automaton,
)
from repro.engines import ReferenceEngine, VectorEngine
from repro.errors import AutomatonError
from repro.inputs.diskimage import build_disk_image
from repro.transforms import stride


class TestBitPatternBuilder:
    def test_bits_of(self):
        assert bits_of(5, 4) == [0, 1, 0, 1]
        with pytest.raises(ValueError):
            bits_of(16, 4)

    def test_bytes_to_bits_msb_first(self):
        assert bytes_to_bits(b"\x80") == bytes([1, 0, 0, 0, 0, 0, 0, 0])

    def test_exact_byte_pattern(self):
        automaton = BitPatternBuilder("t", anchored=True).bytes(b"\xab").finish()
        engine = ReferenceEngine(automaton)
        assert engine.count_reports(bytes_to_bits(b"\xab")) == 1
        assert engine.count_reports(bytes_to_bits(b"\xac")) == 0

    def test_field_restricts_values(self):
        builder = BitPatternBuilder("t", anchored=True)
        automaton = builder.field(4, [3, 5, 9]).finish()
        engine = ReferenceEngine(automaton)
        for value in range(16):
            expected = 1 if value in (3, 5, 9) else 0
            assert engine.count_reports(bytes(bits_of(value, 4))) == expected

    def test_field_minimization_compact(self):
        # 6-bit field 0..59: DAWG should be far below the 60-chain size
        builder = BitPatternBuilder("t", anchored=True)
        automaton = builder.field(6, range(60)).finish()
        assert automaton.n_states < 20

    def test_full_field_is_wildcards(self):
        builder = BitPatternBuilder("t", anchored=True)
        automaton = builder.field(3, range(8)).finish()
        assert automaton.n_states == 3

    def test_field_validation(self):
        with pytest.raises(AutomatonError):
            BitPatternBuilder("t").field(4, [])
        with pytest.raises(AutomatonError):
            BitPatternBuilder("t").field(4, [16])

    def test_finish_guards(self):
        builder = BitPatternBuilder("t")
        with pytest.raises(AutomatonError):
            builder.finish()  # empty
        builder2 = BitPatternBuilder("t").bit(1)
        builder2.finish()
        with pytest.raises(AutomatonError):
            builder2.finish()

    def test_unanchored_searches_anywhere(self):
        automaton = BitPatternBuilder("t").bytes(b"\x0f").finish()
        strided = stride(automaton, 8)
        assert VectorEngine(strided).run(b"\x00\x0f\x00\x0f").report_count == 2


def valid_zip_header(rng=None, hour=12, minute=30, second=14):
    rng = rng or random.Random(0)
    dos_time = (hour << 11) | (minute << 5) | (second // 2)
    dos_date = ((2024 - 1980) << 9) | (6 << 5) | 15
    return struct.pack(
        "<IHHHHH", 0x04034B50, 20, 0, 8, dos_time, dos_date
    )


class TestZipHeaderPattern:
    @pytest.fixture(scope="class")
    def automaton(self):
        return zip_local_header_automaton()

    def test_valid_header_detected(self, automaton):
        data = b"junk" + valid_zip_header() + b"tail"
        assert VectorEngine(automaton).run(data).report_count == 1

    def test_bad_method_rejected(self, automaton):
        header = bytearray(valid_zip_header())
        header[8] = 3  # method 3 is not stored/deflate
        assert VectorEngine(automaton).run(bytes(header)).report_count == 0

    def test_bad_timestamp_rejected(self, automaton):
        header = bytearray(valid_zip_header())
        # hours = 25: set the 5 top bits of the time field's high byte
        header[11] = (25 << 3) | (header[11] & 0x07)
        assert VectorEngine(automaton).run(bytes(header)).report_count == 0

    def test_magic_alone_insufficient(self, automaton):
        """The paper's motivation: exact-match carvers false-positive on
        bare magics; the structured pattern does not."""
        bogus = b"PK\x03\x04" + b"\xff" * 10
        assert VectorEngine(automaton).run(bogus).report_count == 0


class TestFullBenchmark:
    @pytest.fixture(scope="class")
    def automaton(self):
        return build_filecarving_automaton()

    def test_nine_patterns(self, automaton):
        assert len(carving_patterns()) == 9
        # striding can split a pattern into several components; there is
        # at least one per pattern
        assert len(automaton.connected_components()) >= 9

    def test_finds_files_in_disk_image(self, automaton):
        image = build_disk_image(["zip", "mpeg2", "mp4", "jpeg"], seed=1)
        result = VectorEngine(automaton).run(image.data)
        found = {event.code for event in result.reports}
        assert {"zip-header", "zip-eocd", "mpeg2-pack", "mpeg2-end"} <= found
        assert "mp4-ftyp" in found
        assert "jpeg-header" in found

    def test_email_and_ssn_metadata(self, automaton):
        data = b"contact bob.smith@example.org or ssn 123-45-6789 now"
        codes = {e.code for e in VectorEngine(automaton).run(data).reports}
        assert "email" in codes
        assert "ssn" in codes

    def test_zip_offsets_align_with_ground_truth(self, automaton):
        image = build_disk_image(["zip"], seed=3)
        zip_entry = next(e for e in image.entries if e.kind == "zip")
        hits = [
            e.offset
            for e in VectorEngine(automaton).run(image.data).reports
            if e.code == "zip-header"
        ]
        # the report lands within the header (offset coarsened to its end)
        assert any(zip_entry.offset <= h <= zip_entry.offset + 16 for h in hits)
