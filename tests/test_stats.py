"""Statistics layer tests: static, dynamic, and table rendering."""

import pytest

from repro.core import Automaton, CharSet, StartMode
from repro.regex import compile_ruleset
from repro.stats import (
    compute_static_stats,
    format_table,
    measure_dynamic,
    summarize_benchmark,
)


@pytest.fixture()
def two_pattern_automaton():
    automaton, _ = compile_ruleset([(1, "abc"), (2, "abd")])
    return automaton


class TestStaticStats:
    def test_counts(self, two_pattern_automaton):
        stats = compute_static_stats(two_pattern_automaton)
        assert stats.states == 6
        assert stats.edges == 4
        assert stats.subgraph_count == 2
        assert stats.avg_component_size == 3.0
        assert stats.std_component_size == 0.0
        assert stats.edges_per_node == pytest.approx(4 / 6)

    def test_empty_automaton(self):
        stats = compute_static_stats(Automaton())
        assert stats.states == 0
        assert stats.edges_per_node == 0.0
        assert stats.subgraph_count == 0

    def test_component_size_variance(self):
        automaton, _ = compile_ruleset([(1, "ab"), (2, "wxyz")])
        stats = compute_static_stats(automaton)
        assert stats.avg_component_size == 3.0
        assert stats.std_component_size == 1.0

    def test_start_and_report_counts(self, two_pattern_automaton):
        stats = compute_static_stats(two_pattern_automaton)
        assert stats.start_states == 2
        assert stats.reporting_states == 2


class TestDynamicStats:
    def test_active_set_and_reports(self, two_pattern_automaton):
        stats = measure_dynamic(two_pattern_automaton, b"abcabd")
        assert stats.symbols == 6
        assert stats.report_count == 2
        assert stats.reporting_symbols == 2
        assert stats.mean_active_set > 0

    def test_rates(self, two_pattern_automaton):
        stats = measure_dynamic(two_pattern_automaton, b"abc" + b"x" * 97)
        assert stats.reports_per_symbol == pytest.approx(0.01)
        assert stats.reports_per_million == pytest.approx(10_000)
        assert stats.reporting_byte_fraction == pytest.approx(0.01)

    def test_empty_input(self, two_pattern_automaton):
        stats = measure_dynamic(two_pattern_automaton, b"")
        assert stats.reports_per_symbol == 0.0
        assert stats.reporting_byte_fraction == 0.0


class TestTableRendering:
    def test_row_and_formatting(self, two_pattern_automaton):
        row = summarize_benchmark(
            "Demo", "Testing", "bytes", two_pattern_automaton, b"abcabd"
        )
        # prefix merge shares 'ab': 6 -> 4 states
        assert row.compressed_states == 4
        assert row.compression_factor == pytest.approx(1 - 4 / 6)
        text = format_table([row])
        assert "Demo" in text
        assert "Benchmark" in text.splitlines()[0]

    def test_incompressible_row(self, two_pattern_automaton):
        row = summarize_benchmark(
            "Demo", "Testing", "bytes", two_pattern_automaton, None, compress=False
        )
        assert row.compressed_states is None
        assert row.compression_factor is None
        assert row.dynamic is None
        assert "NA" in format_table([row])
