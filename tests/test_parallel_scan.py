"""Input-parallel scanning tests: segmented == single-stream."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import BitsetEngine, ReferenceEngine, VectorEngine
from repro.engines.parallel import (
    parallel_scan,
    parallel_speedup_model,
    split_with_overlap,
)
from repro.errors import EngineError
from repro.regex import compile_regex
from repro.benchmarks.mesh import hamming_automaton


def fingerprints(result):
    return [(r.offset, r.ident, repr(r.code)) for r in result.reports]


class TestSplitting:
    def test_covers_input_exactly(self):
        segments = split_with_overlap(100, 4, 5)
        assert segments[0].keep_from == 0
        assert segments[-1].end == 100
        keeps = [(s.keep_from, s.end) for s in segments]
        assert keeps == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_overlap_extends_left(self):
        segments = split_with_overlap(100, 4, 5)
        assert segments[1].scan_start == 20
        assert segments[0].scan_start == 0  # clamped at stream start

    def test_single_segment(self):
        segments = split_with_overlap(50, 1, 10)
        assert segments == [type(segments[0])(0, 0, 50)]

    def test_more_segments_than_symbols(self):
        """Regression: n_segments > data_length must not produce empty or
        duplicated keep-partitions (the old code emitted [0,0) segments and
        one catch-all [0, L) segment)."""
        segments = split_with_overlap(3, 8, 2)
        assert len(segments) == 3  # clamped to one symbol per segment
        keeps = [(s.keep_from, s.end) for s in segments]
        assert keeps == [(0, 1), (1, 2), (2, 3)]

    @pytest.mark.parametrize(
        "data_length,n_segments,overlap",
        [
            (0, 4, 3),
            (1, 9, 0),
            (3, 8, 2),
            (7, 7, 20),
            (10, 3, 15),  # overlap > base segment size
            (100, 4, 5),
            (101, 4, 200),
        ],
    )
    def test_keep_partition_invariants(self, data_length, n_segments, overlap):
        segments = split_with_overlap(data_length, n_segments, overlap)
        # the keep-ranges tile [0, data_length) exactly, in order
        assert segments[0].keep_from == 0
        assert segments[-1].end == data_length
        for prev, cur in zip(segments, segments[1:]):
            assert cur.keep_from == prev.end
        # scan ranges start at most `overlap` early, clamped at 0
        for s in segments:
            assert s.scan_start == max(0, s.keep_from - overlap)
        # never more segments than symbols; every segment non-empty
        if data_length > 0:
            assert len(segments) == min(n_segments, data_length)
            assert all(s.end > s.keep_from for s in segments)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_with_overlap(10, 0, 1)
        with pytest.raises(ValueError):
            split_with_overlap(10, 2, -1)


class TestParallelScan:
    def test_match_spanning_boundary_found(self):
        automaton = compile_regex("abcdefgh", report_code="r")
        data = b"x" * 21 + b"abcdefgh" + b"x" * 21  # crosses the 25-mark
        single = VectorEngine(automaton).run(data)
        segmented = parallel_scan(automaton, data, 2)
        assert fingerprints(segmented) == fingerprints(single)

    def test_no_duplicate_reports_in_overlap(self):
        automaton = compile_regex("ab", report_code="r")
        data = b"ab" * 30
        single = VectorEngine(automaton).run(data)
        segmented = parallel_scan(automaton, data, 5)
        assert fingerprints(segmented) == fingerprints(single)

    def test_anchored_rejected(self):
        with pytest.raises(EngineError):
            parallel_scan(compile_regex("^ab"), b"abab", 2)

    def test_unbounded_rejected(self):
        with pytest.raises(EngineError):
            parallel_scan(compile_regex("a+b"), b"aab", 2)

    @pytest.mark.parametrize("engine_cls", [ReferenceEngine, BitsetEngine])
    def test_engine_cls_selects_segment_engine(self, engine_cls):
        automaton = compile_regex("abcdefgh", report_code="r")
        data = b"x" * 21 + b"abcdefgh" + b"x" * 21
        single = VectorEngine(automaton).run(data)
        segmented = parallel_scan(automaton, data, 2, engine_cls=engine_cls)
        assert fingerprints(segmented) == fingerprints(single)

    def test_with_process_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        automaton = compile_regex("needle", report_code="n")
        data = (b"hay " * 50 + b"needle ") * 3
        single = VectorEngine(automaton).run(data)
        with ThreadPoolExecutor(max_workers=3) as pool:
            segmented = parallel_scan(automaton, data, 3, pool=pool)
        assert fingerprints(segmented) == fingerprints(single)

    def test_mesh_benchmark_segments_correctly(self):
        from repro.inputs.dna import plant_pattern, random_dna

        pattern = b"ACGTACGTACGTAC"
        automaton = hamming_automaton(pattern, 2, pattern_id=0)
        data = random_dna(2000, seed=1)
        data = plant_pattern(data, pattern, 495, mutations=1, seed=2)  # near cut
        single = VectorEngine(automaton).run(data)
        segmented = parallel_scan(automaton, data, 4)
        assert fingerprints(segmented) == fingerprints(single)

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.binary(max_size=80).map(lambda raw: bytes(b"ab"[x % 2] for x in raw)),
        n_segments=st.integers(1, 6),
        pattern=st.sampled_from(["ab", "aba", "a{2,4}b", "[ab]{3}"]),
    )
    def test_segmented_equals_single_property(self, data, n_segments, pattern):
        automaton = compile_regex(pattern, report_code="r")
        single = VectorEngine(automaton).run(data)
        segmented = parallel_scan(automaton, data, n_segments)
        assert fingerprints(segmented) == fingerprints(single)

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.binary(max_size=12).map(lambda raw: bytes(b"ab"[x % 2] for x in raw)),
        n_segments=st.integers(1, 40),
        pattern=st.sampled_from(["ab", "aba", "a{2,4}b", "[ab]{3}"]),
    )
    def test_segmented_equals_single_extremes(self, data, n_segments, pattern):
        """Degenerate geometry: n_segments often exceeds data_length and the
        pattern overlap exceeds the base segment size."""
        automaton = compile_regex(pattern, report_code="r")
        single = VectorEngine(automaton).run(data)
        segmented = parallel_scan(automaton, data, n_segments)
        assert fingerprints(segmented) == fingerprints(single)


class TestSpeedupModel:
    def test_ideal_without_overlap(self):
        assert parallel_speedup_model(1000, 4, 1) == pytest.approx(4.0)

    def test_overlap_erodes_speedup(self):
        assert parallel_speedup_model(1000, 4, 100) < 3.0

    def test_single_segment_is_one(self):
        assert parallel_speedup_model(1000, 1, 50) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_speedup_model(100, 0, 5)
