"""Tests for prefix-merge, striding, and widening transformations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Automaton, CharSet, StartMode
from repro.engines import ReferenceEngine
from repro.errors import AutomatonError
from repro.regex import compile_regex, compile_ruleset
from repro.transforms import merge_common_prefixes, pack_bits, stride, widen


def report_stream(automaton, data):
    """(offset, code) multiset, the semantic fingerprint of a run."""
    return sorted(
        (r.offset, repr(r.code)) for r in ReferenceEngine(automaton).run(data).reports
    )


class TestPrefixMerge:
    def test_shared_prefix_collapses(self):
        automaton, _ = compile_ruleset([(1, "abcx"), (2, "abcy")])
        merged, stats = merge_common_prefixes(automaton)
        # 'a','b','c' shared once; 'x','y' distinct: 8 -> 5 states.
        assert merged.n_states == 5
        assert stats.states_before == 8
        assert stats.compression_factor == pytest.approx(3 / 8)

    def test_disjoint_patterns_unchanged(self):
        automaton, _ = compile_ruleset([(1, "abc"), (2, "xyz")])
        merged, stats = merge_common_prefixes(automaton)
        assert merged.n_states == 6
        assert stats.compression_factor == 0.0

    def test_reporting_states_with_distinct_codes_not_merged(self):
        automaton, _ = compile_ruleset([(1, "ab"), (2, "ab")])
        merged, _ = merge_common_prefixes(automaton)
        # prefixes merge but the two reporting 'b' states carry different
        # rule ids and must stay separate
        assert merged.n_states == 3
        data = b"zab"
        assert report_stream(merged, data) == report_stream(automaton, data)

    def test_semantics_preserved_on_literal_set(self):
        rules = [(i, p) for i, p in enumerate(["cat", "car", "cart", "dog", "do"])]
        automaton, _ = compile_ruleset(rules)
        merged, stats = merge_common_prefixes(automaton)
        assert stats.states_after < stats.states_before
        data = b"a cart chased the dog into a car"
        assert report_stream(merged, data) == report_stream(automaton, data)

    def test_counters_never_merged(self):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c1", 2, report=True, report_code="x")
        a.add_counter("c2", 2, report=True, report_code="x")
        a.add_edge("s", "c1")
        a.add_edge("s", "c2")
        merged, _ = merge_common_prefixes(a)
        assert sum(1 for _ in merged.counters()) == 2

    @settings(max_examples=60, deadline=None)
    @given(
        patterns=st.lists(
            st.text(alphabet="abc", min_size=1, max_size=5), min_size=1, max_size=6
        ),
        data=st.binary(max_size=30).map(
            lambda raw: bytes(b"abc"[b % 3] for b in raw)
        ),
    )
    def test_merge_preserves_reports_property(self, patterns, data):
        automaton, _ = compile_ruleset(list(enumerate(patterns)))
        merged, stats = merge_common_prefixes(automaton)
        assert stats.states_after <= stats.states_before
        assert report_stream(merged, data) == report_stream(automaton, data)


def bit_literal(bits, *, anchored=False, code="hit"):
    """Bit-level automaton matching an exact bit string anywhere (or anchored)."""
    a = Automaton("bits")
    prev = None
    for i, b in enumerate(bits):
        start = (
            (StartMode.START_OF_DATA if anchored else StartMode.ALL_INPUT)
            if i == 0
            else StartMode.NONE
        )
        a.add_ste(
            f"b{i}",
            CharSet.single(b),
            start=start,
            report=i == len(bits) - 1,
            report_code=code,
        )
        if prev is not None:
            a.add_edge(prev, f"b{i}")
        prev = f"b{i}"
    return a


def to_bits(data: bytes) -> bytes:
    return bytes((byte >> (7 - i)) & 1 for byte in data for i in range(8))


class TestPackBits:
    def test_msb_first(self):
        assert pack_bits(bytes([1, 0, 0, 0, 0, 0, 0, 1])) == b"\x81"

    def test_partial_block_dropped(self):
        assert pack_bits(bytes([1] * 10)) == b"\xff"

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            pack_bits(b"\x02")

    def test_roundtrip_with_to_bits(self):
        data = b"automata"
        assert pack_bits(to_bits(data)) == data


class TestStriding:
    def test_byte_aligned_pattern_exact(self):
        # bit pattern of the byte 0xAB, anchored: report at byte 0.
        bits = to_bits(b"\xab")
        bit_a = bit_literal(bits, anchored=True)
        byte_a = stride(bit_a, 8)
        assert report_stream(byte_a, b"\xab") == [(0, "'hit'")]
        assert report_stream(byte_a, b"\xac") == []

    def test_multibyte_pattern(self):
        bits = to_bits(b"PK")
        byte_a = stride(bit_literal(bits), 8)
        stream = b"xxPKyyPK"
        assert [o for o, _ in report_stream(byte_a, stream)] == [3, 7]

    def test_bitfield_pattern(self):
        # First 4 bits fixed 1010, last 4 bits wildcard: matches 0xA0-0xAF.
        a = Automaton()
        prev = None
        for i, cs in enumerate(
            [CharSet.single(1), CharSet.single(0), CharSet.single(1), CharSet.single(0)]
            + [CharSet.from_ranges([(0, 1)])] * 4
        ):
            start = StartMode.START_OF_DATA if i == 0 else StartMode.NONE
            a.add_ste(f"s{i}", cs, start=start, report=i == 7, report_code="m")
            if prev:
                a.add_edge(prev, f"s{i}")
            prev = f"s{i}"
        strided = stride(a, 8)
        for byte in range(256):
            expected = [(0, "'m'")] if 0xA0 <= byte <= 0xAF else []
            assert report_stream(strided, bytes([byte])) == expected

    def test_stride_factor_validation(self):
        with pytest.raises(ValueError):
            stride(bit_literal(b"\x01\x00"), 0)
        byte_level = compile_regex("ab")
        with pytest.raises(AutomatonError):
            stride(byte_level, 8)  # 8-bit alphabet cannot be 8-strided

    def test_stride_2_on_bits(self):
        bit_a = bit_literal(bytes([1, 1, 0, 1]), anchored=True)
        strided = stride(bit_a, 2)
        # blocks: 11 -> 3, 01 -> 1
        assert report_stream(strided, bytes([3, 1])) == [(1, "'hit'")]
        assert report_stream(strided, bytes([3, 2])) == []

    @settings(max_examples=40, deadline=None)
    @given(
        pattern=st.lists(st.integers(0, 1), min_size=1, max_size=12).map(bytes),
        data=st.binary(min_size=0, max_size=6),
        anchored=st.booleans(),
    )
    def test_stride_equivalence_property(self, pattern, data, anchored):
        """Strided byte automaton reports in exactly the bytes where the
        bit automaton reports (offset coarsened to byte granularity)."""
        bit_a = bit_literal(pattern, anchored=anchored)
        byte_a = stride(bit_a, 8)
        bits = to_bits(data)
        bit_offsets = {
            r.offset // 8 for r in ReferenceEngine(bit_a).run(bits).reports
        }
        byte_offsets = {
            r.offset for r in ReferenceEngine(byte_a).run(data).reports
        }
        assert byte_offsets == bit_offsets


class TestWidening:
    @staticmethod
    def interleave(data: bytes, pad: int = 0) -> bytes:
        out = bytearray()
        for byte in data:
            out.append(byte)
            out.append(pad)
        return bytes(out)

    def test_simple_literal(self):
        wide = widen(compile_regex("ab", report_code="r"))
        assert report_stream(wide, self.interleave(b"xab")) == [(5, "'r'")]

    def test_not_matched_without_padding(self):
        wide = widen(compile_regex("ab", report_code="r"))
        assert report_stream(wide, b"ab") == []

    def test_state_count_doubles(self):
        narrow = compile_regex("abc")
        assert widen(narrow).n_states == 2 * narrow.n_states

    def test_custom_pad_symbol(self):
        wide = widen(compile_regex("ab", report_code="r"), pad_symbol=0xFF)
        assert report_stream(wide, self.interleave(b"ab", 0xFF)) == [(3, "'r'")]

    def test_counter_rejected(self):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c", 2)
        a.add_edge("s", "c")
        with pytest.raises(AutomatonError):
            widen(a)

    @settings(max_examples=60, deadline=None)
    @given(
        pattern=st.text(alphabet="abc", min_size=1, max_size=6),
        data=st.binary(max_size=20).map(lambda raw: bytes(b"abc"[b % 3] for b in raw)),
    )
    def test_widening_equivalence_property(self, pattern, data):
        narrow = compile_regex(pattern, report_code="r")
        wide = widen(narrow)
        narrow_offsets = [
            r.offset for r in ReferenceEngine(narrow).run(data).reports
        ]
        wide_offsets = [
            r.offset for r in ReferenceEngine(wide).run(self.interleave(data)).reports
        ]
        assert wide_offsets == [2 * o + 1 for o in narrow_offsets]
