"""Literal-prefilter scanner tests (the Hyperscan decomposition)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import VectorEngine
from repro.engines.prefilter import PrefilterScanner, max_match_length, required_factors
from repro.regex import compile_regex, parse_regex


def factors_of(pattern):
    return required_factors(parse_regex(pattern).ast)


class TestFactorExtraction:
    def test_plain_literal(self):
        assert factors_of("hello") == frozenset([b"hello"])

    def test_longest_run_chosen(self):
        assert factors_of("ab.defgh") == frozenset([b"defgh"])

    def test_classes_break_runs(self):
        assert factors_of("ab[xy]cd") in (frozenset([b"ab"]), frozenset([b"cd"]))

    def test_optional_parts_excluded(self):
        # 'xy' is optional, so only 'abc' is guaranteed
        assert factors_of("(?:xy)?abc") == frozenset([b"abc"])

    def test_alternation_union(self):
        assert factors_of("foo|bar") == frozenset([b"foo", b"bar"])

    def test_alternation_with_factorless_branch(self):
        assert factors_of("foo|[0-9]") is None

    def test_repeat_at_least_once_keeps_factor(self):
        assert factors_of("(?:abc)+") == frozenset([b"abc"])

    def test_star_drops_factor(self):
        assert factors_of("(?:abc)*") is None

    def test_no_factor_for_pure_classes(self):
        assert factors_of("[0-9]{4}") is None

    def test_single_chars_too_short(self):
        assert factors_of("a[0-9]b") is None

    def test_nested(self):
        # several guaranteed factor sets exist ({start,begin} and {end});
        # the extractor picks the one with the longest minimum factor
        assert factors_of("(?:start|begin)[0-9]+end..") == frozenset(
            [b"start", b"begin"]
        )


class TestMaxMatchLength:
    def test_fixed_literal(self):
        assert max_match_length(compile_regex("abcde")) == 5

    def test_bounded_repeat(self):
        assert max_match_length(compile_regex("a{2,6}")) == 6

    def test_alternation(self):
        assert max_match_length(compile_regex("ab|wxyz")) == 4

    def test_unbounded(self):
        assert max_match_length(compile_regex("ab+c")) is None
        assert max_match_length(compile_regex("a.*b")) is None


class TestScanner:
    RULES = [
        ("r1", "needle[0-9]{2}"),
        ("r2", "foo|barbaz"),
        ("r3", "[0-9]{3}"),  # factorless: always confirmed
        ("r4", "^header"),
    ]

    def fingerprints(self, data):
        scanner = PrefilterScanner(self.RULES)
        got = {(r.offset, r.code) for r in scanner.scan(data).reports}
        expected = set()
        for code, pattern in self.RULES:
            automaton = compile_regex(pattern, report_code=code)
            expected.update(
                (r.offset, r.code) for r in VectorEngine(automaton).run(data).reports
            )
        return got, expected

    def test_equivalence_on_mixed_input(self):
        data = b"headerfoo needle42 barbaz 123 xx needle?? 999"
        got, expected = self.fingerprints(data)
        assert got == expected

    def test_equivalence_when_factors_absent(self):
        got, expected = self.fingerprints(b"nothing interesting 55 here")
        assert got == expected

    def test_anchored_rule_not_reanchored(self):
        # 'header' appears late: the anchored rule must NOT fire
        got, expected = self.fingerprints(b"xx header 123")
        assert got == expected
        assert not any(code == "r4" for _, code in got)

    def test_gated_rule_count(self):
        scanner = PrefilterScanner(self.RULES)
        assert scanner.gated_rules == 3  # r3 has no factor

    def test_match_spanning_window_merge(self):
        scanner = PrefilterScanner([("r", "ab{1,20}c")])
        data = b"zz a" + b"b" * 18 + b"c zz"
        got = {(r.offset, r.code) for r in scanner.scan(data).reports}
        automaton = compile_regex("ab{1,20}c", report_code="r")
        expected = {
            (r.offset, r.code) for r in VectorEngine(automaton).run(data).reports
        }
        assert got == expected


ALPHABET = b"abn0 "


@settings(max_examples=80, deadline=None)
@given(
    data=st.binary(max_size=60).map(
        lambda raw: bytes(ALPHABET[x % len(ALPHABET)] for x in raw)
    )
)
def test_prefilter_equivalence_property(data):
    rules = [
        ("exact", "ban"),
        ("counted", "na{1,3}b"),
        ("anchored", "^ab"),
        ("unbounded", "nb+a"),
        ("classy", "[ab]n"),
    ]
    scanner = PrefilterScanner(rules)
    got = {(r.offset, r.code) for r in scanner.scan(data).reports}
    expected = set()
    for code, pattern in rules:
        automaton = compile_regex(pattern, report_code=code)
        expected.update(
            (r.offset, r.code) for r in VectorEngine(automaton).run(data).reports
        )
    assert got == expected


class TestDegenerateRuleGuards:
    """Rule automata that can never be enabled or never report are a
    misconfiguration; the scanner fails compile with a typed error."""

    def _patch_compile(self, monkeypatch, automaton):
        import repro.engines.prefilter as mod

        monkeypatch.setattr(mod, "compile_parsed", lambda parsed, report_code: automaton)

    def test_zero_start_states_raises_engine_error(self, monkeypatch):
        from repro.core.automaton import Automaton
        from repro.core.charset import CharSet
        from repro.errors import EngineError, ReproError

        a = Automaton("no-start")
        a.add_ste("s0", CharSet.from_chars(b"a"), report=True, report_code=1)
        self._patch_compile(monkeypatch, a)
        with pytest.raises(EngineError, match="no start states"):
            PrefilterScanner([(1, "a")])
        assert issubclass(EngineError, ReproError)

    def test_zero_reporting_states_raises_engine_error(self, monkeypatch):
        from repro.core.automaton import Automaton
        from repro.core.charset import CharSet
        from repro.core.elements import StartMode
        from repro.errors import EngineError

        a = Automaton("no-report")
        a.add_ste("s0", CharSet.from_chars(b"a"), start=StartMode.ALL_INPUT)
        self._patch_compile(monkeypatch, a)
        with pytest.raises(EngineError, match="no reporting states"):
            PrefilterScanner([(1, "a")])

    def test_max_match_length_zero_start_is_zero(self):
        from repro.core.automaton import Automaton
        from repro.core.charset import CharSet

        a = Automaton("no-start")
        a.add_ste("s0", CharSet.from_chars(b"a"), report=True, report_code=1)
        assert max_match_length(a) == 0

    def test_empty_ruleset_scans_nothing(self):
        result = PrefilterScanner([]).scan(b"anything")
        assert result.reports == []
        assert result.cycles == len(b"anything")
