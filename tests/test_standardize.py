"""Spatial standardization (ANMLZoo methodology) and its damage."""

import numpy as np
import pytest

from repro.benchmarks.randomforest import classify_with_automaton, train_variant, VARIANTS
from repro.benchmarks.standardize import cut_down, inflate
from repro.engines import VectorEngine
from repro.regex import compile_ruleset
from repro.stats import measure_dynamic


def word_ruleset(n=20):
    # zero-padded so every component has identical size
    automaton, _ = compile_ruleset([(i, f"w{i:02d}x{i:02d}") for i in range(n)])
    return automaton


class TestCutDown:
    def test_fits_budget_with_whole_components(self):
        automaton = word_ruleset(20)
        component_size = automaton.n_states // 20
        result = cut_down(automaton, capacity=7 * component_size)
        assert result.states_after <= 7 * component_size
        assert result.components_after <= 7
        # kept components are intact
        sizes = [len(c) for c in result.automaton.connected_components()]
        assert all(size == component_size for size in sizes)

    def test_reports_are_a_subset(self):
        automaton = word_ruleset(10)
        result = cut_down(automaton, capacity=automaton.n_states // 2, seed=1)
        data = b" ".join(f"w{i:02d}x{i:02d}".encode() for i in range(10))
        full = {
            (r.offset, r.code) for r in VectorEngine(automaton).run(data).reports
        }
        trimmed = {
            (r.offset, r.code)
            for r in VectorEngine(result.automaton).run(data).reports
        }
        assert trimmed < full  # strictly fewer results: the kernel changed

    def test_size_ratio(self):
        automaton = word_ruleset(10)
        result = cut_down(automaton, capacity=automaton.n_states)
        assert result.size_ratio == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cut_down(word_ruleset(2), 0)


class TestInflate:
    def test_fills_toward_capacity(self):
        automaton = word_ruleset(5)
        result = inflate(automaton, capacity=3 * automaton.n_states, seed=2)
        assert result.states_after > 2 * result.states_before
        assert result.states_after <= 3 * automaton.n_states

    def test_synthetic_components_do_not_report(self):
        automaton = word_ruleset(5)
        result = inflate(automaton, capacity=3 * automaton.n_states, seed=2)
        data = b" ".join(f"w{i:02d}x{i:02d}".encode() for i in range(5))
        full = [
            (r.offset, r.code) for r in VectorEngine(automaton).run(data).reports
        ]
        padded = [
            (r.offset, r.code)
            for r in VectorEngine(result.automaton).run(data).reports
        ]
        assert padded == full  # kernel output unchanged...

    def test_but_activity_increases(self):
        """...while spatial load and activity grow: the Section II-D
        distortion (inflated Protomata demotivates small-ruleset designs)."""
        automaton = word_ruleset(5)
        result = inflate(automaton, capacity=4 * automaton.n_states, seed=2)
        data = (b"w01x01 " * 50)
        before = measure_dynamic(automaton, data)
        after = measure_dynamic(result.automaton, data)
        assert after.mean_active_set > 1.5 * before.mean_active_set

    def test_over_capacity_rejected(self):
        automaton = word_ruleset(5)
        with pytest.raises(ValueError):
            inflate(automaton, capacity=automaton.n_states - 1)


class TestSection8Damage:
    def test_cut_down_forest_misclassifies(self):
        """The Section VIII argument, quantified: trimming the Random
        Forest automaton to a capacity budget changes its predictions, so
        a cut-down benchmark cannot be compared against the full model."""
        trained = train_variant(
            VARIANTS["B"], n_train=400, n_test=150, seed=2, scale=0.1
        )
        x = trained.test_x[:80]
        full_pred = classify_with_automaton(trained.automaton, x, n_classes=10)
        result = cut_down(trained.automaton, trained.automaton.n_states // 3, seed=3)
        cut_pred = classify_with_automaton(result.automaton, x, n_classes=10)
        assert (cut_pred != full_pred).any()
        full_acc = (full_pred == trained.test_y[:80]).mean()
        cut_acc = (cut_pred == trained.test_y[:80]).mean()
        assert cut_acc < full_acc
