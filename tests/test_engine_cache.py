"""Engine compile cache: fingerprint identity, LRU behaviour, fallback."""

import pickle

import pytest

from repro.core import Automaton, CharSet, StartMode
from repro.engines import (
    BitsetEngine,
    ReferenceEngine,
    VectorEngine,
    auto_engine,
    automaton_fingerprint,
    clear_engine_cache,
    compiled_engine,
    engine_cache_info,
    set_engine_cache_limit,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_engine_cache()
    set_engine_cache_limit(32)
    yield
    clear_engine_cache()
    set_engine_cache_limit(32)


def literal(pattern: str = "ab", name: str = "t") -> Automaton:
    a = Automaton(name)
    prev = None
    for i, ch in enumerate(pattern):
        start = StartMode.ALL_INPUT if i == 0 else StartMode.NONE
        a.add_ste(f"s{i}", CharSet.from_chars(ch), start=start,
                  report=i == len(pattern) - 1)
        if prev is not None:
            a.add_edge(prev, f"s{i}")
        prev = f"s{i}"
    return a


class TestFingerprint:
    def test_stable_across_object_identity(self):
        assert automaton_fingerprint(literal()) == automaton_fingerprint(literal())

    def test_stable_across_pickling(self):
        a = literal()
        b = pickle.loads(pickle.dumps(a))
        assert automaton_fingerprint(a) == automaton_fingerprint(b)

    def test_sensitive_to_charset(self):
        a = literal("ab")
        b = literal("ac")
        assert automaton_fingerprint(a) != automaton_fingerprint(b)

    def test_sensitive_to_edges(self):
        a = literal("ab")
        b = literal("ab")
        b.add_edge("s1", "s0")
        assert automaton_fingerprint(a) != automaton_fingerprint(b)

    def test_sensitive_to_report_flag(self):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        b = Automaton()
        b.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT,
                  report=True)
        assert automaton_fingerprint(a) != automaton_fingerprint(b)

    def test_stamp_reused(self):
        a = literal()
        first = automaton_fingerprint(a)
        assert a._repro_fingerprint[1] == first
        assert automaton_fingerprint(a) == first


class TestCompiledEngine:
    def test_same_object_returned(self):
        a = literal()
        assert compiled_engine(a, BitsetEngine) is compiled_engine(a, BitsetEngine)

    def test_shared_across_structural_copies(self):
        a = literal()
        b = pickle.loads(pickle.dumps(a))
        assert compiled_engine(a, BitsetEngine) is compiled_engine(b, BitsetEngine)

    def test_engine_class_part_of_key(self):
        a = literal()
        vec = compiled_engine(a, VectorEngine)
        bit = compiled_engine(a, BitsetEngine)
        assert type(vec) is VectorEngine and type(bit) is BitsetEngine

    def test_options_part_of_key(self):
        a = literal()
        e1 = compiled_engine(a, BitsetEngine, max_states=100)
        e2 = compiled_engine(a, BitsetEngine, max_states=200)
        assert e1 is not e2

    def test_hit_miss_accounting(self):
        a = literal()
        compiled_engine(a, BitsetEngine)
        compiled_engine(a, BitsetEngine)
        info = engine_cache_info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)

    def test_lru_bound(self):
        # the fingerprint is structural, so distinct charsets = distinct keys
        set_engine_cache_limit(2)
        engines = [
            compiled_engine(literal(pattern), ReferenceEngine)
            for pattern in ("ab", "ac", "ad", "ae")
        ]
        assert engine_cache_info().size == 2
        # oldest entry was evicted: recompiling it is a fresh object
        assert compiled_engine(literal("ab"), ReferenceEngine) is not engines[0]

    def test_clear(self):
        compiled_engine(literal(), BitsetEngine)
        clear_engine_cache()
        info = engine_cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            set_engine_cache_limit(0)

    def test_cached_engine_produces_correct_results(self):
        a = literal("ab")
        eng = compiled_engine(a, BitsetEngine)
        assert [r.offset for r in eng.run(b"xxabyab").reports] == [3, 6]


class TestSharedEngineThreadSafety:
    def test_lazydfa_hammer_from_many_threads(self):
        """Regression: one cached LazyDFAEngine hammered by many threads.

        The lazy DFA grows its memo (and promotes/demotes its dense tables)
        while scanning; before the engine grew its own lock this corrupted
        shared state under contention — threads saw half-published
        promotion tables or transitions without their emits.  The pattern
        forces a large subset space so memoisation, promotion, and scanning
        genuinely interleave.
        """
        import random
        import sys
        from concurrent.futures import ThreadPoolExecutor

        from repro.engines import LazyDFAEngine

        from repro.regex import compile_regex

        automaton = compile_regex("a[ab]{10}b", report_code="r")
        rng = random.Random(7)
        data = bytes(rng.choice(b"ab") for _ in range(6_000))
        expected = {
            (r.offset, repr(r.code))
            for r in LazyDFAEngine(automaton).run(data).reports
        }
        assert expected  # the input actually exercises the reporting path

        engine = compiled_engine(automaton, LazyDFAEngine)
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [pool.submit(engine.run, data) for _ in range(16)]
                results = [f.result() for f in futures]
        finally:
            sys.setswitchinterval(old_interval)
        for result in results:
            got = {(r.offset, repr(r.code)) for r in result.reports}
            assert got == expected


class TestAutoEngine:
    def test_picks_bitset_when_small(self):
        assert type(auto_engine(literal())) is BitsetEngine

    def test_falls_back_to_vector_over_cap(self):
        eng = auto_engine(literal(), max_states=1)
        assert type(eng) is VectorEngine


class TestTypeRevalidation:
    """The degraded-engine cache rule (docs/RESILIENCE.md).

    A fallback ladder compiles each rung under its own class key, so a
    type-confused entry should be impossible — but if one ever appears
    (a bug, or surgery on cache internals), the hit path must evict and
    recompile rather than hand the wrong engine type to every future
    caller of the original key.
    """

    def test_wrong_type_entry_evicted_and_recompiled(self):
        from repro.engines import cache as cache_module

        automaton = literal()
        compiled_engine(automaton, BitsetEngine)
        (key,) = cache_module._cache.keys()
        cache_module._cache[key] = VectorEngine(automaton)  # poison the entry

        engine = compiled_engine(automaton, BitsetEngine)
        assert type(engine) is BitsetEngine
        # and the repaired entry is now served as a normal hit
        assert compiled_engine(automaton, BitsetEngine) is engine

    def test_fallback_caches_each_rung_under_own_key(self):
        from repro.engines.lazydfa import LazyDFAEngine
        from repro.resilience import FaultPlan, inject_faults, resilient_scan

        automaton = literal("abc")
        with inject_faults(FaultPlan(fail_engines=frozenset({"bitset"}))):
            outcome = resilient_scan(automaton, b"xxabcxx", ladder=("bitset", "vector"))
        assert outcome.engine == "vector"
        # the degraded run never cached a vector engine under bitset's key
        assert type(compiled_engine(automaton, BitsetEngine)) is BitsetEngine
        assert type(compiled_engine(automaton, VectorEngine)) is VectorEngine
        assert type(compiled_engine(automaton, LazyDFAEngine)) is LazyDFAEngine
