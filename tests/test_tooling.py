"""Code-hygiene gates.

``ruff`` and ``mypy`` are configured in pyproject.toml but are optional
tooling (``pip install repro[lint]``); their tests skip when the tools
are not installed so the default tier never depends on extra packages.
An AST-based unused-import sweep runs unconditionally as the minimal
always-on slice of the same hygiene bar.
"""

import ast
import pathlib
import shutil
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        [shutil.which("ruff"), "check", str(SRC)],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.slow
@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def _unused_imports(path: pathlib.Path) -> list[str]:
    """Approximate ruff's F401 for one module.

    ``import x as x`` / ``from m import x as x`` (the explicit re-export
    idiom) and ``__init__.py`` re-export surfaces are exempt, matching
    how ruff treats them in package interfaces.
    """
    tree = ast.parse(path.read_text())
    imported: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname == alias.name:
                    continue
                imported[alias.asname or alias.name.split(".")[0]] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*" or alias.asname == alias.name:
                    continue
                imported[alias.asname or alias.name] = node.lineno
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)  # __all__ entries and doc references
    return [
        f"{path.relative_to(REPO)}:{lineno}: unused import {name!r}"
        for name, lineno in sorted(imported.items(), key=lambda kv: kv[1])
        if name not in used
    ]


def test_no_unused_imports_in_src():
    problems = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "__init__.py":
            continue
        problems.extend(_unused_imports(path))
    assert not problems, "\n".join(problems)


def test_src_compiles_with_warnings_as_errors():
    """Every module byte-compiles; syntax rot fails fast even for files
    no test currently imports."""
    import py_compile

    for path in sorted(SRC.rglob("*.py")):
        py_compile.compile(str(path), doraise=True)


def _stable_profile_view(payload: dict) -> dict:
    """The timing-independent slice of a PROFILE.json payload."""
    return {
        name: {
            "states": bench["states"],
            "input_symbols": bench["input_symbols"],
            "engines": {
                engine: {
                    key: row[key]
                    for key in ("symbols", "reports", "mean_active_set")
                    if key in row
                }
                for engine, row in bench["engines"].items()
            },
        }
        for name, bench in payload["benchmarks"].items()
    }


@pytest.mark.slow
def test_profile_kill_and_resume(tmp_path):
    """Kill a checkpointed sweep mid-flight; --resume completes it.

    ``REPRO_FAULT_HALT_AFTER_CELLS=2`` hard-kills (``os._exit(137)``, as
    SIGKILL would) after the second journaled cell; the resumed run must
    re-run only the missing cells and produce the same result content as
    an uninterrupted sweep (docs/RESILIENCE.md).
    """
    import json
    import os

    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    out = tmp_path / "PROFILE.json"
    ckpt = tmp_path / "PROFILE.ckpt.json"
    base = [
        sys.executable, "-m", "repro", "profile", "--smoke",
        "--names", "Snort", "ClamAV",
        "--out", str(out), "--checkpoint", str(ckpt),
    ]

    killed = subprocess.run(
        base, env={**env, "REPRO_FAULT_HALT_AFTER_CELLS": "2"},
        capture_output=True, text=True, cwd=REPO,
    )
    assert killed.returncode == 137, killed.stderr
    assert not out.exists()
    journaled = json.loads(ckpt.read_text())["cells"]
    assert len(journaled) == 2

    resumed = subprocess.run(
        base + ["--resume"], env=env, capture_output=True, text=True, cwd=REPO
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resumed 2 cells" in resumed.stderr
    assert not ckpt.exists()  # journal deleted on successful completion
    payload = json.loads(out.read_text())
    assert payload["resilience"]["resumed_cells"] == 2

    clean_out = tmp_path / "CLEAN.json"
    clean = subprocess.run(
        [
            sys.executable, "-m", "repro", "profile", "--smoke",
            "--names", "Snort", "ClamAV",
            "--out", str(clean_out), "--checkpoint", "",
        ],
        env=env, capture_output=True, text=True, cwd=REPO,
    )
    assert clean.returncode == 0, clean.stderr
    assert _stable_profile_view(payload) == _stable_profile_view(
        json.loads(clean_out.read_text())
    )
