"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro.baselines import AhoCorasick
from repro.benchmarks import build_benchmark
from repro.engines import LazyDFAEngine, ReferenceEngine, VectorEngine
from repro.io import from_anml, mnrl_dumps, mnrl_loads, to_anml
from repro.regex import compile_ruleset
from repro.transforms import merge_common_prefixes


def report_fingerprint(automaton, data, engine_cls=VectorEngine):
    return [
        (r.offset, str(r.code))
        for r in engine_cls(automaton).run(data).reports
    ]


class TestSerializationOfBenchmarks:
    @pytest.mark.parametrize(
        "name", ["Protomata", "Hamming 18x3", "Seq. Match 6w 6p wC", "File Carving"]
    )
    def test_mnrl_roundtrip_preserves_benchmark_behaviour(self, name):
        bench = build_benchmark(name, scale=0.004, seed=5)
        data = bench.input_data[:3000]
        restored = mnrl_loads(mnrl_dumps(bench.automaton))
        assert report_fingerprint(restored, data) == report_fingerprint(
            bench.automaton, data
        )

    def test_anml_roundtrip_of_strided_automaton(self):
        bench = build_benchmark("File Carving", scale=1.0, seed=0)
        data = bench.input_data[:3000]
        restored = from_anml(to_anml(bench.automaton))
        assert report_fingerprint(restored, data) == report_fingerprint(
            bench.automaton, data
        )


class TestOptimizationOnBenchmarks:
    @pytest.mark.parametrize("name", ["ClamAV", "Brill", "CRISPR CasOffinder"])
    def test_prefix_merge_preserves_benchmark_reports(self, name):
        bench = build_benchmark(name, scale=0.004, seed=2)
        data = bench.input_data[:3000]
        merged, stats = merge_common_prefixes(bench.automaton)
        assert stats.states_after <= stats.states_before
        assert report_fingerprint(merged, data) == report_fingerprint(
            bench.automaton, data
        )


class TestEngineAgreementOnBenchmarks:
    @pytest.mark.parametrize(
        "name", ["Snort", "Protomata", "YARA", "Entity Resolution"]
    )
    def test_reference_and_vector_agree_on_real_benchmarks(self, name):
        bench = build_benchmark(name, scale=0.003, seed=1)
        data = bench.input_data[:1200]
        assert report_fingerprint(
            bench.automaton, data, ReferenceEngine
        ) == report_fingerprint(bench.automaton, data, VectorEngine)

    def test_dfa_agrees_on_literal_ruleset(self):
        patterns = [(i, w) for i, w in enumerate(["alpha", "beta", "gamma", "alp"])]
        automaton, _ = compile_ruleset(patterns)
        data = b"the alpha and the gamma met beta alp"
        assert report_fingerprint(
            automaton, data, LazyDFAEngine
        ) == report_fingerprint(automaton, data, VectorEngine)


class TestRegexPipelineVsAhoCorasick:
    def test_literal_ruleset_matches_aho_corasick(self):
        words = [b"cat", b"dog", b"catalog", b"at"]
        automaton, _ = compile_ruleset(
            [(i, w.decode()) for i, w in enumerate(words)]
        )
        data = b"a catalog of cats and dogs"
        ac_hits = sorted(AhoCorasick(words).search(data))
        engine_hits = sorted(
            (r.offset, r.code)
            for r in VectorEngine(automaton).run(data).reports
        )
        assert engine_hits == ac_hits


class TestDeterministicSuite:
    def test_same_seed_same_reports(self):
        a = build_benchmark("YARA", scale=0.004, seed=11)
        b = build_benchmark("YARA", scale=0.004, seed=11)
        data = a.input_data[:2000]
        assert a.input_data == b.input_data
        assert report_fingerprint(a.automaton, data) == report_fingerprint(
            b.automaton, data
        )
