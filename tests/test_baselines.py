"""Tests for Aho-Corasick, Shift-And, Hamming/Levenshtein matchers."""

import random
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AhoCorasick,
    MyersMatcher,
    ShiftAndMatcher,
    hamming_matches,
    levenshtein_matches,
)
from repro.core.charset import CharSet


class TestAhoCorasick:
    def test_classic_example(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        hits = sorted(ac.search(b"ushers"))
        # "she" and "he" both end at offset 3; "hers" ends at offset 5.
        assert hits == [(3, 0), (3, 1), (5, 3)]

    def test_overlapping_and_nested(self):
        ac = AhoCorasick([b"a", b"aa", b"aaa"])
        assert ac.count(b"aaa") == 6

    def test_no_match(self):
        assert AhoCorasick([b"xyz"]).count(b"abcabc") == 0

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([b""])

    def test_pattern_ids_stable(self):
        ac = AhoCorasick([b"ab", b"bc"])
        assert sorted(ac.search(b"abc")) == [(1, 0), (2, 1)]

    @settings(max_examples=60, deadline=None)
    @given(
        patterns=st.lists(
            st.text(alphabet="ab", min_size=1, max_size=4).map(str.encode),
            min_size=1,
            max_size=5,
            unique=True,
        ),
        data=st.text(alphabet="ab", max_size=30).map(str.encode),
    )
    def test_against_regex_oracle(self, patterns, data):
        ac = AhoCorasick(patterns)
        got = sorted(ac.search(data))
        expected = sorted(
            (m.start() + len(p) - 1, i)
            for i, p in enumerate(patterns)
            for m in re.finditer(b"(?=" + re.escape(p) + b")", data)
        )
        assert got == expected


class TestShiftAnd:
    def test_exact_bytes(self):
        m = ShiftAndMatcher.from_bytes(b"abc")
        assert m.search(b"xabcabc") == [3, 6]

    def test_class_positions(self):
        m = ShiftAndMatcher([CharSet.from_chars("ab"), CharSet.from_chars("c")])
        assert m.search(b"ac bc cc") == [1, 4]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ShiftAndMatcher([])

    def test_long_pattern_over_64(self):
        pattern = bytes(range(65, 65 + 70))
        m = ShiftAndMatcher.from_bytes(pattern)
        assert m.search(b"xx" + pattern + b"yy") == [71]


class TestHammingMatches:
    def test_exact(self):
        assert hamming_matches(b"abc", b"xxabcxx", 0) == [4]

    def test_with_mismatches(self):
        assert hamming_matches(b"abc", b"abdabc", 1) == [2, 5]

    def test_threshold_zero_vs_high(self):
        assert hamming_matches(b"aaaa", b"bbbb", 4) == [3]
        assert hamming_matches(b"aaaa", b"bbbb", 3) == []

    def test_short_text(self):
        assert hamming_matches(b"abcd", b"ab", 4) == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            hamming_matches(b"", b"abc", 1)


def brute_levenshtein(a: bytes, b: bytes) -> int:
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        cur = [i]
        for j, cb in enumerate(b, 1):
            cur.append(min(prev[j] + 1, cur[-1] + 1, prev[j - 1] + (ca != cb)))
        prev = cur
    return prev[-1]


def brute_sellers(pattern: bytes, text: bytes, d: int) -> list[int]:
    out = []
    for t in range(len(text)):
        best = min(
            brute_levenshtein(pattern, text[i : t + 1]) for i in range(t + 2)
        )
        if best <= d:
            out.append(t)
    return out


class TestLevenshteinMatchers:
    def test_exact_match(self):
        assert levenshtein_matches(b"abc", b"xabcx", 0) == [3]

    def test_substitution(self):
        assert 3 in levenshtein_matches(b"abc", b"xaXcx", 1)

    def test_insertion_and_deletion(self):
        assert 4 in levenshtein_matches(b"abc", b"xabXc", 1)  # insertion
        assert 2 in levenshtein_matches(b"abc", b"xac", 1)  # deletion

    @settings(max_examples=60, deadline=None)
    @given(
        pattern=st.text(alphabet="ab", min_size=1, max_size=5).map(str.encode),
        text=st.text(alphabet="ab", max_size=12).map(str.encode),
        d=st.integers(0, 3),
    )
    def test_sellers_against_bruteforce(self, pattern, text, d):
        assert levenshtein_matches(pattern, text, d) == brute_sellers(pattern, text, d)

    @settings(max_examples=60, deadline=None)
    @given(
        pattern=st.text(alphabet="abc", min_size=1, max_size=8).map(str.encode),
        text=st.text(alphabet="abc", max_size=20).map(str.encode),
        d=st.integers(0, 3),
    )
    def test_myers_matches_sellers(self, pattern, text, d):
        myers = MyersMatcher(pattern, d)
        assert myers.search(text) == levenshtein_matches(pattern, text, d)

    def test_myers_long_pattern(self):
        pattern = bytes(random.Random(1).choices(b"acgt", k=80))
        text = b"x" * 10 + pattern + b"y" * 10
        assert 10 + 80 - 1 in MyersMatcher(pattern, 0).search(text)
