"""YARA hex-string conversion and rule parsing tests (Section IX-A)."""

import pytest

from repro.engines import ReferenceEngine
from repro.errors import PatternError
from repro.regex import compile_regex
from repro.yara import (
    evaluate_condition,
    hex_string_to_regex,
    nibble_charset_regex,
    parse_yara,
    tokenize_hex_string,
)


def matches(regex: str, data: bytes) -> bool:
    automaton = compile_regex(regex)
    return ReferenceEngine(automaton).count_reports(data) > 0


class TestNibbleCharsets:
    def test_exact_byte(self):
        assert nibble_charset_regex("9", "c") == r"\x9c"

    def test_full_wildcard(self):
        assert nibble_charset_regex("?", "?") == r"[\x00-\xff]"

    def test_high_nibble_fixed(self):
        regex = nibble_charset_regex("a", "?")
        for value in range(0xA0, 0xB0):
            assert matches(regex, bytes([value]))
        assert not matches(regex, b"\x9f")
        assert not matches(regex, b"\xb0")

    def test_low_nibble_fixed(self):
        regex = nibble_charset_regex("?", "a")
        for high in range(16):
            assert matches(regex, bytes([(high << 4) | 0x0A]))
        assert not matches(regex, b"\x0b")


class TestHexStringTokenizer:
    def test_bytes_and_jumps(self):
        tokens = tokenize_hex_string("9C 50 [2-6] A1")
        assert tokens == [
            ("byte", ("9", "C")),
            ("byte", ("5", "0")),
            ("jump", (2, 6)),
            ("byte", ("A", "1")),
        ]

    def test_unbounded_and_exact_jumps(self):
        assert tokenize_hex_string("[3-]")[0] == ("jump", (3, None))
        assert tokenize_hex_string("[4]")[0] == ("jump", (4, 4))
        assert tokenize_hex_string("[-5]")[0] == ("jump", (0, 5))

    def test_alternation_tokens(self):
        kinds = [k for k, _ in tokenize_hex_string("(AA | BB)")]
        assert kinds == ["alt_open", "byte", "alt_sep", "byte", "alt_close"]

    def test_errors(self):
        with pytest.raises(PatternError):
            tokenize_hex_string("9")  # lone nibble
        with pytest.raises(PatternError):
            tokenize_hex_string("[2-")
        with pytest.raises(PatternError):
            tokenize_hex_string("ZZ")
        with pytest.raises(PatternError):
            tokenize_hex_string("[6-2]")


class TestHexStringToRegex:
    def test_paper_example_compiles_and_matches(self):
        # the example hex pattern from Section IX-A
        pattern = "9C 50 A1 ?? (?A ?? 00 | 66 A9 D?) ?? 58 0F 85"
        regex = hex_string_to_regex(pattern)
        hit = bytes([0x9C, 0x50, 0xA1, 0x77, 0x3A, 0x12, 0x00, 0xFE, 0x58, 0x0F, 0x85])
        miss = bytes([0x9C, 0x50, 0xA1, 0x77, 0x3B, 0x12, 0x00, 0xFE, 0x58, 0x0F, 0x85])
        assert matches(regex, hit)
        assert not matches(regex, miss)
        # second alternative branch
        hit2 = bytes([0x9C, 0x50, 0xA1, 0x00, 0x66, 0xA9, 0xD3, 0x01, 0x58, 0x0F, 0x85])
        assert matches(regex, hit2)

    def test_bounded_jump(self):
        regex = hex_string_to_regex("AA [1-3] BB")
        assert matches(regex, b"\xaa\x00\xbb")
        assert matches(regex, b"\xaa\x00\x00\x00\xbb")
        assert not matches(regex, b"\xaa\xbb")
        assert not matches(regex, b"\xaa\x00\x00\x00\x00\xbb")

    def test_unbounded_jump_clamped(self):
        regex = hex_string_to_regex("AA [2-] BB", max_unbounded_jump=4)
        assert matches(regex, b"\xaa" + b"\x00" * 3 + b"\xbb")
        assert not matches(regex, b"\xaa" + b"\x00" * 9 + b"\xbb")

    def test_errors(self):
        with pytest.raises(PatternError):
            hex_string_to_regex("")
        with pytest.raises(PatternError):
            hex_string_to_regex("AA | BB")  # separator outside group
        with pytest.raises(PatternError):
            hex_string_to_regex("(AA")


YARA_SOURCE = """
rule DemoMalware : trojan windows {
    meta:
        author = "synthetic"
    strings:
        $hex = { 9C 50 A1 ?? 58 }
        $txt = "evil payload" nocase
        $wide = "config" wide
        $re = /x[0-9]{3}y/
    condition:
        any of them
}

rule Pair {
    strings:
        $a = "alpha"
        $b = "beta"
    condition:
        $a and $b
}
"""


class TestYaraParser:
    def test_parses_rules(self):
        rules = parse_yara(YARA_SOURCE)
        assert [r.name for r in rules] == ["DemoMalware", "Pair"]
        assert rules[0].tags == ("trojan", "windows")

    def test_string_kinds_and_modifiers(self):
        rule = parse_yara(YARA_SOURCE)[0]
        kinds = {s.ident: s.kind for s in rule.strings}
        assert kinds == {"$hex": "hex", "$txt": "text", "$wide": "text", "$re": "regex"}
        assert rule.string("$txt").is_nocase
        assert rule.string("$wide").is_wide

    def test_condition_any_of_them(self):
        rule = parse_yara(YARA_SOURCE)[0]
        assert evaluate_condition(rule, {"$txt"})
        assert not evaluate_condition(rule, set())

    def test_condition_boolean(self):
        rule = parse_yara(YARA_SOURCE)[1]
        assert evaluate_condition(rule, {"$a", "$b"})
        assert not evaluate_condition(rule, {"$a"})

    def test_condition_n_of_them(self):
        rules = parse_yara(
            'rule R { strings: $a = "x" \n $b = "y" \n $c = "z" \n'
            " condition: 2 of them }"
        )
        assert evaluate_condition(rules[0], {"$a", "$c"})
        assert not evaluate_condition(rules[0], {"$a"})

    def test_malformed_rules(self):
        with pytest.raises(PatternError):
            parse_yara("rule X { condition: true }")  # no strings
        with pytest.raises(PatternError):
            parse_yara('rule X { strings: $a = "q" }')  # no condition
        with pytest.raises(PatternError):
            parse_yara('rule X { strings: $a = "q" unknownmod \n condition: $a }')
