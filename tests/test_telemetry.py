"""Telemetry registry, engine instrumentation, and profile harness tests."""

import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro import telemetry
from repro.engines import (
    BitsetEngine,
    LazyDFAEngine,
    VectorEngine,
    clear_engine_cache,
    compiled_engine,
    engine_cache_info,
)
from repro.engines.parallel import parallel_scan
from repro.regex import compile_regex


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts disabled and empty, and leaves no residue."""
    telemetry.disable()
    telemetry.reset()
    clear_engine_cache()
    yield
    telemetry.disable()
    telemetry.reset()
    clear_engine_cache()


class TestRegistry:
    def test_disabled_records_nothing(self):
        telemetry.incr("x")
        telemetry.observe("t", 1.0)
        with telemetry.span("s"):
            pass
        snap = telemetry.snapshot()
        assert snap["counters"] == {} and snap["timers"] == {}

    def test_clock_none_while_disabled(self):
        assert telemetry.clock() is None
        telemetry.enable()
        assert telemetry.clock() is not None

    def test_counters_accumulate(self):
        telemetry.enable()
        telemetry.incr("a")
        telemetry.incr("a", 4)
        assert telemetry.counter_value("a") == 5
        assert telemetry.counter_value("never") == 0

    def test_timer_aggregates(self):
        telemetry.enable()
        telemetry.observe("t", 0.5)
        telemetry.observe("t", 1.5)
        entry = telemetry.snapshot()["timers"]["t"]
        assert entry["count"] == 2
        assert entry["total_s"] == pytest.approx(2.0)
        assert entry["min_s"] == pytest.approx(0.5)
        assert entry["max_s"] == pytest.approx(1.5)

    def test_span_records_duration(self):
        telemetry.enable()
        with telemetry.span("block"):
            pass
        assert telemetry.snapshot()["timers"]["block"]["count"] == 1

    def test_reset_clears_but_keeps_switch(self):
        telemetry.enable()
        telemetry.incr("a")
        telemetry.reset()
        assert telemetry.is_enabled()
        assert telemetry.counter_value("a") == 0

    def test_diff_snapshots(self):
        telemetry.enable()
        telemetry.incr("a", 2)
        telemetry.observe("t", 1.0)
        before = telemetry.snapshot()
        telemetry.incr("a", 3)
        telemetry.incr("b")
        telemetry.observe("t", 0.25)
        delta = telemetry.diff_snapshots(before, telemetry.snapshot())
        assert delta["counters"] == {"a": 3, "b": 1}
        assert delta["timers"]["t"]["count"] == 1
        assert delta["timers"]["t"]["total_s"] == pytest.approx(0.25)

    def test_merge_adds_counters_and_widens_timers(self):
        telemetry.enable()
        telemetry.incr("a")
        telemetry.observe("t", 1.0)
        telemetry.merge(
            {
                "pid": -1,
                "counters": {"a": 4, "fresh": 2},
                "timers": {"t": {"count": 1, "total_s": 3.0, "min_s": 3.0, "max_s": 3.0}},
            }
        )
        assert telemetry.counter_value("a") == 5
        assert telemetry.counter_value("fresh") == 2
        entry = telemetry.snapshot()["timers"]["t"]
        assert entry["count"] == 2 and entry["max_s"] == pytest.approx(3.0)

    def test_merge_of_diff_delta_round_trips(self):
        telemetry.enable()
        telemetry.incr("a", 2)
        telemetry.observe("t", 1.0)
        before = telemetry.snapshot()
        telemetry.incr("a", 3)
        telemetry.observe("t", 0.5)
        delta = telemetry.diff_snapshots(before, telemetry.snapshot())
        telemetry.merge(delta)  # delta min/max are None; must not crash
        assert telemetry.counter_value("a") == 5 + 3
        assert telemetry.timer_total("t") == pytest.approx(1.5 + 0.5)

    def test_thread_safety_no_lost_increments(self):
        telemetry.enable()
        n_threads, per_thread = 8, 2_000

        def worker():
            for _ in range(per_thread):
                telemetry.incr("hammered")
                telemetry.observe("hammered.t", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert telemetry.counter_value("hammered") == n_threads * per_thread
        assert telemetry.snapshot()["timers"]["hammered.t"]["count"] == n_threads * per_thread


class TestEngineInstrumentation:
    def test_compile_and_scan_recorded(self):
        telemetry.enable()
        automaton = compile_regex("ab", report_code="r")
        for cls, label in [
            (BitsetEngine, "bitset"),
            (VectorEngine, "vector"),
            (LazyDFAEngine, "lazydfa"),
        ]:
            engine = cls(automaton)
            engine.run(b"xxabxx")
            snap = telemetry.snapshot()
            assert telemetry.counter_value(f"engine.compiled.{label}", snap) == 1
            assert telemetry.counter_value(f"engine.symbols.{label}", snap) == 6
            assert telemetry.counter_value(f"engine.reports.{label}", snap) == 1
            assert snap["timers"][f"engine.compile.{label}"]["count"] == 1
            assert snap["timers"][f"engine.scan.{label}"]["count"] >= 1

    def test_lazydfa_memo_counters(self):
        telemetry.enable()
        engine = LazyDFAEngine(compile_regex("a[ab]{3}b", report_code="r"))
        engine.run(b"aabab" * 20)
        assert telemetry.counter_value("lazydfa.memo_computes") > 0
        assert telemetry.counter_value("lazydfa.dfa_states") > 0

    def test_cache_counters_match_cache_info(self):
        telemetry.enable()
        automaton = compile_regex("abc", report_code="r")
        compiled_engine(automaton, BitsetEngine)
        compiled_engine(automaton, BitsetEngine)
        compiled_engine(automaton, VectorEngine)
        info = engine_cache_info()
        assert telemetry.counter_value("cache.hit") == info.hits == 1
        assert telemetry.counter_value("cache.miss") == info.misses == 2


class TestParallelScanTelemetry:
    def _case(self):
        automaton = compile_regex("needle", report_code="n")
        data = (b"hay " * 40 + b"needle ") * 4
        return automaton, data

    def test_counters_survive_process_pool_workers(self):
        automaton, data = self._case()
        telemetry.enable()
        telemetry.reset()
        with ProcessPoolExecutor(max_workers=2) as pool:
            result = parallel_scan(automaton, data, 4, pool=pool)
        assert result.report_count == 4
        snap = telemetry.snapshot()
        # scan work happened in the children; the merged registry sees it
        assert telemetry.counter_value("parallel.segments", snap) == 4
        assert telemetry.counter_value("engine.symbols.vector", snap) >= len(data)
        assert snap["timers"]["parallel.segment"]["count"] == 4

    def test_thread_pool_counts_once(self):
        automaton, data = self._case()
        # serial baseline
        telemetry.enable()
        telemetry.reset()
        parallel_scan(automaton, data, 4)
        serial = telemetry.snapshot()["counters"]
        # same scan via a thread pool: shared registry, no double merge
        telemetry.reset()
        clear_engine_cache()
        with ThreadPoolExecutor(max_workers=3) as pool:
            parallel_scan(automaton, data, 4, pool=pool)
        threaded = telemetry.snapshot()["counters"]
        assert threaded == serial

    def test_disabled_scan_collects_nothing(self):
        automaton, data = self._case()
        result = parallel_scan(automaton, data, 4)
        assert result.report_count == 4
        assert telemetry.snapshot()["counters"] == {}


class TestDisabledOverhead:
    def test_disabled_overhead_under_five_percent_of_snort_scan(self):
        """The instrumentation budget on the throughput-bench Snort config.

        Engine feeds touch telemetry a constant number of times per call
        (one ``clock()`` plus a guarded epilogue), never per symbol.  We
        measure the disabled per-call cost directly and require a generous
        16-call allowance to stay under 5% of the measured Snort scan time
        — deterministic, unlike subtracting two noisy end-to-end timings.
        """
        import time

        from repro.benchmarks import build_benchmark

        bench = build_benchmark("Snort", scale=0.01, seed=0)
        data = bench.input_data[:8_000]  # bench_engine_throughput INPUT_LIMIT
        engine = BitsetEngine(bench.automaton)
        engine.run(data)  # warm
        scan_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            engine.run(data)
            scan_s = min(scan_s, time.perf_counter() - t0)

        assert not telemetry.is_enabled()
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            telemetry.clock()
            telemetry.incr("overhead.probe")
        per_call = (time.perf_counter() - t0) / (2 * n)

        assert 16 * per_call < 0.05 * scan_s, (
            f"disabled telemetry costs {per_call * 1e9:.0f}ns/call against a "
            f"{scan_s * 1e3:.2f}ms scan"
        )
        assert telemetry.counter_value("overhead.probe") == 0


class TestProfileHarness:
    def test_run_profile_smoke_payload(self):
        from repro.telemetry.profile import PROFILE_SCHEMA, run_profile

        payload = run_profile(
            names=("Snort",),
            engines=("bitset", "dfa"),
            scale=0.002,
            limit=1_000,
            smoke=True,
        )
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["smoke"] is True
        snort = payload["benchmarks"]["Snort"]
        assert snort["states"] > 0 and snort["build_s"] >= 0
        for row in snort["engines"].values():
            assert row["reports"] >= 0
            assert row["mean_active_set"] >= 0
            assert row["counters"]  # each engine moved at least one counter
        dfa_counters = snort["engines"]["dfa"]["counters"]
        assert dfa_counters["lazydfa.memo_computes"] > 0
        assert payload["cache"]["misses"] >= 2
        assert not telemetry.is_enabled()  # prior state restored

    def test_write_profile(self, tmp_path):
        import json

        from repro.telemetry.profile import write_profile

        out = write_profile({"schema": "x"}, tmp_path / "sub" / "PROFILE.json")
        assert json.loads(out.read_text()) == {"schema": "x"}
