"""Spatial architecture model tests."""

import pytest

from repro.engines import KINTEX_KU060, MICRON_D480, SpatialModel
from repro.regex import compile_regex


class TestCapacity:
    def test_fits_small_automaton(self):
        automaton = compile_regex("abc")
        assert MICRON_D480.fits(automaton)
        assert MICRON_D480.chips_required(automaton) == 1

    def test_chips_required_for_large(self):
        assert MICRON_D480.chips_required(200_000) == 5
        assert KINTEX_KU060.chips_required(200_000) == 1

    def test_routing_efficiency_reduces_capacity(self):
        assert MICRON_D480.effective_capacity < MICRON_D480.state_capacity
        assert KINTEX_KU060.effective_capacity == KINTEX_KU060.state_capacity

    def test_utilization(self):
        # utilization is measured against the *usable* (routing-limited)
        # budget, so a full effective chip reads 100%.
        effective = MICRON_D480.effective_capacity
        assert MICRON_D480.utilization(effective) == pytest.approx(1.0)
        assert MICRON_D480.utilization(effective // 2) == pytest.approx(0.5, abs=1e-4)
        assert KINTEX_KU060.utilization(300_000) == pytest.approx(0.5)

    def test_raw_utilization(self):
        assert MICRON_D480.raw_utilization(49_152) == pytest.approx(1.0)
        assert MICRON_D480.raw_utilization(24_576) == pytest.approx(0.5)

    def test_utilization_consistent_with_fits_between_effective_and_raw(self):
        """Regression: D480 automata between effective and raw capacity.

        45,000 states exceed the routing-limited budget (41,779) but not the
        raw silicon budget (49,152).  The old ``utilization`` divided by raw
        capacity and reported ~92% on a machine ``fits()`` said was full.
        """
        states = 45_000
        assert MICRON_D480.effective_capacity < states < MICRON_D480.state_capacity
        assert not MICRON_D480.fits(states)
        assert MICRON_D480.chips_required(states) == 2
        assert MICRON_D480.utilization(states) > 1.0
        assert MICRON_D480.raw_utilization(states) < 1.0
        # fits <=> utilization <= 1.0, on both sides of the boundary
        assert MICRON_D480.utilization(MICRON_D480.effective_capacity) <= 1.0
        assert MICRON_D480.fits(MICRON_D480.effective_capacity)


class TestThroughput:
    def test_base_throughput(self):
        model = SpatialModel("test", state_capacity=1000, clock_hz=100e6)
        assert model.throughput_bytes_per_sec(100) == pytest.approx(100e6)

    def test_partitioning_divides_throughput(self):
        model = SpatialModel("test", state_capacity=1000, clock_hz=100e6)
        assert model.throughput_bytes_per_sec(2500) == pytest.approx(100e6 / 3)

    def test_striding_multiplies_throughput(self):
        model = SpatialModel(
            "test", state_capacity=1000, clock_hz=100e6, symbols_per_cycle=2
        )
        assert model.throughput_bytes_per_sec(10) == pytest.approx(200e6)

    def test_fmax_derating_monotone(self):
        model = SpatialModel(
            "fpga",
            state_capacity=100_000,
            clock_hz=250e6,
            fmax_derate_per_doubling=0.1,
        )
        small = model.clock_for(1_000)
        large = model.clock_for(90_000)
        assert small == pytest.approx(250e6)
        assert large < small

    def test_runtime(self):
        model = SpatialModel("test", state_capacity=1000, clock_hz=1e6)
        assert model.runtime_seconds(10, 2_000_000) == pytest.approx(2.0)

    def test_d480_vs_fpga_shape(self):
        """Section II: modern FPGAs beat the D480 on capacity and clock."""
        assert KINTEX_KU060.state_capacity > MICRON_D480.state_capacity
        assert KINTEX_KU060.clock_hz > MICRON_D480.clock_hz
