"""Snort rule parsing, ruleset generation, and the Section V experiment."""

import pytest

from repro.benchmarks.snort import build_snort_automaton, section5_experiment
from repro.errors import PatternError
from repro.inputs.pcap import SUSPICIOUS_TOKENS, synthetic_pcap
from repro.snort import (
    generate_ruleset,
    parse_rule,
    parse_ruleset,
    render_rule,
    render_ruleset,
)
from repro.engines import VectorEngine

RULE = (
    'alert tcp any any -> any any (msg:"test rule"; '
    'pcre:"/cmd\\.exe/i"; sid:2001;)'
)


class TestParser:
    def test_basic_fields(self):
        rule = parse_rule(RULE)
        assert rule.sid == 2001
        assert rule.action == "alert"
        assert rule.proto == "tcp"
        assert rule.msg == "test rule"
        assert rule.pcre == r"cmd\.exe"
        assert rule.pcre_flags == "i"

    def test_modifier_detection(self):
        rule = parse_rule(
            'alert tcp any any -> any any (pcre:"/foo/iU"; sid:1;)'
        )
        assert rule.has_snort_modifiers
        assert rule.snort_modifiers == {"U"}
        assert rule.standard_flags == "i"
        assert not rule.whole_stream_safe()

    def test_isdataat_detection(self):
        rule = parse_rule(
            'alert tcp any any -> any any (pcre:"/foo/"; isdataat:50,relative; sid:2;)'
        )
        assert rule.has_isdataat
        assert not rule.whole_stream_safe()

    def test_plain_rule_is_safe(self):
        assert parse_rule(RULE).whole_stream_safe()

    def test_semicolon_inside_quotes(self):
        rule = parse_rule(
            'alert tcp any any -> any any (msg:"a;b"; pcre:"/x/"; sid:3;)'
        )
        assert rule.msg == "a;b"

    def test_errors(self):
        with pytest.raises(PatternError):
            parse_rule("not a rule at all")
        with pytest.raises(PatternError):
            parse_rule('alert tcp any any -> any any (pcre:"/x/";)')  # no sid
        with pytest.raises(PatternError):
            parse_rule("alert tcp any any -> any any (sid:5;)")  # no pcre

    def test_ruleset_roundtrip(self):
        rules = generate_ruleset(40, seed=1)
        parsed = parse_ruleset(render_ruleset(rules))
        assert parsed == rules


class TestGenerator:
    def test_composition(self):
        rules = generate_ruleset(200, seed=0)
        assert len(rules) == 200
        modifiers = [r for r in rules if r.has_snort_modifiers]
        isdataat = [r for r in rules if r.has_isdataat]
        assert len(modifiers) == 70  # 35%
        assert len(isdataat) == 3
        assert len(set(r.sid for r in rules)) == 200

    def test_deterministic(self):
        assert generate_ruleset(30, seed=5) == generate_ruleset(30, seed=5)


class TestBenchmarkBuild:
    def test_exclusions_shrink_ruleset(self):
        rules = generate_ruleset(150, seed=2)
        _, all_included, _ = build_snort_automaton(
            rules, exclude_modifier_rules=False, exclude_isdataat_rules=False
        )
        _, filtered, _ = build_snort_automaton(rules)
        assert len(filtered) < len(all_included)
        assert all(r.whole_stream_safe() for r in filtered)

    def test_unsupported_rules_rejected_not_raised(self):
        rules = generate_ruleset(150, seed=2)
        _, included, rejected = build_snort_automaton(
            rules, exclude_modifier_rules=False, exclude_isdataat_rules=False
        )
        assert rejected  # the generator plants back-reference rules
        included_sids = {r.sid for r in included}
        assert all(code not in included_sids for code, _ in rejected)

    def test_benchmark_detects_planted_tokens(self):
        rules = generate_ruleset(150, seed=2)
        automaton, _, _ = build_snort_automaton(rules)
        data = synthetic_pcap(300, seed=7)
        assert any(token in data for token in SUSPICIOUS_TOKENS)
        result = VectorEngine(automaton).run(data)
        assert result.report_count > 0


class TestSection5Experiment:
    def test_rate_reduction_shape(self):
        """The paper's Section V shape: dropping modifier rules cuts the
        report rate by several x, dropping isdataat rules cuts it again."""
        rules = generate_ruleset(150, seed=4)
        data = synthetic_pcap(200, seed=11)
        stages = section5_experiment(rules, data)
        assert [s.name for s in stages][0] == "all rules"
        full, no_mod, final = (s.reports_per_symbol for s in stages)
        assert full > 3 * no_mod  # paper: ~5x
        assert no_mod > 1.5 * final  # paper: ~2x
        # unfiltered benchmark reports on the vast majority of bytes
        assert stages[0].reporting_byte_fraction > 0.8
        assert stages[2].reporting_byte_fraction < 0.2

    def test_rule_counts_monotone(self):
        rules = generate_ruleset(100, seed=6)
        data = synthetic_pcap(50, seed=1)
        stages = section5_experiment(rules, data)
        assert stages[0].n_rules > stages[1].n_rules > stages[2].n_rules


class TestContentOptions:
    def test_decode_plain(self):
        from repro.snort.rules import decode_content

        assert decode_content("GET /index") == b"GET /index"

    def test_decode_hex_spans(self):
        from repro.snort.rules import decode_content

        assert decode_content("GET |0d 0a|done") == b"GET \r\ndone"
        assert decode_content("|de ad be ef|") == b"\xde\xad\xbe\xef"

    def test_decode_escapes(self):
        from repro.snort.rules import decode_content

        assert decode_content(r"a\"b") == b'a"b'

    def test_decode_errors(self):
        from repro.snort.rules import decode_content

        with pytest.raises(PatternError):
            decode_content("|0d")
        with pytest.raises(PatternError):
            decode_content("|zz|")

    def test_rule_contents_parsed(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"GET |0d 0a|"; '
            'content:"Host"; pcre:"/x/"; sid:9;)'
        )
        assert rule.contents == (b"GET \r\n", b"Host")

    def test_generator_emits_content_rules(self):
        rules = generate_ruleset(300, seed=1)
        with_content = [r for r in rules if r.contents]
        assert len(with_content) > 5
        # content rules round-trip through the text format
        reparsed = parse_ruleset(render_ruleset(with_content))
        assert [r.contents for r in reparsed] == [r.contents for r in with_content]


class TestFullKernelEvaluation:
    def test_rule_requires_both_pcre_and_content(self):
        from repro.benchmarks.snort import evaluate_rules

        rule = parse_rule(
            'alert tcp any any -> any any (content:"MARKER"; '
            'pcre:"/attack[0-9]+/"; sid:50;)'
        )
        packets = [
            b"an attack99 with MARKER present",  # both -> alert
            b"an attack99 without the extra",  # pcre only
            b"MARKER but nothing else",  # content only
        ]
        alerts = evaluate_rules([rule], packets)
        assert alerts == {50: [0]}

    def test_multiple_rules_and_packets(self):
        from repro.benchmarks.snort import evaluate_rules
        from repro.inputs.pcap import synthetic_packets

        rules = generate_ruleset(120, seed=9)
        packets = synthetic_packets(80, seed=4)
        alerts = evaluate_rules(rules, packets)
        # protocol rules fire on HTTP packets
        assert alerts
        assert all(
            0 <= i < len(packets) for hits in alerts.values() for i in hits
        )
