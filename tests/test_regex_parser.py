"""Unit tests for the regex parser and character-class handling."""

import pytest

from repro.core.charset import CharSet
from repro.errors import RegexError, RegexUnsupportedError
from repro.regex import Flags, parse_pcre, parse_regex
from repro.regex.ast_nodes import Alt, Concat, Empty, Literal, Repeat
from repro.regex.charclass import casefold_charset


def lit_ast(pattern):
    return parse_regex(pattern).ast


class TestAtoms:
    def test_literal_sequence(self):
        ast = lit_ast("abc")
        assert isinstance(ast, Concat) and len(ast.parts) == 3
        assert all(isinstance(p, Literal) for p in ast.parts)

    def test_dot_excludes_newline(self):
        ast = lit_ast(".")
        assert "\n" not in ast.charset
        assert "a" in ast.charset

    def test_dotall_flag(self):
        ast = parse_regex(".", Flags(dotall=True)).ast
        assert "\n" in ast.charset

    def test_escaped_metachar(self):
        ast = lit_ast(r"\.")
        assert ast.charset == CharSet.from_chars(".")

    def test_hex_escape(self):
        assert lit_ast(r"\x41").charset == CharSet.from_chars("A")

    def test_bad_hex_escape(self):
        with pytest.raises(RegexError):
            parse_regex(r"\xZZ")

    def test_class_escapes(self):
        assert lit_ast(r"\d").charset == CharSet.from_chars("0123456789")
        assert "a" in lit_ast(r"\w").charset
        assert "_" in lit_ast(r"\w").charset
        assert " " in lit_ast(r"\s").charset
        assert "a" not in lit_ast(r"\D").charset or True  # \D is complement
        assert "5" not in lit_ast(r"\D").charset

    def test_trailing_backslash(self):
        with pytest.raises(RegexError):
            parse_regex("ab\\")


class TestClasses:
    def test_simple_class(self):
        assert lit_ast("[abc]").charset == CharSet.from_chars("abc")

    def test_range(self):
        assert lit_ast("[a-d]").charset == CharSet.from_chars("abcd")

    def test_negated(self):
        cs = lit_ast("[^a]").charset
        assert "a" not in cs and cs.cardinality() == 255

    def test_leading_close_bracket_literal(self):
        assert lit_ast("[]a]").charset == CharSet.from_chars("]a")

    def test_dash_positions(self):
        assert lit_ast("[-a]").charset == CharSet.from_chars("-a")
        assert lit_ast("[a-]").charset == CharSet.from_chars("-a")

    def test_class_with_escape(self):
        assert lit_ast(r"[\n\t]").charset == CharSet.from_chars("\n\t")

    def test_class_with_class_escape(self):
        assert lit_ast(r"[\da]").charset == CharSet.from_chars("0123456789a")

    def test_posix_class(self):
        assert lit_ast("[[:digit:]]").charset == CharSet.from_chars("0123456789")

    def test_unknown_posix_class(self):
        with pytest.raises(RegexError):
            parse_regex("[[:nope:]]")

    def test_unterminated(self):
        with pytest.raises(RegexError):
            parse_regex("[abc")

    def test_inverted_range(self):
        with pytest.raises(RegexError):
            parse_regex("[z-a]")

    def test_negated_everything_rejected(self):
        with pytest.raises(RegexError):
            parse_regex(r"[^\x00-\xff]")


class TestQuantifiers:
    def test_star_plus_opt(self):
        for pat, lo, hi in [("a*", 0, None), ("a+", 1, None), ("a?", 0, 1)]:
            ast = lit_ast(pat)
            assert isinstance(ast, Repeat)
            assert (ast.min, ast.max) == (lo, hi)

    def test_counted(self):
        ast = lit_ast("a{2,5}")
        assert (ast.min, ast.max) == (2, 5)
        assert lit_ast("a{3}").min == 3
        assert lit_ast("a{3}").max == 3
        assert lit_ast("a{2,}").max is None

    def test_lazy_and_possessive_ignored(self):
        for pat in ["a*?", "a+?", "a??", "a{1,2}?", "a*+"]:
            ast = lit_ast(pat)
            assert isinstance(ast, Repeat)

    def test_malformed_braces_are_literal(self):
        ast = lit_ast("a{x}")
        # '{', 'x', '}' become literals after 'a'
        assert isinstance(ast, Concat) and len(ast.parts) == 4

    def test_inverted_bounds(self):
        with pytest.raises(RegexError):
            parse_regex("a{5,2}")

    def test_bare_quantifier_rejected(self):
        with pytest.raises(RegexError):
            parse_regex("*a")


class TestGroupsAndAlternation:
    def test_alternation(self):
        ast = lit_ast("a|b|c")
        assert isinstance(ast, Alt) and len(ast.options) == 3

    def test_group_quantified(self):
        ast = lit_ast("(ab)+")
        assert isinstance(ast, Repeat)
        assert isinstance(ast.child, Concat)

    def test_non_capturing_group(self):
        assert isinstance(lit_ast("(?:ab)"), Concat)

    def test_empty_alternative(self):
        ast = lit_ast("a|")
        assert isinstance(ast, Alt)
        assert isinstance(ast.options[1], Empty)

    def test_unterminated_group(self):
        with pytest.raises(RegexError):
            parse_regex("(ab")

    def test_stray_close_paren(self):
        with pytest.raises(RegexError):
            parse_regex("ab)")


class TestAnchorsAndFlags:
    def test_leading_caret_sets_anchored(self):
        assert parse_regex("^abc").anchored
        assert not parse_regex("abc").anchored

    def test_mid_pattern_caret_rejected(self):
        with pytest.raises(RegexUnsupportedError):
            parse_regex("a^b")

    def test_dollar_rejected(self):
        with pytest.raises(RegexUnsupportedError):
            parse_regex("abc$")

    def test_inline_flags(self):
        parsed = parse_regex("(?i)abc")
        assert parsed.flags.caseless
        assert "A" in parsed.ast.parts[0].charset

    def test_caseless_flag_object(self):
        parsed = parse_regex("a", Flags(caseless=True))
        assert parsed.ast.charset == CharSet.from_chars("aA")

    def test_casefold_closure(self):
        cs = casefold_charset(CharSet.from_chars("aZ9"))
        assert cs == CharSet.from_chars("aAzZ9")


class TestUnsupported:
    @pytest.mark.parametrize(
        "pattern",
        [r"(a)\1", r"(?=a)", r"(?!a)", r"(?<=a)b", r"\bword", r"(?P<x>a)"],
    )
    def test_rejected_constructs(self, pattern):
        with pytest.raises(RegexUnsupportedError):
            parse_regex(pattern)


class TestPcreForm:
    def test_basic(self):
        parsed = parse_pcre("/abc/i")
        assert parsed.flags.caseless

    def test_no_flags(self):
        parsed = parse_pcre("/a[bc]/")
        assert not parsed.flags.caseless

    def test_slash_in_class(self):
        # rfind picks the final delimiter
        parsed = parse_pcre("/a[/]b/")
        assert isinstance(parsed.ast, Concat)

    def test_bad_forms(self):
        with pytest.raises(RegexError):
            parse_pcre("abc")
        with pytest.raises(RegexError):
            parse_pcre("/abc")
        with pytest.raises(RegexUnsupportedError):
            parse_pcre("/abc/Q")


class TestQuoting:
    """PCRE \\Q...\\E literal quoting."""

    def test_metacharacters_quoted(self):
        from repro.engines import ReferenceEngine
        from repro.regex import compile_regex

        automaton = compile_regex(r"\Qa.b*c\E")
        engine = ReferenceEngine(automaton)
        assert engine.count_reports(b"xa.b*cy") == 1
        assert engine.count_reports(b"xaXbbbcy") == 0

    def test_quantifier_after_quoting(self):
        from repro.engines import ReferenceEngine
        from repro.regex import compile_regex

        # the + applies to the last quoted character
        engine = ReferenceEngine(compile_regex(r"\Qab\E+"))
        assert engine.count_reports(b"abbb") == 3
        assert engine.count_reports(b"a") == 0

    def test_unterminated_quote_runs_to_end(self):
        from repro.engines import ReferenceEngine
        from repro.regex import compile_regex

        engine = ReferenceEngine(compile_regex(r"x\Q(a)"))
        assert engine.count_reports(b"zx(a)z") == 1

    def test_mixed_with_normal_syntax(self):
        from repro.engines import ReferenceEngine
        from repro.regex import compile_regex

        engine = ReferenceEngine(compile_regex(r"[0-9]\Q+.\E[0-9]"))
        assert engine.count_reports(b"1+.2") == 1
        assert engine.count_reports(b"1x.2") == 0

    def test_escapes_outside_quote_untouched(self):
        from repro.engines import ReferenceEngine
        from repro.regex import compile_regex

        engine = ReferenceEngine(compile_regex(r"\d\Q?\E"))
        assert engine.count_reports(b"5?") == 1
