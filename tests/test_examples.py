"""Example scripts: importable, and the fast ones run end to end."""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart.py", "virus_scan.py", "file_recovery.py"]


class TestExampleHygiene:
    def test_expected_examples_present(self):
        assert set(FAST_EXAMPLES) <= set(ALL_EXAMPLES)
        assert len(ALL_EXAMPLES) >= 7

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_defines_main(self, name):
        spec = importlib.util.spec_from_file_location(
            name.removesuffix(".py"), EXAMPLES_DIR / name
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(getattr(module, "main", None))

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_has_run_instructions(self, name):
        text = (EXAMPLES_DIR / name).read_text()
        assert "Run:" in text  # every example documents how to run it


class TestFastExamplesExecute:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_runs_cleanly(self, name):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert completed.returncode == 0, completed.stderr[-800:]
        assert completed.stdout.strip()
