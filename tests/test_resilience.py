"""Resilient-execution tests: guards, ladder, supervisor, checkpoints.

Fault injection is deterministic (:class:`repro.resilience.faults.FaultPlan`);
every recovery path is asserted to produce report streams *identical* to
the ReferenceEngine single-stream scan — degraded, never different.
"""

import concurrent.futures
import pickle

import pytest

from repro import telemetry
from repro.engines import BitsetEngine, ReferenceEngine, VectorEngine
from repro.engines.parallel import parallel_scan
from repro.errors import (
    CheckpointMismatch,
    EngineFailure,
    InputError,
    MemoryBudgetExceeded,
    ScanTimeout,
    WorkerCrash,
)
from repro.inputs.pcap import synthetic_pcap
from repro.regex import compile_regex
from repro.resilience import (
    FaultPlan,
    ScanBudget,
    ScanGuard,
    SupervisorConfig,
    SweepCheckpoint,
    guard_scope,
    inject_faults,
    ladder_from,
    resilient_scan,
    supervised_parallel_scan,
)

PATTERN = "(cmd\\.exe|SELECT|powershell|admin)"


@pytest.fixture()
def automaton():
    return compile_regex(PATTERN)


@pytest.fixture()
def data():
    return synthetic_pcap(120, seed=7)


@pytest.fixture()
def oracle(automaton, data):
    return fingerprints(ReferenceEngine(automaton).run(data))


def fingerprints(result):
    return [(r.offset, r.ident, repr(r.code)) for r in result.reports]


@pytest.fixture(autouse=True)
def _telemetry():
    was_enabled = telemetry.is_enabled()
    telemetry.enable()
    telemetry.reset()
    yield
    telemetry.reset()
    if not was_enabled:
        telemetry.disable()


def counter(name: str) -> int:
    return telemetry.snapshot()["counters"].get(name, 0)


class TestGuards:
    @pytest.mark.parametrize("engine_cls", [ReferenceEngine, VectorEngine, BitsetEngine])
    def test_exhausted_deadline_trips_every_engine(self, engine_cls, automaton, data):
        engine = engine_cls(automaton)
        with guard_scope(ScanGuard(ScanBudget(wall_s=0.0))):
            with pytest.raises(ScanTimeout):
                engine.run(data)
        assert counter("resilience.guard.timeout") >= 1

    def test_timeout_carries_context(self, automaton, data):
        with guard_scope(ScanGuard(ScanBudget(wall_s=0.0), segment=3)):
            with pytest.raises(ScanTimeout) as info:
                VectorEngine(automaton).run(data)
        assert info.value.engine == "vector"
        assert info.value.segment == 3

    def test_memo_budget_trips_lazydfa(self, automaton, data):
        from repro.engines.lazydfa import LazyDFAEngine

        engine = LazyDFAEngine(automaton)
        with guard_scope(ScanGuard(ScanBudget(memo_bytes=1024))):
            with pytest.raises(MemoryBudgetExceeded) as info:
                engine.run(data)
        assert info.value.engine == "lazydfa"
        assert info.value.used_bytes > info.value.budget_bytes
        assert counter("resilience.guard.memo_budget") == 1

    def test_unguarded_scan_unaffected(self, automaton, data, oracle):
        assert fingerprints(VectorEngine(automaton).run(data)) == oracle


class TestLadder:
    def test_no_fallback_when_healthy(self, automaton, data, oracle):
        outcome = resilient_scan(automaton, data)
        assert not outcome.degraded
        assert outcome.engine == "dfa"
        assert fingerprints(outcome.result) == oracle

    def test_memo_blowup_degrades_to_bitset(self, automaton, data, oracle):
        from repro.engines.cache import clear_engine_cache

        # A warm cached DFA has its memo built already (nothing left to
        # intern), so start cold: budget enforcement happens on growth.
        clear_engine_cache()
        plan = FaultPlan(memo_inflation=1e6)
        with inject_faults(plan):
            outcome = resilient_scan(
                automaton, data, budget=ScanBudget(memo_bytes=4096)
            )
        assert outcome.engine == "bitset"
        assert [name for name, _ in outcome.fallbacks] == ["dfa"]
        assert "MemoryBudgetExceeded" in outcome.fallbacks[0][1]
        assert fingerprints(outcome.result) == oracle
        assert counter("resilience.fallback.dfa") == 1
        assert counter("resilience.ladder.degraded") == 1

    def test_injected_failures_walk_down(self, automaton, data, oracle):
        with inject_faults(FaultPlan(fail_engines=frozenset({"dfa", "bitset"}))):
            outcome = resilient_scan(automaton, data)
        assert outcome.engine == "vector"
        assert len(outcome.fallbacks) == 2
        assert fingerprints(outcome.result) == oracle
        assert counter("resilience.fault.engine_failure") == 2

    def test_exhausted_ladder_raises_with_rung_details(self, automaton, data):
        with inject_faults(
            FaultPlan(fail_engines=frozenset({"dfa", "bitset", "vector", "reference"}))
        ):
            with pytest.raises(EngineFailure) as info:
                resilient_scan(automaton, data)
        message = str(info.value)
        for rung in ("dfa", "bitset", "vector", "reference"):
            assert rung in message

    def test_ladder_from(self):
        assert ladder_from("bitset") == ("bitset", "vector", "reference")
        assert ladder_from("reference") == ("reference",)
        assert ladder_from("weird") == ("weird",)

    def test_cache_never_holds_degraded_engine(self, automaton, data):
        from repro.engines.cache import clear_engine_cache, compiled_engine

        clear_engine_cache()
        with inject_faults(FaultPlan(fail_engines=frozenset({"dfa"}))):
            outcome = resilient_scan(automaton, data)
        assert outcome.engine == "bitset"
        # The dfa key must not have been populated with a bitset engine:
        # asking for the dfa engine now compiles a real LazyDFAEngine.
        from repro.engines.lazydfa import LazyDFAEngine

        assert type(compiled_engine(automaton, LazyDFAEngine)) is LazyDFAEngine
        assert type(compiled_engine(automaton, BitsetEngine)) is BitsetEngine


class TestSupervisor:
    def test_worker_crash_recovers_in_process(self, automaton, data, oracle):
        with inject_faults(FaultPlan(crash_segments=frozenset({1}))):
            outcome = supervised_parallel_scan(
                automaton, data, 4,
                config=SupervisorConfig(backoff_base_s=0.0, backoff_cap_s=0.0),
            )
        assert outcome.complete
        assert fingerprints(outcome.result) == oracle
        assert outcome.segments[1].attempts == 2
        assert counter("resilience.segment.crash") == 1
        assert counter("resilience.segment.retries") == 1

    def test_segment_timeout_on_thread_pool(self, automaton, data, oracle):
        plan = FaultPlan(stall_segments=frozenset({0}), stall_s=0.5)
        config = SupervisorConfig(
            segment_timeout_s=0.1, backoff_base_s=0.0, backoff_cap_s=0.0
        )
        with concurrent.futures.ThreadPoolExecutor(2) as pool:
            with inject_faults(plan):
                outcome = supervised_parallel_scan(
                    automaton, data, 3, pool=pool, config=config
                )
        assert outcome.complete
        assert fingerprints(outcome.result) == oracle
        assert counter("resilience.segment.timeout") == 1
        timed_out = outcome.segments[0]
        assert any("ScanTimeout" in failure for _, failure in timed_out.failures)

    def test_poison_segment_yields_partial_result(self, automaton, data, oracle):
        with inject_faults(FaultPlan(poison_segments=frozenset({2}))):
            outcome = supervised_parallel_scan(
                automaton, data, 4,
                config=SupervisorConfig(
                    max_attempts=2, backoff_base_s=0.0, backoff_cap_s=0.0
                ),
            )
        assert not outcome.complete
        assert [report.index for report in outcome.poisoned] == [2]
        assert counter("resilience.segment.poisoned") == 1
        # The partial result is exactly the oracle minus the quarantined
        # segment's keep range — other segments are unaffected.
        bad = outcome.segments[2].segment
        expected = [
            fp for fp in oracle if not bad.keep_from <= fp[0] < bad.end
        ]
        assert fingerprints(outcome.result) == expected

    def test_retries_degrade_down_ladder(self, automaton, data, oracle):
        # dfa fails everywhere: the pool attempt fails, the retry walks
        # the ladder and lands on bitset with identical reports.
        with inject_faults(FaultPlan(fail_engines=frozenset({"dfa"}))):
            outcome = supervised_parallel_scan(
                automaton, data, 3, engine="dfa",
                config=SupervisorConfig(backoff_base_s=0.0, backoff_cap_s=0.0),
            )
        assert outcome.complete
        assert outcome.degraded
        assert {report.engine for report in outcome.segments} == {"bitset"}
        assert fingerprints(outcome.result) == oracle

    def test_strict_mode_reraises_original_error(self, automaton, data):
        with inject_faults(FaultPlan(poison_segments=frozenset({0}))):
            with pytest.raises(EngineFailure):
                parallel_scan(automaton, data, 2)

    def test_process_pool_crash_recovers(self, automaton, data, oracle):
        plan = FaultPlan(crash_segments=frozenset({1}))
        config = SupervisorConfig(backoff_base_s=0.0, backoff_cap_s=0.0)
        with concurrent.futures.ProcessPoolExecutor(2) as pool:
            with inject_faults(plan):
                outcome = supervised_parallel_scan(
                    automaton, data, 3, pool=pool, config=config
                )
        assert outcome.complete
        assert fingerprints(outcome.result) == oracle
        assert counter("resilience.pool.broken") >= 1


class TestErrorPickling:
    @pytest.mark.parametrize(
        "error",
        [
            ScanTimeout("bitset", 4096, 1.5, segment=2),
            MemoryBudgetExceeded("lazydfa", 9000, 4096, offset=17),
            WorkerCrash(3, 2, "injected worker crash"),
            EngineFailure("dfa", "boom", segment=1, offset=5),
            InputError("/tmp/x.pcap", 24, "truncated record header"),
            CheckpointMismatch("/tmp/x.ckpt.json", "meta changed"),
        ],
    )
    def test_round_trip_preserves_context(self, error):
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is type(error)
        assert str(clone) == str(error)
        assert clone.__dict__ == error.__dict__


class TestCheckpoint:
    def test_records_resume_and_done(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        meta = {"names": ["a", "b"], "scale": 0.01}
        first = SweepCheckpoint.open(path, meta)
        first.record("a::x", {"value": 1})
        assert path.exists()

        resumed = SweepCheckpoint.open(path, meta, resume=True)
        assert resumed.resumed_cells == 1
        assert resumed.has("a::x") and resumed.get("a::x") == {"value": 1}
        assert not resumed.has("b::x")
        assert counter("resilience.resume.sweeps") == 1
        assert counter("resilience.resume.cells") == 1

        resumed.done()
        assert not path.exists()

    def test_meta_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        SweepCheckpoint.open(path, {"scale": 0.01}).record("c", {})
        with pytest.raises(CheckpointMismatch):
            SweepCheckpoint.open(path, {"scale": 0.02}, resume=True)

    def test_corrupt_journal_refuses_resume(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointMismatch):
            SweepCheckpoint.open(path, {}, resume=True)

    def test_fresh_open_ignores_stale_journal(self, tmp_path):
        path = tmp_path / "sweep.ckpt.json"
        SweepCheckpoint.open(path, {"scale": 0.01}).record("c", {"value": 2})
        fresh = SweepCheckpoint.open(path, {"scale": 0.01}, resume=False)
        assert not fresh.has("c")
