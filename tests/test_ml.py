"""Tests for the ML substrate: dataset, CART, forest, native inference."""

import numpy as np
import pytest

from repro.baselines import FlatTree, NativeForest
from repro.ml import DecisionTree, RandomForest, make_digits, select_features


@pytest.fixture(scope="module")
def digits():
    return make_digits(n_train=600, n_test=200, seed=42)


@pytest.fixture(scope="module")
def small_forest(digits):
    forest = RandomForest(n_trees=5, max_leaves=40, seed=7)
    forest.fit(digits.train_x, digits.train_y)
    return forest


class TestDataset:
    def test_shapes_and_dtype(self, digits):
        assert digits.train_x.shape == (600, 784)
        assert digits.train_x.dtype == np.uint8
        assert digits.n_classes == 10

    def test_balanced_classes(self, digits):
        counts = np.bincount(digits.train_y)
        assert counts.min() >= 55 and counts.max() <= 65

    def test_deterministic_by_seed(self):
        a = make_digits(n_train=50, n_test=10, seed=9)
        b = make_digits(n_train=50, n_test=10, seed=9)
        assert np.array_equal(a.train_x, b.train_x)

    def test_different_seeds_differ(self):
        a = make_digits(n_train=50, n_test=10, seed=1)
        b = make_digits(n_train=50, n_test=10, seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_digits_are_distinguishable(self, digits):
        # Mean images of distinct digits must differ substantially.
        mean0 = digits.train_x[digits.train_y == 0].mean(axis=0)
        mean1 = digits.train_x[digits.train_y == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).mean() > 10


class TestFeatureSelection:
    def test_returns_sorted_unique(self, digits):
        top = select_features(digits.train_x, digits.train_y, 100)
        assert len(top) == 100
        assert np.array_equal(top, np.unique(top))

    def test_k_too_large_rejected(self, digits):
        with pytest.raises(ValueError):
            select_features(digits.train_x, digits.train_y, 10_000)

    def test_more_features_capture_more_signal(self, digits):
        """Accuracy should not degrade when adding selected features."""
        small = select_features(digits.train_x, digits.train_y, 30)
        large = select_features(digits.train_x, digits.train_y, 200)
        accs = {}
        for name, feats in (("small", small), ("large", large)):
            forest = RandomForest(n_trees=5, max_leaves=50, seed=3)
            forest.fit(digits.train_x[:, feats], digits.train_y)
            accs[name] = forest.accuracy(digits.test_x[:, feats], digits.test_y)
        assert accs["large"] >= accs["small"] - 0.02


class TestDecisionTree:
    def test_fits_simple_separable_data(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 256, size=(200, 4)).astype(np.uint8)
        y = (x[:, 2] > 127).astype(np.int64)
        tree = DecisionTree(max_leaves=4).fit(x, y)
        assert (tree.predict(x) == y).mean() == 1.0

    def test_respects_max_leaves(self, digits):
        tree = DecisionTree(max_leaves=10).fit(digits.train_x, digits.train_y)
        assert 2 <= tree.leaf_count() <= 10

    def test_max_leaves_validation(self):
        with pytest.raises(ValueError):
            DecisionTree(max_leaves=1).fit(
                np.zeros((4, 2), dtype=np.uint8), np.array([0, 1, 0, 1])
            )

    def test_requires_uint8(self):
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((4, 2)), np.array([0, 1, 0, 1]))

    @pytest.mark.slow
    def test_more_leaves_fit_better(self, digits):
        small = DecisionTree(max_leaves=8, seed=1).fit(digits.train_x, digits.train_y)
        large = DecisionTree(max_leaves=120, seed=1).fit(digits.train_x, digits.train_y)
        acc_small = (small.predict(digits.train_x) == digits.train_y).mean()
        acc_large = (large.predict(digits.train_x) == digits.train_y).mean()
        assert acc_large > acc_small

    @pytest.mark.slow
    def test_paths_partition_feature_space(self, digits):
        """Every sample follows exactly one root-to-leaf path."""
        tree = DecisionTree(max_leaves=20, seed=2).fit(digits.train_x, digits.train_y)
        paths = tree.paths()
        assert len(paths) == tree.leaf_count()
        for sample in digits.test_x[:50]:
            matching = [
                p
                for p in paths
                if all(lo <= sample[f] <= hi for f, (lo, hi) in p.bounds)
            ]
            assert len(matching) == 1
            assert matching[0].label == tree.predict_one(sample)

    def test_pure_node_not_split(self):
        x = np.zeros((10, 3), dtype=np.uint8)
        y = np.zeros(10, dtype=np.int64)
        tree = DecisionTree(max_leaves=8).fit(x, y)
        assert tree.leaf_count() == 1


class TestRandomForest:
    def test_accuracy_reasonable(self, digits, small_forest):
        acc = small_forest.accuracy(digits.test_x, digits.test_y)
        assert acc > 0.55  # 10-class problem; chance is 0.1

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForest().predict(np.zeros((1, 4), dtype=np.uint8))

    def test_all_paths_enumerates_every_leaf(self, small_forest):
        assert len(small_forest.all_paths()) == small_forest.total_leaves()

    @pytest.mark.slow
    def test_forest_beats_single_tree(self, digits):
        tree = DecisionTree(max_leaves=40, seed=7).fit(digits.train_x, digits.train_y)
        tree_acc = (tree.predict(digits.test_x) == digits.test_y).mean()
        forest = RandomForest(n_trees=9, max_leaves=40, seed=7)
        forest.fit(digits.train_x, digits.train_y)
        forest_acc = forest.accuracy(digits.test_x, digits.test_y)
        assert forest_acc >= tree_acc - 0.02


class TestNativeForest:
    def test_flat_tree_matches_recursive(self, digits, small_forest):
        tree = small_forest.trees[0]
        flat = FlatTree.from_tree(tree)
        assert np.array_equal(flat.predict(digits.test_x), tree.predict(digits.test_x))

    def test_native_forest_matches_python(self, digits, small_forest):
        native = NativeForest(small_forest)
        assert np.array_equal(
            native.predict(digits.test_x), small_forest.predict(digits.test_x)
        )

    def test_parallel_matches_serial_small_batch(self, digits, small_forest):
        native = NativeForest(small_forest)
        x = digits.test_x[:8]
        assert np.array_equal(native.predict_parallel(x, 4), native.predict(x))
