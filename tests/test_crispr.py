"""CRISPR benchmark tests against brute-force oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import levenshtein_matches
from repro.benchmarks.crispr import (
    GUIDE_LENGTH,
    cas_off_filter,
    cas_ot_filter,
    generate_guides,
)
from repro.engines import ReferenceEngine, VectorEngine
from repro.inputs.dna import random_dna


def off_oracle(guide: bytes, data: bytes, mismatches: int) -> set[int]:
    """End offsets where guide (<= mismatches) + PAM (NGG) matches."""
    out = set()
    l = len(guide)
    for start in range(len(data) - l - 2):
        window = data[start : start + l]
        if sum(a != b for a, b in zip(window, guide)) <= mismatches:
            pam = data[start + l : start + l + 3]
            if pam[1:] == b"GG":
                out.add(start + l + 2)
    return out


dna = st.text(alphabet="ACGT", max_size=40).map(str.encode)
guides = st.text(alphabet="ACGT", min_size=4, max_size=8).map(str.encode)


class TestCasOff:
    def test_exact_target_with_pam(self):
        guide = b"ACGTACGT"
        automaton = cas_off_filter(guide, 0, guide_id=1)
        data = b"TT" + guide + b"AGG" + b"TT"
        reports = ReferenceEngine(automaton).run(data).reports
        assert [r.offset for r in reports] == [2 + len(guide) + 2]
        assert reports[0].code == (1, 0)

    def test_requires_pam(self):
        guide = b"ACGTACGT"
        automaton = cas_off_filter(guide, 1)
        assert ReferenceEngine(automaton).run(b"TT" + guide + b"ATT").reports == []

    def test_mismatch_count_in_report(self):
        guide = b"ACGTACGT"
        automaton = cas_off_filter(guide, 2, guide_id="g")
        mutated = b"ACGTACGA"  # one mismatch at the end
        reports = ReferenceEngine(automaton).run(mutated + b"TGG").reports
        assert {r.code for r in reports} == {("g", 1)}

    @settings(max_examples=50, deadline=None)
    @given(guide=guides, data=dna, mismatches=st.integers(0, 2))
    def test_matches_bruteforce_oracle(self, guide, data, mismatches):
        automaton = cas_off_filter(guide, mismatches)
        got = {r.offset for r in ReferenceEngine(automaton).run(data).reports}
        assert got == off_oracle(guide, data, mismatches)


class TestCasOt:
    def test_tolerates_bulge(self):
        guide = b"ACGTACGTAC"
        automaton = cas_ot_filter(guide, 1)
        # one deletion in the guide region plus the PAM-ish tail
        target = guide[:4] + guide[5:] + b"AGG"
        assert VectorEngine(automaton).run(b"TT" + target).report_count > 0

    def test_semantics_are_edit_distance(self):
        guide = b"ACGTAC"
        automaton = cas_ot_filter(guide, 1)
        pattern = guide + b"AGG"
        data = random_dna(300, seed=8)
        got = sorted({r.offset for r in VectorEngine(automaton).run(data).reports})
        assert got == levenshtein_matches(pattern, data, 2)

    def test_ot_larger_than_off(self):
        guide = generate_guides(1, seed=0)[0]
        off = cas_off_filter(guide, 3)
        ot = cas_ot_filter(guide, 2)
        assert ot.n_states > off.n_states


class TestGuides:
    def test_paper_problem_size(self):
        guides = generate_guides(seed=1)
        assert len(guides) == 2000
        assert all(len(g) == GUIDE_LENGTH for g in guides)

    def test_guides_are_dna(self):
        for guide in generate_guides(10, seed=2):
            assert set(guide) <= set(b"ACGT")
