"""ClamAV signature substrate and benchmark tests."""

import pytest

from repro.benchmarks.clamav import (
    build_clamav_benchmark,
    generate_signature_db,
    materialize_signature,
)
from repro.clamav import hex_sig_to_regex, parse_database, parse_signature
from repro.engines import ReferenceEngine, VectorEngine
from repro.errors import PatternError
from repro.regex import compile_regex


def matches(regex: str, data: bytes) -> bool:
    return ReferenceEngine(compile_regex(regex)).count_reports(data) > 0


class TestSignatureParsing:
    def test_basic_line(self):
        sig = parse_signature("Win.Test.A:0:*:deadbeef")
        assert sig.name == "Win.Test.A"
        assert sig.target_type == 0
        assert not sig.anchored
        assert sig.hex_sig == "deadbeef"

    def test_anchored_offset(self):
        sig = parse_signature("X:0:2:cafe")
        assert sig.anchored
        regex = sig.to_regex()
        assert regex.startswith("^")
        assert matches(regex, b"\x00\x01\xca\xfe")
        assert not matches(regex, b"\xca\xfe")

    def test_database_parsing(self):
        db = parse_database("# comment\nA:0:*:aabb\n\nB:1:*:ccdd\n")
        assert [s.name for s in db] == ["A", "B"]

    def test_errors(self):
        for bad in ["nocolons", "A:0:*", "A:x:*:aa", "A:0:q:aa", ":0:*:aa"]:
            with pytest.raises(PatternError):
                parse_signature(bad)


class TestHexSigConversion:
    def test_plain_bytes(self):
        assert matches(hex_sig_to_regex("deadbeef"), b"\xde\xad\xbe\xef")

    def test_wildcard_byte(self):
        regex = hex_sig_to_regex("aa??bb")
        assert matches(regex, b"\xaa\x42\xbb")
        assert not matches(regex, b"\xaa\xbb")

    def test_nibble_wildcards(self):
        regex = hex_sig_to_regex("a?")
        assert matches(regex, b"\xa5")
        assert not matches(regex, b"\x5a")

    def test_gap_star_clamped(self):
        regex = hex_sig_to_regex("aa*bb", max_unbounded_gap=3)
        assert matches(regex, b"\xaa\x01\x02\xbb")
        assert not matches(regex, b"\xaa" + b"\x00" * 8 + b"\xbb")

    def test_bounded_jump(self):
        regex = hex_sig_to_regex("aa{1-2}bb")
        assert matches(regex, b"\xaa\x00\xbb")
        assert matches(regex, b"\xaa\x00\x00\xbb")
        assert not matches(regex, b"\xaa\xbb")

    def test_alternation(self):
        regex = hex_sig_to_regex("(aabb|ccdd)ee")
        assert matches(regex, b"\xaa\xbb\xee")
        assert matches(regex, b"\xcc\xdd\xee")
        assert not matches(regex, b"\xaa\xdd\xee")

    def test_errors(self):
        with pytest.raises(PatternError):
            hex_sig_to_regex("")
        with pytest.raises(PatternError):
            hex_sig_to_regex("a")
        with pytest.raises(PatternError):
            hex_sig_to_regex("aa{3-1}bb")


class TestMaterialization:
    @pytest.mark.parametrize("seed", range(4))
    def test_materialized_bytes_match_signature(self, seed):
        for sig in generate_signature_db(12, seed=seed):
            blob = materialize_signature(sig, seed=seed)
            assert matches(sig.to_regex(), blob), sig.hex_sig


class TestClamAVBenchmark:
    @pytest.fixture(scope="class")
    def clamav_bench(self):
        return build_clamav_benchmark(n_signatures=25, seed=3, n_files=6)

    def test_detects_both_planted_fragments(self, clamav_bench):
        result = VectorEngine(clamav_bench.automaton).run(clamav_bench.image.data)
        detected = {event.code for event in result.reports}
        assert set(clamav_bench.planted) <= detected

    def test_full_database_compiled(self, clamav_bench):
        components = clamav_bench.automaton.connected_components()
        assert len(components) == len(clamav_bench.signatures)

    def test_ground_truth_labels(self, clamav_bench):
        virus_entries = [
            e for e in clamav_bench.image.entries if e.kind.startswith("virus:")
        ]
        assert len(virus_entries) == 2

    def test_image_contains_ordinary_files(self, clamav_bench):
        kinds = {e.kind for e in clamav_bench.image.entries}
        assert len(kinds - {f"virus:{n}" for n in clamav_bench.planted}) >= 3
