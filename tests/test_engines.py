"""Behavioural tests for all engines against hand-computed expectations."""

import pytest

from repro.core import Automaton, CharSet, CounterMode, StartMode
from repro.engines import BitsetEngine, LazyDFAEngine, ReferenceEngine, VectorEngine
from repro.errors import CapacityError, EngineError

ENGINES = [ReferenceEngine, VectorEngine, BitsetEngine, LazyDFAEngine]
COUNTER_ENGINES = [ReferenceEngine, VectorEngine, BitsetEngine]


def unanchored_literal(pattern: str, code=None) -> Automaton:
    """Automaton reporting every occurrence of ``pattern`` in the stream."""
    a = Automaton(f"lit:{pattern}")
    prev = None
    for i, ch in enumerate(pattern):
        start = StartMode.ALL_INPUT if i == 0 else StartMode.NONE
        a.add_ste(
            f"s{i}",
            CharSet.from_chars(ch),
            start=start,
            report=i == len(pattern) - 1,
            report_code=code,
        )
        if prev is not None:
            a.add_edge(prev, f"s{i}")
        prev = f"s{i}"
    return a


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestBasicSemantics:
    def test_literal_match_offsets(self, engine_cls):
        eng = engine_cls(unanchored_literal("ab"))
        result = eng.run(b"xxabyabzab")
        assert [r.offset for r in result.reports] == [3, 6, 9]

    def test_overlapping_matches(self, engine_cls):
        eng = engine_cls(unanchored_literal("aa"))
        result = eng.run(b"aaaa")
        assert [r.offset for r in result.reports] == [1, 2, 3]

    def test_anchored_start_of_data(self, engine_cls):
        a = Automaton()
        a.add_ste("s0", CharSet.from_chars("a"), start=StartMode.START_OF_DATA)
        a.add_ste("s1", CharSet.from_chars("b"), report=True)
        a.add_edge("s0", "s1")
        eng = engine_cls(a)
        assert eng.count_reports(b"ab") == 1
        assert eng.count_reports(b"xab") == 0
        assert eng.count_reports(b"abab") == 1

    def test_empty_input(self, engine_cls):
        eng = engine_cls(unanchored_literal("a"))
        result = eng.run(b"")
        assert result.reports == [] and result.cycles == 0

    def test_no_match(self, engine_cls):
        eng = engine_cls(unanchored_literal("xyz"))
        assert eng.count_reports(b"aaaaaa") == 0

    def test_report_code_carried(self, engine_cls):
        eng = engine_cls(unanchored_literal("a", code="RULE7"))
        assert eng.run(b"a").reports[0].code == "RULE7"

    def test_branching_automaton(self, engine_cls):
        # s0(a) -> s1(b)! and s0(a) -> s2(c)!
        a = Automaton()
        a.add_ste("s0", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_ste("s1", CharSet.from_chars("b"), report=True, report_code="b")
        a.add_ste("s2", CharSet.from_chars("c"), report=True, report_code="c")
        a.add_edge("s0", "s1")
        a.add_edge("s0", "s2")
        eng = engine_cls(a)
        codes = [r.code for r in eng.run(b"abac").reports]
        assert codes == ["b", "c"]

    def test_self_loop(self, engine_cls):
        # a+b matcher: s0(a, self-loop) -> s1(b)!
        a = Automaton()
        a.add_ste("s0", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_ste("s1", CharSet.from_chars("b"), report=True)
        a.add_edge("s0", "s0")
        a.add_edge("s0", "s1")
        eng = engine_cls(a)
        assert [r.offset for r in eng.run(b"aaab").reports] == [3]
        assert eng.count_reports(b"b") == 0

    def test_charset_class_state(self, engine_cls):
        a = Automaton()
        a.add_ste(
            "digit",
            CharSet.from_ranges([(0x30, 0x39)]),
            start=StartMode.ALL_INPUT,
            report=True,
        )
        eng = engine_cls(a)
        assert eng.count_reports(b"a1b22c") == 3

    def test_run_result_reporting_cycles(self, engine_cls):
        eng = engine_cls(unanchored_literal("a"))
        assert eng.run(b"aba").reporting_cycles() == {0, 2}


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestActiveSet:
    def test_active_set_recorded(self, engine_cls):
        eng = engine_cls(unanchored_literal("ab"))
        result = eng.run(b"aab", record_active=True)
        assert len(result.active_per_cycle) == 3
        # cycle 0: only the all-input state; cycles 1,2: all-input + s1.
        assert result.active_per_cycle[0] == 1
        assert result.active_per_cycle[1] == 2

    def test_mean_active_set(self, engine_cls):
        eng = engine_cls(unanchored_literal("ab"))
        result = eng.run(b"aab", record_active=True)
        assert result.mean_active_set == pytest.approx((1 + 2 + 2) / 3)


@pytest.mark.parametrize("engine_cls", COUNTER_ENGINES)
class TestCounters:
    def make(self, target, mode):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c", target, mode=mode, report=True, report_code="fired")
        a.add_edge("s", "c")
        return a

    def test_latch_counter(self, engine_cls):
        eng = engine_cls(self.make(3, CounterMode.LATCH))
        offsets = [r.offset for r in eng.run(b"aaaaa").reports]
        # Fires when the third 'a' arrives, then on every later count event.
        assert offsets == [2, 3, 4]

    def test_rollover_counter(self, engine_cls):
        eng = engine_cls(self.make(2, CounterMode.ROLLOVER))
        offsets = [r.offset for r in eng.run(b"aaaaaa").reports]
        assert offsets == [1, 3, 5]

    def test_stop_counter(self, engine_cls):
        eng = engine_cls(self.make(2, CounterMode.STOP))
        offsets = [r.offset for r in eng.run(b"aaaaaa").reports]
        assert offsets == [1]

    def test_counter_enables_successor(self, engine_cls):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c", 2, mode=CounterMode.STOP)
        a.add_ste("t", CharSet.from_chars("b"), report=True)
        a.add_edge("s", "c")
        a.add_edge("c", "t")
        eng = engine_cls(a)
        # counter hits 2 on the second 'a'; 't' enabled next cycle.
        assert [r.offset for r in eng.run(b"aab").reports] == [2]
        assert eng.count_reports(b"ab") == 0

    def test_one_count_event_per_cycle(self, engine_cls):
        # Two predecessors matching in the same cycle = one count event.
        a = Automaton()
        a.add_ste("s1", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_ste("s2", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c", 2, mode=CounterMode.STOP, report=True)
        a.add_edge("s1", "c")
        a.add_edge("s2", "c")
        eng = engine_cls(a)
        assert [r.offset for r in eng.run(b"aa").reports] == [1]


class TestBitsetSpecifics:
    def test_capacity_cap_enforced(self):
        # Successor bitmasks are quadratic, so construction refuses large
        # automata instead of silently eating memory.
        with pytest.raises(CapacityError):
            BitsetEngine(unanchored_literal("abcd"), max_states=2)

    def test_raised_cap_accepted(self):
        eng = BitsetEngine(unanchored_literal("ab"), max_states=2)
        assert eng.count_reports(b"xabx") == 1


class TestLazyDFASpecifics:
    def test_rejects_counters(self):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c", 2)
        a.add_edge("s", "c")
        with pytest.raises(EngineError):
            LazyDFAEngine(a)

    def test_state_budget_enforced(self):
        # The classic `a.{10}b` pattern: the DFA must remember which of the
        # last 10 positions held an 'a' -> up to 2^10 subsets.
        a = Automaton()
        a.add_ste("s0", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        prev = "s0"
        for i in range(10):
            a.add_ste(f"w{i}", CharSet.all_bytes())
            a.add_edge(prev, f"w{i}")
            prev = f"w{i}"
        a.add_ste("end", CharSet.from_chars("b"), report=True)
        a.add_edge(prev, "end")
        import random

        rng = random.Random(7)
        data = bytes(rng.choice(b"ab") for _ in range(2000))
        eng = LazyDFAEngine(a, max_dfa_states=64)
        with pytest.raises(CapacityError):
            eng.run(data)

    def test_memoisation_reused_across_runs(self):
        eng = LazyDFAEngine(unanchored_literal("ab"))
        eng.run(b"abababab")
        states_after_first = eng.dfa_state_count
        eng.run(b"abababab")
        assert eng.dfa_state_count == states_after_first
