"""Sequence-matching automata vs the reference support-counting kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.seqmatch import (
    PAD,
    count_support,
    encode_database,
    generate_database,
    generate_patterns,
    pattern_supported,
    sequence_pattern_automaton,
)
from repro.engines import ReferenceEngine, VectorEngine


def support_via_automaton(pattern, database, **kwargs):
    automaton = sequence_pattern_automaton(pattern, **kwargs)
    data = encode_database(database)
    return VectorEngine(automaton).run(data).report_count


class TestReferenceKernel:
    def test_simple_containment(self):
        assert pattern_supported([[1], [2]], [[1], [2]])
        assert pattern_supported([[1], [2]], [[3, 7], [1, 5], [9], [2]])

    def test_order_matters(self):
        assert not pattern_supported([[2], [1]], [[1], [2]])

    def test_subset_within_single_itemset(self):
        assert pattern_supported([[1, 3]], [[1, 2, 3]])
        assert not pattern_supported([[1, 3]], [[1, 2], [3]])

    def test_strictly_increasing_indices(self):
        # both pattern itemsets cannot map to the same sequence itemset
        assert not pattern_supported([[1], [1]], [[1]])
        assert pattern_supported([[1], [1]], [[1], [1]])


class TestPatternAutomaton:
    def test_single_itemset_exact(self):
        db = [[[1, 2, 3]], [[1, 3]], [[2, 3]]]
        assert support_via_automaton([[1, 3]], db) == 2

    def test_two_itemsets_in_order(self):
        db = [
            [[1], [2]],  # supported
            [[2], [1]],  # wrong order
            [[1, 2]],  # same itemset: not a sequence of two
            [[5], [1, 9], [4], [2, 8]],  # supported with gaps
        ]
        assert support_via_automaton([[1], [2]], db) == 2

    def test_subset_cannot_span_itemsets(self):
        db = [[[1, 5], [7]], [[1, 5, 7]]]
        assert support_via_automaton([[1, 7]], db) == 1

    def test_skip_items_within_itemset(self):
        db = [[[1, 2, 3, 4, 5, 6]]]
        assert support_via_automaton([[1, 4, 6]], db) == 1

    def test_one_report_per_sequence(self):
        # pattern occurs twice within one sequence; support counts once
        db = [[[1], [2], [1], [2]]]
        assert support_via_automaton([[1], [2]], db) == 1

    def test_report_code_is_pattern_id(self):
        automaton = sequence_pattern_automaton([[1]], pattern_id="P0")
        data = encode_database([[[1]]])
        assert ReferenceEngine(automaton).run(data).reports[0].code == "P0"

    def test_validation(self):
        with pytest.raises(ValueError):
            sequence_pattern_automaton([])
        with pytest.raises(ValueError):
            sequence_pattern_automaton([[]])
        with pytest.raises(ValueError):
            sequence_pattern_automaton([[3, 1]])
        with pytest.raises(ValueError):
            sequence_pattern_automaton([[0]])
        with pytest.raises(ValueError):
            sequence_pattern_automaton([[1, 2, 3]], pad_to_width=2)

    @settings(max_examples=40, deadline=None)
    @given(
        pattern=st.lists(
            st.lists(st.integers(1, 6), min_size=1, max_size=3, unique=True).map(sorted),
            min_size=1,
            max_size=3,
        ),
        seed=st.integers(0, 50),
    )
    def test_support_matches_oracle_property(self, pattern, seed):
        database = generate_database(
            12, n_items=6, sets_per_sequence=(1, 5), items_per_set=(1, 4), seed=seed
        )
        expected = count_support(pattern, database)
        assert support_via_automaton(pattern, database) == expected


class TestCounterVariant:
    def test_counter_fires_at_threshold(self):
        db = [[[1], [2]]] * 5
        automaton = sequence_pattern_automaton(
            [[1], [2]], with_counter=True, min_support=3, pattern_id="pat"
        )
        result = VectorEngine(automaton).run(encode_database(db))
        assert result.report_count == 1  # STOP counter: exactly once
        # fires on the 3rd supported sequence's separator
        assert result.reports[0].code == "pat"

    def test_counter_not_fired_below_threshold(self):
        db = [[[1], [2]]] * 2 + [[[9]]] * 4
        automaton = sequence_pattern_automaton(
            [[1], [2]], with_counter=True, min_support=3
        )
        assert VectorEngine(automaton).run(encode_database(db)).report_count == 0

    def test_counter_reduces_reports(self):
        db = [[[1], [2]]] * 10
        plain = support_via_automaton([[1], [2]], db)
        counted = sequence_pattern_automaton([[1], [2]], with_counter=True, min_support=5)
        counted_reports = VectorEngine(counted).run(encode_database(db)).report_count
        assert plain == 10 and counted_reports == 1


class TestPaddedVariant:
    def test_reports_unchanged(self):
        database = generate_database(30, n_items=10, seed=3)
        pattern = generate_patterns(1, p=3, w=3, n_items=10, seed=3)[0]
        plain = support_via_automaton(pattern, database)
        padded = support_via_automaton(pattern, database, pad_to_width=10)
        assert plain == padded

    def test_padding_adds_states(self):
        pattern = [[1, 2], [3]]
        plain = sequence_pattern_automaton(pattern)
        padded = sequence_pattern_automaton(pattern, pad_to_width=10)
        assert padded.n_states > plain.n_states
        pad_states = [s for s in padded.stes() if PAD in s.charset]
        assert len(pad_states) == (10 - 2) + (10 - 1)

    def test_padding_inflates_active_set(self):
        database = generate_database(50, n_items=10, seed=1)
        pattern = generate_patterns(1, p=3, w=4, n_items=10, seed=2)[0]
        data = encode_database(database)
        plain = VectorEngine(sequence_pattern_automaton(pattern)).run(
            data, record_active=True
        )
        padded = VectorEngine(
            sequence_pattern_automaton(pattern, pad_to_width=10)
        ).run(data, record_active=True)
        assert padded.mean_active_set > plain.mean_active_set


class TestGenerators:
    def test_database_shape(self):
        db = generate_database(20, n_items=10, seed=0)
        assert len(db) == 20
        assert all(all(s == sorted(set(s)) for s in seq) for seq in db)

    def test_database_deterministic(self):
        assert generate_database(5, seed=4) == generate_database(5, seed=4)

    def test_pattern_shape(self):
        patterns = generate_patterns(7, p=6, w=6, seed=0)
        assert len(patterns) == 7
        assert all(len(p) == 6 for p in patterns)
        assert all(1 <= len(s) <= 6 for p in patterns for s in p)

    def test_encode_roundtrip_structure(self):
        db = [[[1, 2], [3]], [[4]]]
        assert encode_database(db) == bytes([1, 2, 254, 3, 255, 4, 255])

    def test_some_patterns_have_support(self):
        db = generate_database(200, n_items=20, seed=5)
        patterns = generate_patterns(30, p=2, w=2, n_items=20, seed=5)
        assert any(count_support(p, db) > 0 for p in patterns)

    def test_item_universe_validation(self):
        with pytest.raises(ValueError):
            generate_database(1, n_items=400)
