"""Suite self-verification tests (and that it catches real breakage)."""

import pytest

from repro.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.benchmarks.spec import Benchmark
from repro.benchmarks.verify import verify_benchmark
from repro.core import Automaton, CharSet, StartMode


class TestHealthySuite:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_verifies_clean(self, name):
        bench = build_benchmark(name, scale=0.004, seed=11)
        assert verify_benchmark(bench) == []


class TestDetectsBreakage:
    def test_empty_automaton_flagged(self):
        bench = Benchmark(
            name="Broken",
            domain="test",
            input_desc="x",
            automaton=Automaton(),
            input_data=b"abc",
        )
        problems = verify_benchmark(bench)
        assert any("empty" in p for p in problems)

    def test_missing_planted_virus_flagged(self):
        bench = build_benchmark("ClamAV", scale=0.004, seed=11)
        bench.meta["planted"] = ["Not.A.Real.Signature"]
        problems = verify_benchmark(bench)
        assert any("not detected" in p for p in problems)

    def test_dead_input_flagged(self):
        bench = build_benchmark("Protomata", scale=0.004, seed=11)
        bench.input_data = b"\x00" * 500  # not amino acids: nothing activates
        problems = verify_benchmark(bench)
        assert any("never activates" in p for p in problems)

    def test_prng_report_miscount_flagged(self):
        bench = build_benchmark("AP PRNG 4-sided", scale=0.004, seed=11)
        # break a chain: remove one reporting state
        reporter = next(e.ident for e in bench.automaton.reporting_elements())
        bench.automaton.remove_element(reporter)
        problems = verify_benchmark(bench)
        assert any("faces" in p for p in problems)

    def test_invalid_structure_flagged(self):
        a = Automaton()
        a.add_ste("orphan", CharSet.from_chars("a"), report=True)
        bench = Benchmark(
            name="Structurally broken",
            domain="test",
            input_desc="x",
            automaton=a,
            input_data=b"abc",
        )
        problems = verify_benchmark(bench)
        assert any("validation" in p for p in problems)

    def test_hamming_rate_breakage_flagged(self):
        bench = build_benchmark("Hamming 18x3", scale=0.004, seed=11)
        # lie about the parameters: claim d=10 filters (which would match
        # constantly) while the automaton only matches at d<=3
        bench.meta["l"] = 18
        bench.meta["d"] = 14
        problems = verify_benchmark(bench)
        assert problems
