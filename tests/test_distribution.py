"""Suite distribution (export/load) tests."""

import json

import pytest

from repro.distribution import export_suite, load_benchmark, load_manifest, slugify
from repro.engines import VectorEngine


class TestSlugify:
    def test_names(self):
        assert slugify("Hamming 18x3") == "hamming-18x3"
        assert slugify("Seq. Match 6w 6p wC") == "seq-match-6w-6p-wc"
        assert slugify("AP PRNG 4-sided") == "ap-prng-4-sided"

    def test_degenerate(self):
        assert slugify("!!!") == "benchmark"


class TestExportLoad:
    NAMES = ["Hamming 18x3", "Seq. Match 6w 6p wC", "File Carving"]

    @pytest.fixture(scope="class")
    def suite_dir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("zoo")
        export_suite(root, scale=0.004, seed=5, names=self.NAMES)
        return root

    def test_layout(self, suite_dir):
        assert (suite_dir / "manifest.json").exists()
        for name in self.NAMES:
            d = suite_dir / slugify(name)
            assert (d / "automaton.mnrl").exists()
            assert (d / "input.bin").exists()
            assert (d / "benchmark.json").exists()

    def test_manifest_contents(self, suite_dir):
        manifest = load_manifest(suite_dir)
        assert manifest["scale"] == 0.004
        assert [b["name"] for b in manifest["benchmarks"]] == self.NAMES
        for row in manifest["benchmarks"]:
            assert row["states"] > 0
            assert row["input_bytes"] > 0

    def test_roundtrip_behaviour(self, suite_dir):
        from repro.benchmarks import build_benchmark

        original = build_benchmark("Hamming 18x3", scale=0.004, seed=5)
        loaded = load_benchmark(suite_dir, "Hamming 18x3")
        assert loaded.input_data == original.input_data
        assert loaded.states == original.states
        data = original.input_data[:3000]
        original_reports = [
            (r.offset, repr(r.code))
            for r in VectorEngine(original.automaton).run(data).reports
        ]
        loaded_reports = [
            (r.offset, repr(r.code))
            for r in VectorEngine(loaded.automaton).run(data).reports
        ]
        assert loaded_reports == original_reports

    def test_counter_benchmark_roundtrips(self, suite_dir):
        loaded = load_benchmark(suite_dir, "Seq. Match 6w 6p wC")
        assert sum(1 for _ in loaded.automaton.counters()) > 0

    def test_missing_benchmark(self, suite_dir):
        with pytest.raises(FileNotFoundError):
            load_benchmark(suite_dir, "Fermi")

    def test_metadata_json_safe(self, suite_dir):
        record = json.loads(
            (suite_dir / slugify("File Carving") / "benchmark.json").read_text()
        )
        json.dumps(record)  # fully serialisable


class TestExportedSuiteVerifies:
    def test_loaded_benchmark_passes_self_check(self, tmp_path):
        from repro.benchmarks.verify import verify_benchmark

        export_suite(tmp_path, scale=0.004, seed=3, names=["ClamAV"])
        loaded = load_benchmark(tmp_path, "ClamAV")
        assert verify_benchmark(loaded) == []
