"""Static analyzer tests: the diagnostics model, each built-in pass,
fault injection (seeded defects must surface with their specific codes),
the registry lint gate, transform preconditions, the conformance
cross-check, and the ``repro lint`` CLI."""

import json

import pytest

from repro.analysis import (
    BENCHMARK_SUPPRESSIONS,
    DEFAULT_PASSES,
    PASS_REGISTRY,
    AnalysisReport,
    Diagnostic,
    Severity,
    analyze,
    lint_benchmark,
    structural_summary,
)
from repro.analysis.crosscheck import claim_violations, crosscheck
from repro.analysis.preconditions import (
    check_merge,
    check_stride,
    check_widen,
    require,
)
from repro.benchmarks.registry import BENCHMARK_NAMES, build_benchmark
from repro.cli import main
from repro.conformance.generator import random_case
from repro.conformance.goldens import GOLDEN_SCALE, GOLDEN_SEED
from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import StartMode
from repro.errors import (
    AutomatonError,
    LintError,
    TransformPreconditionError,
)
from repro.io import mnrl_dumps
from repro.transforms import merge_common_prefixes, stride, widen


def chain(n=3, *, report_last=True) -> Automaton:
    """A clean start -> ... -> report chain; lints with no findings."""
    a = Automaton("chain")
    for i in range(n):
        a.add_ste(
            f"s{i}",
            CharSet.from_chars(b"a"),
            start=StartMode.ALL_INPUT if i == 0 else StartMode.NONE,
            report=report_last and i == n - 1,
            report_code=1,
        )
    for i in range(n - 1):
        a.add_edge(f"s{i}", f"s{i + 1}")
    return a


class TestDiagnosticsModel:
    def test_severity_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("WARNING") is Severity.WARNING
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_report_filters_and_suppressions(self):
        diag = lambda code, sev: Diagnostic(code, sev, ("x",), "msg")
        report = AnalysisReport(
            "t",
            diagnostics=[
                diag("AZ201", Severity.ERROR),
                diag("AZ101", Severity.WARNING),
            ],
        )
        assert [d.code for d in report.errors] == ["AZ201"]
        assert report.max_severity is Severity.ERROR
        suppressed = report.apply_suppressions({"AZ201"})
        assert suppressed.codes() == {"AZ101"}
        assert [d.code for d in suppressed.suppressed] == ["AZ201"]
        assert suppressed.max_severity is Severity.WARNING

    def test_to_dict_shape(self):
        report = analyze(chain())
        payload = report.to_dict()
        assert payload["automaton"] == "chain"
        assert payload["counts"] == {"info": 1, "warning": 0, "error": 0}
        assert payload["diagnostics"][0]["code"] == "AZ001"

    def test_clean_chain_has_only_structure_info(self):
        report = analyze(chain())
        assert report.codes() == {"AZ001"}
        assert not report.errors and not report.warnings
        assert report.passes_run == DEFAULT_PASSES

    def test_unknown_pass_rejected(self):
        with pytest.raises(KeyError, match="unknown analysis pass"):
            analyze(chain(), passes=["no-such-pass"])

    def test_precondition_passes_registered_but_not_default(self):
        assert "precondition:stride" in PASS_REGISTRY
        assert "precondition:stride" not in DEFAULT_PASSES


class TestReachabilityPass:
    def test_dead_plain_state_az101(self):
        a = chain()
        a.add_ste("orphan", CharSet.from_chars(b"a"))
        a.add_ste("orphan2", CharSet.from_chars(b"b"))
        a.add_edge("orphan", "orphan2")
        a.add_edge("orphan2", "s1")  # connected component, still dead
        report = analyze(a)
        assert report.element_ids("AZ101") == {"orphan", "orphan2"}

    def test_dead_reporting_state_az102_is_error(self):
        a = chain()
        a.add_ste("lost", CharSet.from_chars(b"a"), report=True, report_code=9)
        a.add_edge("lost", "s1")
        report = analyze(a)
        assert report.element_ids("AZ102") == {"lost"}
        assert "AZ102" in {d.code for d in report.errors}

    def test_startless_component_az103(self):
        a = chain()
        a.add_ste("isle1", CharSet.from_chars(b"a"))
        a.add_ste("isle2", CharSet.from_chars(b"a"), report=True, report_code=2)
        a.add_edge("isle1", "isle2")
        report = analyze(a)
        assert report.element_ids("AZ103") == {"isle1", "isle2"}

    def test_reportless_component_az104(self):
        a = chain(report_last=False)
        report = analyze(a)
        assert report.element_ids("AZ104") == {"s0", "s1", "s2"}
        assert "AZ104" not in {d.code for d in report.errors}

    def test_empty_automaton_is_clean(self):
        report = analyze(Automaton("void"))
        assert not report.errors and not report.warnings


class TestCharclassPass:
    def test_empty_charset_az201(self):
        a = chain()
        a.add_ste("never", CharSet.none())
        a.add_edge("s0", "never")
        report = analyze(a)
        assert report.element_ids("AZ201") == {"never"}
        assert "AZ201" in {d.code for d in report.errors}

    def test_out_of_alphabet_az202_only_with_alphabet(self):
        a = chain()
        a.add_ste("off", CharSet.from_chars(b"xyz"))
        a.add_edge("s0", "off")
        assert "AZ202" not in analyze(a).codes()
        report = analyze(a, alphabet=CharSet.from_chars(b"ab"))
        assert report.element_ids("AZ202") == {"off"}


class TestCountersPass:
    def _counted(self) -> Automaton:
        a = chain()
        a.add_counter("cnt", 2, report=True, report_code=7)
        a.add_edge("s1", "cnt")
        return a

    def test_well_wired_counter_is_clean(self):
        report = analyze(self._counted())
        assert not report.errors and not report.warnings

    def test_no_feeders_az301(self):
        a = chain()
        a.add_counter("cnt", 2, report=True, report_code=7)
        report = analyze(a)
        assert report.element_ids("AZ301") == {"cnt"}

    def test_zero_target_az303(self):
        # CounterElement itself rejects target < 1 at construction; force
        # one through to prove the pass catches it defensively (e.g. a
        # future io path that skips element validation).
        b = self._counted()
        object.__setattr__(b["cnt"], "target", 0)
        report = analyze(b)
        assert report.element_ids("AZ303") == {"cnt"}

    def test_dead_feeders_az303(self):
        a = chain()
        a.add_counter("cnt", 2, report=True, report_code=7)
        a.add_ste("deadfeed", CharSet.from_chars(b"a"))
        a.add_edge("deadfeed", "cnt")
        report = analyze(a)
        assert report.element_ids("AZ303") == {"cnt"}

    def test_self_reset_cycle_az304(self):
        a = self._counted()
        a.add_ste("after", CharSet.from_chars(b"a"))
        a.add_edge("cnt", "after")
        a.add_reset_edge("after", "cnt")
        report = analyze(a)
        assert report.element_ids("AZ304") == {"cnt"}


class TestFaultInjection:
    """The ISSUE's three seeded defects, each caught with its exact code."""

    def test_seeded_dead_state_caught_as_az101(self):
        bench = build_benchmark("File Carving", scale=0.01, lint=False)
        automaton = bench.automaton
        automaton.add_ste("seeded-dead", CharSet.from_chars(b"Z"))
        ident = next(iter(automaton.idents()))
        automaton.add_edge("seeded-dead", ident)
        report = lint_benchmark("File Carving", automaton)
        assert "seeded-dead" in report.element_ids("AZ101")

    def test_seeded_empty_charset_caught_as_az201(self):
        bench = build_benchmark("File Carving", scale=0.01, lint=False)
        automaton = bench.automaton
        automaton.add_ste("seeded-empty", CharSet.none(), start=StartMode.ALL_INPUT)
        report = lint_benchmark("File Carving", automaton)
        assert report.element_ids("AZ201") == {"seeded-empty"}
        assert "AZ201" in {d.code for d in report.errors}

    def test_seeded_orphaned_reset_caught_as_az302(self):
        a = chain()
        a.add_counter("cnt", 2, report=True, report_code=7)
        a.add_edge("s1", "cnt")
        a.add_ste("ghost", CharSet.from_chars(b"a"))  # dead: never fires
        a.add_reset_edge("ghost", "cnt")
        report = analyze(a)
        assert report.element_ids("AZ302") == {"ghost"}


class TestRegistryGate:
    def test_gate_raises_lint_error_on_broken_builder(self, monkeypatch):
        from repro.benchmarks import registry
        from repro.benchmarks.spec import Benchmark

        def broken(scale, seed):
            a = Automaton("broken")
            a.add_ste("bad", CharSet.none(), start=StartMode.ALL_INPUT)
            return Benchmark(
                name="Broken", domain="t", input_desc="t",
                automaton=a, input_data=b"x",
            )

        monkeypatch.setitem(registry._BUILDERS, "Broken", broken)
        with pytest.raises(LintError, match="AZ201"):
            build_benchmark("Broken", scale=0.01)
        # escape hatch for deliberately-broken builds
        bench = build_benchmark("Broken", scale=0.01, lint=False)
        assert bench.automaton.n_states == 1
        # a documented suppression opens the gate
        monkeypatch.setitem(
            BENCHMARK_SUPPRESSIONS, "Broken", {"AZ201": "unit test"}
        )
        bench = build_benchmark("Broken", scale=0.01)
        assert bench.name == "Broken"

    def test_lint_error_carries_diagnostics(self):
        diag = Diagnostic("AZ201", Severity.ERROR, ("x",), "boom")
        err = LintError("Thing", [diag])
        assert err.benchmark == "Thing"
        assert err.diagnostics == [diag]
        assert "AZ201" in str(err)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_goldens_lint_clean(name):
    """Every generator's golden-scale automaton passes ``repro lint``.

    This is the CI lint gate: run against the same (scale, seed) the
    conformance golden digests pin, so drift in a generator that
    introduces dead states / empty charsets / broken counter wiring
    fails the default test tier with a named diagnostic.
    """
    bench = build_benchmark(name, scale=GOLDEN_SCALE, seed=GOLDEN_SEED, lint=False)
    report = lint_benchmark(name, bench.automaton)
    assert not report.errors, [str(d) for d in report.errors]
    assert not report.warnings, [str(d) for d in report.warnings]


class TestPreconditions:
    def _with_counter(self) -> Automaton:
        # bit-level charset so stride's alphabet check (AZ402) stays quiet
        a = Automaton("c")
        a.add_ste("s0", CharSet.from_chars(bytes([0, 1])), start=StartMode.ALL_INPUT)
        a.add_counter("cnt", 2, report=True, report_code=1)
        a.add_edge("s0", "cnt")
        return a

    def test_stride_counters_az401(self):
        with pytest.raises(TransformPreconditionError) as exc:
            stride(self._with_counter(), 2)
        assert [d.code for d in exc.value.diagnostics] == ["AZ401"]
        assert exc.value.transform == "stride"
        # backward compat: still an AutomatonError
        assert isinstance(exc.value, AutomatonError)

    def test_stride_alphabet_too_wide_az402(self):
        a = Automaton("w")
        a.add_ste("s0", CharSet.from_chars(b"\xff"), start=StartMode.ALL_INPUT,
                  report=True, report_code=1)
        with pytest.raises(TransformPreconditionError) as exc:
            stride(a, 2)
        assert [d.code for d in exc.value.diagnostics] == ["AZ402"]

    def test_stride_zero_still_value_error(self):
        with pytest.raises(ValueError):
            stride(chain(), 0)

    def test_widen_counters_az403(self):
        with pytest.raises(TransformPreconditionError) as exc:
            widen(self._with_counter())
        assert "AZ403" in [d.code for d in exc.value.diagnostics]

    def test_widen_pad_conflict_az404(self):
        a = Automaton("p")
        a.add_ste("s0", CharSet.from_chars(b"\x00a"), start=StartMode.ALL_INPUT,
                  report=True, report_code=1)
        with pytest.raises(TransformPreconditionError) as exc:
            widen(a)
        assert [d.code for d in exc.value.diagnostics] == ["AZ404"]
        # a different pad symbol sidesteps the conflict
        assert widen(a, pad_symbol=1).n_states == 2

    def test_merge_code_collision_az406(self):
        class SameRepr:
            def __repr__(self):
                return "<code>"

        a = Automaton("m")
        a.add_ste("r1", CharSet.from_chars(b"a"), start=StartMode.ALL_INPUT,
                  report=True, report_code=SameRepr())
        a.add_ste("r2", CharSet.from_chars(b"b"), start=StartMode.ALL_INPUT,
                  report=True, report_code=SameRepr())
        with pytest.raises(TransformPreconditionError) as exc:
            merge_common_prefixes(a)
        assert "AZ406" in [d.code for d in exc.value.diagnostics]

    def test_require_passes_clean_diagnostics(self):
        require(check_stride(chain(), 1), "stride")
        require(check_widen(chain(), 0), "widen")
        require(check_merge(chain()), "merge")


class TestCrosscheck:
    def test_clean_on_deliberately_dirty_automaton(self):
        a = chain()
        a.add_ste("dead", CharSet.from_chars(b"a"))
        a.add_ste("never", CharSet.none())
        a.add_edge("s0", "never")
        a.add_edge("dead", "s1")
        assert crosscheck(a, b"aaaaab") == []

    def test_false_dead_claim_is_flagged(self):
        a = chain()
        report = analyze(a)
        report.diagnostics.append(
            Diagnostic("AZ101", Severity.WARNING, ("s1",), "bogus claim")
        )
        problems = claim_violations(a, b"aaa", report)
        assert problems and "'s1'" in problems[0]

    def test_false_unsatisfiable_claim_is_flagged(self):
        a = chain()
        report = analyze(a)
        report.diagnostics.append(
            Diagnostic("AZ201", Severity.ERROR, ("s0",), "bogus claim")
        )
        problems = claim_violations(a, b"aaa", report)
        assert any("unsatisfiable" in p for p in problems)

    def test_suppressed_claims_still_checked(self):
        a = chain()
        report = analyze(a).apply_suppressions(())
        report.suppressed.append(
            Diagnostic("AZ101", Severity.WARNING, ("s0",), "hidden bogus claim")
        )
        assert claim_violations(a, b"aaa", report)

    def test_fuzz_smoke_no_violations(self):
        for seed in range(60):
            case = random_case(seed)
            assert crosscheck(case.automaton, case.data) == [], f"seed {seed}"

    @pytest.mark.fuzz
    def test_fuzz_campaign_no_violations(self):
        """Acceptance: 200 seeds, zero analyzer/reference disagreements."""
        for seed in range(200):
            case = random_case(seed)
            assert crosscheck(case.automaton, case.data) == [], f"seed {seed}"


class TestConformanceWiring:
    def test_run_case_includes_analysis_subjects(self, monkeypatch):
        from repro.analysis import crosscheck as crosscheck_mod
        from repro.conformance.runner import run_case

        case = random_case(3)
        monkeypatch.setattr(
            crosscheck_mod,
            "claim_violations",
            lambda automaton, data, report: ["fabricated violation"],
        )
        divergences = run_case(
            case.automaton, case.data, include_transforms=False
        )
        subjects = {d.subject for d in divergences}
        assert "analysis:crosscheck" in subjects

    def test_analyzer_crash_becomes_divergence(self, monkeypatch):
        import repro.analysis
        from repro.conformance.runner import run_case

        case = random_case(3)

        def boom(automaton, **kwargs):
            raise RuntimeError("analyzer exploded")

        monkeypatch.setattr(repro.analysis, "analyze", boom)
        divergences = run_case(
            case.automaton, case.data, include_transforms=False
        )
        crash = [d for d in divergences if d.subject == "analysis:lint"]
        assert crash and crash[0].field == "crash"

    def test_include_analysis_false_skips(self, monkeypatch):
        import repro.analysis
        from repro.conformance.runner import run_case

        case = random_case(3)
        monkeypatch.setattr(
            repro.analysis, "analyze",
            lambda automaton, **kw: (_ for _ in ()).throw(RuntimeError("no")),
        )
        divergences = run_case(
            case.automaton, case.data,
            include_transforms=False, include_analysis=False,
        )
        assert not [d for d in divergences if d.subject.startswith("analysis")]


class TestCLILint:
    def test_lint_benchmarks_writes_json(self, tmp_path, capsys):
        out = tmp_path / "LINT.json"
        code = main(
            ["lint", "--names", "File Carving", "--scale", "0.01",
             "--out", str(out)]
        )
        assert code == 0
        assert "file carving" in capsys.readouterr().out.lower()
        payload = json.loads(out.read_text())
        assert payload["clean"] is True
        assert payload["fail_on"] == "error"
        assert payload["reports"][0]["automaton"] == "File Carving"

    def test_lint_file_fail_on_warning(self, tmp_path):
        a = chain()
        a.add_ste("dead", CharSet.from_chars(b"a"))
        a.add_edge("dead", "s1")
        target = tmp_path / "dirty.mnrl"
        target.write_text(mnrl_dumps(a))
        assert main(["lint", "--file", str(target), "--out", ""]) == 0
        assert main(
            ["lint", "--file", str(target), "--fail-on", "warning", "--out", ""]
        ) == 1

    def test_lint_json_output(self, tmp_path, capsys):
        target = tmp_path / "clean.mnrl"
        target.write_text(mnrl_dumps(chain()))
        assert main(["lint", "--file", str(target), "--json", "--out", ""]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reports"][0]["counts"]["error"] == 0


class TestStructuralSummaryReuse:
    def test_stats_static_matches_summary(self):
        from repro.stats import compute_static_stats

        bench = build_benchmark("File Carving", scale=0.01)
        summary = structural_summary(bench.automaton)
        stats = compute_static_stats(bench.automaton)
        assert stats.states == summary.states
        assert stats.edges == summary.edges
        assert stats.subgraph_count == summary.component_count
        assert stats.avg_component_size == summary.avg_component_size
        assert stats.std_component_size == summary.std_component_size
        assert stats.start_states == summary.start_states
        assert stats.reporting_states == summary.reporting_states
        assert summary.dead_states == 0
