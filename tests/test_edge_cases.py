"""Edge-case and error-path tests across modules."""

import pytest

from repro.core import Automaton, CharSet, StartMode
from repro.engines import (
    LazyDFAEngine,
    ReferenceEngine,
    ReportEvent,
    RunResult,
    VectorEngine,
)
from repro.errors import (
    AutomatonError,
    CapacityError,
    EngineError,
    PatternError,
    RegexError,
    RegexUnsupportedError,
    ReproError,
)
from repro.regex import compile_regex, parse_regex
from repro.regex.ast_nodes import (
    Empty,
    Literal,
    REPEAT_EXPANSION_LIMIT,
    Repeat,
    count_positions,
    normalize,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [AutomatonError, RegexError, PatternError, EngineError, CapacityError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unsupported_is_a_regex_error(self):
        assert issubclass(RegexUnsupportedError, RegexError)
        with pytest.raises(RegexError):
            parse_regex(r"(a)\1")


class TestRepeatExpansion:
    def test_limit_enforced(self):
        with pytest.raises(RegexError, match="expands"):
            compile_regex(f"a{{{REPEAT_EXPANSION_LIMIT + 1}}}")

    def test_just_under_limit_ok(self):
        automaton = compile_regex("a{64}b{64}")
        assert automaton.n_states == 128

    def test_zero_repeat_is_empty(self):
        node = normalize(Repeat(Literal(CharSet.from_chars("a")), 0, 0))
        assert isinstance(node, Empty)

    def test_count_positions(self):
        parsed = parse_regex("a{3}(b|cd)e*")
        assert count_positions(parsed.ast) == 3 + 3 + 1

    def test_nested_counted_expansion(self):
        automaton = compile_regex("(?:ab){3}")
        assert automaton.n_states == 6
        engine = ReferenceEngine(automaton)
        assert engine.count_reports(b"ababab") == 1
        assert engine.count_reports(b"abab") == 0


class TestEmptyAndDegenerate:
    def test_engines_on_empty_automaton(self):
        empty = Automaton("empty")
        for engine_cls in (ReferenceEngine, VectorEngine, LazyDFAEngine):
            result = engine_cls(empty).run(b"anything")
            assert result.reports == []
            assert result.cycles == 8

    def test_automaton_with_no_start_states_never_matches(self):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), report=True)
        for engine_cls in (ReferenceEngine, VectorEngine, LazyDFAEngine):
            assert engine_cls(a).count_reports(b"aaaa") == 0

    def test_unmatchable_charset_state(self):
        a = Automaton()
        a.add_ste("s", CharSet.none(), start=StartMode.ALL_INPUT, report=True)
        for engine_cls in (ReferenceEngine, VectorEngine):
            assert engine_cls(a).count_reports(b"abc") == 0

    def test_run_result_helpers_on_empty(self):
        result = RunResult(reports=[], cycles=0, active_per_cycle=[])
        assert result.report_count == 0
        assert result.mean_active_set == 0.0
        assert result.reporting_cycles() == set()

    def test_report_event_ordering(self):
        events = [ReportEvent(5, "b"), ReportEvent(3, "z"), ReportEvent(3, "a")]
        assert sorted(events) == [
            ReportEvent(3, "a"),
            ReportEvent(3, "z"),
            ReportEvent(5, "b"),
        ]


class TestCountReportsHelper:
    def test_matches_run(self):
        automaton = compile_regex("ab")
        engine = VectorEngine(automaton)
        assert engine.count_reports(b"abab") == len(engine.run(b"abab").reports)


class TestBenchmarkRepr:
    def test_repr_is_informative(self):
        from repro.benchmarks import build_benchmark

        bench = build_benchmark("File Carving", scale=1.0, seed=0)
        text = repr(bench)
        assert "File Carving" in text
        assert "states" in text


class TestLargeCharsetAutomata:
    def test_vector_engine_chunked_charset_matrix(self):
        """Exercise the >1-chunk path of the packed charset build."""
        import repro.engines.vector as vector_module

        original = vector_module._CHUNK
        vector_module._CHUNK = 64
        try:
            from repro.regex import compile_ruleset

            automaton, _ = compile_ruleset(
                [(i, f"x{i:03d}y") for i in range(40)]  # 200 states > chunk
            )
            engine = vector_module.VectorEngine(automaton)
            assert engine.count_reports(b"zz x007y zz") == 1
        finally:
            vector_module._CHUNK = original
