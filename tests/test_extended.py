"""Extended automata: counter reset ports and run-constraint builders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Automaton, CharSet, CounterMode, StartMode
from repro.core.extended import exact_run_automaton, min_run_automaton
from repro.engines import ReferenceEngine, VectorEngine
from repro.errors import AutomatonError
from repro.transforms import merge_common_prefixes

ENGINES = [ReferenceEngine, VectorEngine]

C = CharSet.from_chars("a")


def run_positions(data: bytes, n: int, mode: str) -> list[int]:
    """Oracle: offsets where the consecutive-'a' run length is exactly n
    ('exact': only the n-th position) or at least n ('min')."""
    out = []
    run = 0
    for offset, symbol in enumerate(data):
        run = run + 1 if symbol == ord("a") else 0
        if mode == "exact" and run == n:
            out.append(offset)
        if mode == "min" and run >= n:
            out.append(offset)
    return out


class TestResetPort:
    def make(self):
        a = Automaton()
        a.add_ste("s", C, start=StartMode.ALL_INPUT)
        a.add_ste("r", ~C, start=StartMode.ALL_INPUT)
        a.add_counter("c", 3, mode=CounterMode.STOP, report=True, report_code="x")
        a.add_edge("s", "c")
        a.add_reset_edge("r", "c")
        return a

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_reset_clears_partial_count(self, engine_cls):
        engine = engine_cls(self.make())
        # two a's, break, two a's: never reaches 3
        assert engine.count_reports(b"aabaa") == 0
        # three consecutive: fires at the third
        assert [r.offset for r in engine.run(b"aaab").reports] == [2]

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_reset_unsticks_stop_mode(self, engine_cls):
        engine = engine_cls(self.make())
        # STOP counters go inert after firing; a reset re-arms them
        offsets = [r.offset for r in engine.run(b"aaaab aaa").reports]
        assert offsets == [2, 8]

    def test_reset_edge_validation(self):
        a = Automaton()
        a.add_ste("s", C)
        a.add_ste("t", C)
        with pytest.raises(AutomatonError):
            a.add_reset_edge("s", "t")  # target not a counter
        with pytest.raises(AutomatonError):
            a.add_reset_edge("missing", "t")

    def test_reset_edges_survive_merge_and_clone(self):
        a = self.make()
        b = a.clone()
        assert list(b.reset_edges()) == [("r", "c")]
        u = Automaton.union([a])
        assert list(u.reset_edges()) == [("g0.r", "g0.c")]

    def test_reset_edges_survive_prefix_merge(self):
        merged, _ = merge_common_prefixes(self.make())
        assert list(merged.reset_edges()) == [("r", "c")]

    def test_remove_element_cleans_reset_edges(self):
        a = self.make()
        a.remove_element("r")
        assert list(a.reset_edges()) == []
        a2 = self.make()
        a2.remove_element("c")
        assert list(a2.reset_edges()) == []


class TestRunBuilders:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_exact_run(self, engine_cls, n):
        engine = engine_cls(exact_run_automaton(C, n))
        data = b"aa baaaab aaaaaa b a"
        got = [r.offset for r in engine.run(data).reports]
        assert got == run_positions(data, n, "exact")

    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("n", [1, 3])
    def test_min_run(self, engine_cls, n):
        engine = engine_cls(min_run_automaton(C, n))
        data = b"aaab aaaaa ba"
        got = [r.offset for r in engine.run(data).reports]
        assert got == run_positions(data, n, "min")

    def test_constant_size(self):
        assert exact_run_automaton(C, 5).n_states == 3
        assert exact_run_automaton(C, 500).n_states == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_run_automaton(C, 0)
        with pytest.raises(ValueError):
            exact_run_automaton(CharSet.all_bytes(), 3)
        with pytest.raises(ValueError):
            exact_run_automaton(CharSet.none(), 3)

    @settings(max_examples=80, deadline=None)
    @given(
        data=st.binary(max_size=40).map(lambda raw: bytes(b"ab"[x % 2] for x in raw)),
        n=st.integers(1, 6),
        minimum=st.booleans(),
    )
    def test_run_builders_match_oracle_property(self, data, n, minimum):
        builder = min_run_automaton if minimum else exact_run_automaton
        automaton = builder(C, n)
        got_ref = [r.offset for r in ReferenceEngine(automaton).run(data).reports]
        got_vec = [r.offset for r in VectorEngine(automaton).run(data).reports]
        expected = run_positions(data, n, "min" if minimum else "exact")
        assert got_ref == expected
        assert got_vec == expected
