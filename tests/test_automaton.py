"""Unit tests for repro.core.automaton and repro.core.elements."""

import pytest

from repro.core import Automaton, CharSet, CounterElement, STE, StartMode
from repro.core.elements import CounterMode
from repro.errors import AutomatonError


def chain(name="chain", pattern="abc"):
    """Helper: a linear automaton matching ``pattern`` anchored at start."""
    a = Automaton(name)
    prev = None
    for i, ch in enumerate(pattern):
        start = StartMode.START_OF_DATA if i == 0 else StartMode.NONE
        report = i == len(pattern) - 1
        a.add_ste(f"s{i}", CharSet.from_chars(ch), start=start, report=report)
        if prev is not None:
            a.add_edge(prev, f"s{i}")
        prev = f"s{i}"
    return a


class TestConstruction:
    def test_add_and_count(self):
        a = chain()
        assert a.n_states == 3
        assert a.n_edges == 2

    def test_duplicate_id_rejected(self):
        a = Automaton()
        a.add_ste("x", CharSet.from_chars("a"))
        with pytest.raises(AutomatonError):
            a.add_ste("x", CharSet.from_chars("b"))

    def test_edge_requires_existing_nodes(self):
        a = Automaton()
        a.add_ste("x", CharSet.from_chars("a"))
        with pytest.raises(AutomatonError):
            a.add_edge("x", "missing")
        with pytest.raises(AutomatonError):
            a.add_edge("missing", "x")

    def test_duplicate_edges_deduplicated(self):
        a = Automaton()
        a.add_ste("x", CharSet.from_chars("a"))
        a.add_ste("y", CharSet.from_chars("b"))
        a.add_edge("x", "y")
        a.add_edge("x", "y")
        assert a.n_edges == 1

    def test_counter_target_validation(self):
        with pytest.raises(ValueError):
            CounterElement("c", 0)

    def test_add_counter(self):
        a = Automaton()
        a.add_ste("x", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        c = a.add_counter("c", 3, mode=CounterMode.ROLLOVER, report=True)
        a.add_edge("x", "c")
        assert c.target == 3
        assert list(a.counters()) == [c]

    def test_remove_element(self):
        a = chain()
        a.remove_element("s1")
        assert a.n_states == 2
        assert a.n_edges == 0
        with pytest.raises(AutomatonError):
            a.remove_element("s1")

    def test_getitem(self):
        a = chain()
        assert isinstance(a["s0"], STE)
        with pytest.raises(AutomatonError):
            a["nope"]


class TestStructure:
    def test_successors_predecessors(self):
        a = chain()
        assert a.successors("s0") == ["s1"]
        assert a.predecessors("s1") == ["s0"]
        assert a.in_degree("s0") == 0
        assert a.out_degree("s0") == 1

    def test_start_and_reporting(self):
        a = chain()
        assert [e.ident for e in a.start_elements()] == ["s0"]
        assert [e.ident for e in a.reporting_elements()] == ["s2"]

    def test_connected_components(self):
        a = Automaton.union([chain(pattern="ab"), chain(pattern="cd")])
        comps = a.connected_components()
        assert len(comps) == 2
        assert sorted(len(c) for c in comps) == [2, 2]

    def test_validate_ok(self):
        chain().validate()

    def test_validate_unreachable_report(self):
        a = Automaton()
        a.add_ste("orphan", CharSet.from_chars("a"), report=True)
        with pytest.raises(AutomatonError, match="unreachable"):
            a.validate()

    def test_validate_counter_without_pred(self):
        a = Automaton()
        a.add_ste("s", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
        a.add_counter("c", 2)
        with pytest.raises(AutomatonError, match="no predecessors"):
            a.validate()

    def test_validate_empty_ok(self):
        Automaton().validate()

    def test_to_networkx(self):
        g = chain().to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2
        assert isinstance(g.nodes["s0"]["element"], STE)


class TestComposition:
    def test_merge_prefixes_ids(self):
        a = chain(pattern="ab")
        b = chain(pattern="cd")
        a.merge(b, prefix="p.")
        assert "p.s0" in a
        assert a.n_states == 4

    def test_merge_id_clash(self):
        a = chain()
        with pytest.raises(AutomatonError):
            a.merge(chain())

    def test_clone_is_deep(self):
        a = chain()
        b = a.clone()
        b["s0"].report = True
        assert not a["s0"].report
        assert b.n_states == a.n_states

    def test_union_many(self):
        u = Automaton.union([chain(pattern="a") for _ in range(5)])
        assert u.n_states == 5
        assert len(u.connected_components()) == 5

    def test_union_preserves_semantics_metadata(self):
        u = Automaton.union([chain(pattern="ab")])
        starts = u.start_elements()
        assert len(starts) == 1
        assert starts[0].start is StartMode.START_OF_DATA
