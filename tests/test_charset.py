"""Unit tests for repro.core.charset."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.charset import ALL_BYTES, BIT_ONE, BIT_ZERO, CharSet, NO_BYTES


class TestConstruction:
    def test_empty(self):
        assert CharSet().is_empty()
        assert len(CharSet()) == 0

    def test_from_chars_str(self):
        cs = CharSet.from_chars("abc")
        assert "a" in cs and "b" in cs and "c" in cs
        assert "d" not in cs

    def test_from_chars_bytes(self):
        cs = CharSet.from_chars(b"\x00\xff")
        assert 0 in cs and 255 in cs

    def test_from_ranges(self):
        cs = CharSet.from_ranges([(0x30, 0x39)])
        assert cs == CharSet.from_chars("0123456789")

    def test_from_ranges_multiple(self):
        cs = CharSet.from_ranges([(0, 2), (250, 255)])
        assert cs.cardinality() == 9

    def test_single(self):
        assert CharSet.single(65) == CharSet.from_chars("A")

    def test_bad_symbol_rejected(self):
        with pytest.raises(ValueError):
            CharSet([256])
        with pytest.raises(ValueError):
            CharSet.single(-1)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            CharSet.from_ranges([(5, 3)])
        with pytest.raises(ValueError):
            CharSet.from_ranges([(0, 256)])

    def test_all_and_none(self):
        assert ALL_BYTES.cardinality() == 256
        assert ALL_BYTES.is_full()
        assert NO_BYTES.is_empty()

    def test_bit_constants(self):
        assert list(BIT_ZERO) == [0]
        assert list(BIT_ONE) == [1]


class TestAlgebra:
    def test_union(self):
        assert CharSet.from_chars("ab") | CharSet.from_chars("bc") == CharSet.from_chars("abc")

    def test_intersection(self):
        assert CharSet.from_chars("ab") & CharSet.from_chars("bc") == CharSet.from_chars("b")

    def test_difference(self):
        assert CharSet.from_chars("abc") - CharSet.from_chars("b") == CharSet.from_chars("ac")

    def test_complement(self):
        cs = ~CharSet.from_chars("a")
        assert cs.cardinality() == 255
        assert "a" not in cs
        assert ~ALL_BYTES == NO_BYTES

    def test_double_complement_identity(self):
        cs = CharSet.from_chars("xyz")
        assert ~~cs == cs

    def test_issubset(self):
        assert CharSet.from_chars("a").issubset(CharSet.from_chars("ab"))
        assert not CharSet.from_chars("ac").issubset(CharSet.from_chars("ab"))

    def test_bool(self):
        assert not CharSet()
        assert CharSet.single(0)


class TestConversions:
    def test_iter_sorted(self):
        cs = CharSet([5, 1, 200])
        assert list(cs) == [1, 5, 200]

    def test_membership_forms(self):
        cs = CharSet.from_chars("a")
        assert ord("a") in cs
        assert "a" in cs
        assert b"a" in cs
        with pytest.raises(ValueError):
            "ab" in cs

    def test_to_bool_array(self):
        cs = CharSet([0, 7, 255])
        arr = cs.to_bool_array()
        assert arr.dtype == bool and arr.shape == (256,)
        assert list(np.flatnonzero(arr)) == [0, 7, 255]

    def test_ranges_roundtrip(self):
        cs = CharSet([1, 2, 3, 10, 250, 251])
        assert cs.ranges() == [(1, 3), (10, 10), (250, 251)]
        assert CharSet.from_ranges(cs.ranges()) == cs

    def test_repr_forms(self):
        assert repr(ALL_BYTES) == "CharSet[*]"
        assert repr(NO_BYTES) == "CharSet[]"
        assert "a-c" in repr(CharSet.from_chars("abc"))

    def test_hashable(self):
        assert len({CharSet.from_chars("a"), CharSet.from_chars("a")}) == 1


symbol_sets = st.frozensets(st.integers(0, 255), max_size=40)


class TestProperties:
    @given(symbol_sets, symbol_sets)
    def test_union_matches_set_semantics(self, a, b):
        assert set(CharSet(a) | CharSet(b)) == a | b

    @given(symbol_sets, symbol_sets)
    def test_intersection_matches_set_semantics(self, a, b):
        assert set(CharSet(a) & CharSet(b)) == a & b

    @given(symbol_sets)
    def test_complement_partition(self, a):
        cs = CharSet(a)
        assert (cs | ~cs).is_full()
        assert (cs & ~cs).is_empty()

    @given(symbol_sets)
    def test_bool_array_agrees_with_membership(self, a):
        arr = CharSet(a).to_bool_array()
        assert set(np.flatnonzero(arr)) == a

    @given(symbol_sets)
    def test_ranges_cover_exactly(self, a):
        cs = CharSet(a)
        covered = {s for lo, hi in cs.ranges() for s in range(lo, hi + 1)}
        assert covered == a
