"""Routing-fabric placement model tests (Section II-B)."""

import pytest

from repro.benchmarks.mesh import hamming_automaton, levenshtein_automaton
from repro.core import Automaton, CharSet, StartMode
from repro.engines.placement import (
    ISLAND_FABRIC,
    TREE_FABRIC,
    PlacementReport,
    RoutingFabric,
    place,
)
from repro.inputs.dna import random_dna_patterns
from repro.regex import compile_ruleset


def chains(n_patterns=50, length=20):
    patterns = [(i, "a" * length) for i in range(n_patterns)]
    automaton, _ = compile_ruleset(patterns)
    return automaton


def mesh_union(builder, l, d, n=30):
    union = Automaton("mesh")
    for i, pattern in enumerate(random_dna_patterns(n, l, seed=1)):
        union.merge(builder(pattern, d, pattern_id=i), prefix=f"f{i}.")
    return union


class TestRoutingCost:
    def test_linear_vs_quadratic(self):
        a = Automaton()
        hub = a.add_ste("h", CharSet.from_chars("a"), start=StartMode.ALL_INPUT).ident
        for i in range(5):
            a.add_ste(f"t{i}", CharSet.from_chars("b"))
            a.add_edge(hub, f"t{i}")
        assert ISLAND_FABRIC.routing_cost(a) == 5  # linear in fanout
        assert TREE_FABRIC.routing_cost(a) == 25  # quadratic

    def test_chains_cost_one_per_state(self):
        automaton = chains(10, 10)
        # every state has out-degree <= 1
        assert TREE_FABRIC.routing_cost(automaton) <= automaton.n_states


class TestPlacement:
    def test_chains_are_state_bound_everywhere(self):
        automaton = chains()
        for fabric in (TREE_FABRIC, ISLAND_FABRIC):
            report = place(automaton, fabric)
            assert report.bound == "state"
            assert report.chips_required == 1

    def test_levenshtein_routing_bound_on_tree(self):
        """The Section II-B effect: mesh automata strand tree-routed chips
        at low state utilization; island routing recovers it."""
        automaton = mesh_union(levenshtein_automaton, 24, 5)
        tree = place(automaton, TREE_FABRIC)
        island = place(automaton, ISLAND_FABRIC)
        assert tree.bound == "routing"
        assert tree.utilization < 0.10  # paper quotes 6%
        assert island.utilization > 3 * tree.utilization

    def test_hamming_less_affected_than_levenshtein(self):
        ham = place(mesh_union(hamming_automaton, 22, 5), TREE_FABRIC)
        lev = place(mesh_union(levenshtein_automaton, 24, 5), TREE_FABRIC)
        assert ham.utilization > lev.utilization

    def test_multi_chip_partitioning(self):
        tiny = RoutingFabric("tiny", state_capacity=100, routing_capacity=200,
                             fanout_exponent=1.0)
        report = place(chains(50, 10), tiny)
        assert report.chips_required == 5
        assert report.utilization == pytest.approx(1.0)

    def test_report_str(self):
        report = place(chains(5, 5), TREE_FABRIC)
        assert "state-bound" in str(report)
        assert isinstance(report, PlacementReport)
