"""Replay every shrunk fuzz repro as a permanent regression test.

Each ``case_*`` directory here is a minimized divergence the conformance
fuzzer once found (see ``meta.json`` inside for the original subject and
root cause).  The fix landed alongside the case, so replaying the case
through the full differential runner must now be clean — forever.

New cases land automatically via::

    repro conformance --seeds N --repro-dir tests/repros

after which the fix that makes them pass belongs in the same commit.
"""

import pathlib

import pytest

from repro.conformance import load_repro, run_case

CASES = sorted(
    p for p in pathlib.Path(__file__).parent.glob("case_*") if p.is_dir()
)


def _case_id(path: pathlib.Path) -> str:
    return path.name.removeprefix("case_")


@pytest.mark.parametrize("case_dir", CASES, ids=_case_id)
def test_repro_is_clean(case_dir):
    automaton, data, meta = load_repro(case_dir)
    divergences = run_case(
        automaton, data, bit_level=bool(meta.get("bit_level", False))
    )
    assert not divergences, (
        f"regression of {meta.get('subject')} ({meta.get('field')}): "
        + "; ".join(str(d) for d in divergences)
    )


def test_repro_directory_not_empty():
    """At least the empty-charset io round-trip case must be present."""
    assert any(c.name == "case_empty_charset_io_roundtrip" for c in CASES)
