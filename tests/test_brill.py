"""Brill tagging benchmark tests."""

import pytest

from repro.benchmarks.brill import (
    BrillRule,
    TEMPLATES,
    build_brill_automaton,
    generate_brill_rules,
)
from repro.engines import VectorEngine
from repro.inputs.corpus import (
    POS_TAGS,
    generate_tagged_corpus,
    tag_symbol,
    word_symbol,
)


def stream_of(tokens):
    """tokens: list of (word_class, tag_name) -> symbol stream."""
    out = bytearray()
    for word, tag in tokens:
        out.append(word_symbol(word))
        out.append(tag_symbol(tag))
    return bytes(out)


class TestTemplates:
    def run_rule(self, rule, tokens):
        automaton = build_brill_automaton([rule])
        return VectorEngine(automaton).run(stream_of(tokens)).reports

    def test_prev_tag_fires(self):
        rule = BrillRule(0, "NN", "VB", "prev_tag", ("DT",))
        hits = self.run_rule(rule, [(1, "DT"), (2, "NN")])
        assert len(hits) == 1
        # reports on the current token's tag symbol (position 3)
        assert hits[0].offset == 3

    def test_prev_tag_does_not_fire_on_wrong_context(self):
        rule = BrillRule(0, "NN", "VB", "prev_tag", ("DT",))
        assert not self.run_rule(rule, [(1, "JJ"), (2, "NN")])
        assert not self.run_rule(rule, [(1, "DT"), (2, "VB")])

    def test_next_tag(self):
        rule = BrillRule(0, "NN", "VB", "next_tag", ("IN",))
        assert self.run_rule(rule, [(1, "NN"), (2, "IN")])
        assert not self.run_rule(rule, [(1, "NN"), (2, "DT")])

    def test_prev_two_tags(self):
        rule = BrillRule(0, "NN", "VB", "prev_two_tags", ("DT", "JJ"))
        assert self.run_rule(rule, [(1, "DT"), (2, "JJ"), (3, "NN")])
        assert not self.run_rule(rule, [(1, "JJ"), (2, "DT"), (3, "NN")])

    def test_surrounding_tags(self):
        rule = BrillRule(0, "NN", "VB", "surrounding_tags", ("DT", "IN"))
        assert self.run_rule(rule, [(1, "DT"), (2, "NN"), (3, "IN")])
        assert not self.run_rule(rule, [(1, "DT"), (2, "NN"), (3, "DT")])

    def test_prev_word(self):
        rule = BrillRule(0, "NN", "VB", "prev_word", (7,))
        assert self.run_rule(rule, [(7, "JJ"), (2, "NN")])
        assert not self.run_rule(rule, [(8, "JJ"), (2, "NN")])

    def test_cur_word_prev_tag(self):
        rule = BrillRule(0, "NN", "VB", "cur_word_prev_tag", (9, "DT"))
        assert self.run_rule(rule, [(1, "DT"), (9, "NN")])
        assert not self.run_rule(rule, [(1, "DT"), (8, "NN")])
        assert not self.run_rule(rule, [(1, "JJ"), (9, "NN")])


class TestGeneration:
    def test_rule_count_and_uniqueness(self):
        rules = generate_brill_rules(500, seed=0)
        assert len(rules) == 500
        keys = {(r.template, r.from_tag, r.context) for r in rules}
        assert len(keys) == 500

    def test_all_templates_used(self):
        rules = generate_brill_rules(300, seed=1)
        assert {r.template for r in rules} == set(TEMPLATES)

    def test_deterministic(self):
        assert generate_brill_rules(50, seed=2) == generate_brill_rules(50, seed=2)

    def test_benchmark_runs_on_corpus(self):
        rules = generate_brill_rules(200, seed=3)
        automaton = build_brill_automaton(rules)
        corpus = generate_tagged_corpus(2000, seed=4)
        result = VectorEngine(automaton).run(corpus, record_active=True)
        assert result.report_count > 0  # realistic contexts occur
        assert result.mean_active_set > 0

    def test_corpus_structure(self):
        corpus = generate_tagged_corpus(100, seed=5)
        assert len(corpus) == 200
        # even positions are word symbols, odd are tag symbols
        tags = set(corpus[1::2])
        words = set(corpus[0::2])
        assert all(1 <= t <= len(POS_TAGS) for t in tags)
        assert all(64 <= w for w in words)


class TestApplication:
    """The full Brill kernel: rules actually retag the stream."""

    def test_single_rule_retags(self):
        from repro.benchmarks.brill import apply_brill_rules

        rule = BrillRule(0, "NN", "VB", "prev_tag", ("DT",))
        corpus = stream_of([(1, "DT"), (2, "NN"), (3, "NN")])
        retagged, changes = apply_brill_rules(corpus, [rule])
        assert changes == 1
        # only the NN preceded by DT changes
        assert retagged[3] == tag_symbol("VB")
        assert retagged[5] == tag_symbol("NN")

    def test_next_tag_rule_targets_current_token(self):
        from repro.benchmarks.brill import apply_brill_rules

        rule = BrillRule(0, "NN", "JJ", "next_tag", ("IN",))
        corpus = stream_of([(1, "NN"), (2, "IN")])
        retagged, changes = apply_brill_rules(corpus, [rule])
        assert changes == 1
        assert retagged[1] == tag_symbol("JJ")
        assert retagged[3] == tag_symbol("IN")

    def test_rules_apply_sequentially(self):
        from repro.benchmarks.brill import apply_brill_rules

        # rule 1 creates the context rule 2 needs
        rule1 = BrillRule(0, "NN", "VB", "prev_tag", ("DT",))
        rule2 = BrillRule(1, "JJ", "RB", "prev_tag", ("VB",))
        corpus = stream_of([(1, "DT"), (2, "NN"), (3, "JJ")])
        retagged, changes = apply_brill_rules(corpus, [rule1, rule2])
        assert changes == 2
        assert retagged[3] == tag_symbol("VB")
        assert retagged[5] == tag_symbol("RB")
        # reversed order: rule 2 sees no VB context, only one change
        _, reversed_changes = apply_brill_rules(corpus, [rule2, rule1])
        assert reversed_changes == 1

    def test_idempotent_when_no_context(self):
        from repro.benchmarks.brill import apply_brill_rules

        rule = BrillRule(0, "NN", "VB", "prev_tag", ("UH",))
        corpus = stream_of([(1, "DT"), (2, "NN")])
        retagged, changes = apply_brill_rules(corpus, [rule])
        assert changes == 0
        assert retagged == corpus

    def test_kernel_on_generated_corpus(self):
        from repro.benchmarks.brill import apply_brill_rules

        rules = generate_brill_rules(40, seed=8)
        corpus = generate_tagged_corpus(800, seed=9)
        retagged, changes = apply_brill_rules(corpus, rules)
        assert changes > 0
        assert len(retagged) == len(corpus)
        # word symbols never change, only tags
        assert retagged[0::2] == corpus[0::2]
