"""Shared configuration for the experiment harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Experiments run at a reduced
``scale`` so the whole harness completes in minutes; set the
``REPRO_SCALE`` environment variable to raise it (1.0 = the paper's full
benchmark parameters).

Each experiment prints its table to stdout (visible with ``pytest -s``)
and appends it to ``bench_results/`` so EXPERIMENTS.md can quote measured
numbers.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


def suite_scale(default: float = 0.01) -> float:
    return float(os.environ.get("REPRO_SCALE", default))


@pytest.fixture(scope="session")
def scale() -> float:
    return suite_scale()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result table and persist it under bench_results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
