"""Shared configuration for the experiment harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Experiments run at a reduced
``scale`` so the whole harness completes in minutes; set the
``REPRO_SCALE`` environment variable to raise it (1.0 = the paper's full
benchmark parameters).

Each experiment prints its table to stdout (visible with ``pytest -s``)
and appends it to ``bench_results/`` so EXPERIMENTS.md can quote measured
numbers.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


def pytest_addoption(parser):
    parser.addoption(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget for budget-aware experiments; cells that "
        "miss the budget are marked skipped and the JSON artifact is "
        "flagged truncated (still valid partial JSON)",
    )


def suite_scale(default: float = 0.01) -> float:
    return float(os.environ.get("REPRO_SCALE", default))


def suite_max_seconds(config=None) -> float | None:
    """The time budget: ``--max-seconds`` wins, else ``REPRO_MAX_SECONDS``."""
    if config is not None:
        option = config.getoption("--max-seconds")
        if option is not None:
            return option
    env = os.environ.get("REPRO_MAX_SECONDS")
    return float(env) if env else None


@pytest.fixture(scope="session")
def scale() -> float:
    return suite_scale()


@pytest.fixture(scope="session")
def max_seconds(request) -> float | None:
    return suite_max_seconds(request.config)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result table and persist it under bench_results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
