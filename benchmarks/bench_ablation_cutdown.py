"""Ablation: what spatial standardization does to a full kernel.

Quantifies Section VIII's argument against ANMLZoo's cut-down benchmarks:
trimming the Random Forest automaton to progressively smaller capacity
budgets (whole decision-tree paths dropped, as ANMLZoo did to fit the
D480) degrades classification accuracy relative to the full trained model
— so a cut-down benchmark cannot be fairly compared against algorithms
that compute the complete kernel.
"""

from __future__ import annotations

from conftest import emit

from repro.benchmarks.randomforest import VARIANTS, classify_with_automaton, train_variant
from repro.benchmarks.standardize import cut_down


def run_experiment(scale: float):
    trained = train_variant(
        VARIANTS["B"], n_train=800, n_test=300, seed=1, scale=max(scale * 10, 0.1)
    )
    x, y = trained.test_x, trained.test_y
    rows = []
    full_pred = classify_with_automaton(trained.automaton, x, n_classes=10)
    rows.append(("full kernel", trained.automaton.n_states, (full_pred == y).mean()))
    for fraction in (0.5, 0.25, 0.1):
        budget = max(1, int(trained.automaton.n_states * fraction))
        result = cut_down(trained.automaton, budget, seed=4)
        pred = classify_with_automaton(result.automaton, x, n_classes=10)
        rows.append(
            (f"cut to {int(100 * fraction)}%", result.states_after, (pred == y).mean())
        )
    return rows


def render(rows) -> str:
    lines = [f"{'Variant':16s} {'states':>9s} {'accuracy':>9s}"]
    for name, states, accuracy in rows:
        lines.append(f"{name:16s} {states:9,} {accuracy:9.4f}")
    return "\n".join(lines)


def test_ablation_cut_down_damage(benchmark, scale, results_dir):
    rows = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "ablation_cutdown", render(rows))
    accuracies = [accuracy for _name, _states, accuracy in rows]
    # mild cuts can wobble either way at reduced scale (ensemble noise),
    # but heavy cuts always damage the kernel badly
    assert accuracies[-1] < accuracies[0] - 0.05
    assert accuracies[-1] == min(accuracies)