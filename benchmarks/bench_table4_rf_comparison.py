"""Table IV: Random Forest — automata kernel vs native algorithms vs FPGA.

The paper's full-kernel comparison (Section VIII): because the AutomataZoo
Random Forest benchmark computes the complete trained model, its
classification throughput can be compared apples-to-apples against
non-automata implementations of the same kernel.

Columns (normalised to CPU automata processing = 1x, as in the paper):

* CPU automata (our VectorEngine, the Hyperscan slot),
* native vectorised tree inference (the scikit-learn slot),
* native multi-worker inference (the scikit-learn MT slot),
* modelled REAPR FPGA (clock x symbols, the paper's own methodology).

Expected shape: native >> CPU automata; MT > native; FPGA highest, but by
a smaller margin over native than over automata.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit

from repro.baselines import NativeForest
from repro.benchmarks.randomforest import (
    VARIANTS,
    classify_with_automaton,
    train_variant,
)
from repro.engines import VectorEngine
from repro.engines.spatial import KINTEX_KU060


def run_experiment(scale: float):
    trained = train_variant(
        VARIANTS["B"], n_train=1000, n_test=400, seed=0, scale=max(scale * 10, 0.08)
    )
    x = trained.test_x
    engine = VectorEngine(trained.automaton)

    start = time.perf_counter()
    automata_pred = classify_with_automaton(
        trained.automaton, x, n_classes=10, engine=engine
    )
    t_automata = time.perf_counter() - start

    native = NativeForest(trained.forest)
    native.predict(x[:10])  # warm
    start = time.perf_counter()
    for _ in range(20):
        native_pred = native.predict(x)
    t_native = (time.perf_counter() - start) / 20

    # MT: amortise pool start-up (a scanning service keeps workers warm)
    # and use a large batch so the work dominates IPC.
    from concurrent.futures import ProcessPoolExecutor

    big = np.repeat(x, 64, axis=0)
    with ProcessPoolExecutor(max_workers=4) as pool:
        native.predict_parallel(big[:800], n_workers=4, pool=pool)  # warm
        start = time.perf_counter()
        native.predict_parallel(big, n_workers=4, pool=pool)
        t_mt = (time.perf_counter() - start) / 64

    assert np.array_equal(automata_pred, native_pred)  # same full kernel

    n = len(x)
    rates = {
        "CPU automata (VectorEngine)": n / t_automata,
        "Native trees (numpy)": n / t_native,
        "Native trees MT (4 workers)": n / t_mt,
        "REAPR FPGA (modelled)": (
            KINTEX_KU060.throughput_bytes_per_sec(trained.automaton)
            / trained.symbols_per_classification
        ),
    }
    return rates


def render(rates) -> str:
    base = rates["CPU automata (VectorEngine)"]
    lines = [f"{'Implementation':30s} {'kClass/s':>10s} {'vs automata':>12s}"]
    for label, rate in rates.items():
        lines.append(f"{label:30s} {rate / 1e3:10.2f} {rate / base:11.1f}x")
    return "\n".join(lines)


def test_table4_rf_full_kernel_comparison(benchmark, scale, results_dir):
    rates = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "table4_rf_comparison", render(rates))

    base = rates["CPU automata (VectorEngine)"]
    native = rates["Native trees (numpy)"]
    mt = rates["Native trees MT (4 workers)"]
    fpga = rates["REAPR FPGA (modelled)"]
    # paper shape: native decision trees dominate CPU automata by orders
    # of magnitude (141.5x), multi-threading scales further (401.1x), and
    # the FPGA wins overall (817.9x).
    assert native > 10 * base
    assert mt > 0.8 * native  # pool overhead can eat a little at small batch
    assert fpga > native
