"""Table I: suite-wide static and dynamic statistics.

Regenerates the paper's headline table — states, edges, edges/node,
subgraph count and sizes, prefix-merge compression, and active set on each
benchmark's standard input — for all 25 Table I rows, at the harness
scale.  Per-subgraph statistics (avg size, edges/node, compression factor,
active set per filter) are scale-invariant and comparable to the paper;
absolute state counts scale with ``REPRO_SCALE``.
"""

from __future__ import annotations

from conftest import emit

from repro.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.stats import format_table, summarize_benchmark

#: Cap on simulated input per benchmark so active-set measurement stays fast.
MAX_INPUT = 20_000

#: The paper's Table I state counts, for a fidelity column: our measured
#: states projected to full scale, over the paper's numbers.  (RF and Brill
#: use different encodings, so their ratios measure encoding overhead.)
PAPER_STATES = {
    "Snort": 202_043,
    "ClamAV": 2_374_717,
    "Protomata": 24_103,
    "Brill": 115_549,
    "Random Forest A": 248_000,
    "Random Forest B": 248_000,
    "Random Forest C": 992_000,
    "Hamming 18x3": 108_000,
    "Hamming 22x5": 192_000,
    "Hamming 31x10": 451_000,
    "Levenshtein 19x3": 109_000,
    "Levenshtein 24x5": 204_000,
    "Levenshtein 37x10": 557_000,
    "Seq. Match 6w 6p": 51_570,
    "Seq. Match 6w 6p wC": 53_289,
    "Seq. Match 6w 10p": 85_950,
    "Seq. Match 6w 10p wC": 87_669,
    "Entity Resolution": 413_352,
    "CRISPR CasOffinder": 74_000,
    "CRISPR CasOT": 202_000,
    "YARA": 1_047_528,
    "YARA Wide": 115_246,
    "File Carving": 2_663,
    "AP PRNG 4-sided": 20_000,
    "AP PRNG 8-sided": 72_000,
}


def build_table(scale: float):
    rows = []
    projections = []
    for name in BENCHMARK_NAMES:
        bench = build_benchmark(name, scale=scale, seed=0)
        rows.append(
            summarize_benchmark(
                bench.name,
                bench.domain,
                bench.input_desc,
                bench.automaton,
                bench.input_data[:MAX_INPUT],
                compress=bench.compressible,
            )
        )
        # File Carving is fixed-size (never scaled); others scale linearly
        projected = bench.states if name == "File Carving" else bench.states / scale
        projections.append((name, projected, projected / PAPER_STATES[name]))
    return rows, projections


def render_projection(projections) -> str:
    lines = [f"{'Benchmark':22s} {'projected states':>16s} {'vs paper':>9s}"]
    for name, projected, ratio in projections:
        lines.append(f"{name:22s} {projected:16,.0f} {ratio:8.2f}x")
    return "\n".join(lines)


def test_table1_suite_statistics(benchmark, scale, results_dir):
    rows, projections = benchmark.pedantic(
        build_table, args=(scale,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table1_suite",
        f"scale={scale}\n{format_table(rows)}\n\n"
        f"full-scale projection vs the paper's Table I:\n"
        f"{render_projection(projections)}",
    )
    # fidelity: mesh/PRNG/seqmatch families should project within ~3x of
    # the paper's sizes (identical or closely-related constructions)
    for name, _projected, ratio in projections:
        if name.startswith(("Hamming", "AP PRNG", "Seq. Match")):
            assert 1 / 3 < ratio < 3, (name, ratio)
