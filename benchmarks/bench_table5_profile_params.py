"""Table V: profile-chosen mesh benchmark dimensions.

Runs the paper's Section X-C procedure — grow the filter length until the
average match rate on random DNA drops below one per million symbols — for
every scoring distance, on both kernels, and compares the chosen lengths
against the paper's Table V (Hamming 18/22/31, Levenshtein 19/24/37).  The
Hamming column is additionally checked against the exact closed-form
binomial model.
"""

from __future__ import annotations

from conftest import emit, suite_scale

from repro.profiling import min_length_for_rate, select_pattern_length

PAPER_TABLE5 = {
    ("hamming", 3): 18,
    ("hamming", 5): 22,
    ("hamming", 10): 31,
    ("levenshtein", 3): 19,
    ("levenshtein", 5): 24,
    ("levenshtein", 10): 37,
}


def run_experiment(n_symbols: int, trials: int):
    chosen = {}
    for (kernel, d), _paper_l in PAPER_TABLE5.items():
        l, _points = select_pattern_length(
            kernel,
            d,
            l_start=max(d + 2, PAPER_TABLE5[(kernel, d)] - 6),
            n_filters=5,
            n_symbols=n_symbols,
            trials=trials,
            seed=1,
        )
        chosen[(kernel, d)] = l
    return chosen


def render(chosen) -> str:
    lines = [
        f"{'Kernel':12s} {'d':>3s} {'chosen l':>9s} {'paper l':>8s} {'analytic':>9s}"
    ]
    for (kernel, d), l in chosen.items():
        analytic = min_length_for_rate(d) if kernel == "hamming" else "-"
        lines.append(
            f"{kernel:12s} {d:3d} {l:9d} {PAPER_TABLE5[(kernel, d)]:8d} {analytic!s:>9s}"
        )
    return "\n".join(lines)


def test_table5_profile_driven_lengths(benchmark, results_dir):
    n_symbols = max(50_000, int(1_000_000 * suite_scale() * 20))
    chosen = benchmark.pedantic(
        run_experiment, args=(n_symbols, 2), rounds=1, iterations=1
    )
    emit(results_dir, "table5_profile_params", render(chosen))

    # Hamming is exactly reproducible (binomial tail); Monte-Carlo noise
    # at reduced sample size allows +-1 on every entry.
    for key, paper_l in PAPER_TABLE5.items():
        assert abs(chosen[key] - paper_l) <= 1, (key, chosen[key], paper_l)
    # the analytic model reproduces the paper's Hamming column exactly
    assert [min_length_for_rate(d) for d in (3, 5, 10)] == [18, 22, 31]
