"""Ablation: routing architecture vs benchmark utilization (Section II-B).

Places every mesh benchmark (plus chain-structured controls) on the
tree-routed (D480-like) and island-style fabrics and reports state
utilization — the effect that made ANMLZoo's Levenshtein benchmark occupy
only 6% of the AP's state capacity and motivated AutomataZoo's
architecture-independent sizing.
"""

from __future__ import annotations

from conftest import emit

from repro.benchmarks import build_benchmark
from repro.engines.placement import ISLAND_FABRIC, TREE_FABRIC, place

BENCHES = [
    "Levenshtein 19x3",
    "Levenshtein 24x5",
    "Levenshtein 37x10",
    "Hamming 22x5",
    "Snort",
    "ClamAV",
]


def run_experiment(scale: float):
    rows = []
    for name in BENCHES:
        bench = build_benchmark(name, scale=scale, seed=0)
        tree = place(bench.automaton, TREE_FABRIC)
        island = place(bench.automaton, ISLAND_FABRIC)
        rows.append((name, tree, island))
    return rows


def render(rows) -> str:
    lines = [
        f"{'Benchmark':20s} {'tree util':>10s} {'tree bound':>11s} "
        f"{'island util':>12s} {'island bound':>13s}"
    ]
    for name, tree, island in rows:
        lines.append(
            f"{name:20s} {100 * tree.utilization:9.1f}% {tree.bound:>11s} "
            f"{100 * island.utilization:11.1f}% {island.bound:>13s}"
        )
    return "\n".join(lines)


def test_ablation_routing_architectures(benchmark, scale, results_dir):
    rows = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "ablation_routing", render(rows))

    by_name = {name: (tree, island) for name, tree, island in rows}
    # the denser Levenshtein variants are routing-bound on the tree
    # fabric, and utilization falls as edge density (d) grows
    utils = [by_name[f"Levenshtein {v}"][0].utilization for v in ("19x3", "24x5", "37x10")]
    assert all(
        by_name[f"Levenshtein {v}"][0].bound == "routing"
        for v in ("24x5", "37x10")
    )
    assert utils[0] > utils[1] > utils[2]
    # island routing recovers utilization (or removes the routing bound)
    for v in ("19x3", "24x5", "37x10"):
        tree, island = by_name[f"Levenshtein {v}"]
        assert island.utilization >= tree.utilization
