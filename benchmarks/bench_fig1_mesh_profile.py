"""Figure 1: match-rate curves for mesh automata on random DNA.

Sweeps the encoded pattern length for every (kernel, d) combination and
reports the average pattern matches per filter per million input symbols —
the data behind the paper's Figure 1.  Each curve must fall exponentially
in the pattern length and cross the 1-per-million selection threshold at
the Table V point; the Hamming curves are also compared against the exact
binomial expectation.
"""

from __future__ import annotations

from conftest import emit, suite_scale

from repro.profiling import expected_reports_per_million, figure1_sweep

SERIES = {
    ("hamming", 3): range(12, 20),
    ("hamming", 5): range(16, 24),
    ("hamming", 10): range(25, 33),
    ("levenshtein", 3): range(13, 21),
    ("levenshtein", 5): range(18, 26),
    ("levenshtein", 10): range(31, 39),
}


def run_sweeps(n_symbols: int):
    out = {}
    for (kernel, d), lengths in SERIES.items():
        out[(kernel, d)] = figure1_sweep(
            kernel,
            d,
            lengths,
            n_filters=5,
            n_symbols=n_symbols,
            trials=2,
            seed=2,
        )
    return out


def render(sweeps) -> str:
    lines = []
    for (kernel, d), points in sweeps.items():
        lines.append(f"{kernel} d={d}  (reports per filter per million symbols)")
        for point in points:
            analytic = (
                f"  analytic={expected_reports_per_million(point.l, d):10.3f}"
                if kernel == "hamming"
                else ""
            )
            lines.append(
                f"  l={point.l:3d}  measured={point.reports_per_million:10.3f}{analytic}"
            )
    return "\n".join(lines)


def test_fig1_mesh_profile_curves(benchmark, results_dir):
    n_symbols = max(30_000, int(1_000_000 * suite_scale() * 10))
    sweeps = benchmark.pedantic(run_sweeps, args=(n_symbols,), rounds=1, iterations=1)
    emit(results_dir, "fig1_mesh_profile", render(sweeps))

    for (kernel, d), points in sweeps.items():
        rates = [p.reports_per_million for p in points]
        # exponential fall-off: the first point dwarfs the last
        assert rates[0] > 10 * max(rates[-1], 0.01)
        # monotone within noise: no later point above the first
        assert max(rates[1:]) <= rates[0] * 1.5
    # Hamming curves agree with the binomial model where rates are measurable
    for d in (3, 5, 10):
        for point in sweeps[("hamming", d)]:
            expected = expected_reports_per_million(point.l, d)
            if expected > 20:
                assert 0.4 * expected < point.reports_per_million < 2.5 * expected
