"""Ablation: DFA compilation levers and literal prefiltering.

Two studies of the Hyperscan-class strategies our comparators rely on:

1. **DFA table size**: ahead-of-time subset construction on a literal
   ruleset — how much alphabet compression shrinks columns and
   minimization shrinks rows.
2. **Literal prefiltering**: scanning a Snort-like ruleset with
   PrefilterScanner vs running every automaton over the whole stream; on
   realistic traffic most rules' factors never occur, so the prefilter
   skips them entirely (Hyperscan's decomposition win).
"""

from __future__ import annotations

import time

from conftest import emit

from repro.core.dfa import DFA
from repro.engines import PrefilterScanner, VectorEngine
from repro.inputs.pcap import synthetic_pcap
from repro.regex import compile_regex, compile_ruleset
from repro.snort import generate_ruleset

WORDS = [
    "attack", "attach", "attic", "botnet", "bottle", "exploit", "explore",
    "payload", "payment", "rootkit", "malware", "mallard",
]


def dfa_study():
    automaton, _ = compile_ruleset(list(enumerate(WORDS)))
    dfa = DFA.from_automaton(automaton)
    minimal = dfa.minimize()
    return {
        "nfa_states": automaton.n_states,
        "dfa_states": dfa.n_states,
        "minimal_states": minimal.n_states,
        "symbol_classes": dfa.n_symbol_classes,
    }


def prefilter_study(scale: float):
    rules = generate_ruleset(max(60, int(2000 * scale * 10)), seed=0)
    patterns = []
    for rule in rules:
        if not rule.whole_stream_safe():
            continue
        try:  # skip uncompilable rules (back references), as the suite does
            compile_regex(rule.pcre)
        except Exception:
            continue
        patterns.append((rule.sid, rule.pcre))
    data = synthetic_pcap(max(100, int(1500 * scale * 10)), seed=2)

    scanner = PrefilterScanner(patterns)
    scanner.scan(data[:512])  # warm
    start = time.perf_counter()
    prefiltered = scanner.scan(data)
    t_prefilter = time.perf_counter() - start

    engines = [
        (code, VectorEngine(compile_regex(p, report_code=code)))
        for code, p in patterns
    ]
    start = time.perf_counter()
    full_events = set()
    for _code, engine in engines:
        full_events.update((r.offset, r.code) for r in engine.run(data).reports)
    t_full = time.perf_counter() - start

    assert {(r.offset, r.code) for r in prefiltered.reports} == full_events
    return {
        "rules": len(patterns),
        "gated": scanner.gated_rules,
        "t_full": t_full,
        "t_prefilter": t_prefilter,
        "reports": len(full_events),
    }


def test_ablation_dfa_compilation(benchmark, results_dir):
    study = benchmark.pedantic(dfa_study, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_dfa",
        (
            f"NFA states:        {study['nfa_states']}\n"
            f"DFA states:        {study['dfa_states']}\n"
            f"minimized states:  {study['minimal_states']}\n"
            f"symbol classes:    {study['symbol_classes']} (of 256)"
        ),
    )
    assert study["minimal_states"] <= study["dfa_states"]
    assert study["symbol_classes"] < 32  # literal ruleset: tiny alphabet


def test_ablation_literal_prefilter(benchmark, scale, results_dir):
    study = benchmark.pedantic(prefilter_study, args=(scale,), rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_prefilter",
        (
            f"rules: {study['rules']} ({study['gated']} gated by literals)\n"
            f"full scan:      {study['t_full']:.3f}s\n"
            f"prefiltered:    {study['t_prefilter']:.3f}s "
            f"({study['t_full'] / study['t_prefilter']:.1f}x)\n"
            f"reports: {study['reports']} (identical streams verified)"
        ),
    )
    assert study["gated"] > study["rules"] * 0.5
    assert study["t_prefilter"] < study["t_full"]
