"""Ablation: counter-based run constraints vs expanded STE chains.

Section XI: "Counters can enable efficient representation of some PCRE
range terms".  With reset ports implemented, a ``c{n}`` run detector is 3
elements at any ``n``; the classical construction chains ``n`` STEs.  This
ablation measures the state and active-set cost of both, verified
report-equivalent on random input.
"""

from __future__ import annotations

from conftest import emit

from repro.core import Automaton, CharSet, StartMode
from repro.core.extended import exact_run_automaton
from repro.engines import VectorEngine
from repro.inputs.dna import random_dna

RUN_CHARSET = CharSet.from_chars("A")


def chain_run_automaton(n: int) -> Automaton:
    """Classical n-state construction of the same exact-run detector."""
    automaton = Automaton(f"chain-run-{n}")
    breaker = automaton.add_ste("B", ~RUN_CHARSET, start=StartMode.ALL_INPUT).ident
    previous = breaker
    for i in range(n):
        ident = automaton.add_ste(
            f"s{i}",
            RUN_CHARSET,
            # runs at the stream start have no breaker before them
            start=StartMode.START_OF_DATA if i == 0 else StartMode.NONE,
            report=i == n - 1,
            report_code=f"run=={n}",
        ).ident
        automaton.add_edge(previous, ident)
        previous = ident
    return automaton


def run_experiment(_scale: float):
    # bursty input: random DNA with planted long 'A' runs, so chain tokens
    # actually march down the chain (the active-set cost being measured)
    import random as _random

    rng = _random.Random(3)
    pieces = []
    for _ in range(300):
        pieces.append(random_dna(80, seed=rng.randrange(10_000)))
        pieces.append(b"A" * rng.randint(8, 100))
    data = b"".join(pieces)
    rows = []
    for n in (4, 16, 64):
        counter_version = exact_run_automaton(RUN_CHARSET, n, report_code=f"run=={n}")
        chain_version = chain_run_automaton(n)
        counter_result = VectorEngine(counter_version).run(data, record_active=True)
        chain_result = VectorEngine(chain_version).run(data, record_active=True)
        assert [r.offset for r in counter_result.reports] == [
            r.offset for r in chain_result.reports
        ]
        rows.append(
            {
                "n": n,
                "counter_states": counter_version.n_states,
                "chain_states": chain_version.n_states,
                "counter_active": counter_result.mean_active_set,
                "chain_active": chain_result.mean_active_set,
                "reports": counter_result.report_count,
            }
        )
    return rows


def render(rows) -> str:
    lines = [
        f"{'n':>4s} {'counter states':>14s} {'chain states':>12s} "
        f"{'counter active':>14s} {'chain active':>12s} {'reports':>8s}"
    ]
    for r in rows:
        lines.append(
            f"{r['n']:4d} {r['counter_states']:14d} {r['chain_states']:12d} "
            f"{r['counter_active']:14.2f} {r['chain_active']:12.2f} "
            f"{r['reports']:8d}"
        )
    return "\n".join(lines)


def test_ablation_counter_ranges(benchmark, scale, results_dir):
    rows = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "ablation_counters", render(rows))
    for r in rows:
        assert r["counter_states"] == 3  # constant, independent of n
        assert r["chain_states"] == r["n"] + 1
