"""Section V: Snort report-rate reduction from rule-semantics filtering.

Reproduces the in-text experiment: compile the whole ruleset (ANMLZoo's
approach), then drop rules whose pcre carries Snort-specific modifiers,
then additionally drop isdataat rules, measuring the report rate at each
stage on the standard packet stream.

Expected shape (paper): the unfiltered benchmark reports on the vast
majority of input bytes (99.5% in the paper); dropping modifier rules cuts
the report rate ~5x; dropping isdataat rules cuts it a further ~2x.
"""

from __future__ import annotations

from conftest import emit

from repro.benchmarks.snort import section5_experiment
from repro.inputs.pcap import synthetic_pcap
from repro.snort import generate_ruleset


def run_experiment(scale: float):
    rules = generate_ruleset(max(60, int(3000 * scale * 10)), seed=0)
    data = synthetic_pcap(max(100, int(2000 * scale * 10)), seed=1)
    return section5_experiment(rules, data)


def render(stages) -> str:
    lines = [
        f"{'Stage':24s} {'Rules':>6s} {'Reports/sym':>12s} {'Bytes reporting':>16s}"
    ]
    for stage in stages:
        lines.append(
            f"{stage.name:24s} {stage.n_rules:6d} "
            f"{stage.reports_per_symbol:12.4f} "
            f"{100 * stage.reporting_byte_fraction:15.1f}%"
        )
    full, no_mod, final = (s.reports_per_symbol for s in stages)
    lines.append(
        f"reduction: modifiers {full / no_mod:.1f}x (paper ~5x), "
        f"isdataat {no_mod / final:.1f}x (paper ~2x)"
    )
    return "\n".join(lines)


def test_section5_snort_report_rates(benchmark, scale, results_dir):
    stages = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "section5_snort_rates", render(stages))

    full, no_mod, final = (s.reports_per_symbol for s in stages)
    assert stages[0].reporting_byte_fraction > 0.8  # paper: 99.5%
    assert full > 3 * no_mod  # paper: ~5x
    assert no_mod > 1.5 * final  # paper: ~2x
