"""Table II: Random Forest benchmark variant trade-offs.

Trains the three variants (A: 270 features/400 leaves, B: 200/400,
C: 200/800, scaled) and reports states, accuracy, and runtime relative to
variant B.  Runtime on spatial architectures is symbols-per-classification
(the paper's linear-in-features result), reported both as the symbol ratio
and as modelled FPGA wall-clock.

Expected shape (paper): A ~1.35x B's runtime; C ~4x B's states with ~+1%
accuracy; A's accuracy above B's.
"""

from __future__ import annotations

from conftest import emit

from repro.benchmarks.randomforest import VARIANTS, train_variant
from repro.engines.spatial import KINTEX_KU060


def run_variants(scale: float):
    kwargs = dict(n_train=1200, n_test=400, seed=0, scale=max(scale * 12, 0.1))
    return {key: train_variant(VARIANTS[key], **kwargs) for key in "ABC"}


def render(trained) -> str:
    base_symbols = trained["B"].symbols_per_classification
    lines = [
        f"{'Variant':8s} {'Features':>8s} {'MaxLeaves':>9s} {'States':>9s} "
        f"{'Accuracy':>8s} {'Runtime':>8s} {'FPGA kCls/s':>12s}"
    ]
    for key, variant in trained.items():
        symbols = variant.symbols_per_classification
        runtime_ratio = symbols / base_symbols
        fpga_rate = (
            KINTEX_KU060.throughput_bytes_per_sec(variant.automaton) / symbols / 1e3
        )
        lines.append(
            f"{key:8s} {len(variant.features):8d} "
            f"{variant.forest.max_leaves:9d} {variant.states:9,} "
            f"{variant.accuracy:8.4f} {runtime_ratio:7.2f}x {fpga_rate:12.1f}"
        )
    return "\n".join(lines)


def test_table2_rf_variants(benchmark, scale, results_dir):
    trained = benchmark.pedantic(run_variants, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "table2_rf_variants", render(trained))

    base = trained["B"]
    # paper shape: A streams ~1.35x B's symbols
    ratio = trained["A"].symbols_per_classification / base.symbols_per_classification
    assert 1.2 < ratio < 1.5
    # paper shape: C is ~4x B's states (deeper trees on 2x leaves)
    assert trained["C"].states > 1.6 * base.states
    # paper shape: more leaves help accuracy
    assert trained["C"].accuracy >= base.accuracy - 0.01
