"""Ablation: what prefix merging buys per benchmark family.

Table I reports compressed state counts; this ablation additionally
measures what the optimization does to *runtime* (active set shrinks when
shared prefixes collapse) and verifies report-stream equivalence on the
standard input — the property that makes it a legal optimization.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.benchmarks import build_benchmark
from repro.engines import VectorEngine
from repro.transforms import merge_common_prefixes

FAMILIES = ("ClamAV", "Brill", "Entity Resolution", "CRISPR CasOT")


def run_experiment(scale: float):
    results = {}
    for name in FAMILIES:
        bench = build_benchmark(name, scale=scale, seed=0)
        data = bench.input_data[:6_000]
        merged, stats = merge_common_prefixes(bench.automaton)

        before_engine = VectorEngine(bench.automaton)
        after_engine = VectorEngine(merged)
        before = before_engine.run(data, record_active=True)
        after = after_engine.run(data, record_active=True)
        assert [(r.offset, repr(r.code)) for r in before.reports] == [
            (r.offset, repr(r.code)) for r in after.reports
        ]

        start = time.perf_counter()
        before_engine.run(data)
        t_before = time.perf_counter() - start
        start = time.perf_counter()
        after_engine.run(data)
        t_after = time.perf_counter() - start

        results[name] = {
            "states_before": stats.states_before,
            "states_after": stats.states_after,
            "factor": stats.compression_factor,
            "active_before": before.mean_active_set,
            "active_after": after.mean_active_set,
            "speedup": t_before / t_after if t_after > 0 else float("inf"),
        }
    return results


def render(results) -> str:
    lines = [
        f"{'Benchmark':18s} {'states':>14s} {'removed':>8s} "
        f"{'active set':>18s} {'speedup':>8s}"
    ]
    for name, r in results.items():
        lines.append(
            f"{name:18s} {r['states_before']:6,}->{r['states_after']:6,} "
            f"{100 * r['factor']:7.1f}% "
            f"{r['active_before']:8.1f}->{r['active_after']:8.1f} "
            f"{r['speedup']:7.2f}x"
        )
    return "\n".join(lines)


def test_ablation_prefix_merge(benchmark, scale, results_dir):
    results = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "ablation_prefix_merge", render(results))
    for name, r in results.items():
        assert r["states_after"] <= r["states_before"]
        # merged automata never have a larger active set
        assert r["active_after"] <= r["active_before"] + 1e-9
