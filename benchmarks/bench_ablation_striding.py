"""Ablation: cost/benefit of 8-striding bit-level automata (Section IX-B).

Compares the File Carving zip-header pattern in its two executable forms —
the raw bit-level automaton consuming one bit per cycle, and its 8-strided
byte-level equivalent — measuring state blow-up and effective throughput
in *bytes* per second.  Striding trades a modest state increase for an 8x
reduction in cycles per byte (the reason the paper's pipeline stridas
every bit-level pattern before execution).
"""

from __future__ import annotations

import time

from conftest import emit

from repro.bitlevel import bytes_to_bits
from repro.benchmarks.filecarving import zip_local_header_automaton
from repro.bitlevel.builder import BitPatternBuilder
from repro.engines import VectorEngine
from repro.inputs.diskimage import build_disk_image
from repro.transforms import stride


def build_bit_pattern():
    """The zip local header as a raw bit automaton (pre-striding)."""
    from repro.benchmarks.filecarving import _dos_date_encodings, _dos_time_encodings

    builder = BitPatternBuilder("zip-local-header")
    builder.bytes(b"PK\x03\x04")
    builder.wildcard_bytes(2)
    builder.wildcard_bytes(2)
    builder.field(16, [0 << 8, 8 << 8])
    builder.field(16, _dos_time_encodings())
    builder.field(16, _dos_date_encodings())
    return builder.finish(report_code="zip-header")


def run_experiment(scale: float):
    image = build_disk_image(["zip", "text", "zip"], seed=0)
    data = image.data
    bit_automaton = build_bit_pattern()
    byte_automaton = stride(bit_automaton, 8)

    bit_engine = VectorEngine(bit_automaton)
    byte_engine = VectorEngine(byte_automaton)
    bits = bytes_to_bits(data)

    bit_result = bit_engine.run(bits)
    byte_result = byte_engine.run(data)
    assert {r.offset // 8 for r in bit_result.reports} == {
        r.offset for r in byte_result.reports
    }

    start = time.perf_counter()
    bit_engine.run(bits)
    t_bit = time.perf_counter() - start
    start = time.perf_counter()
    byte_engine.run(data)
    t_byte = time.perf_counter() - start

    return {
        "bit_states": bit_automaton.n_states,
        "byte_states": byte_automaton.n_states,
        "bit_bytes_per_sec": len(data) / t_bit,
        "byte_bytes_per_sec": len(data) / t_byte,
        "reports": byte_result.report_count,
    }


def render(r) -> str:
    return "\n".join(
        [
            f"bit-level automaton:   {r['bit_states']:6,} states, "
            f"{r['bit_bytes_per_sec'] / 1e3:8.1f} kB/s",
            f"8-strided automaton:   {r['byte_states']:6,} states, "
            f"{r['byte_bytes_per_sec'] / 1e3:8.1f} kB/s",
            f"state blow-up: {r['byte_states'] / r['bit_states']:.2f}x, "
            f"throughput gain: "
            f"{r['byte_bytes_per_sec'] / r['bit_bytes_per_sec']:.2f}x, "
            f"reports: {r['reports']}",
        ]
    )


def test_ablation_striding(benchmark, scale, results_dir):
    r = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "ablation_striding", render(r))
    # striding must pay off: big throughput win, bounded state growth
    assert r["byte_bytes_per_sec"] > 3 * r["bit_bytes_per_sec"]
    assert r["byte_states"] < 10 * r["bit_states"]
    assert r["reports"] >= 2  # both zip files' headers found
