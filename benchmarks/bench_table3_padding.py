"""Table III: cost of AP-specific padding on CPU automata engines.

Builds the 6-wide Sequence Matching benchmark twice — exact filters, and
filters padded to width 10 (AP soft-reconfiguration style) — and measures
both on the two CPU engine classes:

* ReferenceEngine: active-set-proportional cost (the VASim class);
* LazyDFAEngine: per-symbol table lookup (the Hyperscan class).

Expected shape (paper): the padding costs the VASim-class engine ~27%
while the DFA-class engine barely notices (~3%).
"""

from __future__ import annotations

import time

from conftest import emit

from repro.benchmarks import seqmatch
from repro.core.automaton import Automaton
from repro.engines import LazyDFAEngine, ReferenceEngine


def build_pair(scale: float):
    n_patterns = max(4, int(200 * scale * 10))
    patterns = seqmatch.generate_patterns(n_patterns, p=6, w=6, seed=0)
    plain = Automaton("seqmatch-6w")
    padded = Automaton("seqmatch-6w-padded")
    for index, pattern in enumerate(patterns):
        plain.merge(
            seqmatch.sequence_pattern_automaton(pattern, pattern_id=index),
            prefix=f"p{index}.",
        )
        padded.merge(
            seqmatch.sequence_pattern_automaton(
                pattern, pattern_id=index, pad_to_width=10
            ),
            prefix=f"p{index}.",
        )
    database = seqmatch.generate_database(max(100, int(3000 * scale * 10)), seed=1)
    return plain, padded, seqmatch.encode_database(database)


def timed_run(engine, data: bytes) -> float:
    start = time.perf_counter()
    engine.run(data)
    return time.perf_counter() - start


def run_experiment(scale: float):
    plain, padded, data = build_pair(scale)
    results = {}
    for label, engine_cls in (("VASim-class", ReferenceEngine), ("DFA-class", LazyDFAEngine)):
        plain_engine = engine_cls(plain)
        padded_engine = engine_cls(padded)
        # warm (and for the DFA: materialise transitions) then measure
        plain_engine.run(data)
        padded_engine.run(data)
        t_plain = min(timed_run(plain_engine, data) for _ in range(3))
        t_padded = min(timed_run(padded_engine, data) for _ in range(3))
        results[label] = (t_plain, t_padded)
    # reports must be identical: padding adds no computation
    assert (
        ReferenceEngine(plain).run(data).reports
        == ReferenceEngine(padded).run(data).reports
    )
    return results


def render(results) -> str:
    lines = [f"{'CPU Engine':14s} {'6 Wide':>10s} {'6 Wide Padded':>14s} {'Overhead':>9s}"]
    for label, (t_plain, t_padded) in results.items():
        overhead = 100 * (t_padded - t_plain) / t_plain
        lines.append(
            f"{label:14s} {t_plain:9.4f}s {t_padded:13.4f}s {overhead:8.1f}%"
        )
    return "\n".join(lines)


def test_table3_padding_overhead(benchmark, scale, results_dir):
    results = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "table3_padding", render(results))

    vasim_plain, vasim_padded = results["VASim-class"]
    dfa_plain, dfa_padded = results["DFA-class"]
    vasim_overhead = (vasim_padded - vasim_plain) / vasim_plain
    dfa_overhead = (dfa_padded - dfa_plain) / dfa_plain
    # paper shape: padding hurts the active-set engine far more than the
    # DFA engine (26.7% vs 2.9% in Table III)
    assert vasim_overhead > 0.10
    assert dfa_overhead < vasim_overhead / 2
