"""Engine throughput sweep, machine-readable.

Runs a representative slice of the suite on every registered CPU engine
and writes ``bench_results/BENCH_engines.json``: per (benchmark, engine)
ksym/s, report count, and speedup over :class:`ReferenceEngine`.  The
JSON is the tracking artifact for the engine hot path — regressions show
up as a speedup drop against the numbers recorded in the repo.

The benchmark slice covers the activity spectrum: Snort (sparse active
set, report-heavy), Hamming 18x3 (dense mesh activity), Brill (mid-size
token rules), and AP PRNG 4-sided (counter elements, so the DFA engine
sits this one out).
"""

from __future__ import annotations

import json
import time

from conftest import emit

from repro import telemetry
from repro.benchmarks import build_benchmark
from repro.engines import ENGINE_REGISTRY, ReferenceEngine
from repro.errors import EngineError, CapacityError

BENCH_SLICE = ("Snort", "Hamming 18x3", "Brill", "AP PRNG 4-sided")
INPUT_LIMIT = 8_000
REPEATS = 5  # best-of-N: single runs are ~ms-scale and timing-noise-bound


def _best_rate(engine, data) -> tuple[float, int]:
    engine.run(data)  # warm: memoise DFA transitions, touch caches
    best = float("inf")
    reports = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        reports = engine.run(data).report_count
        best = min(best, time.perf_counter() - start)
    return len(data) / best, reports


def run_experiment(scale: float, max_seconds: float | None = None):
    """The sweep; returns ``(results, truncated)``.

    With a ``max_seconds`` budget, cells that would start past the
    deadline are marked skipped (``"truncated by time budget"``) and
    ``truncated`` is True — the artifact stays a complete, valid JSON
    document covering whatever finished in time (docs/RESILIENCE.md).
    """
    deadline = (
        time.perf_counter() + max_seconds if max_seconds is not None else None
    )
    truncated = False
    results: dict[str, dict[str, dict]] = {}
    for name in BENCH_SLICE:
        rows: dict[str, dict] = {}
        results[name] = rows
        if deadline is not None and time.perf_counter() > deadline:
            truncated = True
            rows.update(
                {e: {"skipped": "truncated by time budget"} for e in ENGINE_REGISTRY}
            )
            continue
        bench = build_benchmark(name, scale=scale, seed=0)
        data = bench.input_data[:INPUT_LIMIT]
        for engine_name, engine_cls in ENGINE_REGISTRY.items():
            if deadline is not None and time.perf_counter() > deadline:
                truncated = True
                rows[engine_name] = {"skipped": "truncated by time budget"}
                continue
            try:
                engine = engine_cls(bench.automaton)
            except (EngineError, CapacityError) as exc:
                rows[engine_name] = {"skipped": str(exc)}
                continue
            rate, reports = _best_rate(engine, data)
            rows[engine_name] = {
                "ksym_per_s": round(rate / 1e3, 1),
                "reports": reports,
            }
        reference = rows.get("reference", {}).get("ksym_per_s")
        if reference:
            for row in rows.values():
                if "ksym_per_s" in row:
                    row["speedup_vs_reference"] = round(
                        row["ksym_per_s"] / reference, 2
                    )
    return results, truncated


def render(results) -> str:
    lines = [f"{'Benchmark':18s} {'Engine':10s} {'ksym/s':>10s} {'reports':>8s} {'vs ref':>7s}"]
    for name, rows in results.items():
        for engine_name, row in rows.items():
            if "skipped" in row:
                lines.append(f"{name:18s} {engine_name:10s} {'--':>10s} {'--':>8s} {'--':>7s}")
            else:
                lines.append(
                    f"{name:18s} {engine_name:10s} {row['ksym_per_s']:10.1f} "
                    f"{row['reports']:8d} {row['speedup_vs_reference']:6.1f}x"
                )
    return "\n".join(lines)


def test_engine_throughput(benchmark, scale, results_dir, max_seconds):
    # Telemetry rides along (feed-level instrumentation, so the per-symbol
    # hot loops are untouched); the snapshot lands in the JSON artifact so
    # a speedup regression comes with its compile/scan/memo breakdown.
    was_enabled = telemetry.is_enabled()
    telemetry.enable()
    telemetry.reset()
    try:
        results, truncated = benchmark.pedantic(
            run_experiment, args=(scale, max_seconds), rounds=1, iterations=1
        )
        telemetry_snapshot = telemetry.snapshot()
    finally:
        if not was_enabled:
            telemetry.disable()
    (results_dir / "BENCH_engines.json").write_text(
        json.dumps(
            {
                "scale": scale,
                "input_limit": INPUT_LIMIT,
                "truncated": truncated,
                "results": results,
                "telemetry": telemetry_snapshot,
            },
            indent=2,
        )
        + "\n"
    )
    emit(results_dir, "engine_throughput", render(results))
    for name, rows in results.items():
        counts = {row["reports"] for row in rows.values() if "reports" in row}
        assert len(counts) <= 1, f"{name}: engines disagree on report count"
    if truncated:
        return  # partial artifact written; perf bound needs the full cells
    # the bit-parallel engine must beat the scalar reference comfortably on
    # the paper's flagship ruleset (measured >= 10x; conservative bound)
    assert results["Snort"]["bitset"]["speedup_vs_reference"] > 3
