"""Ablation: engine architecture vs throughput and active-set sensitivity.

Runs the same benchmark on the four CPU engines and reports symbols/sec.
The expected ordering exercises the paper's core performance narrative:
DFA-class >> bit-parallel >> vectorised active-set >= scalar active-set
on low-activity workloads, while high-activity workloads (dense mesh
automata) squeeze the gap between the active-set engines and can blow up
the DFA's subset space.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.benchmarks import build_benchmark
from repro.engines import BitsetEngine, LazyDFAEngine, ReferenceEngine, VectorEngine
from repro.errors import CapacityError


def run_experiment(scale: float):
    results = {}
    for name in ("Snort", "Hamming 18x3"):
        bench = build_benchmark(name, scale=scale, seed=0)
        data = bench.input_data[:8_000]
        rows = {}
        for engine_cls in (ReferenceEngine, VectorEngine, BitsetEngine, LazyDFAEngine):
            try:
                engine = engine_cls(bench.automaton)
                engine.run(data)  # warm / memoise
                best = float("inf")
                reports = 0
                for _ in range(3):  # best-of-N: single runs are noise-bound
                    start = time.perf_counter()
                    reports = engine.run(data).report_count
                    best = min(best, time.perf_counter() - start)
                rows[engine_cls.__name__] = (len(data) / best, reports)
            except CapacityError:
                rows[engine_cls.__name__] = (0.0, -1)
        results[name] = rows
    return results


def render(results) -> str:
    lines = [f"{'Benchmark':14s} {'Engine':16s} {'ksym/s':>10s} {'reports':>8s}"]
    for name, rows in results.items():
        for engine_name, (rate, reports) in rows.items():
            lines.append(
                f"{name:14s} {engine_name:16s} {rate / 1e3:10.1f} {reports:8d}"
            )
    return "\n".join(lines)


def test_ablation_engine_throughput(benchmark, scale, results_dir):
    results = benchmark.pedantic(run_experiment, args=(scale,), rounds=1, iterations=1)
    emit(results_dir, "ablation_engines", render(results))
    for rows in results.values():
        counts = {r for _, r in rows.values() if r >= 0}
        assert len(counts) == 1  # all engines agree on the report count
    snort = results["Snort"]
    # the DFA engine dominates on a low-activity ruleset
    assert snort["LazyDFAEngine"][0] > snort["ReferenceEngine"][0]
    # the bit-parallel engine beats the scalar reference comfortably
    # (measured >= 10x; assert a conservative bound to dodge CI noise)
    assert snort["BitsetEngine"][0] > 3 * snort["ReferenceEngine"][0]
