#!/usr/bin/env python
"""Virus scanning: the ClamAV benchmark as an application.

Builds a synthetic signature database, assembles a disk image with two
embedded virus fragments (the paper's standard input), scans it with the
automata engine, and reports which signatures fired where — demonstrating
the "full kernel" property: the report stream is directly the scanner's
output.

Run:  python examples/virus_scan.py
"""

from repro.benchmarks.clamav import build_clamav_benchmark
from repro.engines import VectorEngine


def main() -> None:
    bench = build_clamav_benchmark(n_signatures=200, seed=42, n_files=10)
    print(
        f"database: {len(bench.signatures)} signatures, "
        f"automaton: {bench.automaton.n_states:,} states"
    )
    print(f"disk image: {len(bench.image.data):,} bytes, "
          f"{len(bench.image.entries)} files")
    print(f"ground truth: fragments of {bench.planted} embedded\n")

    engine = VectorEngine(bench.automaton)
    result = engine.run(bench.image.data, record_active=True)

    detections: dict[str, list[int]] = {}
    for event in result.reports:
        detections.setdefault(event.code, []).append(event.offset)

    print(f"scan complete: mean active set {result.mean_active_set:.1f}")
    if not detections:
        print("no detections")
    for name, offsets in sorted(detections.items()):
        marker = "PLANTED" if name in bench.planted else "chance match"
        print(f"  {name:22s} at offsets {offsets[:4]}  [{marker}]")

    missed = set(bench.planted) - set(detections)
    if missed:
        raise SystemExit(f"FAILED to detect planted fragments: {missed}")
    print("\nboth planted virus fragments detected.")


if __name__ == "__main__":
    main()
