#!/usr/bin/env python
"""A network IDS pipeline: Snort-lite rules end to end.

Demonstrates the Section V methodology plus two engine strategies on the
same filtered ruleset:

1. generate a Snort-lite ruleset and apply the paper's whole-stream
   filtering (drop buffer-modifier and isdataat rules);
2. scan synthetic traffic with the compiled benchmark automaton,
   summarising the reporting-bottleneck pressure before/after filtering;
3. scan again with the literal-prefilter strategy (the Hyperscan
   decomposition) and check the alert streams agree.

Run:  python examples/network_ids.py
"""

import time

from repro.benchmarks.snort import build_snort_automaton
from repro.engines import PrefilterScanner, VectorEngine
from repro.inputs.pcap import synthetic_pcap
from repro.regex import compile_regex
from repro.snort import generate_ruleset
from repro.stats import analyze_report_pressure


def main() -> None:
    rules = generate_ruleset(250, seed=7)
    traffic = synthetic_pcap(400, seed=8)
    print(f"ruleset: {len(rules)} rules; traffic: {len(traffic):,} bytes")

    # -- Section V filtering -------------------------------------------------
    unfiltered, _, _ = build_snort_automaton(
        rules, exclude_modifier_rules=False, exclude_isdataat_rules=False
    )
    filtered, included, rejected = build_snort_automaton(rules)
    print(
        f"whole-stream-safe rules: {len(included)} "
        f"(excluded: buffer-modifier/isdataat; uncompilable: {len(rejected)})"
    )

    for label, automaton in (("unfiltered", unfiltered), ("filtered", filtered)):
        result = VectorEngine(automaton).run(traffic)
        pressure = analyze_report_pressure(result)
        print(
            f"  {label:10s}: {result.report_count:7,} alerts, modelled "
            f"output-drain stall overhead {100 * pressure.stall_overhead:6.1f}% "
            f"on a D480-like report buffer"
        )

    # -- alert inspection -----------------------------------------------------
    result = VectorEngine(filtered).run(traffic)
    by_rule: dict[int, int] = {}
    for event in result.reports:
        by_rule[event.code] = by_rule.get(event.code, 0) + 1
    rule_of = {rule.sid: rule for rule in rules}
    print("\ntop alerting rules:")
    for sid, count in sorted(by_rule.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  sid {sid}: {count:5,}x  /{rule_of[sid].pcre}/  ({rule_of[sid].msg})")

    # -- prefiltered scanning ---------------------------------------------------
    patterns = []
    for rule in included:
        try:
            compile_regex(rule.pcre)
            patterns.append((rule.sid, rule.pcre))
        except Exception:
            pass
    scanner = PrefilterScanner(patterns)
    start = time.perf_counter()
    prefiltered = scanner.scan(traffic)
    elapsed = time.perf_counter() - start
    full_alerts = {(r.offset, r.code) for r in result.reports}
    pre_alerts = {(r.offset, r.code) for r in prefiltered.reports}
    assert pre_alerts == full_alerts, "prefilter changed the alert stream!"
    print(
        f"\nliteral prefilter: {scanner.gated_rules}/{len(patterns)} rules "
        f"gated; identical alerts in {elapsed:.2f}s"
    )


if __name__ == "__main__":
    main()
