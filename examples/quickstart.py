#!/usr/bin/env python
"""Quickstart: compile a pattern, run it, inspect a benchmark.

Covers the three things a new user does first:

1. compile a regular expression to a homogeneous automaton and stream
   bytes through an engine,
2. look at benchmark-style statistics (states, edges, active set), and
3. build one of the 25 AutomataZoo benchmarks from the registry.

Run:  python examples/quickstart.py
"""

from repro import LazyDFAEngine, ReferenceEngine, VectorEngine, compile_regex
from repro.benchmarks import build_benchmark
from repro.stats import compute_static_stats, measure_dynamic
from repro.transforms import merge_common_prefixes


def main() -> None:
    # -- 1. compile and run a pattern -------------------------------------
    automaton = compile_regex(r"virus[0-9]{2}", report_code="demo-rule")
    print(f"compiled automaton: {automaton}")

    data = b"...virus07... clean ...virus42..."
    for engine_cls in (ReferenceEngine, VectorEngine, LazyDFAEngine):
        engine = engine_cls(automaton)
        result = engine.run(data)
        offsets = [event.offset for event in result.reports]
        print(f"{engine_cls.__name__:16s} reports at offsets {offsets}")

    # -- 2. benchmark-style statistics -------------------------------------
    static = compute_static_stats(automaton)
    dynamic = measure_dynamic(automaton, data)
    print(
        f"\nstates={static.states} edges={static.edges} "
        f"edges/node={static.edges_per_node:.2f}"
    )
    print(
        f"mean active set={dynamic.mean_active_set:.2f} "
        f"reports/symbol={dynamic.reports_per_symbol:.4f}"
    )

    merged, stats = merge_common_prefixes(automaton)
    print(
        f"prefix merge: {stats.states_before} -> {stats.states_after} states "
        f"({100 * stats.compression_factor:.0f}% removed)"
    )

    # -- 3. build a real AutomataZoo benchmark ------------------------------
    bench = build_benchmark("Hamming 18x3", scale=0.01, seed=0)
    print(f"\nbuilt {bench}")
    result = VectorEngine(bench.automaton).run(
        bench.input_data[:5000], record_active=True
    )
    print(
        f"simulated 5,000 DNA symbols: active set={result.mean_active_set:.1f}, "
        f"reports={result.report_count}"
    )


if __name__ == "__main__":
    main()
