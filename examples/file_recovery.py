#!/usr/bin/env python
"""File recovery: carving a corrupted disk image with bit-level patterns.

Builds a disk image of zip/mpeg/mp4/jpeg files plus text containing e-mail
addresses and SSNs, then carves it with the File Carving benchmark —
whose zip pattern validates the MS-DOS timestamp bit-fields (Section IX-B)
rather than just the 4-byte magic, eliminating the false positives of
exact-match carvers.

Run:  python examples/file_recovery.py
"""

import random

from repro.benchmarks.filecarving import build_filecarving_automaton
from repro.engines import VectorEngine
from repro.inputs.diskimage import build_disk_image


def main() -> None:
    image = build_disk_image(
        ["zip", "text", "mpeg2", "mp4", "jpeg", "zip", "png"], seed=11
    )
    # append forensic metadata (keeps ground-truth offsets intact)
    data = bytearray(image.data)
    data += b" reach me at jane.doe@forensics.example.net ssn 219-09-9999 "

    # plus a decoy: a bare PK magic with garbage structure (a false
    # positive for naive magic-matching carvers)
    rng = random.Random(3)
    decoy = b"PK\x03\x04" + bytes(rng.randrange(256) for _ in range(20))
    data += decoy
    stream = bytes(data)

    automaton = build_filecarving_automaton()
    print(f"carver: {automaton.n_states} states, "
          f"{len(automaton.connected_components())} patterns")
    print(f"image: {len(stream):,} bytes, ground truth: "
          f"{[e.kind for e in image.entries]}\n")

    result = VectorEngine(automaton).run(stream)
    by_kind: dict[str, list[int]] = {}
    for event in result.reports:
        by_kind.setdefault(event.code, []).append(event.offset)

    for kind in sorted(by_kind):
        offsets = by_kind[kind]
        print(f"  {kind:12s} x{len(offsets):<3d} at {offsets[:5]}")

    zip_truth = [e.offset for e in image.entries if e.kind == "zip"]
    hits = by_kind.get("zip-header", [])
    print(f"\nzip files at {zip_truth} (each holds two member headers); "
          f"structured pattern found {len(hits)} headers")
    # every zip file's first header found; the garbage decoy rejected
    assert all(any(z <= h <= z + 40 for h in hits) for z in zip_truth)
    decoy_start = len(stream) - 24
    assert not any(h >= decoy_start for h in hits), "decoy matched!"
    print("the decoy PK magic with a garbage timestamp was rejected.")


if __name__ == "__main__":
    main()
