#!/usr/bin/env python
"""Random Forest classification by automata — the full-kernel comparison.

Trains a forest on the synthetic digit dataset, converts it to a chain
automaton, classifies a batch of test images three ways — the automata
kernel, per-sample Python traversal, and vectorised numpy inference — and
verifies that all three produce identical predictions (Section VIII's
apples-to-apples property), then prints their throughputs.

Run:  python examples/forest_classify.py
"""

import time

import numpy as np

from repro.baselines import NativeForest
from repro.benchmarks.randomforest import (
    classify_with_automaton,
    encode_samples,
    forest_to_automaton,
)
from repro.engines import VectorEngine
from repro.ml import RandomForest, make_digits, select_features


def main() -> None:
    digits = make_digits(n_train=1500, n_test=300, seed=0)
    features = select_features(digits.train_x, digits.train_y, 64)
    train_x = np.minimum(digits.train_x[:, features], 254)
    test_x = np.minimum(digits.test_x[:, features], 254)

    forest = RandomForest(n_trees=10, max_leaves=80, seed=0)
    forest.fit(train_x, digits.train_y)
    print(f"forest: {forest.n_trees} trees, {forest.total_leaves()} leaves, "
          f"accuracy {forest.accuracy(test_x, digits.test_y):.3f}")

    automaton = forest_to_automaton(forest, len(features))
    print(f"automaton: {automaton.n_states:,} states, "
          f"{len(automaton.connected_components()):,} path chains")
    print(f"input: {len(encode_samples(test_x)):,} bytes for "
          f"{len(test_x)} classifications\n")

    engine = VectorEngine(automaton)
    start = time.perf_counter()
    via_automata = classify_with_automaton(
        automaton, test_x, n_classes=10, engine=engine
    )
    t_automata = time.perf_counter() - start

    start = time.perf_counter()
    via_python = forest.predict(test_x)
    t_python = time.perf_counter() - start

    native = NativeForest(forest)
    native.predict(test_x[:10])
    start = time.perf_counter()
    via_native = native.predict(test_x)
    t_native = time.perf_counter() - start

    assert np.array_equal(via_automata, via_python)
    assert np.array_equal(via_automata, via_native)
    print("all three implementations agree on every prediction\n")

    n = len(test_x)
    for label, elapsed in [
        ("automata kernel (VectorEngine)", t_automata),
        ("python tree traversal", t_python),
        ("numpy batch inference", t_native),
    ]:
        print(f"  {label:32s} {n / elapsed:10.0f} classifications/s")


if __name__ == "__main__":
    main()
