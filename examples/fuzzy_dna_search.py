#!/usr/bin/env python
"""Fuzzy DNA search: mesh automata vs CPU-native algorithms.

Plants mutated copies of guide sequences in a DNA stream, finds them with
Hamming and Levenshtein mesh automata, cross-checks against the Myers
bit-parallel matcher, and shows the profile-driven design rule of
Section X: the analytic model picks the paper's exact Table V lengths.

Run:  python examples/fuzzy_dna_search.py
"""

from repro.baselines import MyersMatcher
from repro.benchmarks.mesh import hamming_automaton, levenshtein_automaton
from repro.engines import VectorEngine
from repro.inputs.dna import plant_pattern, random_dna, random_dna_patterns
from repro.profiling import min_length_for_rate


def main() -> None:
    # -- plant mutated targets ---------------------------------------------
    pattern = random_dna_patterns(1, 18, seed=7)[0]
    stream = random_dna(20_000, seed=1)
    stream = plant_pattern(stream, pattern, 4_000, mutations=2, seed=2)
    stream = plant_pattern(stream, pattern, 12_000, mutations=3, seed=3)
    print(f"guide: {pattern.decode()} planted at 4,000 (2 mut) and 12,000 (3 mut)")

    # -- Hamming mesh ---------------------------------------------------------
    automaton = hamming_automaton(pattern, 3, pattern_id="guide")
    result = VectorEngine(automaton).run(stream)
    hits = sorted({(e.offset, e.code[1]) for e in result.reports})
    print(f"\nHamming(d=3) automaton ({automaton.n_states} states):")
    for offset, distance in hits:
        print(f"  window ending at {offset:6,}  distance {distance}")

    # -- Levenshtein mesh vs Myers bit-parallel -----------------------------
    lev = levenshtein_automaton(pattern, 2, pattern_id="guide")
    lev_hits = sorted({e.offset for e in VectorEngine(lev).run(stream).reports})
    myers_hits = MyersMatcher(pattern, 2).search(stream)
    agree = "agree" if lev_hits == myers_hits else "DISAGREE"
    print(
        f"\nLevenshtein(d=2) automaton found ends {lev_hits}; "
        f"Myers bit-parallel {agree}s"
    )

    # -- the Section X design rule -------------------------------------------
    print("\nprofile-driven filter lengths (rate < 1 per million random bp):")
    for d in (3, 5, 10):
        print(f"  Hamming d={d:2d}: minimal l = {min_length_for_rate(d)}"
              f"  (paper Table V: {dict([(3, 18), (5, 22), (10, 31)])[d]})")


if __name__ == "__main__":
    main()
