#!/usr/bin/env python
"""Protein motif search: the Protomata benchmark as an application.

Builds the canonical-size PROSITE-syntax motif database, plants a few
motif instances in a synthetic proteome, scans with the automata engine,
and demonstrates the paper's "fixed canonical workload" point: the motif
set is what it is — no synthetic inflation — and a spatial architecture
with spare capacity should spend it on speed, not padding.

Run:  python examples/protein_motifs.py
"""

from repro.benchmarks.protomata import build_protomata_benchmark
from repro.engines import MICRON_D480, VectorEngine
from repro.engines.parallel import parallel_scan, parallel_speedup_model
from repro.engines.prefilter import max_match_length


def main() -> None:
    bench = build_protomata_benchmark(
        n_motifs=200, n_residues=40_000, n_planted=6, seed=3
    )
    automaton = bench.automaton
    print(
        f"motif database: {len(bench.motifs)} PROSITE patterns, "
        f"{automaton.n_states:,} states"
    )
    print(f"proteome: {len(bench.proteome):,} residues; "
          f"{len(bench.planted)} motifs planted\n")

    result = VectorEngine(automaton).run(bench.proteome, record_active=True)
    found = {event.code for event in result.reports}
    hits = sorted(found & set(bench.planted))
    print(f"scan: {result.report_count} matches, "
          f"active set {result.mean_active_set:.1f}")
    print(f"planted motifs recovered: {hits} (all {len(bench.planted)} found: "
          f"{set(bench.planted) <= found})")
    for index in hits[:3]:
        print(f"  motif {index}: {bench.motifs[index]}")

    # the fixed-workload argument: this database fills a fraction of a chip
    utilization = MICRON_D480.utilization(automaton)
    print(
        f"\nD480 state utilization at this size: {100 * utilization:.1f}% — "
        "the paper argues spare capacity should buy speed, e.g. input "
        "parallelism:"
    )
    window = max_match_length(automaton)
    for replicas in (2, 4, 8):
        segmented = parallel_scan(automaton, bench.proteome, replicas)
        assert {e.code for e in segmented.reports} == found
        speedup = parallel_speedup_model(len(bench.proteome), replicas, window)
        print(
            f"  {replicas} replicas: identical matches, "
            f"modelled speedup {speedup:.2f}x"
        )


if __name__ == "__main__":
    main()
