"""Synthetic Snort-lite ruleset generator.

Engineered to reproduce the *mechanism* behind Section V's numbers: the
rules that fire extremely frequently are exactly the ones carrying
Snort-specific pcre modifiers (they were written to be applied to a
selected buffer, not the whole stream) or ``isdataat`` options (the paper's
outlier rule producing over half of all reports).  Specific,
whole-stream-safe rules are long literals and structured patterns that fire
rarely.

A small fraction of rules use back-references, which the regex compiler
rejects — mirroring pcre2mnrl's unsupported-pattern filtering.
"""

from __future__ import annotations

import random

from repro.snort.rules import SnortRule

__all__ = ["generate_ruleset", "render_rule", "render_ruleset"]

# Patterns written for a selected buffer (URI, header): short and generic,
# they fire constantly when misapplied to the whole stream.
_MODIFIER_PATTERNS = [
    (r"[a-z]{2}", "iU"),
    (r"\/", "U"),
    (r"=[0-9]+", "U"),
    (r"%[0-9a-f]{2}", "iU"),
    (r"[A-Z][a-z]+", "H"),
    (r"\d\d", "R"),
    (r"[a-z]+\/[a-z]+", "iP"),
    (r"\x3a\x20", "H"),
    (r"(?:GET|POST)", "U"),
    (r"1\.1", "R"),
]

# The Section V outlier and friends: isdataat rules with very frequent
# patterns (they check for downstream data relative to a generic match).
_ISDATAAT_PATTERNS = [
    r"[a-zA-Z0-9]",  # the outlier: fires on most payload bytes
    r"[\x20-\x7e]{4}",
    r"\r\n",
]

# Whole-stream-safe protocol-context rules: they legitimately fire about
# once per packet, so the filtered benchmark retains a realistic report
# rate (the paper's final stage still reports, just ~10x less than the
# unfiltered set).
_PROTOCOL_PATTERNS = [
    r"GET\x20\/",
    r"POST\x20\/",
    r"HTTP\/1\.1",
    r"Host\x3a\x20",
    r"User\-Agent\x3a",
    r"Content\-Length\x3a",
    r"\r\n\r\n",
    r"\.com",
    r"=[0-9]{4}",
    r"[a-z]+\/[a-z]+\?",
]

# Whole-stream-safe signatures: specific tokens and structured patterns.
_SPECIFIC_LITERALS = [
    r"cmd\.exe",
    r"\/etc\/passwd",
    r"SELECT \* FROM",
    r"%c0%af",
    r"powershell \-enc",
    r"<script>alert",
    r"\.\.\/\.\.\/\.\.\/",
    r"EICAR\-STANDARD\-ANTIVIRUS",
    r"union select",
    r"xp_cmdshell",
]
# content literals paired with _SPECIFIC_LITERALS (same index)
_CONTENT_OF = [
    "cmd.exe",
    "/etc/passwd",
    "SELECT ",
    "%c0%af",
    "powershell",
    "<script>",
    "../../",
    "EICAR",
    "union select",
    "xp_cmdshell",
]

_SPECIFIC_TEMPLATES = [
    r"User\-Agent\x3a [a-z]{8,12}bot",
    r"Host\x3a evil[0-9]{3}\.com",
    r"\/admin\/[a-z]{6}\.php\?id=[0-9]{4}",
    r"[a-f0-9]{32}\.exe",
    r"session=[A-Z0-9]{16}",
]


def _random_token(rng: random.Random, length: int) -> str:
    return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length))


def generate_ruleset(
    n_rules: int = 300,
    *,
    modifier_fraction: float = 0.35,
    isdataat_count: int = 3,
    unsupported_fraction: float = 0.03,
    seed: int = 0,
) -> list[SnortRule]:
    """Generate a synthetic ruleset with the Section V composition."""
    rng = random.Random(seed)
    rules: list[SnortRule] = []
    sid = 1000

    def add(pcre: str, flags: str, options: tuple[str, ...] = (), msg: str = "synthetic"):
        nonlocal sid
        rules.append(
            SnortRule(
                sid=sid,
                action="alert",
                proto="tcp",
                msg=msg,
                pcre=pcre,
                pcre_flags=flags,
                options=options,
            )
        )
        sid += 1

    for index in range(isdataat_count):
        pattern = _ISDATAAT_PATTERNS[index % len(_ISDATAAT_PATTERNS)]
        add(pattern, "", (f"isdataat:{rng.randint(10, 100)},relative",), "isdataat rule")

    n_modifier = int(n_rules * modifier_fraction)
    for _ in range(n_modifier):
        pattern, flags = rng.choice(_MODIFIER_PATTERNS)
        add(pattern, flags, (), "buffer-selective rule")

    n_unsupported = int(n_rules * unsupported_fraction)
    for _ in range(n_unsupported):
        # back-references: rejected by the compiler, as by pcre2mnrl
        token = _random_token(rng, 4)
        add(rf"({token})x\1", "", (), "backreference rule")

    while len(rules) < n_rules:
        roll = rng.random()
        if roll < 0.4:
            pattern = rng.choice(_PROTOCOL_PATTERNS)
            add(pattern, "", (), "protocol context rule")
            continue
        if roll < 0.65:
            index = rng.randrange(len(_SPECIFIC_LITERALS))
            pattern = _SPECIFIC_LITERALS[index]
            options: tuple[str, ...] = ()
            if rng.random() < 0.5:
                # pair the pcre with a content literal (full-kernel rules)
                options = (f'content:"{_CONTENT_OF[index]}"',)
            add(pattern, "i" if rng.random() < 0.3 else "", options,
                "specific signature")
            continue
        if roll < 0.85:
            pattern = rng.choice(_SPECIFIC_TEMPLATES)
        else:
            pattern = _random_token(rng, rng.randint(8, 14))
        add(pattern, "i" if rng.random() < 0.3 else "", (), "specific signature")

    rng.shuffle(rules)
    return rules


def render_rule(rule: SnortRule) -> str:
    """Render a rule back to Snort-lite text (parser round-trip)."""
    options = [f'msg:"{rule.msg}"', f'pcre:"/{rule.pcre}/{rule.pcre_flags}"']
    options.extend(rule.options)
    options.append(f"sid:{rule.sid}")
    body = "; ".join(options)
    return f"{rule.action} {rule.proto} any any -> any any ({body};)"


def render_ruleset(rules: list[SnortRule]) -> str:
    header = "# synthetic Snort-lite ruleset (AutomataZoo reproduction)\n"
    return header + "\n".join(render_rule(rule) for rule in rules) + "\n"
