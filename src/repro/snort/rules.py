"""Snort-lite rule model and parser.

Section V of the paper builds the Snort benchmark from the regular
expressions inside Snort rules, then *excludes* two classes of rules whose
patterns are meant to be applied selectively rather than to the whole
stream:

1. rules whose ``pcre`` carries Snort-specific modifier flags (``U`` for
   the URI buffer, ``R`` relative, ``B`` raw bytes, HTTP buffer flags, ...)
   — the paper drops 2,856 of these and sees report rates fall ~5x;
2. rules using the ``isdataat`` option — dropping 182 of these halves the
   rate again.

This module models exactly the rule anatomy that experiment needs: a
``pcre`` body with standard + Snort-specific flags, an option list with
``isdataat``, and the classification of which rules a whole-stream
benchmark should include.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import PatternError

__all__ = ["SnortRule", "parse_rule", "parse_ruleset", "SNORT_PCRE_MODIFIERS"]

#: PCRE flag letters with Snort-specific (buffer-targeting) semantics.
SNORT_PCRE_MODIFIERS = set("URBPHDMCKSYO")

#: Standard PCRE flags our compiler understands.
_STANDARD_FLAGS = set("ismx")

_RULE_RE = re.compile(
    r"^(?P<action>\w+)\s+(?P<proto>\w+)\s+(?P<src>\S+)\s+(?P<sport>\S+)\s*"
    r"->\s*(?P<dst>\S+)\s+(?P<dport>\S+)\s*\((?P<options>.*)\)\s*$"
)


@dataclass(frozen=True)
class SnortRule:
    """One parsed Snort-lite rule."""

    sid: int
    action: str
    proto: str
    msg: str
    pcre: str  # bare pattern, no delimiters
    pcre_flags: str  # every flag letter, Snort-specific ones included
    options: tuple[str, ...] = field(default=())

    @property
    def snort_modifiers(self) -> set[str]:
        """Snort-specific flag letters present on the pcre."""
        return set(self.pcre_flags) & SNORT_PCRE_MODIFIERS

    @property
    def has_snort_modifiers(self) -> bool:
        return bool(self.snort_modifiers)

    @property
    def has_isdataat(self) -> bool:
        return any(opt.startswith("isdataat") for opt in self.options)

    @property
    def contents(self) -> tuple[bytes, ...]:
        """The rule's ``content`` option literals, pipes decoded.

        Snort content syntax embeds hex between pipes:
        ``content:"GET |0d 0a|"`` -> ``b"GET \\r\\n"``.  A rule alerts only
        if every content literal is present in the packet (in addition to
        its pcre) — the per-packet full-kernel semantics.
        """
        out = []
        for option in self.options:
            key, _, value = option.partition(":")
            if key.strip() != "content":
                continue
            out.append(decode_content(value.strip().strip('"')))
        return tuple(out)

    @property
    def standard_flags(self) -> str:
        """The flags our regex compiler should apply."""
        return "".join(c for c in self.pcre_flags if c in _STANDARD_FLAGS)

    def whole_stream_safe(self) -> bool:
        """Should this rule be matched against the entire input stream?

        The Section V policy: rules with Snort-specific pcre modifiers or
        ``isdataat`` are context-dependent and excluded from the benchmark.
        """
        return not self.has_snort_modifiers and not self.has_isdataat


def decode_content(text: str) -> bytes:
    """Decode a Snort content string: ``|hh hh|`` spans are hex bytes."""
    out = bytearray()
    in_hex = False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "|":
            in_hex = not in_hex
            i += 1
        elif in_hex:
            if ch.isspace():
                i += 1
                continue
            pair = text[i : i + 2]
            if len(pair) != 2 or any(c not in "0123456789abcdefABCDEF" for c in pair):
                raise PatternError(f"bad hex in content: {text!r}")
            out.append(int(pair, 16))
            i += 2
        elif ch == "\\" and i + 1 < len(text):
            out.append(ord(text[i + 1]))
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    if in_hex:
        raise PatternError(f"unterminated hex span in content: {text!r}")
    return bytes(out)


def _split_options(options: str) -> list[str]:
    """Split the option body on semicolons, respecting quoted strings."""
    parts: list[str] = []
    current: list[str] = []
    in_quote = False
    i = 0
    while i < len(options):
        ch = options[i]
        if ch == '"' and (i == 0 or options[i - 1] != "\\"):
            in_quote = not in_quote
        if ch == ";" and not in_quote:
            part = "".join(current).strip()
            if part:
                parts.append(part)
            current = []
        else:
            current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_rule(text: str) -> SnortRule:
    """Parse one rule line; raises :class:`PatternError` on malformed input."""
    match = _RULE_RE.match(text.strip())
    if match is None:
        raise PatternError(f"not a rule: {text[:60]!r}")
    sid = None
    msg = ""
    pcre = None
    pcre_flags = ""
    extra: list[str] = []
    for option in _split_options(match.group("options")):
        key, _, value = option.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "sid":
            sid = int(value)
        elif key == "msg":
            msg = value.strip('"')
        elif key == "pcre":
            body = value.strip('"')
            if not body.startswith("/"):
                raise PatternError(f"pcre must be /pattern/flags: {body[:40]!r}")
            end = body.rfind("/")
            if end == 0:
                raise PatternError(f"unterminated pcre: {body[:40]!r}")
            pcre = body[1:end]
            pcre_flags = body[end + 1 :]
        else:
            extra.append(option)
    if sid is None:
        raise PatternError("rule has no sid")
    if pcre is None:
        raise PatternError(f"rule {sid} has no pcre option")
    return SnortRule(
        sid=sid,
        action=match.group("action"),
        proto=match.group("proto"),
        msg=msg,
        pcre=pcre,
        pcre_flags=pcre_flags,
        options=tuple(extra),
    )


def parse_ruleset(text: str) -> list[SnortRule]:
    """Parse a rules file: one rule per line, ``#`` comments ignored."""
    rules = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rules.append(parse_rule(line))
    return rules
