"""Snort-lite NIDS rule substrate (Section V)."""

from repro.snort.rules import (
    SNORT_PCRE_MODIFIERS,
    SnortRule,
    decode_content,
    parse_rule,
    parse_ruleset,
)
from repro.snort.ruleset_gen import generate_ruleset, render_rule, render_ruleset

__all__ = [
    "SNORT_PCRE_MODIFIERS",
    "SnortRule",
    "decode_content",
    "generate_ruleset",
    "parse_rule",
    "parse_ruleset",
    "render_rule",
    "render_ruleset",
]
