"""AutomataZoo reproduction: a modern automata processing benchmark suite.

A from-scratch Python implementation of the system described in Wadden et
al., *AutomataZoo: A Modern Automata Processing Benchmark Suite* (IISWC
2018): the automata substrate (homogeneous automata, simulation engines,
regex compiler, optimizations and transformations), generators for all 24
benchmarks, and the harness that regenerates every table and figure in the
paper's evaluation.

Quickstart::

    from repro import compile_regex, VectorEngine

    automaton = compile_regex(r"ab[cd]+e")
    engine = VectorEngine(automaton)
    for event in engine.run(b"zzabcde!!").reports:
        print(event.offset, event.code)
"""

from repro.core import (
    Automaton,
    CharSet,
    CounterElement,
    CounterMode,
    NFA,
    STE,
    StartMode,
)
from repro.engines import (
    KINTEX_KU060,
    BitsetEngine,
    LazyDFAEngine,
    MICRON_D480,
    ReferenceEngine,
    ReportEvent,
    RunResult,
    SpatialModel,
    VectorEngine,
    auto_engine,
    compiled_engine,
)
from repro.errors import (
    AutomatonError,
    CapacityError,
    EngineError,
    PatternError,
    RegexError,
    RegexUnsupportedError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "Automaton",
    "AutomatonError",
    "BitsetEngine",
    "CapacityError",
    "CharSet",
    "CounterElement",
    "CounterMode",
    "EngineError",
    "KINTEX_KU060",
    "LazyDFAEngine",
    "MICRON_D480",
    "NFA",
    "PatternError",
    "ReferenceEngine",
    "RegexError",
    "RegexUnsupportedError",
    "ReportEvent",
    "ReproError",
    "RunResult",
    "STE",
    "SpatialModel",
    "StartMode",
    "VectorEngine",
    "auto_engine",
    "compile_regex",
    "compiled_engine",
]


def compile_regex(pattern: str, **kwargs):
    """Compile a PCRE-subset regex to a homogeneous automaton.

    Thin convenience wrapper over :func:`repro.regex.compile_regex`,
    imported lazily so the core package loads without the regex subsystem.
    """
    from repro.regex import compile_regex as _compile

    return _compile(pattern, **kwargs)
