"""Closed-form match-rate model for Hamming filters on random input.

For a random i.i.d. stream over an alphabet of size ``a``, a window matches
an (independent) random pattern position with probability ``1/a``, so the
probability that a length-``l`` window is within Hamming distance ``d`` is
the binomial tail::

    P(l, d) = sum_{k=0..d} C(l, k) (1 - 1/a)^k (1/a)^(l - k)

This gives an exact expectation for Figure 1's Hamming curves and an
independent check on the simulated profile (the Levenshtein curves have no
such simple closed form; they are Monte-Carlo only, as in the paper).
"""

from __future__ import annotations

import math

__all__ = [
    "hamming_match_probability",
    "expected_reports_per_million",
    "min_length_for_rate",
]


def hamming_match_probability(l: int, d: int, *, alphabet_size: int = 4) -> float:
    """P(random window of length l within Hamming distance d of a random
    pattern) over a uniform ``alphabet_size``-ary alphabet."""
    if l <= 0:
        raise ValueError("length must be positive")
    if d < 0:
        raise ValueError("distance must be >= 0")
    p_match = 1.0 / alphabet_size
    p_miss = 1.0 - p_match
    total = 0.0
    for k in range(min(d, l) + 1):
        total += math.comb(l, k) * (p_miss**k) * (p_match ** (l - k))
    return min(total, 1.0)


def expected_reports_per_million(l: int, d: int, *, alphabet_size: int = 4) -> float:
    """Expected reports per filter per million random input symbols."""
    return hamming_match_probability(l, d, alphabet_size=alphabet_size) * 1_000_000


def min_length_for_rate(
    d: int,
    *,
    threshold_per_million: float = 1.0,
    alphabet_size: int = 4,
    l_max: int = 200,
) -> int:
    """Smallest pattern length whose expected report rate is below the
    threshold — the analytic counterpart of the paper's profile-driven
    filter-length selection (Section X-C)."""
    for l in range(d + 1, l_max + 1):
        rate = expected_reports_per_million(l, d, alphabet_size=alphabet_size)
        if rate < threshold_per_million:
            return l
    raise ValueError(f"no length up to {l_max} meets the rate threshold")
