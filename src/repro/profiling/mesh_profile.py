"""Profile-driven mesh benchmark design (Section X, Figure 1, Table V).

The paper's methodology: for each scoring distance ``d``, build ``N=10``
filters of length ``l`` from random DNA patterns, simulate them on one
million random DNA symbols for 10 trials, and grow ``l`` until the average
number of matches per filter drops below one per million inputs.  The
chosen ``{d, l}`` becomes the benchmark dimension (Table V), and the sweep
is Figure 1.

Two measurement paths are provided:

* ``method="fast"`` (default) counts matches with the CPU-native oracles
  (vectorised window scan for Hamming, Myers bit-parallel for
  Levenshtein).  The mesh automata are property-tested equivalent to these
  oracles, so this is a *validated* acceleration of the paper's VASim runs.
* ``method="automata"`` runs the actual mesh automata on the VectorEngine,
  which is exactly the paper's procedure (use reduced ``n_symbols``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.matchers import MyersMatcher, hamming_matches
from repro.benchmarks.mesh import hamming_automaton, levenshtein_automaton
from repro.engines.vector import VectorEngine
from repro.inputs.dna import random_dna, random_dna_patterns

__all__ = ["ProfilePoint", "measure_rate", "select_pattern_length", "figure1_sweep"]

KERNELS = ("hamming", "levenshtein")


@dataclass(frozen=True)
class ProfilePoint:
    """One Figure 1 data point."""

    kernel: str
    d: int
    l: int
    reports_per_million: float  # average per filter


def _count_matches(kernel: str, pattern: bytes, data: bytes, d: int, method: str) -> int:
    if method == "fast":
        if kernel == "hamming":
            return len(hamming_matches(pattern, data, d))
        return len(MyersMatcher(pattern, d).search(data))
    if method == "automata":
        if kernel == "hamming":
            automaton = hamming_automaton(pattern, d)
        else:
            automaton = levenshtein_automaton(pattern, d)
        result = VectorEngine(automaton).run(data)
        return len({r.offset for r in result.reports})
    raise ValueError(f"unknown method {method!r}")


def measure_rate(
    kernel: str,
    d: int,
    l: int,
    *,
    n_filters: int = 10,
    n_symbols: int = 1_000_000,
    trials: int = 10,
    seed: int = 0,
    method: str = "fast",
) -> ProfilePoint:
    """Average reports per filter, scaled to per-million-symbols."""
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}")
    if l <= d and kernel == "levenshtein":
        raise ValueError("levenshtein profiling needs l > d")
    total = 0
    for trial in range(trials):
        patterns = random_dna_patterns(n_filters, l, seed=seed * 7919 + trial)
        data = random_dna(n_symbols, seed=seed * 104729 + trial + 1)
        for pattern in patterns:
            total += _count_matches(kernel, pattern, data, d, method)
    per_filter_per_symbol = total / (trials * n_filters * n_symbols)
    return ProfilePoint(
        kernel=kernel, d=d, l=l, reports_per_million=per_filter_per_symbol * 1_000_000
    )


def select_pattern_length(
    kernel: str,
    d: int,
    *,
    threshold_per_million: float = 1.0,
    l_start: int | None = None,
    l_max: int = 80,
    **measure_kwargs,
) -> tuple[int, list[ProfilePoint]]:
    """The paper's Section X-C procedure: grow ``l`` until the measured
    rate drops below the threshold; return the chosen length and the full
    sweep (the benchmark's Figure 1 series)."""
    l = l_start if l_start is not None else d + 2
    points: list[ProfilePoint] = []
    while l <= l_max:
        point = measure_rate(kernel, d, l, **measure_kwargs)
        points.append(point)
        if point.reports_per_million < threshold_per_million:
            return l, points
        l += 1
    raise ValueError(f"no length up to {l_max} meets the rate threshold")


def figure1_sweep(
    kernel: str,
    d: int,
    l_values,
    **measure_kwargs,
) -> list[ProfilePoint]:
    """Measured report rates for an explicit range of lengths."""
    return [measure_rate(kernel, d, l, **measure_kwargs) for l in l_values]
