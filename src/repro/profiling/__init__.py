"""Profile-driven benchmark design (Section X: Figure 1, Table V)."""

from repro.profiling.analytic import (
    expected_reports_per_million,
    hamming_match_probability,
    min_length_for_rate,
)
from repro.profiling.mesh_profile import (
    ProfilePoint,
    figure1_sweep,
    measure_rate,
    select_pattern_length,
)

__all__ = [
    "ProfilePoint",
    "expected_reports_per_million",
    "figure1_sweep",
    "hamming_match_probability",
    "measure_rate",
    "min_length_for_rate",
    "select_pattern_length",
]
