"""The ``repro profile`` harness: one instrumented benchmark/engine sweep.

Builds each requested benchmark, compiles and runs every requested engine
over its standard input with telemetry enabled, and writes a JSON profile
(``bench_results/PROFILE.json`` by default) in which every number is
traceable to instrumented engine behaviour:

* per-benchmark build and lint span totals (from
  :func:`repro.benchmarks.build_benchmark`'s spans);
* per-engine compile and scan wall times, throughput, report counts, and
  active-set statistics (mean/max enabled elements per symbol — the
  paper's CPU-performance proxy);
* the per-engine *counter delta*: exactly which telemetry counters that
  engine's compile+scan moved (lazy-DFA memo growth, matched-state
  popcounts, cache traffic, ...);
* compile-cache hit/miss/size totals and the full telemetry snapshot.

The schema is documented in docs/OBSERVABILITY.md and stamped into the
payload as ``schema``.

The sweep is *checkpointed* (docs/RESILIENCE.md): with a ``checkpoint``
path every finished (benchmark, engine) cell is journaled as it
completes, and ``resume=True`` re-runs only the missing cells — a killed
``repro profile`` continues instead of starting over.  With a ``budget``
each engine cell runs under the fallback ladder, so guard trips degrade
the cell to a lower engine (recorded in the row) instead of failing the
sweep; all ``resilience.*`` counters surface in the payload.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import telemetry
from repro.benchmarks import build_benchmark
from repro.engines import ENGINE_REGISTRY
from repro.engines.cache import clear_engine_cache, compiled_engine, engine_cache_info
from repro.errors import CapacityError, EngineError, ResilienceError
from repro.resilience import faults
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.guards import ScanBudget
from repro.resilience.ladder import ladder_from, resilient_scan

__all__ = [
    "PROFILE_SCHEMA",
    "DEFAULT_BENCHMARKS",
    "DEFAULT_ENGINES",
    "SMOKE_BENCHMARKS",
    "SMOKE_ENGINES",
    "run_profile",
    "write_profile",
]

PROFILE_SCHEMA = "repro.profile/1"

#: The acceptance slice: the paper's flagship ruleset (sparse, report
#: heavy), the largest signature database, and a counter-free ML kernel.
DEFAULT_BENCHMARKS = ("Snort", "ClamAV", "Random Forest A")
DEFAULT_ENGINES = tuple(ENGINE_REGISTRY)

#: ``--smoke``: same benchmarks at a small scale/limit on the two
#: production CPU engines, fast enough for tier-1 CI.
SMOKE_BENCHMARKS = DEFAULT_BENCHMARKS
SMOKE_ENGINES = ("bitset", "vector")
SMOKE_SCALE = 0.002
SMOKE_LIMIT = 2_000


def _engine_profile(
    bench, engine_name: str, data: bytes, budget: ScanBudget | None = None
) -> dict:
    """Compile + run one engine over one benchmark input, instrumented.

    With a ``budget`` the cell runs under the fallback ladder: a guard
    trip degrades the scan to the next engine down instead of failing
    the cell, and the row records which engine actually completed it.
    """
    engine_cls = ENGINE_REGISTRY[engine_name]
    cache_before = engine_cache_info()
    snap_before = telemetry.snapshot()
    compile_t0 = time.perf_counter()
    try:
        engine = compiled_engine(bench.automaton, engine_cls)
    except (EngineError, CapacityError) as exc:
        return {"skipped": f"{type(exc).__name__}: {exc}"}
    compile_s = time.perf_counter() - compile_t0
    cache_after = engine_cache_info()

    scan_t0 = time.perf_counter()
    if budget is not None:
        try:
            outcome = resilient_scan(
                bench.automaton,
                data,
                ladder=ladder_from(engine_name),
                budget=budget,
                record_active=True,
            )
        except ResilienceError as exc:  # every rung failed
            return {"skipped": f"{type(exc).__name__}: {exc}"}
        result, engine_used, fallbacks = (
            outcome.result,
            outcome.engine,
            outcome.fallbacks,
        )
    else:
        result = engine.run(data, record_active=True)
        engine_used, fallbacks = engine_name, []
    scan_s = time.perf_counter() - scan_t0
    active = result.active_per_cycle or []
    delta = telemetry.diff_snapshots(snap_before, telemetry.snapshot())
    row = {
        "compile_s": round(compile_s, 6),
        "cache_hit": cache_after.hits > cache_before.hits,
        "scan_s": round(scan_s, 6),
        "ksym_per_s": round(len(data) / scan_s / 1e3, 1) if scan_s > 0 else None,
        "symbols": result.cycles,
        "reports": result.report_count,
        "mean_active_set": round(result.mean_active_set, 3),
        "max_active_set": max(active, default=0),
        "counters": delta["counters"],
    }
    if engine_used != engine_name or fallbacks:
        row["engine_used"] = engine_used
        row["fallbacks"] = [list(f) for f in fallbacks]
    return row


def run_profile(
    *,
    names=DEFAULT_BENCHMARKS,
    engines=DEFAULT_ENGINES,
    scale: float = 0.01,
    seed: int = 0,
    limit: int | None = 10_000,
    smoke: bool = False,
    budget: ScanBudget | None = None,
    checkpoint: str | pathlib.Path | None = None,
    resume: bool = False,
) -> dict:
    """Run the instrumented sweep and return the PROFILE.json payload.

    Telemetry is enabled for the duration (prior enabled-state restored),
    the registry is reset so the snapshot covers exactly this sweep, and
    the compile cache is cleared so compile timings are real compiles.

    With ``checkpoint`` every finished cell is journaled; ``resume=True``
    skips cells the journal already holds (their counter deltas are
    merged back so the payload's telemetry stays cumulative).  The
    journal is deleted once the sweep completes.
    """
    was_enabled = telemetry.is_enabled()
    telemetry.enable()
    telemetry.reset()
    clear_engine_cache()
    meta = {
        "names": list(names),
        "engines": list(engines),
        "scale": scale,
        "seed": seed,
        "limit": limit,
        "smoke": smoke,
    }
    ckpt = (
        SweepCheckpoint.open(checkpoint, meta, resume=resume) if checkpoint else None
    )
    started = time.perf_counter()
    benchmarks: dict[str, dict] = {}

    def restore_row(row: dict) -> dict:
        # Fold a resumed cell's counter delta back into the live registry
        # so the payload's cumulative telemetry covers resumed work too.
        if row.get("counters"):
            telemetry.merge({"counters": row["counters"]})
        return row

    try:
        for name in names:
            bench_key = f"{name}::__benchmark__"
            if (
                ckpt is not None
                and ckpt.has(bench_key)
                and all(ckpt.has(f"{name}::{e}") for e in engines)
            ):
                # Every cell of this benchmark resumed: skip the build.
                rows = {e: restore_row(ckpt.get(f"{name}::{e}")) for e in engines}
                benchmarks[name] = {**ckpt.get(bench_key), "engines": rows}
                continue
            bench_before = telemetry.snapshot()
            bench = build_benchmark(name, scale=scale, seed=seed)
            build_delta = telemetry.diff_snapshots(bench_before, telemetry.snapshot())
            data = bench.input_data[:limit] if limit else bench.input_data
            rows = {}
            for engine_name in engines:
                cell_key = f"{name}::{engine_name}"
                if ckpt is not None and ckpt.has(cell_key):
                    rows[engine_name] = restore_row(ckpt.get(cell_key))
                    continue
                rows[engine_name] = _engine_profile(
                    bench, engine_name, data, budget=budget
                )
                if ckpt is not None:
                    ckpt.record(cell_key, rows[engine_name])
                    faults.maybe_halt_after_cells(len(ckpt.cells))
            info = {
                "states": bench.automaton.n_states,
                "input_symbols": len(data),
                "build_s": round(
                    telemetry.timer_total(f"benchmark.build.{name}", build_delta), 6
                ),
                "lint_s": round(
                    telemetry.timer_total(f"benchmark.lint.{name}", build_delta), 6
                ),
            }
            if ckpt is not None:
                ckpt.record(bench_key, info)
                faults.maybe_halt_after_cells(len(ckpt.cells))
            benchmarks[name] = {**info, "engines": rows}
        cache = engine_cache_info()
        snapshot = telemetry.snapshot()
        payload = {
            "schema": PROFILE_SCHEMA,
            "smoke": smoke,
            "scale": scale,
            "seed": seed,
            "limit": limit,
            "elapsed_s": round(time.perf_counter() - started, 3),
            "benchmarks": benchmarks,
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "size": cache.size,
                "maxsize": cache.maxsize,
            },
            "resilience": {
                "resumed_cells": ckpt.resumed_cells if ckpt is not None else 0,
                "counters": {
                    key: value
                    for key, value in snapshot["counters"].items()
                    if key.startswith("resilience.")
                },
            },
            "telemetry": snapshot,
        }
        if ckpt is not None:
            ckpt.done()
        return payload
    finally:
        if not was_enabled:
            telemetry.disable()


def write_profile(payload: dict, out: str | pathlib.Path) -> pathlib.Path:
    """Serialise a profile payload to ``out`` (parents created)."""
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
