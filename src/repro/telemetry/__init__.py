"""Engine telemetry: counters, timers and spans behind every measurement.

The paper's central metrics (active set, report rate, throughput) are
*measurements*, and measurements of unobserved engine internals are not
auditable.  This package is the repo's single observability substrate:
engines record compile/scan timings, the compile cache records hits and
misses, the lazy DFA records memo growth and promotions, the prefilter
records accept rates, and ``parallel_scan`` merges worker counters back
into the parent process — all behind a module-level switch whose disabled
path is one branch per call site.

Usage::

    from repro import telemetry

    telemetry.enable()
    ... run engines ...
    print(json.dumps(telemetry.snapshot(), indent=2))

``repro profile`` (see :mod:`repro.telemetry.profile`) packages this into
a per-benchmark, per-engine JSON artifact under ``bench_results/``.
"""

from repro.telemetry.core import (
    clock,
    counter_value,
    diff_snapshots,
    disable,
    enable,
    incr,
    is_enabled,
    merge,
    observe,
    record_compile,
    record_scan,
    reset,
    snapshot,
    span,
    timer_total,
)

__all__ = [
    "clock",
    "counter_value",
    "diff_snapshots",
    "disable",
    "enable",
    "incr",
    "is_enabled",
    "merge",
    "observe",
    "record_compile",
    "record_scan",
    "reset",
    "snapshot",
    "span",
    "timer_total",
]
