"""The telemetry registry: counters, timers, spans.

Design constraints (see docs/OBSERVABILITY.md):

* **Zero dependencies** — stdlib only, importable everywhere including
  process-pool workers.
* **Cheap when disabled** — every public mutator checks one module-level
  boolean first and returns; the disabled path is one attribute load and
  one branch, so instrumentation can live at engine feed/compile
  granularity without distorting the measurements it exists to audit.
* **Thread-safe** — one registry lock around every mutation, so engines
  served to thread pools from the compile cache can record concurrently.
  The telemetry lock is a leaf lock: no telemetry call ever takes another
  lock, so holding an engine or cache lock around a telemetry call cannot
  deadlock.
* **Mergeable snapshots** — :func:`snapshot` is JSON-ready and stamped
  with the producing ``pid``; :func:`merge` folds a worker snapshot (or a
  :func:`diff_snapshots` delta) back into the live registry, which is how
  counters survive ``parallel_scan`` process-pool workers.

Metrics are flat dotted names (``engine.scan.bitset``,
``cache.hit``, ``benchmark.build.Snort``).  Counters are monotonically
increasing numbers; timers aggregate ``count/total/min/max`` seconds.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "incr",
    "observe",
    "clock",
    "span",
    "record_compile",
    "record_scan",
    "snapshot",
    "reset",
    "merge",
    "diff_snapshots",
    "timer_total",
    "counter_value",
]

_enabled = False
_lock = threading.Lock()
_counters: dict[str, float] = {}
# name -> [count, total_s, min_s, max_s]
_timers: dict[str, list[float]] = {}


# -- switching ---------------------------------------------------------------


def enable() -> None:
    """Turn telemetry collection on (idempotent)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn telemetry collection off; recorded data is kept."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


# -- recording ---------------------------------------------------------------


def incr(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op while disabled)."""
    if not _enabled:
        return
    with _lock:
        _counters[name] = _counters.get(name, 0) + value


def observe(name: str, seconds: float) -> None:
    """Record one duration under timer ``name`` (no-op while disabled)."""
    if not _enabled:
        return
    with _lock:
        agg = _timers.get(name)
        if agg is None:
            _timers[name] = [1, seconds, seconds, seconds]
        else:
            agg[0] += 1
            agg[1] += seconds
            if seconds < agg[2]:
                agg[2] = seconds
            if seconds > agg[3]:
                agg[3] = seconds


def clock() -> float | None:
    """A start timestamp when enabled, else ``None``.

    The hot-path idiom: ``t0 = telemetry.clock()`` at entry, then one
    ``record_scan(...)``/``observe(...)`` guarded by ``t0 is not None`` at
    exit, so a disabled run pays two branches per feed and nothing per
    symbol.
    """
    return time.perf_counter() if _enabled else None


class _Span:
    """Context manager timing one block under a timer name."""

    __slots__ = ("name", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self._t0: float | None = None

    def __enter__(self) -> "_Span":
        if _enabled:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if self._t0 is not None:
            observe(self.name, time.perf_counter() - self._t0)
        return False


def span(name: str) -> _Span:
    """``with telemetry.span("benchmark.build.Snort"): ...``"""
    return _Span(name)


def record_compile(label: str, t0: float | None, n_states: int) -> None:
    """Engine-constructor epilogue: compile timer + size counters.

    ``t0`` is the value of :func:`clock` taken at constructor entry;
    ``None`` (telemetry was disabled then) makes this a no-op.
    """
    if t0 is None:
        return
    observe(f"engine.compile.{label}", time.perf_counter() - t0)
    incr(f"engine.compiled.{label}")
    incr(f"engine.compiled_states.{label}", n_states)


def record_scan(label: str, t0: float | None, symbols: int, reports: int) -> None:
    """Stream-feed epilogue: scan timer + symbol/report counters."""
    if t0 is None:
        return
    observe(f"engine.scan.{label}", time.perf_counter() - t0)
    incr(f"engine.symbols.{label}", symbols)
    incr(f"engine.reports.{label}", reports)


# -- snapshots ---------------------------------------------------------------


def snapshot() -> dict:
    """A JSON-ready copy of everything recorded so far."""
    with _lock:
        return {
            "pid": os.getpid(),
            "enabled": _enabled,
            "counters": dict(_counters),
            "timers": {
                name: {
                    "count": agg[0],
                    "total_s": agg[1],
                    "min_s": agg[2],
                    "max_s": agg[3],
                }
                for name, agg in _timers.items()
            },
        }


def reset() -> None:
    """Drop all recorded counters and timers (enabled flag unchanged)."""
    with _lock:
        _counters.clear()
        _timers.clear()


def merge(snap: dict) -> None:
    """Fold a snapshot (typically from a pool worker) into this registry.

    Counters add; timers add count/total and widen min/max.  ``min_s`` /
    ``max_s`` may be ``None`` in a :func:`diff_snapshots` delta, in which
    case they do not narrow the local extrema.  Merging works even while
    disabled — the data was legitimately collected elsewhere.
    """
    with _lock:
        for name, value in snap.get("counters", {}).items():
            _counters[name] = _counters.get(name, 0) + value
        for name, entry in snap.get("timers", {}).items():
            count = entry.get("count", 0)
            if not count:
                continue
            total = entry.get("total_s", 0.0)
            lo = entry.get("min_s")
            hi = entry.get("max_s")
            agg = _timers.get(name)
            if agg is None:
                mean = total / count
                _timers[name] = [
                    count,
                    total,
                    mean if lo is None else lo,
                    mean if hi is None else hi,
                ]
            else:
                agg[0] += count
                agg[1] += total
                if lo is not None and lo < agg[2]:
                    agg[2] = lo
                if hi is not None and hi > agg[3]:
                    agg[3] = hi


def diff_snapshots(before: dict, after: dict) -> dict:
    """The activity between two snapshots of the *same* registry.

    Counter values and timer count/total subtract; timer min/max are not
    recoverable from aggregates, so the delta carries ``None`` for both
    (mergeable via :func:`merge`, which substitutes the delta mean).
    Zero-delta entries are dropped.
    """
    counters = {}
    base = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        delta = value - base.get(name, 0)
        if delta:
            counters[name] = delta
    timers = {}
    base_t = before.get("timers", {})
    for name, entry in after.get("timers", {}).items():
        prev = base_t.get(name, {})
        count = entry["count"] - prev.get("count", 0)
        if count:
            timers[name] = {
                "count": count,
                "total_s": entry["total_s"] - prev.get("total_s", 0.0),
                "min_s": None,
                "max_s": None,
            }
    return {"pid": after.get("pid", os.getpid()), "counters": counters, "timers": timers}


# -- convenience accessors (tests, the profile harness) ----------------------


def counter_value(name: str, snap: dict | None = None) -> float:
    """Current value of one counter (0 when never touched)."""
    source = snap if snap is not None else snapshot()
    return source.get("counters", {}).get(name, 0)


def timer_total(name: str, snap: dict | None = None) -> float:
    """Total seconds recorded under one timer (0.0 when never touched)."""
    source = snap if snap is not None else snapshot()
    entry = source.get("timers", {}).get(name)
    return entry["total_s"] if entry else 0.0
