"""Core automata model: character sets, elements, automata, NFAs."""

from repro.core.automaton import Automaton
from repro.core.dfa import DFA
from repro.core.charset import ALL_BYTES, BIT_ONE, BIT_ZERO, CharSet, NO_BYTES
from repro.core.extended import exact_run_automaton, min_run_automaton
from repro.core.elements import CounterElement, CounterMode, Element, STE, StartMode
from repro.core.nfa import NFA

__all__ = [
    "ALL_BYTES",
    "BIT_ONE",
    "BIT_ZERO",
    "Automaton",
    "CharSet",
    "CounterElement",
    "CounterMode",
    "DFA",
    "Element",
    "NFA",
    "NO_BYTES",
    "STE",
    "StartMode",
    "exact_run_automaton",
    "min_run_automaton",
]
