"""Automaton processing elements.

The computational model mirrors ANML / Micron AP semantics, the model VASim
and the AutomataZoo benchmarks use:

* **STE** (state transition element): a homogeneous automaton state carrying
  a :class:`~repro.core.charset.CharSet`.  An STE is *enabled* on a cycle if
  any predecessor *matched* on the previous cycle, or if its start mode says
  so.  An enabled STE matches if the current input symbol is in its charset;
  matching STEs enable their successors and, if marked reporting, emit a
  report event.
* **CounterElement**: counts activation events; when the count reaches the
  target the counter fires, enabling its successors (and optionally
  reporting).  Used by the Sequence Matching "wC" benchmark variants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.charset import CharSet

__all__ = ["StartMode", "CounterMode", "STE", "CounterElement", "Element"]


class StartMode(enum.Enum):
    """When a state self-enables, independent of predecessors."""

    #: Never self-enables; only enabled by a matching predecessor.
    NONE = "none"
    #: Enabled only on the first symbol of the stream (ANML ``start-of-data``).
    START_OF_DATA = "start-of-data"
    #: Enabled on every symbol (ANML ``all-input``).
    ALL_INPUT = "all-input"


class CounterMode(enum.Enum):
    """What a counter does when it reaches its target."""

    #: Fire once, then stay latched (fires every subsequent count event).
    LATCH = "latch"
    #: Fire and reset the count to zero.
    ROLLOVER = "rollover"
    #: Fire once and go inert until explicitly reset.
    STOP = "stop"


@dataclass(eq=False)
class STE:
    """A state transition element (homogeneous automaton state).

    Parameters
    ----------
    ident:
        Unique string id within its automaton.
    charset:
        The set of input symbols this state matches.
    start:
        Self-enabling behaviour (see :class:`StartMode`).
    report:
        Whether a match emits a report event.
    report_code:
        Arbitrary payload attached to report events; AutomataZoo uses it to
        carry rule ids / class labels so full kernels stay interpretable.
    """

    ident: str
    charset: CharSet
    start: StartMode = StartMode.NONE
    report: bool = False
    report_code: object = None
    attrs: dict = field(default_factory=dict)

    def is_start(self) -> bool:
        return self.start is not StartMode.NONE

    def __repr__(self) -> str:  # compact: ids dominate debugging output
        flags = ""
        if self.start is StartMode.START_OF_DATA:
            flags += "^"
        elif self.start is StartMode.ALL_INPUT:
            flags += "^*"
        if self.report:
            flags += "!"
        return f"STE({self.ident}{flags} {self.charset!r})"


@dataclass(eq=False)
class CounterElement:
    """A threshold counter (Micron AP counter element).

    Each *count event* (any predecessor matched this cycle) increments the
    counter by one.  When the count reaches ``target`` the counter fires:
    successors are enabled for the next cycle and, if ``report`` is set, a
    report event is emitted.
    """

    ident: str
    target: int
    mode: CounterMode = CounterMode.LATCH
    report: bool = False
    report_code: object = None
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.target < 1:
            raise ValueError(f"counter target must be >= 1, got {self.target}")

    def __repr__(self) -> str:
        bang = "!" if self.report else ""
        return f"Counter({self.ident}{bang} target={self.target} {self.mode.value})"


#: Anything that can be a node of an :class:`~repro.core.automaton.Automaton`.
Element = STE | CounterElement
