"""Edge-labelled NFAs and conversion to homogeneous automata.

Most of the library works directly on homogeneous automata
(:class:`~repro.core.automaton.Automaton`), but two pipelines naturally
produce *edge-labelled* NFAs first:

* the k-striding transformation (Section IX-B of the paper) — the strided
  transition relation is computed per edge, and
* hand-built classical constructions used in tests.

:class:`NFA` stores labelled transitions and knows how to convert itself to
an equivalent homogeneous automaton by splitting every state on its distinct
incoming labels (the standard NFA → homogeneous-NFA construction).

NFAs here are epsilon-free; producers are expected to resolve epsilon
closures during construction (Glushkov compilation and striding both do).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import StartMode
from repro.errors import AutomatonError

__all__ = ["NFA"]


class NFA:
    """An epsilon-free NFA with :class:`CharSet`-labelled edges.

    States are arbitrary hashable ids.  ``start_anchored`` states are active
    only before the first symbol; ``start_all`` states re-activate before
    every symbol (unanchored search, like ANML all-input).
    """

    def __init__(self, name: str = "nfa") -> None:
        self.name = name
        self._states: set[object] = set()
        self._trans: dict[object, list[tuple[CharSet, object]]] = {}
        self.start_anchored: set[object] = set()
        self.start_all: set[object] = set()
        self._accept: dict[object, object] = {}

    # -- construction ------------------------------------------------------

    def add_state(
        self,
        state: object,
        *,
        start: bool = False,
        start_all: bool = False,
        accept: bool = False,
        report_code: object = None,
    ) -> object:
        self._states.add(state)
        self._trans.setdefault(state, [])
        if start:
            self.start_anchored.add(state)
        if start_all:
            self.start_all.add(state)
        if accept:
            self._accept[state] = report_code
        return state

    def add_transition(self, src: object, charset: CharSet, dst: object) -> None:
        if src not in self._states or dst not in self._states:
            raise AutomatonError("transition endpoints must be added first")
        if charset.is_empty():
            return
        self._trans[src].append((charset, dst))

    # -- access ------------------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self._states)

    @property
    def n_transitions(self) -> int:
        return sum(len(edges) for edges in self._trans.values())

    def states(self) -> Iterable[object]:
        return iter(self._states)

    def transitions(self, src: object) -> list[tuple[CharSet, object]]:
        return list(self._trans.get(src, []))

    def is_accept(self, state: object) -> bool:
        return state in self._accept

    def report_code(self, state: object) -> object:
        return self._accept.get(state)

    # -- semantics ---------------------------------------------------------

    def run(self, data: bytes) -> list[tuple[int, object]]:
        """Simulate directly; return ``(offset, report_code)`` per accept.

        ``offset`` is the index of the last consumed symbol of the match.
        This is the semantic oracle used to validate conversions and the
        striding transformation.
        """
        current: set[object] = set(self.start_anchored) | set(self.start_all)
        reports: list[tuple[int, object]] = []
        for offset, symbol in enumerate(data):
            nxt: set[object] = set()
            for state in current:
                for charset, dst in self._trans[state]:
                    if charset.matches(symbol):
                        nxt.add(dst)
            for state in nxt:
                if state in self._accept:
                    reports.append((offset, self._accept[state]))
            nxt |= self.start_all
            current = nxt
        return reports

    # -- conversion --------------------------------------------------------

    def to_homogeneous(self, name: str | None = None) -> Automaton:
        """Convert to an equivalent homogeneous automaton.

        Each NFA state ``q`` is split into one STE per distinct charset
        among its incoming edges; an STE ``(q, c)`` matches charset ``c``
        and means "just consumed a symbol in ``c``, now in ``q``".  Edges
        out of NFA start states become start modes on the target STEs
        (START_OF_DATA for anchored starts, ALL_INPUT for all-input
        starts).

        Raises :class:`AutomatonError` if a start state accepts: homogeneous
        automata report only after consuming a symbol, so an
        empty-string-accepting NFA has no equivalent.
        """
        for state in self.start_anchored | self.start_all:
            if state in self._accept:
                raise AutomatonError(
                    "start state accepts the empty string; no homogeneous equivalent"
                )

        automaton = Automaton(name if name is not None else self.name)
        # Group incoming edges of each state by charset.
        incoming: dict[object, dict[CharSet, None]] = {}
        for src in self._states:
            for charset, dst in self._trans[src]:
                incoming.setdefault(dst, {}).setdefault(charset, None)

        ste_id: dict[tuple[object, CharSet], str] = {}
        counter = 0
        for dst, charsets in incoming.items():
            for charset in charsets:
                ident = f"q{counter}"
                counter += 1
                ste_id[(dst, charset)] = ident
                start = StartMode.NONE
                automaton.add_ste(
                    ident,
                    charset,
                    start=start,
                    report=self.is_accept(dst),
                    report_code=self.report_code(dst),
                )

        for src in self._states:
            src_stes = [
                ste_id[(src, charset)]
                for charset in incoming.get(src, {})
            ]
            src_is_anchored = src in self.start_anchored
            src_is_all = src in self.start_all
            for charset, dst in self._trans[src]:
                dst_ste = ste_id[(dst, charset)]
                for ste in src_stes:
                    automaton.add_edge(ste, dst_ste)
                if src_is_all:
                    automaton[dst_ste].start = StartMode.ALL_INPUT
                elif src_is_anchored and automaton[dst_ste].start is StartMode.NONE:
                    automaton[dst_ste].start = StartMode.START_OF_DATA
        return automaton
