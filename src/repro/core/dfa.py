"""Ahead-of-time DFA compilation: subset construction + minimization.

The lazy DFA engine materialises states on demand; this module is the
ahead-of-time counterpart used when the full table is wanted — equivalence
checking, table-size studies, and Hyperscan-style compiled scanning of
small rulesets.  Two classic size levers are implemented:

* **alphabet compression** — symbols that no state distinguishes share a
  column (byte-oriented rulesets typically need far fewer than 256
  columns), and
* **Mealy minimization** — partition refinement over (emission, successor)
  signatures collapses equivalent subset states.

Report semantics match the engines': taking a transition that corresponds
to a matching reporting STE emits that STE's report code at the current
offset.  Reports are deduplicated per code (a DFA cannot distinguish which
of several merged STEs matched); compare with NFA engines on
``{(offset, code)}`` sets.
"""

from __future__ import annotations

import numpy as np

from repro.core.automaton import Automaton
from repro.core.elements import STE, StartMode
from repro.engines.base import ReportEvent, RunResult
from repro.errors import CapacityError, EngineError

__all__ = ["DFA"]


class DFA:
    """A dense-table DFA over compressed symbol classes."""

    def __init__(
        self,
        transitions: np.ndarray,  # (n_states, n_classes) int
        emissions: list[dict[int, frozenset]],  # per state: class -> codes
        start: int,
        symbol_class: np.ndarray,  # (256,) -> class index
    ) -> None:
        self.transitions = transitions
        self.emissions = emissions
        self.start = start
        self.symbol_class = symbol_class

    # -- construction ------------------------------------------------------

    @classmethod
    def from_automaton(cls, automaton: Automaton, *, max_states: int = 100_000) -> "DFA":
        """Determinise a (counter-free) homogeneous automaton."""
        if any(True for _ in automaton.counters()):
            raise EngineError("DFA compilation does not support counters")
        stes: list[STE] = list(automaton.stes())
        index = {ste.ident: i for i, ste in enumerate(stes)}
        n = len(stes)

        # Alphabet compression: group symbols by their membership column.
        membership = np.zeros((256, n), dtype=bool)
        for i, ste in enumerate(stes):
            membership[:, i] = ste.charset.to_bool_array()
        _, symbol_class, = np.unique(membership, axis=0, return_inverse=True)
        n_classes = int(symbol_class.max()) + 1 if n else 1
        class_rep = np.zeros(n_classes, dtype=np.int64)
        for symbol in range(255, -1, -1):
            class_rep[symbol_class[symbol]] = symbol

        succ = [
            frozenset(index[s] for s in automaton.successors(ste.ident))
            for ste in stes
        ]
        report_code = [ste.report_code if ste.report else None for ste in stes]
        reporting = [ste.report for ste in stes]
        all_input = frozenset(
            index[s.ident] for s in stes if s.start is StartMode.ALL_INPUT
        )
        initial = frozenset(
            index[s.ident]
            for s in stes
            if s.start in (StartMode.ALL_INPUT, StartMode.START_OF_DATA)
        )

        set_to_id: dict[frozenset, int] = {initial: 0}
        worklist = [initial]
        rows: list[np.ndarray] = []
        emissions: list[dict[int, frozenset]] = []
        while worklist:
            state_set = worklist.pop()
            sid = set_to_id[state_set]
            while len(rows) <= sid:
                rows.append(np.zeros(n_classes, dtype=np.int64))
                emissions.append({})
            row = rows[sid]
            emit = emissions[sid]
            for cls_index in range(n_classes):
                symbol = int(class_rep[cls_index])
                matched = [
                    i for i in state_set if stes[i].charset.matches(symbol)
                ]
                codes = frozenset(
                    report_code[i] for i in matched if reporting[i]
                )
                nxt = set(all_input)
                for i in matched:
                    nxt |= succ[i]
                nxt = frozenset(nxt)
                target = set_to_id.get(nxt)
                if target is None:
                    if len(set_to_id) >= max_states:
                        raise CapacityError(
                            f"DFA exceeded {max_states} states during "
                            "subset construction"
                        )
                    target = len(set_to_id)
                    set_to_id[nxt] = target
                    worklist.append(nxt)
                row[cls_index] = target
                if codes:
                    emit[cls_index] = codes
        transitions = np.vstack(rows) if rows else np.zeros((1, n_classes), dtype=np.int64)
        return cls(transitions, emissions, 0, symbol_class.astype(np.int64))

    # -- properties ----------------------------------------------------------

    @property
    def n_states(self) -> int:
        return self.transitions.shape[0]

    @property
    def n_symbol_classes(self) -> int:
        return self.transitions.shape[1]

    # -- execution -----------------------------------------------------------

    def run(self, data: bytes) -> RunResult:
        """Scan ``data``; reports are deduplicated per (offset, code)."""
        reports: list[ReportEvent] = []
        state = self.start
        transitions = self.transitions
        emissions = self.emissions
        symbol_class = self.symbol_class
        for offset, symbol in enumerate(data):
            cls_index = int(symbol_class[symbol])
            codes = emissions[state].get(cls_index)
            if codes is not None:
                for code in codes:
                    reports.append(ReportEvent(offset, "dfa", code))
            state = int(transitions[state, cls_index])
        reports.sort()
        return RunResult(reports=reports, cycles=len(data))

    # -- minimization ----------------------------------------------------------

    def minimize(self) -> "DFA":
        """Mealy minimization by partition refinement."""
        n = self.n_states
        emission_key = [
            tuple(sorted((c, tuple(sorted(map(repr, codes)))) for c, codes in e.items()))
            for e in self.emissions
        ]
        # initial partition: states with identical emission behaviour
        block_of = {}
        blocks: dict[tuple, int] = {}
        for state in range(n):
            key = emission_key[state]
            if key not in blocks:
                blocks[key] = len(blocks)
            block_of[state] = blocks[key]

        while True:
            signatures: dict[tuple, int] = {}
            new_block_of = {}
            for state in range(n):
                signature = (
                    block_of[state],
                    tuple(
                        block_of[int(self.transitions[state, c])]
                        for c in range(self.n_symbol_classes)
                    ),
                )
                if signature not in signatures:
                    signatures[signature] = len(signatures)
                new_block_of[state] = signatures[signature]
            if len(signatures) == len(set(block_of.values())):
                block_of = new_block_of
                break
            block_of = new_block_of

        n_blocks = len(set(block_of.values()))
        representative: dict[int, int] = {}
        for state in range(n):
            representative.setdefault(block_of[state], state)
        transitions = np.zeros((n_blocks, self.n_symbol_classes), dtype=np.int64)
        emissions: list[dict[int, frozenset]] = [dict() for _ in range(n_blocks)]
        for block, state in representative.items():
            for cls_index in range(self.n_symbol_classes):
                transitions[block, cls_index] = block_of[
                    int(self.transitions[state, cls_index])
                ]
            emissions[block] = dict(self.emissions[state])
        return DFA(
            transitions, emissions, block_of[self.start], self.symbol_class
        )
