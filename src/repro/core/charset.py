"""256-symbol character sets.

Automata in this library are *homogeneous*: every state carries the set of
input symbols it matches (Micron AP / ANML semantics).  The symbol alphabet
is the 256 byte values.  :class:`CharSet` represents one such set as a
256-bit integer mask, which makes union/intersection/complement single
integer operations and keeps millions of states cheap to store.

Bit-level automata (File Carving, Section IX-B of the paper) use the same
type restricted to symbols 0 and 1.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["CharSet", "ALL_BYTES", "NO_BYTES", "BIT_ZERO", "BIT_ONE"]

_FULL_MASK = (1 << 256) - 1


def _mask_of(symbols: Iterable[int]) -> int:
    mask = 0
    for sym in symbols:
        if not 0 <= sym <= 255:
            raise ValueError(f"symbol out of range 0..255: {sym!r}")
        mask |= 1 << sym
    return mask


class CharSet:
    """An immutable set of byte symbols (0..255).

    Instances support the standard set algebra via operators::

        a | b     union
        a & b     intersection
        a - b     difference
        ~a        complement (within 0..255)
        s in a    membership (int or length-1 bytes/str)

    Construction helpers:

    >>> CharSet.from_chars("abc").cardinality()
    3
    >>> CharSet.from_ranges([(0x30, 0x39)]) == CharSet.from_chars("0123456789")
    True
    """

    __slots__ = ("_mask",)

    def __init__(self, symbols: Iterable[int] = ()) -> None:
        self._mask = _mask_of(symbols)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_mask(cls, mask: int) -> "CharSet":
        """Build from a raw 256-bit integer mask (internal representation)."""
        if mask < 0 or mask > _FULL_MASK:
            raise ValueError("mask outside 256-bit range")
        cs = cls.__new__(cls)
        cs._mask = mask
        return cs

    @classmethod
    def from_chars(cls, chars: str | bytes) -> "CharSet":
        """Build from the characters of a string (latin-1) or bytes."""
        if isinstance(chars, str):
            chars = chars.encode("latin-1")
        return cls.from_mask(_mask_of(chars))

    @classmethod
    def from_ranges(cls, ranges: Iterable[tuple[int, int]]) -> "CharSet":
        """Build from inclusive ``(lo, hi)`` symbol ranges."""
        mask = 0
        for lo, hi in ranges:
            if not (0 <= lo <= hi <= 255):
                raise ValueError(f"bad range ({lo}, {hi})")
            mask |= ((1 << (hi - lo + 1)) - 1) << lo
        return cls.from_mask(mask)

    @classmethod
    def single(cls, symbol: int) -> "CharSet":
        """The singleton set {symbol}."""
        if not 0 <= symbol <= 255:
            raise ValueError(f"symbol out of range 0..255: {symbol!r}")
        return cls.from_mask(1 << symbol)

    @classmethod
    def all_bytes(cls) -> "CharSet":
        """The full alphabet (regex ``.`` with DOTALL, ANML ``*``)."""
        return cls.from_mask(_FULL_MASK)

    @classmethod
    def none(cls) -> "CharSet":
        """The empty set (matches no symbol)."""
        return cls.from_mask(0)

    # -- set algebra -------------------------------------------------------

    @property
    def mask(self) -> int:
        """The raw 256-bit membership mask."""
        return self._mask

    def __or__(self, other: "CharSet") -> "CharSet":
        return CharSet.from_mask(self._mask | other._mask)

    def __and__(self, other: "CharSet") -> "CharSet":
        return CharSet.from_mask(self._mask & other._mask)

    def __sub__(self, other: "CharSet") -> "CharSet":
        return CharSet.from_mask(self._mask & ~other._mask & _FULL_MASK)

    def __invert__(self) -> "CharSet":
        return CharSet.from_mask(~self._mask & _FULL_MASK)

    def __contains__(self, symbol: int | str | bytes) -> bool:
        if isinstance(symbol, (str, bytes)):
            if len(symbol) != 1:
                raise ValueError("membership test needs a single character")
            symbol = symbol[0] if isinstance(symbol, bytes) else ord(symbol)
        return bool((self._mask >> symbol) & 1)

    def matches(self, symbol: int) -> bool:
        """True if the byte value ``symbol`` is in the set (no conversion)."""
        return bool((self._mask >> symbol) & 1)

    def is_empty(self) -> bool:
        return self._mask == 0

    def is_full(self) -> bool:
        return self._mask == _FULL_MASK

    def cardinality(self) -> int:
        """Number of symbols in the set."""
        return self._mask.bit_count()

    def issubset(self, other: "CharSet") -> bool:
        return self._mask & ~other._mask == 0

    def __iter__(self) -> Iterator[int]:
        mask = self._mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def __len__(self) -> int:
        return self.cardinality()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharSet) and self._mask == other._mask

    def __hash__(self) -> int:
        return hash(self._mask)

    def __bool__(self) -> bool:
        return self._mask != 0

    # -- conversions -------------------------------------------------------

    def to_bool_array(self) -> np.ndarray:
        """A length-256 boolean numpy array (used by the vector engine)."""
        raw = self._mask.to_bytes(32, "little")
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
        return bits.astype(bool)

    def ranges(self) -> list[tuple[int, int]]:
        """The set as a minimal list of inclusive (lo, hi) ranges."""
        out: list[tuple[int, int]] = []
        start: int | None = None
        prev = -2
        for sym in self:
            if sym != prev + 1:
                if start is not None:
                    out.append((start, prev))
                start = sym
            prev = sym
        if start is not None:
            out.append((start, prev))
        return out

    def __repr__(self) -> str:
        if self.is_full():
            return "CharSet[*]"
        if self.is_empty():
            return "CharSet[]"
        parts = []
        for lo, hi in self.ranges():
            if lo == hi:
                parts.append(_sym_repr(lo))
            else:
                parts.append(f"{_sym_repr(lo)}-{_sym_repr(hi)}")
        return "CharSet[" + "".join(parts) + "]"


def _sym_repr(symbol: int) -> str:
    if 0x21 <= symbol <= 0x7E and chr(symbol) not in "-[]\\":
        return chr(symbol)
    return f"\\x{symbol:02x}"


#: The full alphabet, shared instance.
ALL_BYTES = CharSet.all_bytes()
#: The empty set, shared instance.
NO_BYTES = CharSet.none()
#: Bit-level automata symbols.
BIT_ZERO = CharSet.single(0)
BIT_ONE = CharSet.single(1)
