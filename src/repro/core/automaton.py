"""The homogeneous automaton container.

An :class:`Automaton` is a directed graph whose nodes are processing
elements (:class:`~repro.core.elements.STE` or
:class:`~repro.core.elements.CounterElement`) and whose edges are activation
wires.  This is the in-memory equivalent of an ANML/MNRL file: every
AutomataZoo benchmark is ultimately one (usually highly disconnected)
``Automaton``.

The class is deliberately a plain adjacency structure — analysis passes,
optimizations and engines all build their own derived representations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import networkx as nx

from repro.core.charset import CharSet
from repro.core.elements import CounterElement, Element, STE, StartMode
from repro.errors import AutomatonError

__all__ = ["Automaton"]


class Automaton:
    """A homogeneous automaton (graph of STEs and counters).

    >>> a = Automaton("demo")
    >>> s0 = a.add_ste("s0", CharSet.from_chars("a"), start=StartMode.ALL_INPUT)
    >>> s1 = a.add_ste("s1", CharSet.from_chars("b"), report=True)
    >>> a.add_edge("s0", "s1")
    >>> a.n_states, a.n_edges
    (2, 1)
    """

    def __init__(self, name: str = "automaton") -> None:
        self.name = name
        self._elements: dict[str, Element] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}
        #: counter ident -> elements wired to its reset port (Section XI)
        self._resets: dict[str, list[str]] = {}

    # -- construction ------------------------------------------------------

    def add_element(self, element: Element) -> Element:
        """Add a prebuilt element; its ident must be unique."""
        if element.ident in self._elements:
            raise AutomatonError(f"duplicate element id: {element.ident!r}")
        self._elements[element.ident] = element
        self._succ[element.ident] = []
        self._pred[element.ident] = []
        return element

    def add_ste(
        self,
        ident: str,
        charset: CharSet,
        *,
        start: StartMode = StartMode.NONE,
        report: bool = False,
        report_code: object = None,
    ) -> STE:
        """Create and add an STE, returning it."""
        ste = STE(ident, charset, start=start, report=report, report_code=report_code)
        self.add_element(ste)
        return ste

    def add_counter(
        self,
        ident: str,
        target: int,
        *,
        mode=None,
        report: bool = False,
        report_code: object = None,
    ) -> CounterElement:
        """Create and add a counter element, returning it."""
        kwargs = {"report": report, "report_code": report_code}
        if mode is not None:
            kwargs["mode"] = mode
        counter = CounterElement(ident, target, **kwargs)
        self.add_element(counter)
        return counter

    def add_edge(self, src: str, dst: str) -> None:
        """Add an activation edge; duplicate edges are ignored."""
        if src not in self._elements:
            raise AutomatonError(f"edge source not in automaton: {src!r}")
        if dst not in self._elements:
            raise AutomatonError(f"edge target not in automaton: {dst!r}")
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._pred[dst].append(src)

    def add_reset_edge(self, src: str, counter: str) -> None:
        """Wire ``src``'s match to a counter's *reset* port.

        Reset ports are the extended-automata feature of Section XI: when
        any reset predecessor matches in a cycle, the counter's count (and
        latch/stop state) clears before that cycle's count events apply.
        """
        if src not in self._elements:
            raise AutomatonError(f"reset source not in automaton: {src!r}")
        element = self._elements.get(counter)
        if not isinstance(element, CounterElement):
            raise AutomatonError(f"reset target must be a counter: {counter!r}")
        sources = self._resets.setdefault(counter, [])
        if src not in sources:
            sources.append(src)

    def reset_predecessors(self, counter: str) -> list[str]:
        """Elements wired to ``counter``'s reset port."""
        return list(self._resets.get(counter, []))

    def reset_edges(self) -> Iterator[tuple[str, str]]:
        """All (source, counter) reset wires."""
        for counter, sources in self._resets.items():
            for src in sources:
                yield (src, counter)

    def remove_element(self, ident: str) -> None:
        """Remove an element and all incident edges."""
        if ident not in self._elements:
            raise AutomatonError(f"no such element: {ident!r}")
        for dst in self._succ.pop(ident):
            self._pred[dst].remove(ident)
        for src in self._pred.pop(ident):
            self._succ[src].remove(ident)
        self._resets.pop(ident, None)
        for sources in self._resets.values():
            if ident in sources:
                sources.remove(ident)
        del self._elements[ident]

    # -- access ------------------------------------------------------------

    def __contains__(self, ident: str) -> bool:
        return ident in self._elements

    def __getitem__(self, ident: str) -> Element:
        try:
            return self._elements[ident]
        except KeyError:
            raise AutomatonError(f"no such element: {ident!r}") from None

    def elements(self) -> Iterator[Element]:
        """All elements, in insertion order."""
        return iter(self._elements.values())

    def stes(self) -> Iterator[STE]:
        """All STE elements."""
        return (e for e in self._elements.values() if isinstance(e, STE))

    def counters(self) -> Iterator[CounterElement]:
        """All counter elements."""
        return (e for e in self._elements.values() if isinstance(e, CounterElement))

    def idents(self) -> Iterator[str]:
        return iter(self._elements.keys())

    def successors(self, ident: str) -> list[str]:
        return list(self._succ[ident])

    def predecessors(self, ident: str) -> list[str]:
        return list(self._pred[ident])

    def out_degree(self, ident: str) -> int:
        return len(self._succ[ident])

    def in_degree(self, ident: str) -> int:
        return len(self._pred[ident])

    def edges(self) -> Iterator[tuple[str, str]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    @property
    def n_states(self) -> int:
        """Total number of elements (STEs plus counters)."""
        return len(self._elements)

    @property
    def n_edges(self) -> int:
        return sum(len(dsts) for dsts in self._succ.values())

    def start_elements(self) -> list[STE]:
        """All STEs with a start mode."""
        return [e for e in self.stes() if e.is_start()]

    def reporting_elements(self) -> list[Element]:
        """All elements (STEs or counters) that report."""
        return [e for e in self._elements.values() if e.report]

    # -- structure ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`AutomatonError` if broken.

        Invariants: at least one start element per connected component that
        contains any element, counters have at least one predecessor (they
        can never fire otherwise), and reporting is reachable from a start
        element (dead report states usually indicate a generator bug).
        """
        if not self._elements:
            return
        reachable = self._reachable_from_starts()
        for element in self._elements.values():
            if isinstance(element, CounterElement) and not self._pred[element.ident]:
                raise AutomatonError(
                    f"counter {element.ident!r} has no predecessors and can never fire"
                )
            if element.report and element.ident not in reachable:
                raise AutomatonError(
                    f"reporting element {element.ident!r} unreachable from any start"
                )

    def _reachable_from_starts(self) -> set[str]:
        stack = [e.ident for e in self.start_elements()]
        seen = set(stack)
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def connected_components(self) -> list[set[str]]:
        """Weakly connected components ("subgraphs" in Table I)."""
        seen: set[str] = set()
        components: list[set[str]] = []
        for start in self._elements:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in self._succ[node]:
                    if nxt not in comp:
                        comp.add(nxt)
                        stack.append(nxt)
                for prv in self._pred[node]:
                    if prv not in comp:
                        comp.add(prv)
                        stack.append(prv)
            seen |= comp
            components.append(comp)
        return components

    def to_networkx(self) -> nx.DiGraph:
        """Export the graph structure (elements as node attributes)."""
        graph = nx.DiGraph(name=self.name)
        for ident, element in self._elements.items():
            graph.add_node(ident, element=element)
        graph.add_edges_from(self.edges())
        return graph

    # -- composition -------------------------------------------------------

    def merge(self, other: "Automaton", prefix: str = "") -> None:
        """Add all elements/edges of ``other`` into this automaton.

        ``prefix`` is prepended to every incoming ident, which is how suite
        generators combine thousands of per-pattern automata without id
        clashes.
        """
        mapping = {}
        for element in other.elements():
            clone = _clone_element(element, prefix + element.ident)
            self.add_element(clone)
            mapping[element.ident] = clone.ident
        for src, dst in other.edges():
            self.add_edge(mapping[src], mapping[dst])
        for src, counter in other.reset_edges():
            self.add_reset_edge(mapping[src], mapping[counter])

    def clone(self, name: str | None = None) -> "Automaton":
        """A deep copy (elements are re-created, attrs shallow-copied)."""
        out = Automaton(name if name is not None else self.name)
        out.merge(self)
        return out

    @classmethod
    def union(cls, automata: Iterable["Automaton"], name: str = "union") -> "Automaton":
        """Disjoint union of many automata, prefixing ids per component."""
        out = cls(name)
        for index, automaton in enumerate(automata):
            out.merge(automaton, prefix=f"g{index}.")
        return out

    def __repr__(self) -> str:
        return f"Automaton({self.name!r}, states={self.n_states}, edges={self.n_edges})"


def _clone_element(element: Element, new_ident: str) -> Element:
    if isinstance(element, STE):
        clone = STE(
            new_ident,
            element.charset,
            start=element.start,
            report=element.report,
            report_code=element.report_code,
        )
    elif isinstance(element, CounterElement):
        clone = CounterElement(
            new_ident,
            element.target,
            mode=element.mode,
            report=element.report,
            report_code=element.report_code,
        )
    else:  # pragma: no cover - defensive
        raise AutomatonError(f"unknown element type: {type(element)!r}")
    clone.attrs = dict(element.attrs)
    return clone
