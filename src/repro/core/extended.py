"""Extended-automata constructions using counter reset ports (Section XI).

The paper's future-work section observes that "counters can enable
efficient representation of some PCRE range terms": a run constraint like
``c{100}`` costs 100 chained STEs as a classical automaton but only a
handful of elements with a resettable counter.  With reset ports
(:meth:`~repro.core.automaton.Automaton.add_reset_edge`) implemented, this
module provides those constructions:

* :func:`exact_run_automaton` — report at the n-th symbol of every maximal
  run of charset symbols (the counter-based ``c{n}`` detector);
* :func:`min_run_automaton` — report at every run position from the n-th
  onward (``c{n,}``).

Both use a constant number of elements regardless of ``n``, versus the
``n`` STEs of the expanded construction — the trade-off an ablation bench
quantifies.
"""

from __future__ import annotations

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import CounterMode, StartMode

__all__ = ["exact_run_automaton", "min_run_automaton"]


def _run_skeleton(
    automaton: Automaton, charset: CharSet, n: int, mode: CounterMode, report_code
) -> None:
    if n < 1:
        raise ValueError("run length must be >= 1")
    if charset.is_empty() or charset.is_full():
        raise ValueError("run charset must be a proper subset of the alphabet")
    # S matches every in-run symbol; B matches every run breaker.
    automaton.add_ste("S", charset, start=StartMode.ALL_INPUT)
    automaton.add_ste("B", ~charset, start=StartMode.ALL_INPUT)
    automaton.add_counter("C", n, mode=mode, report=True, report_code=report_code)
    automaton.add_edge("S", "C")
    automaton.add_reset_edge("B", "C")


def exact_run_automaton(
    charset: CharSet, n: int, *, report_code: object = None
) -> Automaton:
    """Report once per maximal run, at its n-th consecutive symbol.

    3 elements total; the classical equivalent needs ``n`` chained STEs.
    """
    automaton = Automaton(f"run=={n}")
    _run_skeleton(
        automaton,
        charset,
        n,
        CounterMode.STOP,
        report_code if report_code is not None else f"run=={n}",
    )
    return automaton


def min_run_automaton(
    charset: CharSet, n: int, *, report_code: object = None
) -> Automaton:
    """Report at every position of a run from its n-th symbol onward."""
    automaton = Automaton(f"run>={n}")
    _run_skeleton(
        automaton,
        charset,
        n,
        CounterMode.LATCH,
        report_code if report_code is not None else f"run>={n}",
    )
    return automaton
