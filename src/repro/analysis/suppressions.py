"""Per-benchmark lint suppressions for intentional structural oddities.

Some AutomataZoo generators produce shapes the analyzer would otherwise
flag, *on purpose* — the entry documents each such case with the
diagnostic code it silences and the reason it is legitimate.  The table
is consulted by the lint-gated benchmark registry and by ``repro lint``;
``repro lint --no-suppressions`` shows everything.

Adding an entry is a reviewed act: the reason string is rendered in the
CLI output and in ``bench_results/LINT.json``, so an unexplained
suppression is immediately visible.
"""

from __future__ import annotations

__all__ = ["BENCHMARK_SUPPRESSIONS", "suppressed_codes"]

#: benchmark name -> {diagnostic code -> reason}.  Codes listed here are
#: moved to the report's ``suppressed`` list for that benchmark.
BENCHMARK_SUPPRESSIONS: dict[str, dict[str, str]] = {
    # Brill tagging rewrites the corpus in-place conceptually; rule
    # templates include context positions that only constrain (never
    # report), so whole subgraphs legitimately end in non-reporting
    # context checks.
}


def suppressed_codes(benchmark: str) -> frozenset[str]:
    """The codes suppressed for ``benchmark`` (empty set when none)."""
    return frozenset(BENCHMARK_SUPPRESSIONS.get(benchmark, ()))
