"""The structured diagnostics model of the static analyzer.

A :class:`Diagnostic` is one finding about one automaton: a stable code
(``AZ1xx`` reachability, ``AZ2xx`` char classes, ``AZ3xx`` counters,
``AZ4xx`` transform preconditions — the full catalogue lives in
``docs/ANALYSIS.md``), a :class:`Severity`, the element ids it concerns,
a human-readable message and an optional fix-it hint.  Diagnostics are
plain data: every consumer — the ``repro lint`` CLI, the benchmark
registry gate, the conformance cross-checker, pytest assertions — works
off the same objects, and :meth:`Diagnostic.to_dict` is the JSON shape
written to ``bench_results/LINT.json``.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable
from dataclasses import dataclass, field


__all__ = ["Severity", "Diagnostic", "AnalysisReport"]


class Severity(enum.IntEnum):
    """How bad a finding is; ordered so gates can compare (``>= WARNING``)."""

    #: Structural observation, never gates anything by default.
    INFO = 0
    #: The automaton works but wastes capacity or likely hides a bug.
    WARNING = 1
    #: The automaton violates a well-formedness invariant the paper's
    #: methodology (full kernels, faithful active-set figures) relies on.
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a CLI-style severity name (``info|warning|error``)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``code`` is stable across releases (tests and suppression tables key on
    it); ``element_ids`` names the elements at fault so tooling can point
    into DOT renders or MNRL files; ``fixit`` is a short imperative hint.
    """

    code: str
    severity: Severity
    element_ids: tuple[str, ...]
    message: str
    fixit: str | None = None
    #: The registry name of the pass that produced this finding.
    pass_name: str = ""

    def to_dict(self) -> dict:
        """JSON-ready representation (the LINT.json diagnostic shape)."""
        out = {
            "code": self.code,
            "severity": self.severity.name.lower(),
            "elements": list(self.element_ids),
            "message": self.message,
            "pass": self.pass_name,
        }
        if self.fixit is not None:
            out["fixit"] = self.fixit
        return out

    def __str__(self) -> str:
        where = f" [{', '.join(self.element_ids)}]" if self.element_ids else ""
        hint = f" (fix: {self.fixit})" if self.fixit else ""
        return f"{self.code} {self.severity.name.lower()}{where}: {self.message}{hint}"


@dataclass
class AnalysisReport:
    """All diagnostics one :func:`repro.analysis.analyze` call produced.

    ``suppressed`` holds findings removed by a suppression set — they are
    kept (not dropped) so lint output can show what a suppression is
    actually hiding.
    """

    automaton_name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    #: Pass registry names that ran, in order.
    passes_run: tuple[str, ...] = ()

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        """Unsuppressed diagnostics at or above ``severity``."""
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def max_severity(self) -> Severity | None:
        """Highest unsuppressed severity, or None when clean."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def codes(self) -> set[str]:
        """The set of unsuppressed diagnostic codes."""
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def element_ids(self, code: str) -> set[str]:
        """Union of element ids across unsuppressed findings of ``code``."""
        out: set[str] = set()
        for diagnostic in self.by_code(code):
            out.update(diagnostic.element_ids)
        return out

    def apply_suppressions(self, codes: Iterable[str]) -> "AnalysisReport":
        """A copy with findings whose code is in ``codes`` moved aside."""
        suppress = set(codes)
        kept = [d for d in self.diagnostics if d.code not in suppress]
        hidden = [d for d in self.diagnostics if d.code in suppress]
        return AnalysisReport(
            automaton_name=self.automaton_name,
            diagnostics=kept,
            suppressed=self.suppressed + hidden,
            passes_run=self.passes_run,
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (one LINT.json target entry)."""
        counts = {s.name.lower(): 0 for s in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.name.lower()] += 1
        return {
            "automaton": self.automaton_name,
            "passes": list(self.passes_run),
            "counts": counts,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }
