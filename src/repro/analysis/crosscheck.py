"""Differential validation of analyzer claims against execution traces.

The analyzer makes *universal* claims — "this state is dead", "this
charset can never match", "this counter can never fire".  Each claim has
an observable consequence on any concrete run, so every conformance fuzz
case doubles as a test of the analyzer: run the case through
:class:`~repro.engines.reference.ReferenceEngine` with trace recording
and check that

* no element claimed dead (``AZ101``/``AZ102``/``AZ103``) was ever
  *enabled*,
* no STE claimed unsatisfiable (``AZ201``) ever *matched*,
* no counter claimed threshold-unreachable (``AZ301``/``AZ303``) ever
  accumulated a count or fired.

A violated claim is an analyzer bug (or an engine bug — either way a
finding), reported as a problem string the conformance runner turns into
a :class:`~repro.conformance.runner.Divergence`.  This module depends
only on core + engines, so :mod:`repro.conformance` can import it
without cycles.
"""

from __future__ import annotations

from repro.analysis import analyze
from repro.analysis.diagnostics import AnalysisReport
from repro.core.automaton import Automaton
from repro.engines.reference import ReferenceEngine

__all__ = ["claim_violations", "crosscheck"]

#: Codes whose element_ids claim "never enabled".
_DEAD_CODES = ("AZ101", "AZ102", "AZ103")
#: Codes whose element_ids claim "never matches" (STEs).
_UNSATISFIABLE_CODES = ("AZ201",)
#: Codes whose element_ids claim "never receives a count / never fires".
_INERT_COUNTER_CODES = ("AZ301", "AZ303")


def claim_violations(
    automaton: Automaton, data: bytes, report: AnalysisReport
) -> list[str]:
    """Check ``report``'s universal claims against one concrete run."""
    stream = ReferenceEngine(automaton).stream(record_trace=True)
    stream.feed(data)
    ever_enabled = stream.ever_enabled or set()
    ever_matched = stream.ever_matched or set()

    claims = report.diagnostics + report.suppressed
    problems: list[str] = []

    dead: set[str] = set()
    for code in _DEAD_CODES:
        for diagnostic in claims:
            if diagnostic.code == code:
                dead.update(diagnostic.element_ids)
    for ident in sorted(dead & ever_enabled):
        problems.append(
            f"analyzer claimed {ident!r} dead (never enabled), but the "
            f"reference trace enabled it"
        )

    unsatisfiable: set[str] = set()
    for code in _UNSATISFIABLE_CODES:
        for diagnostic in claims:
            if diagnostic.code == code:
                unsatisfiable.update(diagnostic.element_ids)
    for ident in sorted(unsatisfiable & ever_matched):
        problems.append(
            f"analyzer claimed {ident!r} unsatisfiable (never matches), but "
            f"the reference trace matched it"
        )

    inert: set[str] = set()
    for code in _INERT_COUNTER_CODES:
        for diagnostic in claims:
            if diagnostic.code == code:
                inert.update(diagnostic.element_ids)
    for ident in sorted(inert):
        state = stream._counter_state.get(ident)
        if state is None:
            continue
        if state.count > 0 or state.latched or state.stopped or ident in ever_matched:
            problems.append(
                f"analyzer claimed counter {ident!r} can never count/fire, "
                f"but the reference trace drove it "
                f"(count={state.count}, latched={state.latched}, "
                f"stopped={state.stopped})"
            )
    return problems


def crosscheck(automaton: Automaton, data: bytes) -> list[str]:
    """Analyze ``automaton`` and validate its claims over ``data``.

    Returns problem strings (empty = analyzer claims hold on this run).
    The conformance runner calls this on every fuzz case.
    """
    report = analyze(automaton)
    return claim_violations(automaton, data, report)
