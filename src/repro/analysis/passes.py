"""The analyzer's pass registry and the built-in well-formedness passes.

A *pass* is a function ``(automaton, ctx) -> Iterable[Diagnostic]``
registered under a stable name.  Passes share one
:class:`AnalysisContext` per ``analyze()`` call, whose memo cache keeps
each O(states + edges) traversal (reachability, satisfiability) computed
exactly once however many passes need it.

Default passes (run by :func:`repro.analysis.analyze`):

``structure``
    One INFO summary line (states/edges/components) — never gates.
``reachability``
    Dead states, unreachable reporting states, start-less components,
    components that can never report.
``charclass``
    Unsatisfiable (empty) charsets; charsets disjoint from a declared
    input alphabet.
``counters``
    Counter wiring: no feeders, dead feeders (unreachable threshold),
    orphaned reset ports, self-reset cycles.

Transform precondition passes (``precondition:*``) are registered here
too but excluded from the default set — they describe *applicability* of
a specific transform, not well-formedness, and are invoked by the
transforms themselves (see :mod:`repro.analysis.preconditions`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.structure import (
    compact_ids,
    matchable_idents,
    reachable_from_starts,
    reaches_report,
    structural_summary,
)
from repro.core.automaton import Automaton
from repro.core.charset import CharSet

__all__ = [
    "AnalysisContext",
    "PassFn",
    "PASS_REGISTRY",
    "DEFAULT_PASSES",
    "analysis_pass",
]


@dataclass
class AnalysisContext:
    """Shared state for one ``analyze()`` call.

    ``alphabet`` (when given) declares the benchmark's input alphabet so
    the charclass pass can flag states that can never match any real
    input symbol.  ``params`` carries transform-specific knobs (stride
    factor, pad symbol).  ``cache`` memoizes graph traversals across
    passes.
    """

    alphabet: CharSet | None = None
    params: dict = field(default_factory=dict)
    cache: dict = field(default_factory=dict)

    def reachable(self, automaton: Automaton) -> set[str]:
        if "reachable" not in self.cache:
            self.cache["reachable"] = reachable_from_starts(automaton)
        return self.cache["reachable"]

    def reporting_closure(self, automaton: Automaton) -> set[str]:
        if "reaches_report" not in self.cache:
            self.cache["reaches_report"] = reaches_report(automaton)
        return self.cache["reaches_report"]

    def matchable(self, automaton: Automaton) -> set[str]:
        if "matchable" not in self.cache:
            self.cache["matchable"] = matchable_idents(automaton)
        return self.cache["matchable"]


PassFn = Callable[[Automaton, AnalysisContext], Iterable[Diagnostic]]

#: All registered passes, in registration order.
PASS_REGISTRY: dict[str, PassFn] = {}


def analysis_pass(name: str) -> Callable[[PassFn], PassFn]:
    """Register a pass under ``name`` (decorator)."""

    def register(fn: PassFn) -> PassFn:
        if name in PASS_REGISTRY:
            raise ValueError(f"duplicate analysis pass name: {name!r}")
        PASS_REGISTRY[name] = fn
        return fn

    return register


def _diag(
    pass_name: str,
    code: str,
    severity: Severity,
    ids: Iterable[str],
    message: str,
    fixit: str | None = None,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        element_ids=tuple(sorted(ids)),
        message=message,
        fixit=fixit,
        pass_name=pass_name,
    )


# -- structure ----------------------------------------------------------------


@analysis_pass("structure")
def structure_pass(automaton: Automaton, ctx: AnalysisContext):
    """One INFO line summarising the graph (never gates)."""
    summary = structural_summary(automaton)
    yield _diag(
        "structure",
        "AZ001",
        Severity.INFO,
        (),
        f"{summary.states} states ({summary.stes} STEs, "
        f"{summary.counters} counters), {summary.edges} edges, "
        f"{summary.component_count} components, "
        f"{summary.start_states} starts, {summary.reporting_states} reporting, "
        f"{summary.dead_states} dead",
    )


# -- reachability -------------------------------------------------------------


@analysis_pass("reachability")
def reachability_pass(automaton: Automaton, ctx: AnalysisContext):
    """Dead and unreachable states, start-less and report-less components."""
    if automaton.n_states == 0:
        return
    reachable = ctx.reachable(automaton)
    can_report = ctx.reporting_closure(automaton)

    dead = [i for i in automaton.idents() if i not in reachable]
    dead_plain = [i for i in dead if not automaton[i].report]
    dead_reporting = [i for i in dead if automaton[i].report]
    if dead_plain:
        yield _diag(
            "reachability",
            "AZ101",
            Severity.WARNING,
            dead_plain,
            f"dead state(s) — no start mode and unreachable from any start, "
            f"can never be enabled: {compact_ids(dead_plain)}",
            fixit="remove the states or wire them to a start path",
        )
    if dead_reporting:
        yield _diag(
            "reachability",
            "AZ102",
            Severity.ERROR,
            dead_reporting,
            f"reporting element(s) unreachable from any start — the kernel "
            f"silently under-reports: {compact_ids(dead_reporting)}",
            fixit="wire a start path to the reporting element or drop it",
        )

    starts = {e.ident for e in automaton.start_elements()}
    no_start: list[str] = []
    no_report: list[str] = []
    for component in automaton.connected_components():
        if not component & starts:
            no_start.extend(component)
        elif not component & can_report:
            no_report.extend(component)
    if no_start:
        yield _diag(
            "reachability",
            "AZ103",
            Severity.ERROR,
            no_start,
            f"component(s) with no start element — entirely inert: "
            f"{compact_ids(no_start)}",
            fixit="give the component a start element or delete it",
        )
    if no_report:
        yield _diag(
            "reachability",
            "AZ104",
            Severity.WARNING,
            no_report,
            f"component(s) that can never report — activity is invisible: "
            f"{compact_ids(no_report)}",
            fixit="mark an element reporting or delete the component",
        )


# -- char classes -------------------------------------------------------------


@analysis_pass("charclass")
def charclass_pass(automaton: Automaton, ctx: AnalysisContext):
    """Unsatisfiable charsets; charsets disjoint from the input alphabet."""
    empty = [ste.ident for ste in automaton.stes() if ste.charset.is_empty()]
    if empty:
        yield _diag(
            "charclass",
            "AZ201",
            Severity.ERROR,
            empty,
            f"unsatisfiable (empty) char class(es) — the state can never "
            f"match: {compact_ids(empty)}",
            fixit="fix the generator's charset construction or drop the state",
        )
    if ctx.alphabet is not None and not ctx.alphabet.is_empty():
        disjoint = [
            ste.ident
            for ste in automaton.stes()
            if not ste.charset.is_empty() and (ste.charset & ctx.alphabet).is_empty()
        ]
        if disjoint:
            yield _diag(
                "charclass",
                "AZ202",
                Severity.WARNING,
                disjoint,
                f"char class(es) disjoint from the declared input alphabet "
                f"{ctx.alphabet!r} — unmatchable on benchmark input: "
                f"{compact_ids(disjoint)}",
                fixit="restrict the charset to the benchmark alphabet",
            )


# -- counter wiring -----------------------------------------------------------


@analysis_pass("counters")
def counters_pass(automaton: Automaton, ctx: AnalysisContext):
    """Counter wiring: feeders, thresholds, reset ports, self-reset cycles."""
    counters = list(automaton.counters())
    if not counters:
        return
    matchable = ctx.matchable(automaton)

    no_feeders = [
        c.ident for c in counters if not automaton.predecessors(c.ident)
    ]
    if no_feeders:
        yield _diag(
            "counters",
            "AZ301",
            Severity.ERROR,
            no_feeders,
            f"counter(s) with no predecessors — can never receive a count "
            f"event: {compact_ids(no_feeders)}",
            fixit="wire at least one STE to the counter's count port",
        )

    bad_threshold: list[str] = []
    for counter in counters:
        feeders = automaton.predecessors(counter.ident)
        if counter.target < 1:
            bad_threshold.append(counter.ident)
        elif feeders and not any(f in matchable for f in feeders):
            # has feeders, but none can ever match: target unreachable
            bad_threshold.append(counter.ident)
    if bad_threshold:
        yield _diag(
            "counters",
            "AZ303",
            Severity.ERROR,
            bad_threshold,
            f"counter threshold(s) unreachable — zero target or every "
            f"feeder is dead/unsatisfiable: {compact_ids(bad_threshold)}",
            fixit="feed the counter from a live state and use a target >= 1",
        )

    orphaned: list[str] = []
    for src, counter in automaton.reset_edges():
        if src not in matchable:
            orphaned.append(src)
    if orphaned:
        yield _diag(
            "counters",
            "AZ302",
            Severity.WARNING,
            orphaned,
            f"reset port source(s) that can never fire — the reset wire is "
            f"decorative: {compact_ids(orphaned)}",
            fixit="drive the reset port from a reachable, satisfiable state",
        )

    self_reset: list[str] = []
    for counter in counters:
        sources = set(automaton.reset_predecessors(counter.ident))
        if not sources:
            continue
        # forward closure of the counter's own activations
        stack = [counter.ident]
        downstream: set[str] = set()
        while stack:
            node = stack.pop()
            for nxt in automaton.successors(node):
                if nxt not in downstream:
                    downstream.add(nxt)
                    stack.append(nxt)
        if sources & downstream:
            self_reset.append(counter.ident)
    if self_reset:
        yield _diag(
            "counters",
            "AZ304",
            Severity.WARNING,
            self_reset,
            f"self-reset cycle(s) — the counter's own firing can reach its "
            f"reset port, clearing it: {compact_ids(self_reset)}",
            fixit="break the activation path from the counter to its reset source",
        )


#: The passes ``analyze()`` runs when none are named explicitly.
DEFAULT_PASSES: tuple[str, ...] = (
    "structure",
    "reachability",
    "charclass",
    "counters",
)
