"""Transform precondition passes (``AZ4xx``).

Each transform in :mod:`repro.transforms` has structural preconditions;
violating them used to produce either an ad-hoc ``AutomatonError`` or —
worse — a silently-wrong automaton (widening a charset that contains the
pad symbol yields an automaton that "works" but matches the wrong
language).  These passes make every precondition an explicit, coded
diagnostic, and :func:`require` turns error-severity findings into a
:class:`~repro.errors.TransformPreconditionError` so transforms fail
loudly and uniformly.

The passes are registered as ``precondition:stride`` / ``:widen`` /
``:merge`` but are *not* part of the analyzer's default pass set: an
automaton that cannot be strided is not malformed, it is just not a
bit-level automaton.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.passes import AnalysisContext, analysis_pass
from repro.analysis.structure import compact_ids
from repro.core.automaton import Automaton
from repro.errors import TransformPreconditionError

__all__ = [
    "check_stride",
    "check_widen",
    "check_merge",
    "require",
]


def _diag(
    pass_name: str,
    code: str,
    severity: Severity,
    ids: Iterable[str],
    message: str,
    fixit: str | None = None,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        element_ids=tuple(sorted(ids)),
        message=message,
        fixit=fixit,
        pass_name=pass_name,
    )


def check_stride(automaton: Automaton, k: int = 8) -> list[Diagnostic]:
    """Preconditions of :func:`repro.transforms.striding.stride`."""
    out: list[Diagnostic] = []
    counters = [c.ident for c in automaton.counters()]
    if counters:
        out.append(
            _diag(
                "precondition:stride",
                "AZ401",
                Severity.ERROR,
                counters,
                f"striding does not support counter elements: "
                f"{compact_ids(counters)}",
                fixit="strip or lower the counters before striding",
            )
        )
    stes = list(automaton.stes())
    if stes:
        max_symbol = max(max(ste.charset, default=0) for ste in stes)
        bits_per_symbol = max(1, max_symbol.bit_length())
        if bits_per_symbol * k > 8:
            out.append(
                _diag(
                    "precondition:stride",
                    "AZ402",
                    Severity.ERROR,
                    (),
                    f"cannot {k}-stride a {bits_per_symbol}-bit alphabet: "
                    f"block symbols would exceed one byte",
                    fixit="use a smaller stride factor or a narrower alphabet",
                )
            )
    return out


def check_widen(automaton: Automaton, pad_symbol: int = 0) -> list[Diagnostic]:
    """Preconditions of :func:`repro.transforms.widening.widen`."""
    out: list[Diagnostic] = []
    counters = [c.ident for c in automaton.counters()]
    if counters:
        out.append(
            _diag(
                "precondition:widen",
                "AZ403",
                Severity.ERROR,
                counters,
                f"widening does not support counter elements: "
                f"{compact_ids(counters)}",
                fixit="widen the STE-only patterns and re-attach counters after",
            )
        )
    conflicted = [
        ste.ident for ste in automaton.stes() if ste.charset.matches(pad_symbol)
    ]
    if conflicted:
        out.append(
            _diag(
                "precondition:widen",
                "AZ404",
                Severity.ERROR,
                conflicted,
                f"char class(es) contain the pad symbol {pad_symbol:#04x}; the "
                f"widened automaton would confuse pattern bytes with padding "
                f"and match the wrong language: {compact_ids(conflicted)}",
                fixit="choose a pad symbol outside every charset",
            )
        )
    return out


def check_merge(automaton: Automaton) -> list[Diagnostic]:
    """Preconditions of the prefix/suffix merging passes.

    Merging keys element signatures on ``repr(report_code)``; two report
    states carrying *different* code values with identical reprs would be
    conflated, silently corrupting the report stream.  Element ``attrs``
    are not carried through merging either — losing them is legal but
    worth a warning.
    """
    out: list[Diagnostic] = []
    by_repr: dict[str, list] = {}
    for element in automaton.reporting_elements():
        by_repr.setdefault(repr(element.report_code), []).append(element)
    collided: list[str] = []
    for _text, elements in by_repr.items():
        first = elements[0].report_code
        for other in elements[1:]:
            code = other.report_code
            try:
                same = bool(code == first)
            except Exception:  # noqa: BLE001 - exotic __eq__: assume collision
                same = False
            if not same:
                collided.extend((elements[0].ident, other.ident))
    if collided:
        out.append(
            _diag(
                "precondition:merge",
                "AZ406",
                Severity.ERROR,
                set(collided),
                f"distinct report codes share a repr(); merging would "
                f"conflate their report streams: {compact_ids(set(collided))}",
                fixit="give report codes of one automaton distinct reprs",
            )
        )
    with_attrs = [e.ident for e in automaton.elements() if e.attrs]
    if with_attrs:
        out.append(
            _diag(
                "precondition:merge",
                "AZ405",
                Severity.WARNING,
                with_attrs,
                f"element attrs are dropped by merging: "
                f"{compact_ids(with_attrs)}",
                fixit="re-derive attrs after merging, or don't rely on them",
            )
        )
    return out


def require(diagnostics: Iterable[Diagnostic], transform: str) -> None:
    """Raise :class:`TransformPreconditionError` on any ERROR finding."""
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        raise TransformPreconditionError(transform, errors)


# -- registry wrappers (analyzable on demand via analyze(passes=[...])) -------


@analysis_pass("precondition:stride")
def _stride_pass(automaton: Automaton, ctx: AnalysisContext):
    return check_stride(automaton, int(ctx.params.get("k", 8)))


@analysis_pass("precondition:widen")
def _widen_pass(automaton: Automaton, ctx: AnalysisContext):
    return check_widen(automaton, int(ctx.params.get("pad_symbol", 0)))


@analysis_pass("precondition:merge")
def _merge_pass(automaton: Automaton, ctx: AnalysisContext):
    return check_merge(automaton)
