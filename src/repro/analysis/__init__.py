"""Static automaton analysis: a linter for benchmark kernels.

The paper's methodology assumes every benchmark automaton is a
*well-formed full kernel*: no dead states, satisfiable char classes,
correctly wired counters.  This package makes those invariants explicit
and checkable *before* anything runs:

>>> from repro.analysis import analyze
>>> report = analyze(automaton)                      # doctest: +SKIP
>>> report.errors                                    # doctest: +SKIP
[]

Entry points:

* :func:`analyze` — run a set of passes, get an
  :class:`~repro.analysis.diagnostics.AnalysisReport`;
* :func:`lint_benchmark` — analyze with the benchmark's documented
  suppressions applied (what the registry gate and ``repro lint`` use);
* :mod:`repro.analysis.preconditions` — transform precondition checks
  (invoked by the transforms themselves);
* :mod:`repro.analysis.crosscheck` — differential validation of analyzer
  claims against ReferenceEngine traces (wired into the conformance
  fuzzer, making the analyzer itself differentially tested).

The pass catalogue and diagnostic codes are documented in
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.passes import (
    DEFAULT_PASSES,
    PASS_REGISTRY,
    AnalysisContext,
    analysis_pass,
)
from repro.analysis import preconditions as preconditions  # registers AZ4xx passes
from repro.analysis.structure import StructuralSummary, structural_summary
from repro.analysis.suppressions import BENCHMARK_SUPPRESSIONS, suppressed_codes
from repro.core.automaton import Automaton
from repro.core.charset import CharSet

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "BENCHMARK_SUPPRESSIONS",
    "DEFAULT_PASSES",
    "Diagnostic",
    "PASS_REGISTRY",
    "Severity",
    "StructuralSummary",
    "analysis_pass",
    "analyze",
    "lint_benchmark",
    "structural_summary",
    "suppressed_codes",
]


def analyze(
    automaton: Automaton,
    *,
    passes: Iterable[str] | None = None,
    alphabet: CharSet | None = None,
    suppress: Iterable[str] = (),
    params: dict | None = None,
) -> AnalysisReport:
    """Run analysis passes over ``automaton`` and collect diagnostics.

    ``passes`` selects registry names (default :data:`DEFAULT_PASSES`);
    ``alphabet`` enables the out-of-alphabet charclass check;
    ``suppress`` moves findings with those codes to the report's
    ``suppressed`` list; ``params`` feeds transform precondition passes
    (e.g. ``{"k": 8}``).
    """
    selected = tuple(passes) if passes is not None else DEFAULT_PASSES
    unknown = [name for name in selected if name not in PASS_REGISTRY]
    if unknown:
        raise KeyError(
            f"unknown analysis pass(es) {unknown!r}; registered: "
            f"{sorted(PASS_REGISTRY)}"
        )
    ctx = AnalysisContext(alphabet=alphabet, params=dict(params or {}))
    report = AnalysisReport(automaton_name=automaton.name, passes_run=selected)
    for name in selected:
        report.diagnostics.extend(PASS_REGISTRY[name](automaton, ctx))
    report.diagnostics.sort(key=lambda d: (-int(d.severity), d.code))
    if suppress:
        report = report.apply_suppressions(suppress)
    return report


def lint_benchmark(
    name: str,
    automaton: Automaton,
    *,
    use_suppressions: bool = True,
    alphabet: CharSet | None = None,
) -> AnalysisReport:
    """Analyze a benchmark automaton with its documented suppressions.

    The report is keyed by the Table I benchmark ``name`` (which the
    suppression table also keys on), not the automaton's internal name.
    """
    suppress = suppressed_codes(name) if use_suppressions else frozenset()
    report = analyze(automaton, alphabet=alphabet, suppress=suppress)
    report.automaton_name = name
    return report
