"""Cheap structural facts shared by analysis passes and ``stats.static``.

Every quantity here is a single O(states + edges) traversal.  The analyzer
passes consume the reachability sets; :func:`repro.stats.static.compute_static_stats`
consumes the component census — one implementation, two clients, so Table I
numbers and lint findings can never disagree about the same graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.automaton import Automaton
from repro.core.elements import CounterElement, STE

__all__ = [
    "StructuralSummary",
    "structural_summary",
    "reachable_from_starts",
    "reaches_report",
    "matchable_idents",
    "compact_ids",
]


def reachable_from_starts(automaton: Automaton) -> set[str]:
    """Elements reachable (via activation edges) from any start element.

    Start elements themselves are included.  Everything outside this set
    can never be enabled, which makes it the analyzer's definition of
    *dead* (cross-checked against ReferenceEngine traces by the
    conformance harness).
    """
    stack = [e.ident for e in automaton.start_elements()]
    seen = set(stack)
    while stack:
        node = stack.pop()
        for nxt in automaton.successors(node):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def reaches_report(automaton: Automaton) -> set[str]:
    """Elements from which some reporting element is reachable.

    Reporting elements themselves are included.  The complement is the
    set of states whose activity can never contribute to a report.
    """
    stack = [e.ident for e in automaton.reporting_elements()]
    seen = set(stack)
    while stack:
        node = stack.pop()
        for prv in automaton.predecessors(node):
            if prv not in seen:
                seen.add(prv)
                stack.append(prv)
    return seen


def matchable_idents(automaton: Automaton) -> set[str]:
    """Elements that could ever match/fire: reachable and satisfiable.

    An STE must be reachable from a start *and* carry a non-empty charset;
    a counter must additionally have at least one matchable feeder.
    """
    reachable = reachable_from_starts(automaton)
    out = {
        ste.ident
        for ste in automaton.stes()
        if ste.ident in reachable and not ste.charset.is_empty()
    }
    for counter in automaton.counters():
        if counter.ident not in reachable:
            continue
        if any(p in out for p in automaton.predecessors(counter.ident)):
            out.add(counter.ident)
    return out


@dataclass(frozen=True)
class StructuralSummary:
    """One-pass structural census of an automaton."""

    states: int
    edges: int
    stes: int
    counters: int
    start_states: int
    reporting_states: int
    component_count: int
    avg_component_size: float
    std_component_size: float
    dead_states: int

    @property
    def edges_per_node(self) -> float:
        if self.states == 0:
            return 0.0
        return self.edges / self.states


def structural_summary(automaton: Automaton) -> StructuralSummary:
    """Compute the :class:`StructuralSummary` of ``automaton``."""
    sizes = [len(c) for c in automaton.connected_components()]
    count = len(sizes)
    mean = sum(sizes) / count if count else 0.0
    variance = sum((s - mean) ** 2 for s in sizes) / count if count else 0.0
    n_stes = sum(1 for e in automaton.elements() if isinstance(e, STE))
    n_counters = sum(1 for e in automaton.elements() if isinstance(e, CounterElement))
    dead = automaton.n_states - len(reachable_from_starts(automaton))
    return StructuralSummary(
        states=automaton.n_states,
        edges=automaton.n_edges,
        stes=n_stes,
        counters=n_counters,
        start_states=len(automaton.start_elements()),
        reporting_states=len(automaton.reporting_elements()),
        component_count=count,
        avg_component_size=mean,
        std_component_size=math.sqrt(variance),
        dead_states=dead,
    )


def compact_ids(ids, limit: int = 8) -> str:
    """Human-readable id list for diagnostics: first few plus a count."""
    ids = sorted(ids)
    if len(ids) <= limit:
        return ", ".join(ids)
    shown = ", ".join(ids[:limit])
    return f"{shown}, … ({len(ids)} total)"
