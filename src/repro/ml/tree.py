"""CART decision trees over quantised (uint8) features.

A from-scratch replacement for scikit-learn's tree learner, supporting the
two hyperparameters the Random Forest benchmarks vary (Table II): the
feature subset presented to the model and the maximum number of leaves.
Trees grow *best-first* (largest impurity decrease next), matching
scikit-learn's ``max_leaf_nodes`` semantics, so "max leaves" shapes model
quality the same way as in the paper.

Splits are ``feature <= threshold`` with thresholds on the 0..255 quantised
scale; split search is histogram-based (class-count histograms over the 256
bins, scanned cumulatively), which keeps pure-numpy training fast.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecisionTree", "TreeNode", "TreePath"]


@dataclass
class TreeNode:
    """One node: internal (feature/threshold) or leaf (label)."""

    node_id: int
    feature: int | None = None
    threshold: int | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    label: int | None = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass(frozen=True)
class TreePath:
    """A root-to-leaf path as per-feature value intervals.

    ``bounds`` maps feature index -> inclusive (lo, hi) admissible value
    range on the 0..255 scale; features not present are unconstrained.
    This is the unit the automata conversion consumes: one path = one
    chain = one subgraph (Section VI).
    """

    bounds: tuple[tuple[int, tuple[int, int]], ...]
    label: int

    def as_dict(self) -> dict[int, tuple[int, int]]:
        return dict(self.bounds)


def _gini_from_counts(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gini impurity per threshold from cumulative class counts."""
    with np.errstate(invalid="ignore", divide="ignore"):
        proportions = counts / totals[:, None]
        gini = 1.0 - np.nansum(proportions**2, axis=1)
    gini[totals == 0] = 0.0
    return gini


@dataclass
class _Candidate:
    impurity_decrease: float
    order: int
    node: TreeNode
    rows: np.ndarray
    feature: int
    threshold: int

    def __lt__(self, other: "_Candidate") -> bool:
        # heapq is a min-heap; invert for best-first growth.
        if self.impurity_decrease != other.impurity_decrease:
            return self.impurity_decrease > other.impurity_decrease
        return self.order < other.order


@dataclass
class DecisionTree:
    """A CART classifier with best-first growth and a leaf budget."""

    max_leaves: int = 400
    features_per_split: int | None = None
    min_samples_leaf: int = 1
    seed: int = 0
    root: TreeNode | None = field(default=None, repr=False)
    n_classes: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTree":
        if x.dtype != np.uint8:
            raise ValueError("features must be quantised to uint8")
        if self.max_leaves < 2:
            raise ValueError("max_leaves must be >= 2")
        rng = np.random.default_rng(self.seed)
        self.n_classes = int(y.max()) + 1
        ids = itertools.count()
        order = itertools.count()
        self.root = TreeNode(next(ids))
        all_rows = np.arange(x.shape[0])
        self._set_leaf(self.root, y, all_rows)

        heap: list[_Candidate] = []
        first = self._best_split(x, y, all_rows, rng, next(order), self.root)
        if first is not None:
            heapq.heappush(heap, first)
        leaves = 1
        while heap and leaves < self.max_leaves:
            candidate = heapq.heappop(heap)
            node, rows = candidate.node, candidate.rows
            mask = x[rows, candidate.feature] <= candidate.threshold
            left_rows, right_rows = rows[mask], rows[~mask]
            if len(left_rows) < self.min_samples_leaf or len(right_rows) < self.min_samples_leaf:
                continue
            node.feature = candidate.feature
            node.threshold = candidate.threshold
            node.label = None
            node.left = TreeNode(next(ids))
            node.right = TreeNode(next(ids))
            self._set_leaf(node.left, y, left_rows)
            self._set_leaf(node.right, y, right_rows)
            leaves += 1
            for child, child_rows in ((node.left, left_rows), (node.right, right_rows)):
                split = self._best_split(x, y, child_rows, rng, next(order), child)
                if split is not None:
                    heapq.heappush(heap, split)
        return self

    def _set_leaf(self, node: TreeNode, y: np.ndarray, rows: np.ndarray) -> None:
        counts = np.bincount(y[rows], minlength=self.n_classes)
        node.label = int(np.argmax(counts))

    def _best_split(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rows: np.ndarray,
        rng: np.random.Generator,
        order: int,
        node: TreeNode,
    ) -> _Candidate | None:
        n = len(rows)
        if n < 2 * self.min_samples_leaf:
            return None
        labels = y[rows]
        parent_counts = np.bincount(labels, minlength=self.n_classes)
        if (parent_counts > 0).sum() <= 1:
            return None  # already pure
        parent_gini = 1.0 - ((parent_counts / n) ** 2).sum()

        n_features = x.shape[1]
        k = self.features_per_split
        if k is None or k >= n_features:
            candidates = np.arange(n_features)
        else:
            candidates = rng.choice(n_features, size=k, replace=False)

        best: tuple[float, int, int] | None = None
        for feature in candidates:
            values = x[rows, feature].astype(np.int64)
            # class-count histogram over the 256 quantised bins
            hist = np.bincount(
                values * self.n_classes + labels, minlength=256 * self.n_classes
            ).reshape(256, self.n_classes)
            left_counts = np.cumsum(hist, axis=0)[:-1]  # thresholds 0..254
            left_totals = left_counts.sum(axis=1)
            right_counts = parent_counts[None, :] - left_counts
            right_totals = n - left_totals
            valid = (left_totals >= self.min_samples_leaf) & (
                right_totals >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            gini_left = _gini_from_counts(left_counts, left_totals)
            gini_right = _gini_from_counts(right_counts, right_totals)
            weighted = (left_totals * gini_left + right_totals * gini_right) / n
            weighted[~valid] = np.inf
            threshold = int(np.argmin(weighted))
            score = parent_gini - weighted[threshold]
            if score > 1e-12 and (best is None or score > best[0]):
                best = (float(score), int(feature), threshold)
        if best is None:
            return None
        score, feature, threshold = best
        return _Candidate(
            impurity_decrease=score * n,
            order=order,
            node=node,
            rows=rows,
            feature=feature,
            threshold=threshold,
        )

    # -- inference and introspection ----------------------------------------

    def predict_one(self, sample: np.ndarray) -> int:
        node = self.root
        while not node.is_leaf:
            node = node.left if sample[node.feature] <= node.threshold else node.right
        return node.label

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self.predict_one(row) for row in x), dtype=np.int64, count=len(x)
        )

    def leaf_count(self) -> int:
        return sum(1 for _ in self.iter_leaves())

    def iter_leaves(self):
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend((node.right, node.left))

    def depth(self) -> int:
        def rec(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        return rec(self.root)

    def paths(self) -> list[TreePath]:
        """All root-to-leaf paths as per-feature interval constraints."""
        out: list[TreePath] = []

        def rec(node: TreeNode, bounds: dict[int, tuple[int, int]]):
            if node.is_leaf:
                out.append(
                    TreePath(tuple(sorted(bounds.items())), label=node.label)
                )
                return
            lo, hi = bounds.get(node.feature, (0, 255))
            left_bounds = dict(bounds)
            left_bounds[node.feature] = (lo, min(hi, node.threshold))
            rec(node.left, left_bounds)
            right_bounds = dict(bounds)
            right_bounds[node.feature] = (max(lo, node.threshold + 1), hi)
            rec(node.right, right_bounds)

        rec(self.root, {})
        return out
