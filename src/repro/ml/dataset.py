"""Synthetic handwritten-digit-like dataset (MNIST substitute).

The Random Forest benchmarks (Table II) are trained on MNIST, which is not
shippable here; this module renders procedural digit glyphs on a 28x28
grid — seven-segment-style strokes with random shift, thickness jitter and
pixel noise — giving a 784-feature, 10-class problem with the properties
the experiments need: accuracy that *increases* with the number of selected
features and with tree size, while staying below 100%.

Feature selection mirrors the paper's "number of features" hyperparameter:
:func:`select_features` ranks pixels by a class-separability F-score and
keeps the top k, so variant A (270 features) genuinely sees more signal
than variant B (200).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DigitDataset", "make_digits", "select_features"]

SIDE = 28
N_FEATURES = SIDE * SIDE

# Seven-segment layout: segments A (top), B (top-right), C (bottom-right),
# D (bottom), E (bottom-left), F (top-left), G (middle).
_SEGMENTS = {
    "A": ((4, 6), (4, 21)),
    "B": ((4, 21), (13, 21)),
    "C": ((13, 21), (23, 21)),
    "D": ((23, 6), (23, 21)),
    "E": ((13, 6), (23, 6)),
    "F": ((4, 6), (13, 6)),
    "G": ((13, 6), (13, 21)),
}

_DIGIT_SEGMENTS = {
    0: "ABCDEF",
    1: "BC",
    2: "ABGED",
    3: "ABGCD",
    4: "FGBC",
    5: "AFGCD",
    6: "AFGECD",
    7: "ABC",
    8: "ABCDEFG",
    9: "ABCDFG",
}


@dataclass(frozen=True)
class DigitDataset:
    """Quantised (uint8) feature matrix plus labels, split train/test."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def n_features(self) -> int:
        return self.train_x.shape[1]

    @property
    def n_classes(self) -> int:
        return int(self.train_y.max()) + 1


def _draw_segment(image: np.ndarray, start, end, thickness: int) -> None:
    (r0, c0), (r1, c1) = start, end
    steps = max(abs(r1 - r0), abs(c1 - c0)) + 1
    rows = np.linspace(r0, r1, steps).round().astype(int)
    cols = np.linspace(c0, c1, steps).round().astype(int)
    half = thickness // 2
    for dr in range(-half, half + 1):
        for dc in range(-half, half + 1):
            rr = np.clip(rows + dr, 0, SIDE - 1)
            cc = np.clip(cols + dc, 0, SIDE - 1)
            image[rr, cc] = 255


def _render_digit(digit: int, rng: np.random.Generator) -> np.ndarray:
    image = np.zeros((SIDE, SIDE), dtype=np.float64)
    thickness = int(rng.integers(2, 5))
    for name in _DIGIT_SEGMENTS[digit]:
        _draw_segment(image, *_SEGMENTS[name], thickness)
    # Random shift keeps pixel-feature identities fuzzy across samples.
    shift_r = int(rng.integers(-2, 3))
    shift_c = int(rng.integers(-2, 3))
    image = np.roll(np.roll(image, shift_r, axis=0), shift_c, axis=1)
    noise = rng.normal(0, 40, size=image.shape)
    image = np.clip(image + noise, 0, 255)
    # Random pixel dropout mimics stroke breaks.
    dropout = rng.random(image.shape) < 0.05
    image[dropout] = 0
    return image


def make_digits(
    n_train: int = 2000,
    n_test: int = 500,
    *,
    seed: int = 1234,
) -> DigitDataset:
    """Generate a balanced synthetic digit dataset."""
    rng = np.random.default_rng(seed)

    def batch(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.arange(count) % 10
        rng.shuffle(labels)
        rows = np.empty((count, N_FEATURES), dtype=np.uint8)
        for i, label in enumerate(labels):
            rows[i] = _render_digit(int(label), rng).reshape(-1).astype(np.uint8)
        return rows, labels.astype(np.int64)

    train_x, train_y = batch(n_train)
    test_x, test_y = batch(n_test)
    return DigitDataset(train_x, train_y, test_x, test_y)


def select_features(x: np.ndarray, y: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-k features by a one-way ANOVA-style F-score.

    Scores between-class variance of feature means against within-class
    variance; higher means the pixel separates classes better.
    """
    if k > x.shape[1]:
        raise ValueError(f"k={k} exceeds feature count {x.shape[1]}")
    classes = np.unique(y)
    overall_mean = x.mean(axis=0)
    between = np.zeros(x.shape[1])
    within = np.zeros(x.shape[1])
    for cls in classes:
        rows = x[y == cls].astype(np.float64)
        class_mean = rows.mean(axis=0)
        between += rows.shape[0] * (class_mean - overall_mean) ** 2
        within += ((rows - class_mean) ** 2).sum(axis=0)
    score = between / (within + 1e-9)
    top = np.argsort(-score)[:k]
    return np.sort(top)
