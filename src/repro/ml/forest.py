"""Random Forest training (ensemble of CART trees, majority vote)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.tree import DecisionTree, TreePath

__all__ = ["RandomForest"]


@dataclass
class RandomForest:
    """Bagged ensemble of :class:`DecisionTree` classifiers.

    The paper's benchmarks use 20 trees and vary ``max_leaves`` and the
    feature count (features are selected *before* training; see
    :func:`repro.ml.dataset.select_features`).
    """

    n_trees: int = 20
    max_leaves: int = 400
    features_per_split: int | None = None  # None = sqrt(n_features)
    min_samples_leaf: int = 1
    seed: int = 0
    trees: list[DecisionTree] = field(default_factory=list, repr=False)
    n_classes: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForest":
        rng = np.random.default_rng(self.seed)
        self.n_classes = int(y.max()) + 1
        per_split = self.features_per_split
        if per_split is None:
            per_split = max(1, int(np.sqrt(x.shape[1])))
        self.trees = []
        for t in range(self.n_trees):
            rows = rng.integers(0, len(x), size=len(x))  # bootstrap sample
            tree = DecisionTree(
                max_leaves=self.max_leaves,
                features_per_split=per_split,
                min_samples_leaf=self.min_samples_leaf,
                seed=int(rng.integers(0, 2**31)),
            )
            tree.fit(x[rows], y[rows])
            self.trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        votes = np.zeros((len(x), self.n_classes), dtype=np.int64)
        for tree in self.trees:
            predictions = tree.predict(x)
            votes[np.arange(len(x)), predictions] += 1
        return votes.argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == y).mean())

    def total_leaves(self) -> int:
        return sum(tree.leaf_count() for tree in self.trees)

    def all_paths(self) -> list[tuple[int, TreePath]]:
        """Every (tree_index, path) pair — the automata conversion input."""
        return [
            (index, path)
            for index, tree in enumerate(self.trees)
            for path in tree.paths()
        ]
