"""From-scratch ML substrate: dataset, CART trees, random forests."""

from repro.ml.dataset import DigitDataset, make_digits, select_features
from repro.ml.forest import RandomForest
from repro.ml.tree import DecisionTree, TreeNode, TreePath

__all__ = [
    "DecisionTree",
    "DigitDataset",
    "RandomForest",
    "TreeNode",
    "TreePath",
    "make_digits",
    "select_features",
]
