"""Benchmark statistics: static structure, dynamic behaviour, table output."""

from repro.stats.dynamic import DynamicStats, measure_dynamic
from repro.stats.reporting import ReportPressure, analyze_report_pressure
from repro.stats.static import StaticStats, compute_static_stats
from repro.stats.table import BenchmarkRow, format_table, summarize_benchmark

__all__ = [
    "BenchmarkRow",
    "ReportPressure",
    "analyze_report_pressure",
    "DynamicStats",
    "StaticStats",
    "compute_static_stats",
    "format_table",
    "measure_dynamic",
    "summarize_benchmark",
]
