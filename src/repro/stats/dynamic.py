"""Dynamic (execution-derived) benchmark statistics.

The paper's key dynamic metric is the *active set*: the average number of
states attempting a match per input symbol, "often used as a proxy for
performance on sequential, memory-based architectures such as CPUs"
(Section IV).  Report rates drive the Section V Snort experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.core.automaton import Automaton
from repro.engines.base import Engine
from repro.engines.cache import auto_engine

__all__ = ["DynamicStats", "measure_dynamic"]


@dataclass(frozen=True)
class DynamicStats:
    """Execution statistics of an automaton over a standard input."""

    symbols: int
    mean_active_set: float
    report_count: int
    reporting_symbols: int

    @property
    def reports_per_symbol(self) -> float:
        if self.symbols == 0:
            return 0.0
        return self.report_count / self.symbols

    @property
    def reporting_byte_fraction(self) -> float:
        """Fraction of input bytes on which >= 1 report fired.

        Section V quotes ANMLZoo Snort reporting on "99.5% of all input
        bytes"; this is that metric.
        """
        if self.symbols == 0:
            return 0.0
        return self.reporting_symbols / self.symbols

    @property
    def reports_per_million(self) -> float:
        """Report rate scaled to the paper's Figure 1 units."""
        return self.reports_per_symbol * 1_000_000


def measure_dynamic(
    automaton: Automaton,
    data: bytes,
    *,
    engine: Engine | None = None,
) -> DynamicStats:
    """Run ``automaton`` over ``data`` and summarise dynamic behaviour."""
    if engine is None:
        # Bitset when the automaton fits its cap, Vector otherwise; either
        # way compiled once per structure via the engine cache, so Table I
        # sweeps do not recompile per metric.
        engine = auto_engine(automaton)
    with telemetry.span("stats.measure_dynamic"):
        result = engine.run(data, record_active=True)
    return DynamicStats(
        symbols=result.cycles,
        mean_active_set=result.mean_active_set,
        report_count=result.report_count,
        reporting_symbols=len(result.reporting_cycles()),
    )
