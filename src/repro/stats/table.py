"""Rendering Table-I-style benchmark summary rows."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.automaton import Automaton
from repro.stats.dynamic import DynamicStats, measure_dynamic
from repro.stats.static import StaticStats, compute_static_stats
from repro.transforms.prefix_merge import merge_common_prefixes

__all__ = ["BenchmarkRow", "summarize_benchmark", "format_table"]


@dataclass(frozen=True)
class BenchmarkRow:
    """One row of the suite summary (Table I)."""

    name: str
    domain: str
    input_desc: str
    static: StaticStats
    compressed_states: int | None
    dynamic: DynamicStats | None

    @property
    def compression_factor(self) -> float | None:
        """Fraction of states removed by prefix merging (Table I)."""
        if self.compressed_states is None or self.static.states == 0:
            return None
        return 1.0 - self.compressed_states / self.static.states


def summarize_benchmark(
    name: str,
    domain: str,
    input_desc: str,
    automaton: Automaton,
    data: bytes | None,
    *,
    compress: bool = True,
) -> BenchmarkRow:
    """Compute a full Table-I row for one benchmark.

    ``compress=False`` skips prefix merging (the paper marks AP PRNG's
    compressed column "NA" because compressing it changes its statistical
    behaviour).
    """
    compressed = None
    if compress:
        _, merge_stats = merge_common_prefixes(automaton)
        compressed = merge_stats.states_after
    dynamic = measure_dynamic(automaton, data) if data is not None else None
    return BenchmarkRow(
        name=name,
        domain=domain,
        input_desc=input_desc,
        static=compute_static_stats(automaton),
        compressed_states=compressed,
        dynamic=dynamic,
    )


_HEADERS = [
    "Benchmark",
    "States",
    "Edges",
    "Edges/Node",
    "Subgraphs",
    "Avg Size",
    "Std Dev",
    "Compr States",
    "Compr Factor",
    "Active Set",
]


def format_table(rows: list[BenchmarkRow]) -> str:
    """Render rows as an aligned text table in Table I's column order."""
    grid = [_HEADERS]
    for row in rows:
        s = row.static
        grid.append(
            [
                row.name,
                f"{s.states:,}",
                f"{s.edges:,}",
                f"{s.edges_per_node:.2f}",
                f"{s.subgraph_count:,}",
                f"{s.avg_component_size:.2f}",
                f"{s.std_component_size:.2f}",
                f"{row.compressed_states:,}" if row.compressed_states is not None else "NA",
                f"{row.compression_factor:.2f}x" if row.compression_factor is not None else "NA",
                f"{row.dynamic.mean_active_set:.1f}" if row.dynamic is not None else "NA",
            ]
        )
    widths = [max(len(line[col]) for line in grid) for col in range(len(_HEADERS))]
    lines = []
    for line_number, line in enumerate(grid):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if line_number == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
