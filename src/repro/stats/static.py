"""Static automaton statistics (the structural columns of Table I).

The traversals live in :mod:`repro.analysis.structure`, shared with the
static analyzer's passes — one graph census, two clients, so Table I
numbers and lint findings can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.structure import structural_summary
from repro.core.automaton import Automaton

__all__ = ["StaticStats", "compute_static_stats"]


@dataclass(frozen=True)
class StaticStats:
    """Structural summary of a benchmark automaton.

    Matches Table I's columns: states, edges, edges per node, subgraph
    (weakly-connected-component) count, and the mean/stddev of component
    sizes.
    """

    states: int
    edges: int
    subgraph_count: int
    avg_component_size: float
    std_component_size: float
    start_states: int
    reporting_states: int

    @property
    def edges_per_node(self) -> float:
        if self.states == 0:
            return 0.0
        return self.edges / self.states


def compute_static_stats(automaton: Automaton) -> StaticStats:
    """Compute Table-I-style structural statistics for ``automaton``."""
    summary = structural_summary(automaton)
    return StaticStats(
        states=summary.states,
        edges=summary.edges,
        subgraph_count=summary.component_count,
        avg_component_size=summary.avg_component_size,
        std_component_size=summary.std_component_size,
        start_states=summary.start_states,
        reporting_states=summary.reporting_states,
    )
