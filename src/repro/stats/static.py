"""Static automaton statistics (the structural columns of Table I)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.automaton import Automaton

__all__ = ["StaticStats", "compute_static_stats"]


@dataclass(frozen=True)
class StaticStats:
    """Structural summary of a benchmark automaton.

    Matches Table I's columns: states, edges, edges per node, subgraph
    (weakly-connected-component) count, and the mean/stddev of component
    sizes.
    """

    states: int
    edges: int
    subgraph_count: int
    avg_component_size: float
    std_component_size: float
    start_states: int
    reporting_states: int

    @property
    def edges_per_node(self) -> float:
        if self.states == 0:
            return 0.0
        return self.edges / self.states


def compute_static_stats(automaton: Automaton) -> StaticStats:
    """Compute Table-I-style structural statistics for ``automaton``."""
    sizes = [len(c) for c in automaton.connected_components()]
    count = len(sizes)
    mean = sum(sizes) / count if count else 0.0
    variance = sum((s - mean) ** 2 for s in sizes) / count if count else 0.0
    return StaticStats(
        states=automaton.n_states,
        edges=automaton.n_edges,
        subgraph_count=count,
        avg_component_size=mean,
        std_component_size=math.sqrt(variance),
        start_states=len(automaton.start_elements()),
        reporting_states=len(automaton.reporting_elements()),
    )
