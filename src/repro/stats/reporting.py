"""Output-reporting bottleneck analysis.

Section V motivates its rule filtering with the observation that high
report rates "are known to cause output reporting bottlenecks in Micron's
D480" (Wadden et al., HPCA'18): the AP drains reports through a fixed-size
per-window output buffer, and windows whose report volume exceeds the
drain budget stall the chip.  This module computes that pressure for any
run: per-window report counts, the fraction of windows that would
overflow, and the modelled stall overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.base import RunResult

__all__ = ["ReportPressure", "analyze_report_pressure"]


@dataclass(frozen=True)
class ReportPressure:
    """Reporting-bottleneck summary for one run."""

    window_size: int
    budget_per_window: int
    n_windows: int
    total_reports: int
    max_window_reports: int
    overflowing_windows: int
    stall_windows: int

    @property
    def overflow_fraction(self) -> float:
        """Fraction of windows whose reports exceed the drain budget."""
        if self.n_windows == 0:
            return 0.0
        return self.overflowing_windows / self.n_windows

    @property
    def stall_overhead(self) -> float:
        """Extra windows spent draining, relative to compute windows.

        A window with ``r`` reports needs ``ceil(r / budget)`` windows of
        drain time; overhead is the total extra windows divided by
        ``n_windows`` (0.0 = no bottleneck; 1.0 = run takes twice as long).
        """
        if self.n_windows == 0:
            return 0.0
        return self.stall_windows / self.n_windows

    @property
    def mean_reports_per_window(self) -> float:
        if self.n_windows == 0:
            return 0.0
        return self.total_reports / self.n_windows


def analyze_report_pressure(
    result: RunResult,
    *,
    window_size: int = 256,
    budget_per_window: int = 32,
) -> ReportPressure:
    """Compute reporting pressure from a run's report stream.

    Defaults model a D480-like output region: a report vector drained every
    256 symbols with capacity for 32 report events per drain.
    """
    if window_size < 1 or budget_per_window < 1:
        raise ValueError("window size and budget must be positive")
    n_windows = (result.cycles + window_size - 1) // window_size
    counts = [0] * max(n_windows, 1)
    for event in result.reports:
        counts[event.offset // window_size] += 1
    overflowing = sum(1 for c in counts if c > budget_per_window)
    stall = sum(
        (c + budget_per_window - 1) // budget_per_window - 1
        for c in counts
        if c > 0
    )
    return ReportPressure(
        window_size=window_size,
        budget_per_window=budget_per_window,
        n_windows=n_windows,
        total_reports=result.report_count,
        max_window_reports=max(counts) if counts else 0,
        overflowing_windows=overflowing,
        stall_windows=stall,
    )
