"""Command-line interface: build, run, inspect and export benchmarks.

Usage (also via ``python -m repro``)::

    repro list
    repro build "Hamming 18x3" --scale 0.01 --output hamming.mnrl
    repro run "Snort" --scale 0.01 --limit 5000 --engine bitset
    repro stats hamming.mnrl
    repro table1 --scale 0.005
    repro lint --scale 0.01 --fail-on warning
    repro grep 'virus[0-9]+' /path/to/file
    repro conformance --seeds 500
    repro profile --names Snort ClamAV --engine bitset --engine vector

The CLI mirrors what the VASim binary offers the original suite's users:
generate, simulate, and report statistics, plus MNRL/ANML export so
automata can move to other tools.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.engines import ENGINE_REGISTRY, auto_engine, compiled_engine
from repro.errors import (
    CapacityError,
    CheckpointMismatch,
    EngineError,
    EngineFailure,
    InputError,
    LintError,
    MemoryBudgetExceeded,
    ReproError,
    ScanTimeout,
    TransformPreconditionError,
    WorkerCrash,
)
from repro.io import from_anml, from_mnrl, mnrl_dumps, to_anml
from repro.regex import compile_regex
from repro.stats import compute_static_stats, format_table, summarize_benchmark
from repro.transforms import merge_common_prefixes

__all__ = ["EXIT_CODES", "exit_code_for", "main"]

#: Typed-failure exit codes (docs/RESILIENCE.md).  Most specific first:
#: :func:`exit_code_for` walks this in order, so subclasses must precede
#: their bases.  Any other :class:`~repro.errors.ReproError` exits 2.
EXIT_CODES: tuple[tuple[type[ReproError], int], ...] = (
    (LintError, 3),
    (TransformPreconditionError, 4),
    (InputError, 5),
    (ScanTimeout, 6),
    (MemoryBudgetExceeded, 7),
    (WorkerCrash, 8),
    (EngineFailure, 9),
    (CapacityError, 10),
    (EngineError, 11),
    (CheckpointMismatch, 12),
)


def exit_code_for(exc: ReproError) -> int:
    """The CLI exit code for a typed failure (generic ReproError -> 2)."""
    for exc_type, code in EXIT_CODES:
        if isinstance(exc, exc_type):
            return code
    return 2


def _default_checkpoint(out: str | None) -> str | None:
    """Derive the journal path from ``--out``: PROFILE.json -> PROFILE.ckpt.json."""
    if not out:
        return None
    return str(pathlib.Path(out).with_suffix(".ckpt.json"))


def _load_automaton(path: pathlib.Path):
    text = path.read_text()
    if path.suffix == ".anml" or text.lstrip().startswith("<"):
        return from_anml(text)
    import json

    return from_mnrl(json.loads(text))


def _cmd_list(_args) -> int:
    for name in BENCHMARK_NAMES:
        print(name)
    return 0


def _cmd_build(args) -> int:
    bench = build_benchmark(args.name, scale=args.scale, seed=args.seed)
    print(f"built {bench}", file=sys.stderr)
    if args.output:
        out = pathlib.Path(args.output)
        if out.suffix == ".anml":
            out.write_text(to_anml(bench.automaton))
        else:
            out.write_text(mnrl_dumps(bench.automaton))
        print(f"wrote {out}", file=sys.stderr)
    if args.input_output:
        pathlib.Path(args.input_output).write_bytes(bench.input_data)
        print(f"wrote {args.input_output}", file=sys.stderr)
    return 0


def _cmd_run(args) -> int:
    bench = build_benchmark(args.name, scale=args.scale, seed=args.seed)
    data = bench.input_data[: args.limit] if args.limit else bench.input_data
    engine = compiled_engine(bench.automaton, ENGINE_REGISTRY[args.engine])
    result = engine.run(data, record_active=True)
    print(f"benchmark:      {bench.name}")
    print(f"states:         {bench.states:,}")
    print(f"symbols:        {result.cycles:,}")
    print(f"reports:        {result.report_count:,}")
    print(f"mean active:    {result.mean_active_set:.2f}")
    if args.show_reports:
        for event in result.reports[: args.show_reports]:
            print(f"  offset={event.offset} code={event.code!r}")
    return 0


def _cmd_stats(args) -> int:
    automaton = _load_automaton(pathlib.Path(args.file))
    stats = compute_static_stats(automaton)
    merged, merge_stats = merge_common_prefixes(automaton)
    print(f"states:          {stats.states:,}")
    print(f"edges:           {stats.edges:,}")
    print(f"edges/node:      {stats.edges_per_node:.2f}")
    print(f"subgraphs:       {stats.subgraph_count:,}")
    print(f"avg size:        {stats.avg_component_size:.2f}")
    print(f"std dev:         {stats.std_component_size:.2f}")
    print(f"start states:    {stats.start_states:,}")
    print(f"report states:   {stats.reporting_states:,}")
    print(f"compressed:      {merge_stats.states_after:,} "
          f"({100 * merge_stats.compression_factor:.1f}% removed)")
    return 0


def _cmd_table1(args) -> int:
    import dataclasses

    from repro.resilience import faults
    from repro.resilience.checkpoint import SweepCheckpoint
    from repro.stats.dynamic import DynamicStats
    from repro.stats.static import StaticStats
    from repro.stats.table import BenchmarkRow

    names = args.names if args.names else BENCHMARK_NAMES
    ckpt = None
    if args.checkpoint:
        meta = {
            "names": list(names),
            "scale": args.scale,
            "seed": args.seed,
            "limit": args.limit,
        }
        ckpt = SweepCheckpoint.open(args.checkpoint, meta, resume=args.resume)
    rows = []
    for name in names:
        cell_key = f"{name}::row"
        if ckpt is not None and ckpt.has(cell_key):
            cell = ckpt.get(cell_key)
            rows.append(
                BenchmarkRow(
                    name=cell["name"],
                    domain=cell["domain"],
                    input_desc=cell["input_desc"],
                    static=StaticStats(**cell["static"]),
                    compressed_states=cell["compressed_states"],
                    dynamic=(
                        DynamicStats(**cell["dynamic"]) if cell["dynamic"] else None
                    ),
                )
            )
            continue
        bench = build_benchmark(name, scale=args.scale, seed=args.seed)
        row = summarize_benchmark(
            bench.name,
            bench.domain,
            bench.input_desc,
            bench.automaton,
            bench.input_data[: args.limit],
            compress=bench.compressible,
        )
        rows.append(row)
        if ckpt is not None:
            ckpt.record(cell_key, dataclasses.asdict(row))
            faults.maybe_halt_after_cells(len(ckpt.cells))
    print(format_table(rows))
    if ckpt is not None:
        ckpt.done()
    return 0


def _cmd_verify(args) -> int:
    from repro.benchmarks.verify import verify_benchmark

    names = args.names if args.names else BENCHMARK_NAMES
    failures = 0
    for name in names:
        bench = build_benchmark(name, scale=args.scale, seed=args.seed)
        problems = verify_benchmark(bench)
        status = "ok" if not problems else "FAIL"
        print(f"{name:25s} {status}")
        for problem in problems:
            print(f"    {problem}")
        failures += bool(problems)
    return 1 if failures else 0


def _cmd_export_suite(args) -> int:
    from repro.distribution import export_suite

    manifest = export_suite(
        args.directory, scale=args.scale, seed=args.seed, names=args.names
    )
    print(f"wrote {manifest}", file=sys.stderr)
    return 0


def _cmd_conformance(args) -> int:
    import json

    from repro.conformance import (
        check_goldens,
        compute_goldens,
        run_campaign,
        save_goldens,
        summary_dict,
    )
    from repro.conformance.generator import CaseConfig

    if args.update_goldens:
        print("recomputing golden digests for all benchmarks...", file=sys.stderr)
        target = save_goldens(
            compute_goldens(progress=lambda name: print(f"  {name}", file=sys.stderr)),
            args.goldens_path,
        )
        print(f"wrote {target}", file=sys.stderr)
        return 0

    config = CaseConfig(max_states=args.max_states, max_input_len=args.max_input_len)
    checkpoint = (
        args.checkpoint
        if args.checkpoint is not None
        else _default_checkpoint(args.out)
    )
    report = run_campaign(
        args.seeds,
        start_seed=args.start_seed,
        config=config,
        repro_dir=args.repro_dir,
        progress=(
            (lambda done, n: print(f"  seed {done}/{args.seeds}", file=sys.stderr))
            if args.verbose
            else None
        ),
        max_seconds=args.max_seconds,
        checkpoint=checkpoint or None,
        resume=args.resume,
    )
    for record in report.records:
        print(
            f"DIVERGENCE seed={record.seed} {record.divergence.subject} "
            f"[{record.divergence.field}] shrunk to "
            f"{record.shrunk_states} states / {record.shrunk_input_len} bytes"
            + (f" -> {record.repro_path}" if record.repro_path else "")
        )

    golden_problems: list[str] = []
    if not args.skip_goldens:
        print("checking golden digests...", file=sys.stderr)
        golden_problems = check_goldens(path=args.goldens_path)
        for problem in golden_problems:
            print(f"GOLDEN DRIFT {problem}")

    summary = summary_dict(report, goldens_problems=golden_problems)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    status = "clean" if summary["clean"] else "DIVERGED"
    truncated = " (TRUNCATED by --max-seconds)" if report.truncated else ""
    print(
        f"conformance: {report.completed_seeds}/{report.seeds} seeds, "
        f"{len(report.records)} divergences, "
        f"{len(golden_problems)} golden problems, "
        f"{report.elapsed_s:.1f}s -> {status}{truncated}"
    )
    return 0 if summary["clean"] else 1


def _cmd_lint(args) -> int:
    import json

    from repro.analysis import Severity, analyze, lint_benchmark

    threshold = Severity.parse(args.fail_on)
    reports = []
    if args.file:
        automaton = _load_automaton(pathlib.Path(args.file))
        reports.append(analyze(automaton))
    else:
        names = args.names if args.names else BENCHMARK_NAMES
        for name in names:
            # lint=False: the gate would raise before we could report.
            bench = build_benchmark(name, scale=args.scale, seed=args.seed, lint=False)
            reports.append(
                lint_benchmark(name, bench.automaton, use_suppressions=not args.no_suppressions)
            )

    failures = 0
    for report in reports:
        findings = report.at_least(threshold)
        status = "FAIL" if findings else "ok"
        failures += bool(findings)
        if args.json:
            continue
        shown = [d for d in report.diagnostics if d.severity >= Severity.WARNING]
        print(f"{report.automaton_name:25s} {status}  "
              f"({len(report.errors)} errors, {len(report.warnings)} warnings, "
              f"{len(report.suppressed)} suppressed)")
        for diagnostic in shown:
            print(f"    {diagnostic}")

    payload = {
        "fail_on": threshold.name.lower(),
        "clean": failures == 0,
        "reports": [report.to_dict() for report in reports],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_profile(args) -> int:
    from repro.telemetry.profile import (
        DEFAULT_BENCHMARKS,
        DEFAULT_ENGINES,
        SMOKE_BENCHMARKS,
        SMOKE_ENGINES,
        SMOKE_LIMIT,
        SMOKE_SCALE,
        run_profile,
        write_profile,
    )

    if args.smoke:
        names = args.names if args.names else SMOKE_BENCHMARKS
        engines = args.engine if args.engine else list(SMOKE_ENGINES)
        scale, limit = SMOKE_SCALE, SMOKE_LIMIT
    else:
        names = args.names if args.names else DEFAULT_BENCHMARKS
        engines = args.engine if args.engine else list(DEFAULT_ENGINES)
        scale, limit = args.scale, args.limit
    budget = None
    if args.scan_seconds is not None or args.memo_budget is not None:
        from repro.resilience.guards import ScanBudget

        budget = ScanBudget(wall_s=args.scan_seconds, memo_bytes=args.memo_budget)
    checkpoint = (
        args.checkpoint
        if args.checkpoint is not None
        else _default_checkpoint(args.out)
    )
    payload = run_profile(
        names=names,
        engines=engines,
        scale=scale,
        seed=args.seed,
        limit=limit or None,
        smoke=args.smoke,
        budget=budget,
        checkpoint=checkpoint or None,
        resume=args.resume,
    )
    if payload["resilience"]["resumed_cells"]:
        print(
            f"resumed {payload['resilience']['resumed_cells']} cells from checkpoint",
            file=sys.stderr,
        )
    for name, bench_row in payload["benchmarks"].items():
        print(
            f"{name}: {bench_row['states']:,} states, "
            f"build {bench_row['build_s']:.3f}s, lint {bench_row['lint_s']:.3f}s"
        )
        for engine_name, row in bench_row["engines"].items():
            if "skipped" in row:
                print(f"  {engine_name:10s} skipped: {row['skipped']}")
            else:
                degraded = (
                    f"  [degraded -> {row['engine_used']}]"
                    if "engine_used" in row and row["engine_used"] != engine_name
                    else ""
                )
                print(
                    f"  {engine_name:10s} compile {row['compile_s']:.3f}s  "
                    f"scan {row['scan_s']:.3f}s  {row['ksym_per_s'] or 0:.1f} ksym/s  "
                    f"{row['reports']} reports  "
                    f"mean active {row['mean_active_set']:.2f}{degraded}"
                )
    cache = payload["cache"]
    print(f"cache: {cache['hits']} hits, {cache['misses']} misses")
    if args.out:
        out = write_profile(payload, args.out)
        print(f"wrote {out}", file=sys.stderr)
    return 0


def _cmd_grep(args) -> int:
    automaton = compile_regex(args.pattern, args.flags)
    data = pathlib.Path(args.file).read_bytes()
    result = auto_engine(automaton).run(data)
    for event in result.reports:
        start = max(0, event.offset - args.context)
        end = min(len(data), event.offset + args.context + 1)
        snippet = data[start:end]
        print(f"{event.offset}: {snippet!r}")
    return 0 if result.reports else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AutomataZoo benchmark suite tools"
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="re-raise typed failures with a full traceback "
        "(default: one-line message + typed exit code)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmark names").set_defaults(func=_cmd_list)

    p = sub.add_parser("build", help="generate a benchmark; optionally export")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="write automaton (.mnrl json or .anml xml)")
    p.add_argument("--input-output", help="write the standard input stimulus")
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("run", help="simulate a benchmark on its standard input")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=10_000, help="max input symbols")
    p.add_argument("--engine", choices=sorted(ENGINE_REGISTRY), default="bitset")
    p.add_argument("--show-reports", type=int, default=0, metavar="N")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("stats", help="statistics of a saved automaton")
    p.add_argument("file")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("table1", help="print Table-I-style suite statistics")
    p.add_argument("--scale", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=10_000)
    p.add_argument("--names", nargs="*", help="subset of benchmarks")
    p.add_argument(
        "--checkpoint", help="journal per-benchmark rows here (resumable sweep)"
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="reuse rows already in --checkpoint; compute only missing ones",
    )
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("verify", help="self-check generated benchmarks")
    p.add_argument("--scale", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--names", nargs="*", help="subset of benchmarks")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "export-suite", help="write the benchmark suite to a directory"
    )
    p.add_argument("directory")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--names", nargs="*", help="subset of benchmarks")
    p.set_defaults(func=_cmd_export_suite)

    p = sub.add_parser(
        "conformance",
        help="differential fuzz of engines/transforms + golden-digest check",
    )
    p.add_argument("--seeds", type=int, default=200, help="fuzz cases to run")
    p.add_argument("--start-seed", type=int, default=0)
    p.add_argument("--max-states", type=int, default=10, help="states per fuzz case")
    p.add_argument("--max-input-len", type=int, default=48)
    p.add_argument(
        "--repro-dir", help="serialize shrunk repros of any divergence here"
    )
    p.add_argument(
        "--out",
        default="bench_results/CONFORMANCE.json",
        help="summary JSON path ('' to skip)",
    )
    p.add_argument(
        "--skip-goldens", action="store_true", help="skip the golden-digest check"
    )
    p.add_argument(
        "--update-goldens",
        action="store_true",
        help="recompute and rewrite the golden digests, then exit",
    )
    p.add_argument(
        "--goldens-path", help="override the golden registry file (testing)"
    )
    p.add_argument(
        "--max-seconds",
        type=float,
        help="wall-clock budget; remaining seeds are skipped and the "
        "summary is marked truncated (still valid JSON)",
    )
    p.add_argument(
        "--checkpoint",
        help="per-seed journal path (default: derived from --out; '' disables)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip seeds already journaled in --checkpoint",
    )
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_conformance)

    p = sub.add_parser(
        "lint", help="static-analyze benchmark automata (or a saved file)"
    )
    p.add_argument("--names", nargs="*", help="subset of benchmarks")
    p.add_argument("--file", help="lint a saved .mnrl/.anml automaton instead")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--fail-on",
        choices=["warning", "error"],
        default="error",
        help="minimum severity that makes the exit status non-zero",
    )
    p.add_argument(
        "--no-suppressions",
        action="store_true",
        help="ignore the per-benchmark suppression table",
    )
    p.add_argument("--json", action="store_true", help="print the JSON report")
    p.add_argument(
        "--out",
        default="bench_results/LINT.json",
        help="report JSON path ('' to skip)",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "profile",
        help="instrumented benchmark/engine sweep -> bench_results/PROFILE.json",
    )
    p.add_argument("--names", nargs="*", help="benchmarks (default: Snort, ClamAV, Random Forest A)")
    p.add_argument(
        "--engine",
        action="append",
        choices=sorted(ENGINE_REGISTRY),
        help="engine to profile; repeatable (default: all registered engines)",
    )
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=10_000, help="max input symbols (0 = all)")
    p.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fast sweep (fixed small scale/limit, CPU engines only)",
    )
    p.add_argument(
        "--out",
        default="bench_results/PROFILE.json",
        help="profile JSON path ('' to skip)",
    )
    p.add_argument(
        "--scan-seconds",
        type=float,
        help="per-cell wall-clock budget; a cell that trips it degrades "
        "down the engine fallback ladder instead of failing the sweep",
    )
    p.add_argument(
        "--memo-budget",
        type=int,
        help="lazy-DFA memo byte budget per cell (same ladder degradation)",
    )
    p.add_argument(
        "--checkpoint",
        help="per-cell journal path (default: derived from --out; '' disables)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already journaled in --checkpoint",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("grep", help="scan a file with a compiled regex")
    p.add_argument("pattern")
    p.add_argument("file")
    p.add_argument("--flags", default="")
    p.add_argument("--context", type=int, default=10)
    p.set_defaults(func=_cmd_grep)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        if args.debug:
            raise
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
