"""Recursive-descent parser for the supported PCRE subset.

Supported: literals, escapes, ``.``, ``[...]`` classes (ranges, negation,
POSIX names), groups ``(...)``/``(?:...)``, alternation, quantifiers
``* + ? {n} {n,} {n,m}`` (lazy/possessive markers accepted and ignored —
they do not change the matched language), a leading ``^`` anchor and leading
inline flags ``(?i)``/``(?s)``.

Rejected with :class:`RegexUnsupportedError` (mirroring pcre2mnrl, which
only admits what Hyperscan can compile): back-references, look-around,
mid-pattern ``^``, ``$``, and word-boundary assertions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.charset import ALL_BYTES, CharSet
from repro.errors import RegexError, RegexUnsupportedError
from repro.regex.ast_nodes import Alt, Concat, Empty, Literal, Node, Repeat
from repro.regex.charclass import (
    DOT_NO_NEWLINE,
    casefold_charset,
    parse_class,
    parse_escape,
)

__all__ = ["Flags", "ParsedRegex", "parse_regex", "parse_pcre"]

_METACHARS = set("|)*+?")


@dataclass(frozen=True)
class Flags:
    """Regex compile flags (subset of PCRE's)."""

    caseless: bool = False  # i
    dotall: bool = False  # s
    multiline: bool = False  # m (accepted; only affects ^/$ which we reject)

    @classmethod
    def from_string(cls, letters: str) -> "Flags":
        known = set("ism")
        bad = set(letters) - known - set("x")  # x accepted and ignored
        if bad:
            raise RegexUnsupportedError(f"unsupported regex flags: {''.join(sorted(bad))}")
        return cls(
            caseless="i" in letters,
            dotall="s" in letters,
            multiline="m" in letters,
        )


@dataclass(frozen=True)
class ParsedRegex:
    """Parse result: the AST plus whether the pattern is start-anchored."""

    ast: Node
    anchored: bool
    flags: Flags


class _Parser:
    def __init__(self, pattern: str, flags: Flags) -> None:
        self.pattern = pattern
        self.pos = 0
        self.flags = flags

    # -- helpers -----------------------------------------------------------

    def _peek(self) -> str | None:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def _literal(self, charset: CharSet) -> Literal:
        if self.flags.caseless:
            charset = casefold_charset(charset)
        return Literal(charset)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> ParsedRegex:
        self._consume_leading_flags()
        anchored = False
        if self._peek() == "^":
            anchored = True
            self.pos += 1
        ast = self._alternation()
        if self.pos < len(self.pattern):
            raise RegexError(
                f"unexpected {self.pattern[self.pos]!r} at position {self.pos}"
            )
        return ParsedRegex(ast=ast, anchored=anchored, flags=self.flags)

    def _consume_leading_flags(self) -> None:
        while self.pattern.startswith("(?", self.pos):
            end = self.pattern.find(")", self.pos)
            body = self.pattern[self.pos + 2 : end] if end > 0 else ""
            if end < 0 or not body or any(c not in "ismx" for c in body):
                return  # not an inline-flags group; leave for _atom
            self.flags = Flags(
                caseless=self.flags.caseless or "i" in body,
                dotall=self.flags.dotall or "s" in body,
                multiline=self.flags.multiline or "m" in body,
            )
            self.pos = end + 1

    def _alternation(self) -> Node:
        options = [self._concat()]
        while self._peek() == "|":
            self.pos += 1
            options.append(self._concat())
        if len(options) == 1:
            return options[0]
        return Alt(tuple(options))

    def _concat(self) -> Node:
        parts: list[Node] = []
        while True:
            ch = self._peek()
            if ch is None or ch in "|)":
                break
            parts.append(self._repeat())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _repeat(self) -> Node:
        atom = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                atom = Repeat(atom, 0, None)
                self.pos += 1
            elif ch == "+":
                atom = Repeat(atom, 1, None)
                self.pos += 1
            elif ch == "?":
                atom = Repeat(atom, 0, 1)
                self.pos += 1
            elif ch == "{":
                bounds = self._counted_bounds()
                if bounds is None:
                    break  # literal '{'
                atom = Repeat(atom, bounds[0], bounds[1])
            else:
                break
            # Lazy (?) / possessive (+) markers: same language, skip.
            if self._peek() in ("?", "+") and isinstance(atom, Repeat):
                nxt = self._peek()
                # only swallow '?' (lazy); a '+' here is possessive only
                # right after a quantifier, which we also swallow.
                self.pos += 1 if nxt == "?" else 0
                if nxt == "+":
                    self.pos += 1
        return atom

    def _counted_bounds(self) -> tuple[int, int | None] | None:
        end = self.pattern.find("}", self.pos)
        if end < 0:
            return None
        body = self.pattern[self.pos + 1 : end]
        if not body or any(c not in "0123456789," for c in body) or body.count(",") > 1:
            return None  # PCRE treats a malformed {..} as a literal brace
        self.pos = end + 1
        if "," not in body:
            n = int(body)
            return (n, n)
        lo_s, hi_s = body.split(",")
        lo = int(lo_s) if lo_s else 0
        hi = int(hi_s) if hi_s else None
        if hi is not None and hi < lo:
            raise RegexError(f"inverted repetition bounds {{{body}}}")
        return (lo, hi)

    def _atom(self) -> Node:
        ch = self._peek()
        if ch is None:
            raise RegexError("expected an atom, found end of pattern")
        if ch == "(":
            return self._group()
        if ch == "[":
            self.pos += 1
            charset, self.pos = parse_class(self.pattern, self.pos)
            return self._literal(charset)
        if ch == ".":
            self.pos += 1
            return Literal(ALL_BYTES if self.flags.dotall else DOT_NO_NEWLINE)
        if ch == "\\":
            charset, self.pos, _ = parse_escape(self.pattern, self.pos + 1)
            return self._literal(charset)
        if ch == "^":
            raise RegexUnsupportedError("mid-pattern ^ anchor is not supported")
        if ch == "$":
            raise RegexUnsupportedError("$ anchor is not supported (streaming automata)")
        if ch in _METACHARS:
            raise RegexError(f"unexpected metacharacter {ch!r} at position {self.pos}")
        self.pos += 1
        if ord(ch) > 255:
            raise RegexUnsupportedError("non-byte literal; patterns are byte-oriented")
        return self._literal(CharSet.from_chars(ch))

    def _group(self) -> Node:
        assert self._peek() == "("
        self.pos += 1
        if self._peek() == "?":
            self.pos += 1
            nxt = self._peek()
            if nxt == ":":
                self.pos += 1
            elif nxt in ("=", "!", "<"):
                raise RegexUnsupportedError("look-around groups are not supported")
            elif nxt == "P" or nxt == "'":
                raise RegexUnsupportedError("named groups are not supported")
            else:
                raise RegexUnsupportedError(f"unsupported group modifier (?{nxt}")
        body = self._alternation()
        if self._peek() != ")":
            raise RegexError("unterminated group")
        self.pos += 1
        return body


def _expand_quoting(pattern: str) -> str:
    """Rewrite ``\\Q...\\E`` spans as individually-escaped literals.

    PCRE's quoting operator; expanding it up front keeps the grammar
    simple while preserving the semantics (a quantifier after ``\\E``
    applies to the last quoted character, which escaping preserves).
    """
    out = []
    i = 0
    while i < len(pattern):
        if pattern.startswith("\\Q", i):
            end = pattern.find("\\E", i + 2)
            body = pattern[i + 2 :] if end < 0 else pattern[i + 2 : end]
            for ch in body:
                if ch.isalnum() or ord(ch) > 255:
                    out.append(ch)  # non-byte chars rejected downstream
                else:
                    out.append(f"\\x{ord(ch):02x}")
            i = len(pattern) if end < 0 else end + 2
        else:
            if pattern[i] == "\\" and i + 1 < len(pattern):
                out.append(pattern[i : i + 2])
                i += 2
            else:
                out.append(pattern[i])
                i += 1
    return "".join(out)


def parse_regex(pattern: str, flags: Flags | str = Flags()) -> ParsedRegex:
    """Parse ``pattern`` under ``flags`` (a :class:`Flags` or letter string)."""
    if isinstance(flags, str):
        flags = Flags.from_string(flags)
    if "\\Q" in pattern:
        pattern = _expand_quoting(pattern)
    return _Parser(pattern, flags).parse()


def parse_pcre(delimited: str) -> ParsedRegex:
    """Parse a Snort/ClamAV-style delimited pattern like ``/abc/i``."""
    if len(delimited) < 2 or delimited[0] != "/":
        raise RegexError(f"not a /pattern/flags form: {delimited!r}")
    end = delimited.rfind("/")
    if end == 0:
        raise RegexError(f"unterminated /pattern/: {delimited!r}")
    return parse_regex(delimited[1:end], Flags.from_string(delimited[end + 1 :]))
