"""Glushkov compilation: regex AST → homogeneous automaton.

The Glushkov (position) construction is the natural compiler for ANML-style
automata: every *position* (literal occurrence) becomes exactly one STE
carrying that position's character set, and the follow relation becomes the
activation edges.  This mirrors what pcre2mnrl emits for the AutomataZoo
benchmarks: one homogeneous NFA per rule, reporting on the rule's id.

Unanchored patterns (no leading ``^``) compile to search semantics: the
first-set STEs are ``ALL_INPUT`` starts, so the automaton reports the end
offset of every match at every stream position — exactly the behaviour the
paper's active-set and report-rate measurements assume.

Patterns that can match the empty string compile fine; the (meaningless in
a streaming context) empty match itself is not reported.
"""

from __future__ import annotations

import itertools

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import StartMode
from repro.errors import RegexError
from repro.regex.ast_nodes import Alt, Concat, Empty, Literal, Node, Repeat, normalize
from repro.regex.parser import Flags, ParsedRegex, parse_pcre, parse_regex

__all__ = ["compile_regex", "compile_parsed", "compile_ruleset", "compile_pcre"]


class _Glushkov:
    """Single-pass computation of nullable/first/last/follow."""

    def __init__(self) -> None:
        self.charsets: list[CharSet] = []
        self.follow: set[tuple[int, int]] = set()

    def visit(self, node: Node) -> tuple[bool, frozenset[int], frozenset[int]]:
        """Return (nullable, first, last) for ``node``, minting positions."""
        if isinstance(node, Empty):
            return True, frozenset(), frozenset()
        if isinstance(node, Literal):
            index = len(self.charsets)
            self.charsets.append(node.charset)
            only = frozenset([index])
            return False, only, only
        if isinstance(node, Alt):
            nullable = False
            first: frozenset[int] = frozenset()
            last: frozenset[int] = frozenset()
            for option in node.options:
                n, f, l = self.visit(option)
                nullable |= n
                first |= f
                last |= l
            return nullable, first, last
        if isinstance(node, Concat):
            nullable = True
            first: frozenset[int] = frozenset()
            last: frozenset[int] = frozenset()
            for part in node.parts:
                n, f, l = self.visit(part)
                self.follow.update(itertools.product(last, f))
                if nullable:
                    first |= f
                if n:
                    last |= l
                else:
                    last = l
                nullable &= n
            return nullable, first, last
        if isinstance(node, Repeat):
            if not (node.min == 0 and node.max is None):
                raise RegexError("non-star Repeat survived normalization")
            _, f, l = self.visit(node.child)
            self.follow.update(itertools.product(l, f))
            return True, f, l
        raise RegexError(f"unknown AST node: {node!r}")


def compile_parsed(
    parsed: ParsedRegex,
    *,
    name: str = "regex",
    report_code: object = None,
    anchored: bool | None = None,
) -> Automaton:
    """Compile a parsed regex into a homogeneous automaton.

    ``anchored`` overrides the pattern's own ``^``: benchmarks sometimes
    force anchoring (e.g. per-record streams) regardless of rule syntax.
    """
    if anchored is None:
        anchored = parsed.anchored
    glushkov = _Glushkov()
    _, first, last = glushkov.visit(normalize(parsed.ast))
    if not glushkov.charsets:
        raise RegexError("pattern has no positions (matches only the empty string)")

    automaton = Automaton(name)
    start_mode = StartMode.START_OF_DATA if anchored else StartMode.ALL_INPUT
    for index, charset in enumerate(glushkov.charsets):
        automaton.add_ste(
            f"p{index}",
            charset,
            start=start_mode if index in first else StartMode.NONE,
            report=index in last,
            report_code=report_code,
        )
    for src, dst in sorted(glushkov.follow):
        automaton.add_edge(f"p{src}", f"p{dst}")
    return automaton


def compile_regex(
    pattern: str,
    flags: Flags | str = "",
    *,
    name: str | None = None,
    report_code: object = None,
    anchored: bool | None = None,
) -> Automaton:
    """Parse and compile a regex string.

    >>> a = compile_regex("ab+c", report_code="r1")
    >>> a.n_states
    3
    """
    parsed = parse_regex(pattern, flags if flags else Flags())
    if report_code is None:
        report_code = pattern
    return compile_parsed(
        parsed,
        name=name if name is not None else f"regex:{pattern}",
        report_code=report_code,
        anchored=anchored,
    )


def compile_pcre(
    delimited: str,
    *,
    name: str | None = None,
    report_code: object = None,
    anchored: bool | None = None,
) -> Automaton:
    """Compile a ``/pattern/flags`` form (Snort/ClamAV rule bodies)."""
    parsed = parse_pcre(delimited)
    if report_code is None:
        report_code = delimited
    return compile_parsed(
        parsed,
        name=name if name is not None else f"pcre:{delimited}",
        report_code=report_code,
        anchored=anchored,
    )


def compile_ruleset(
    patterns,
    *,
    name: str = "ruleset",
    skip_unsupported: bool = False,
) -> tuple[Automaton, list[tuple[object, str]]]:
    """Compile many ``(report_code, pattern)`` pairs into one automaton.

    This is the suite-builder entry point: AutomataZoo benchmarks are unions
    of per-rule automata.  With ``skip_unsupported`` (the paper's policy:
    "only considers patterns that are able to be compiled"), uncompilable
    patterns are collected and returned instead of raised.

    Returns ``(automaton, rejected)`` where ``rejected`` is a list of
    ``(report_code, reason)`` pairs.
    """
    union = Automaton(name)
    rejected: list[tuple[object, str]] = []
    for index, (code, pattern) in enumerate(patterns):
        try:
            if pattern.startswith("/"):
                sub = compile_pcre(pattern, report_code=code)
            else:
                sub = compile_regex(pattern, report_code=code)
        except RegexError as exc:
            if not skip_unsupported:
                raise
            rejected.append((code, str(exc)))
            continue
        union.merge(sub, prefix=f"r{index}.")
    return union, rejected
