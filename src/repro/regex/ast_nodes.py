"""Regex abstract syntax tree.

The parser produces a small node algebra; counted repetitions are expanded
by :func:`normalize` into the four-operator core (literal, concat, alt,
star) that the Glushkov construction consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.charset import CharSet
from repro.errors import RegexError

__all__ = [
    "Node",
    "Literal",
    "Concat",
    "Alt",
    "Repeat",
    "Empty",
    "normalize",
    "REPEAT_EXPANSION_LIMIT",
]

#: Safety cap on how many positions a single counted repetition may expand
#: to; mirrors real compilers rejecting pathological ``{1,100000}`` terms.
REPEAT_EXPANSION_LIMIT = 4096


class Node:
    """Base class for AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Node):
    """A single-symbol position matching a character set."""

    charset: CharSet

    def __post_init__(self) -> None:
        if self.charset.is_empty():
            raise RegexError("literal with empty character set can never match")


@dataclass(frozen=True)
class Concat(Node):
    """Sequential composition of parts."""

    parts: tuple[Node, ...]


@dataclass(frozen=True)
class Alt(Node):
    """Alternation between options."""

    options: tuple[Node, ...]


@dataclass(frozen=True)
class Repeat(Node):
    """``child{min,max}``; ``max=None`` means unbounded."""

    child: Node
    min: int
    max: int | None

    def __post_init__(self) -> None:
        if self.min < 0:
            raise RegexError("repetition lower bound must be >= 0")
        if self.max is not None and self.max < self.min:
            raise RegexError(f"repetition bounds inverted: {{{self.min},{self.max}}}")


@dataclass(frozen=True)
class Empty(Node):
    """The empty string."""


def count_positions(node: Node) -> int:
    """Number of Glushkov positions the node expands to."""
    if isinstance(node, Literal):
        return 1
    if isinstance(node, Empty):
        return 0
    if isinstance(node, Concat):
        return sum(count_positions(p) for p in node.parts)
    if isinstance(node, Alt):
        return sum(count_positions(p) for p in node.options)
    if isinstance(node, Repeat):
        inner = count_positions(node.child)
        copies = node.min if node.max is None else node.max
        return inner * max(copies, 1)
    raise RegexError(f"unknown AST node: {node!r}")


def normalize(node: Node) -> Node:
    """Rewrite counted repetitions into the star-only core algebra.

    ``e{m,n}`` becomes ``e``·…·``e`` (m copies) followed by ``(e|ε)`` n-m
    times; ``e{m,}`` becomes m copies with a trailing star.  The expansion
    is bounded by :data:`REPEAT_EXPANSION_LIMIT` positions.
    """
    if isinstance(node, (Literal, Empty)):
        return node
    if isinstance(node, Concat):
        return Concat(tuple(normalize(p) for p in node.parts))
    if isinstance(node, Alt):
        return Alt(tuple(normalize(p) for p in node.options))
    if isinstance(node, Repeat):
        child = normalize(node.child)
        if node.min == 0 and node.max is None:
            return Repeat(child, 0, None)  # canonical star
        if count_positions(node) > REPEAT_EXPANSION_LIMIT:
            raise RegexError(
                f"counted repetition expands to more than "
                f"{REPEAT_EXPANSION_LIMIT} positions"
            )
        parts: list[Node] = [child for _ in range(node.min)]
        if node.max is None:
            # e{m,}  ==  e^m e*
            parts.append(Repeat(child, 0, None))
        else:
            # e{m,n}  ==  e^m (e|ε)^(n-m)
            parts.extend(Alt((child, Empty())) for _ in range(node.max - node.min))
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))
    raise RegexError(f"unknown AST node: {node!r}")
