"""Character-class and escape parsing for the PCRE-subset compiler."""

from __future__ import annotations

from repro.core.charset import CharSet
from repro.errors import RegexError, RegexUnsupportedError

__all__ = [
    "CLASS_DIGIT",
    "CLASS_SPACE",
    "CLASS_WORD",
    "DOT_NO_NEWLINE",
    "casefold_charset",
    "parse_class",
    "parse_escape",
]

CLASS_DIGIT = CharSet.from_ranges([(0x30, 0x39)])
CLASS_SPACE = CharSet.from_chars(" \t\n\r\f\v")
CLASS_WORD = CharSet.from_ranges([(0x30, 0x39), (0x41, 0x5A), (0x61, 0x7A)]) | CharSet.from_chars("_")
#: ``.`` without the DOTALL flag: everything but newline.
DOT_NO_NEWLINE = ~CharSet.from_chars("\n")

_SIMPLE_ESCAPES = {
    "n": CharSet.from_chars("\n"),
    "r": CharSet.from_chars("\r"),
    "t": CharSet.from_chars("\t"),
    "f": CharSet.from_chars("\f"),
    "v": CharSet.from_chars("\v"),
    "a": CharSet.single(0x07),
    "e": CharSet.single(0x1B),
    "0": CharSet.single(0x00),
}

_CLASS_ESCAPES = {
    "d": CLASS_DIGIT,
    "D": ~CLASS_DIGIT,
    "s": CLASS_SPACE,
    "S": ~CLASS_SPACE,
    "w": CLASS_WORD,
    "W": ~CLASS_WORD,
}

_POSIX_CLASSES = {
    "alpha": CharSet.from_ranges([(0x41, 0x5A), (0x61, 0x7A)]),
    "digit": CLASS_DIGIT,
    "alnum": CharSet.from_ranges([(0x30, 0x39), (0x41, 0x5A), (0x61, 0x7A)]),
    "upper": CharSet.from_ranges([(0x41, 0x5A)]),
    "lower": CharSet.from_ranges([(0x61, 0x7A)]),
    "space": CLASS_SPACE,
    "xdigit": CharSet.from_ranges([(0x30, 0x39), (0x41, 0x46), (0x61, 0x66)]),
    "punct": CharSet.from_ranges([(0x21, 0x2F), (0x3A, 0x40), (0x5B, 0x60), (0x7B, 0x7E)]),
    "print": CharSet.from_ranges([(0x20, 0x7E)]),
    "graph": CharSet.from_ranges([(0x21, 0x7E)]),
    "cntrl": CharSet.from_ranges([(0x00, 0x1F)]) | CharSet.single(0x7F),
    "blank": CharSet.from_chars(" \t"),
}


def casefold_charset(charset: CharSet) -> CharSet:
    """Close a character set under ASCII case folding (the ``i`` flag)."""
    extra = CharSet.none()
    for sym in charset:
        if 0x41 <= sym <= 0x5A:
            extra |= CharSet.single(sym + 0x20)
        elif 0x61 <= sym <= 0x7A:
            extra |= CharSet.single(sym - 0x20)
    return charset | extra


def parse_escape(pattern: str, pos: int) -> tuple[CharSet, int, bool]:
    """Parse the escape starting at ``pattern[pos]`` (the char after ``\\``).

    Returns ``(charset, next_pos, is_class)``; ``is_class`` distinguishes
    multi-symbol class escapes (``\\d``) from single-character escapes,
    which matters for range parsing inside ``[...]``.
    """
    if pos >= len(pattern):
        raise RegexError("pattern ends with a bare backslash")
    ch = pattern[pos]
    if ch in _CLASS_ESCAPES:
        return _CLASS_ESCAPES[ch], pos + 1, True
    if ch in _SIMPLE_ESCAPES:
        return _SIMPLE_ESCAPES[ch], pos + 1, False
    if ch == "x":
        hex_digits = pattern[pos + 1 : pos + 3]
        if len(hex_digits) != 2 or any(c not in "0123456789abcdefABCDEF" for c in hex_digits):
            raise RegexError(f"bad \\x escape at position {pos}")
        return CharSet.single(int(hex_digits, 16)), pos + 3, False
    if ch.isdigit():
        raise RegexUnsupportedError(
            f"back-reference \\{ch} is outside the supported PCRE subset"
        )
    if ch in "bBAZzG":
        raise RegexUnsupportedError(f"zero-width assertion \\{ch} is not supported")
    if ch.isalpha():
        raise RegexUnsupportedError(f"unknown escape \\{ch}")
    # Escaped metacharacter or punctuation: literal.
    return CharSet.from_chars(ch), pos + 1, False


def parse_class(pattern: str, pos: int) -> tuple[CharSet, int]:
    """Parse a ``[...]`` class; ``pos`` points just after the ``[``.

    Returns ``(charset, next_pos)`` with ``next_pos`` after the closing
    ``]``.  Supports negation, ranges, escapes and POSIX ``[:name:]``.
    """
    negate = False
    if pos < len(pattern) and pattern[pos] == "^":
        negate = True
        pos += 1
    result = CharSet.none()
    first = True
    while True:
        if pos >= len(pattern):
            raise RegexError("unterminated character class")
        ch = pattern[pos]
        if ch == "]" and not first:
            pos += 1
            break
        first = False
        if pattern.startswith("[:", pos):
            end = pattern.find(":]", pos + 2)
            if end < 0:
                raise RegexError("unterminated POSIX class")
            name = pattern[pos + 2 : end]
            posix = _POSIX_CLASSES.get(name)
            if posix is None:
                raise RegexError(f"unknown POSIX class [:{name}:]")
            result |= posix
            pos = end + 2
            continue
        if ch == "\\":
            charset, pos, is_class = parse_escape(pattern, pos + 1)
            if is_class:
                result |= charset
                continue
            lo = next(iter(charset))
        else:
            lo = ord(ch)
            if lo > 255:
                raise RegexUnsupportedError("non-byte character in class")
            pos += 1
        # Possible range lo-hi.
        if pos + 1 < len(pattern) and pattern[pos] == "-" and pattern[pos + 1] != "]":
            pos += 1
            if pattern[pos] == "\\":
                hi_set, pos, is_class = parse_escape(pattern, pos + 1)
                if is_class:
                    raise RegexError("class escape cannot end a range")
                hi = next(iter(hi_set))
            else:
                hi = ord(pattern[pos])
                if hi > 255:
                    raise RegexUnsupportedError("non-byte character in class")
                pos += 1
            if hi < lo:
                raise RegexError(f"inverted class range {chr(lo)}-{chr(hi)}")
            result |= CharSet.from_ranges([(lo, hi)])
        else:
            result |= CharSet.single(lo)
    if negate:
        result = ~result
    if result.is_empty():
        raise RegexError("character class matches nothing")
    return result, pos
