"""PCRE-subset regular expression compiler (pcre2mnrl equivalent)."""

from repro.regex.ast_nodes import Alt, Concat, Empty, Literal, Node, Repeat, normalize
from repro.regex.compile import compile_parsed, compile_pcre, compile_regex, compile_ruleset
from repro.regex.parser import Flags, ParsedRegex, parse_pcre, parse_regex

__all__ = [
    "Alt",
    "Concat",
    "Empty",
    "Flags",
    "Literal",
    "Node",
    "ParsedRegex",
    "Repeat",
    "compile_parsed",
    "compile_pcre",
    "compile_regex",
    "compile_ruleset",
    "normalize",
    "parse_pcre",
    "parse_regex",
]
