"""Numpy active-set engine (the VASim-class workhorse).

The engine keeps the enabled set as a sorted integer array and advances it
with vectorised gathers, so the per-cycle cost is proportional to the active
set (like VASim's) rather than to total automaton size.  Character-set
membership is stored bit-packed: 32 bytes per state, so multi-million-state
benchmarks stay memory-friendly.

This is the engine used to compute Table I active-set statistics and to run
benchmark inputs at scale.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.core.automaton import Automaton
from repro.core.elements import CounterElement, STE, StartMode
from repro.engines.base import Engine, ReportEvent, RunResult
from repro.engines.reference import _CounterState
from repro.resilience.guards import GUARD_BLOCK, current_guard

__all__ = ["VectorEngine", "VectorStream"]

_CHUNK = 65536  # states per chunk when building the packed charset matrix


class VectorEngine(Engine):
    """Vectorised active-set simulation of a homogeneous automaton."""

    def __init__(self, automaton: Automaton) -> None:
        super().__init__(automaton)
        compile_t0 = telemetry.clock()
        stes: list[STE] = list(automaton.stes())
        self._idents = [ste.ident for ste in stes]
        self._index = {ste.ident: i for i, ste in enumerate(stes)}
        n = len(stes)
        self._n = n

        # Packed per-symbol membership: bit (i & 7) of _charbits[s, i >> 3]
        # is 1 iff state i matches symbol s.
        self._charbits = np.zeros((256, (n + 7) // 8), dtype=np.uint8)
        for base in range(0, n, _CHUNK):
            chunk = stes[base : base + _CHUNK]
            block = np.empty((len(chunk), 256), dtype=bool)
            for row, ste in enumerate(chunk):
                block[row] = ste.charset.to_bool_array()
            packed = np.packbits(block.T, axis=1, bitorder="little")
            self._charbits[:, base // 8 : base // 8 + packed.shape[1]] = packed

        # Flattened successor lists (STE -> STE edges only).
        succ_lists: list[list[int]] = [[] for _ in range(n)]
        self._counter_feeds: dict[int, list[str]] = {}
        for ste in stes:
            i = self._index[ste.ident]
            for succ in automaton.successors(ste.ident):
                element = automaton[succ]
                if isinstance(element, STE):
                    succ_lists[i].append(self._index[succ])
                else:
                    self._counter_feeds.setdefault(i, []).append(succ)
        lengths = np.fromiter((len(s) for s in succ_lists), dtype=np.int64, count=n)
        self._succ_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=self._succ_off[1:])
        self._succ_flat = np.fromiter(
            (d for s in succ_lists for d in s), dtype=np.int64, count=int(lengths.sum())
        )

        self._report_mask = np.fromiter((ste.report for ste in stes), dtype=bool, count=n)
        self._report_codes = [ste.report_code for ste in stes]
        self._reset_feeds: dict[int, list[str]] = {}
        for src, counter in automaton.reset_edges():
            if src in self._index:
                self._reset_feeds.setdefault(self._index[src], []).append(counter)
        self._feed_mask = np.zeros(n, dtype=bool)
        for i in self._counter_feeds:
            self._feed_mask[i] = True
        for i in self._reset_feeds:
            self._feed_mask[i] = True
        self._has_feeds = bool(self._feed_mask.any())

        self._all_input = np.fromiter(
            sorted(
                self._index[s.ident] for s in stes if s.start is StartMode.ALL_INPUT
            ),
            dtype=np.int64,
        )
        start_idx = sorted(
            self._index[s.ident]
            for s in stes
            if s.start in (StartMode.ALL_INPUT, StartMode.START_OF_DATA)
        )
        self._initial = np.asarray(start_idx, dtype=np.int64)

        # Counters (rare; handled per-event in Python).
        self._counters: dict[str, CounterElement] = {
            c.ident: c for c in automaton.counters()
        }
        self._counter_succ: dict[str, np.ndarray] = {}
        for ident in self._counters:
            succ = [
                self._index[s]
                for s in automaton.successors(ident)
                if isinstance(automaton[s], STE)
            ]
            self._counter_succ[ident] = np.asarray(sorted(succ), dtype=np.int64)
        self._any_report = bool(self._report_mask.any()) or any(
            c.report for c in self._counters.values()
        )
        telemetry.record_compile("vector", compile_t0, n)

    # -- helpers -----------------------------------------------------------

    def _matches(self, symbol: int, enabled: np.ndarray) -> np.ndarray:
        """Indices of enabled states whose charset contains ``symbol``."""
        row = self._charbits[symbol]
        bits = (row[enabled >> 3] >> (enabled & 7).astype(np.uint8)) & 1
        return enabled[bits.astype(bool)]

    def _gather_successors(self, matched: np.ndarray) -> np.ndarray:
        starts = self._succ_off[matched]
        lens = self._succ_off[matched + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        rep_starts = np.repeat(starts, lens)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        return self._succ_flat[rep_starts + offsets]

    # -- execution ---------------------------------------------------------

    def stream(self, *, record_active: bool = False) -> "VectorStream":
        """A streaming session: feed chunks, state persists between feeds."""
        return VectorStream(self, record_active=record_active)

    def run(self, data: bytes, *, record_active: bool = False) -> RunResult:
        session = self.stream(record_active=record_active)
        reports = session.feed(data)
        return RunResult(
            reports=reports,
            cycles=session.offset,
            active_per_cycle=session.active_per_cycle,
        )


class VectorStream:
    """Persistent execution state for :class:`VectorEngine`."""

    def __init__(self, engine: VectorEngine, *, record_active: bool = False) -> None:
        self._engine = engine
        self.offset = 0
        self.active_per_cycle: list[int] | None = [] if record_active else None
        self._counter_state = {
            ident: _CounterState(element)
            for ident, element in engine._counters.items()
        }
        self._enabled = engine._initial

    def feed(self, data: bytes) -> list[ReportEvent]:
        scan_t0 = telemetry.clock()
        engine = self._engine
        reports: list[ReportEvent] = []
        active_counts = self.active_per_cycle
        counter_state = self._counter_state
        buffer = np.frombuffer(data, dtype=np.uint8) if data else np.empty(0, np.uint8)
        base = self.offset

        guard = current_guard()
        if guard is not None:
            guard.check_deadline("vector", base)
        enabled = self._enabled
        for index in range(len(buffer)):
            offset = base + index
            if guard is not None and index % GUARD_BLOCK == 0:
                guard.check_deadline("vector", offset)
            if active_counts is not None:
                active_counts.append(int(enabled.size))
            matched = engine._matches(int(buffer[index]), enabled)

            if not matched.size:
                # Nothing fired: the next enabled set is exactly the
                # ALL_INPUT starts (already sorted/unique), so skip the
                # unique/concatenate entirely.  _all_input is never
                # mutated, so sharing the array is safe.
                enabled = engine._all_input
                continue

            if engine._any_report:
                for i in matched[engine._report_mask[matched]]:
                    i = int(i)
                    reports.append(
                        ReportEvent(offset, engine._idents[i], engine._report_codes[i])
                    )

            next_parts = [engine._gather_successors(matched)]

            if engine._has_feeds:
                feed_hits = engine._feed_mask[matched]
                if feed_hits.any():
                    events: set[str] = set()
                    resets: set[str] = set()
                    for i in matched[feed_hits]:
                        i = int(i)
                        events.update(engine._counter_feeds.get(i, ()))
                        resets.update(engine._reset_feeds.get(i, ()))
                    for counter_ident in resets:
                        counter_state[counter_ident].reset()
                    for counter_ident in sorted(events):
                        state = counter_state[counter_ident]
                        if state.on_count_event():
                            element = state.element
                            if element.report:
                                reports.append(
                                    ReportEvent(
                                        offset, counter_ident, element.report_code
                                    )
                                )
                            next_parts.append(engine._counter_succ[counter_ident])

            next_parts.append(engine._all_input)
            enabled = np.unique(np.concatenate(next_parts))

        self._enabled = enabled
        self.offset = base + len(data)
        reports.sort()
        if scan_t0 is not None:
            telemetry.record_scan("vector", scan_t0, len(data), len(reports))
        return reports
