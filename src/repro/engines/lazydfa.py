"""Lazy-DFA engine (the Hyperscan-class comparator).

Hyperscan's role in the paper's experiments (Tables III and IV) is to
represent DFA-style CPU engines whose per-symbol cost is a constant-time
table lookup, independent of the NFA active set.  This engine reproduces
that property via on-the-fly subset construction: DFA states (frozen sets of
enabled STEs) and their transitions are built the first time they are
visited and memoised, so steady-state scanning is one table lookup per
symbol.

Counters make the reachable state space input-history-dependent, so this
engine rejects automata containing counter elements — exactly as Hyperscan
rejects features outside its model.

**Thread safety.**  The memo table grows across runs, and the shared
compile cache (:mod:`repro.engines.cache`) hands one engine instance to
every thread, so all memo growth — subset interning, transition/emit
writes, dense-table promotion — happens under ``_lock``.  Scan loops stay
lock-free: they read published rows only, and an unexplored transition
(-1) sends them through :meth:`LazyDFAEngine._compute`, which re-checks
under the lock.  The transition write is the *last* store of a compute
(after the emit-table write), so a lock-free reader that observes the new
state id also observes its reports.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import telemetry
from repro.core.automaton import Automaton
from repro.core.elements import STE, StartMode
from repro.engines.base import Engine, ReportEvent, RunResult
from repro.errors import CapacityError, EngineError
from repro.resilience import faults
from repro.resilience.guards import current_guard

#: Estimated heap bytes per interned DFA state: the 256-entry int64
#: transition row (2048) plus dict/list bookkeeping, before the per-member
#: subset cost.  An estimate is all the budget needs — the guard exists to
#: stop runaway subset construction, not to audit the allocator.
_STATE_BASE_BYTES = 2048 + 64
_STATE_MEMBER_BYTES = 8
#: Estimated heap bytes per state added by the dense promoted tables
#: (numpy row + list-of-lists row + emit bitmask).
_PROMOTED_STATE_BYTES = 256 * 8 + 64

__all__ = ["LazyDFAEngine", "LazyDFAStream"]


class LazyDFAEngine(Engine):
    """On-the-fly subset construction with memoised transitions."""

    def __init__(self, automaton: Automaton, *, max_dfa_states: int = 2_000_000) -> None:
        super().__init__(automaton)
        compile_t0 = telemetry.clock()
        if any(True for _ in automaton.counters()):
            raise EngineError("LazyDFAEngine does not support counter elements")
        self._max_dfa_states = max_dfa_states
        #: Guards all memo growth (interning, transition/emit writes,
        #: promotion); see the module docstring's thread-safety contract.
        self._lock = threading.Lock()

        stes: list[STE] = list(automaton.stes())
        self._idents = [ste.ident for ste in stes]
        index = {ste.ident: i for i, ste in enumerate(stes)}
        self._charsets = [ste.charset for ste in stes]
        self._succ = [
            tuple(sorted(index[s] for s in automaton.successors(ste.ident)))
            for ste in stes
        ]
        self._report = [ste.report for ste in stes]
        self._codes = [ste.report_code for ste in stes]
        self._all_input = frozenset(
            index[s.ident] for s in stes if s.start is StartMode.ALL_INPUT
        )
        initial = frozenset(
            index[s.ident]
            for s in stes
            if s.start in (StartMode.ALL_INPUT, StartMode.START_OF_DATA)
        )

        # DFA state table.  _trans[sid] is a length-256 int array; -1 marks
        # a transition not yet computed.  _emits[sid][sym] is the tuple of
        # (ident, code) reports fired when leaving sid on sym.
        self._set_to_id: dict[frozenset[int], int] = {}
        self._id_to_set: list[frozenset[int]] = []
        self._trans: list[np.ndarray] = []
        self._emits: list[dict[int, tuple[tuple[str, object], ...]]] = []
        # Steady-state promotion (built by _promote, dropped on growth):
        # _trans_table is the per-state rows stacked into one dense 2D
        # int64 table, _trans_rows its plain-list view for cheap scalar
        # indexing, _emit_bits a per-state 256-bit has-emit bitmask so the
        # common no-report path never probes the _emits dicts.
        self._trans_table: np.ndarray | None = None
        self._trans_rows: list[list[int]] | None = None
        self._emit_bits: list[int] | None = None
        #: Memo misses so far (on-demand _compute calls); the stream loop
        #: uses it to detect a miss-free block and trigger promotion.
        self._compute_count = 0
        #: Estimated heap bytes held by the raw memo / the promoted tables;
        #: consulted against the active ScanGuard's ``memo_bytes`` budget.
        self._memo_bytes = 0
        self._promoted_bytes = 0
        with self._lock:
            self._initial_id = self._intern(initial)
        telemetry.record_compile("lazydfa", compile_t0, len(stes))

    # -- construction ------------------------------------------------------

    def _intern(self, state_set: frozenset[int]) -> int:
        """Intern one subset; the caller must hold ``_lock``."""
        sid = self._set_to_id.get(state_set)
        if sid is None:
            if len(self._id_to_set) >= self._max_dfa_states:
                raise CapacityError(
                    f"lazy DFA exceeded {self._max_dfa_states} states; "
                    "automaton is too nondeterministic for the DFA engine"
                )
            sid = len(self._id_to_set)
            self._set_to_id[state_set] = sid
            self._id_to_set.append(state_set)
            self._trans.append(np.full(256, -1, dtype=np.int64))
            self._emits.append({})
            telemetry.incr("lazydfa.dfa_states")
            self._memo_bytes += int(
                (_STATE_BASE_BYTES + _STATE_MEMBER_BYTES * len(state_set))
                * faults.memo_inflation()
            )
            guard = current_guard()
            if guard is not None and not guard.memo_headroom(
                self._memo_bytes + self._promoted_bytes
            ):
                # First line of defence: demote — drop the dense promoted
                # tables and reclaim their estimate.  Only when the raw
                # memo alone is over budget does the guard raise
                # MemoryBudgetExceeded (hard degradation; the fallback
                # ladder reruns on the next engine down).
                if self._trans_rows is not None:
                    self._trans_table = None
                    self._trans_rows = None
                    self._emit_bits = None
                    self._promoted_bytes = 0
                    telemetry.incr("resilience.memo.demoted")
                guard.check_memo("lazydfa", self._memo_bytes)
        return sid

    def _compute(self, sid: int, symbol: int) -> int:
        with self._lock:
            # Another thread may have computed this transition between our
            # lock-free -1 read and acquiring the lock.
            nid = int(self._trans[sid][symbol])
            if nid >= 0:
                return nid
            self._compute_count += 1
            telemetry.incr("lazydfa.memo_computes")
            current = self._id_to_set[sid]
            matched = [i for i in current if self._charsets[i].matches(symbol)]
            emits = tuple(
                (self._idents[i], self._codes[i]) for i in matched if self._report[i]
            )
            nxt: set[int] = set(self._all_input)
            for i in matched:
                nxt.update(self._succ[i])
            nid = self._intern(frozenset(nxt))
            if emits:
                self._emits[sid][symbol] = emits
            if self._trans_rows is not None:
                telemetry.incr("lazydfa.demotions")
            self._trans_table = None
            self._trans_rows = None
            self._emit_bits = None
            self._promoted_bytes = 0
            # Publish last: lock-free readers treat a non-negative
            # transition as "emits for this (sid, symbol) are in place".
            self._trans[sid][symbol] = nid
            return nid

    # Promotion above this many DFA states would cost more memory in list
    # cells than the lookup savings are worth; the per-row path stays.
    _PROMOTE_MAX_STATES = 8192

    def _promote(self) -> bool:
        """Freeze the warm transition lists into the dense steady-state form.

        Returns True if the promoted tables are in place.  Called by the
        stream loop once a full block of symbols runs without a memo miss;
        any later subset-construction growth invalidates the tables again.
        """
        with self._lock:
            if self._trans_rows is not None:
                return True
            if len(self._trans) > self._PROMOTE_MAX_STATES:
                return False
            guard = current_guard()
            dense_bytes = len(self._trans) * _PROMOTED_STATE_BYTES
            if guard is not None and not guard.memo_headroom(
                self._memo_bytes + dense_bytes
            ):
                # Declining is the demoted steady state: the raw memo fits
                # the budget but the dense tables would not.
                telemetry.incr("resilience.memo.promotion_declined")
                return False
            self._promoted_bytes = dense_bytes
            self._trans_table = np.vstack(self._trans)
            trans_rows = self._trans_table.tolist()
            emit_bits = []
            for per_symbol in self._emits:
                bits = 0
                for symbol in per_symbol:
                    bits |= 1 << symbol
                emit_bits.append(bits)
            self._emit_bits = emit_bits
            # Publish the rows last: the stream loop's promoted-path guard
            # is ``_trans_rows is not None``, so emit bits must be in
            # place before rows become visible.
            self._trans_rows = trans_rows
            telemetry.incr("lazydfa.promotions")
            return True

    @property
    def dfa_state_count(self) -> int:
        """DFA states materialised so far."""
        return len(self._id_to_set)

    # -- execution ---------------------------------------------------------

    def stream(self, *, record_active: bool = False) -> "LazyDFAStream":
        """A streaming session: feed chunks, state persists between feeds."""
        return LazyDFAStream(self, record_active=record_active)

    def run(self, data: bytes, *, record_active: bool = False) -> RunResult:
        session = self.stream(record_active=record_active)
        reports = session.feed(data)
        return RunResult(
            reports=reports,
            cycles=session.offset,
            active_per_cycle=session.active_per_cycle,
        )


#: Symbols per block between promotion checks in the stream loop.
_PROMOTE_BLOCK = 1024


class LazyDFAStream:
    """Persistent execution state (the current DFA state id).

    The feed loop runs in blocks: while the subset construction is still
    growing it takes the memoising slow path, and after the first block
    that completes without a memo miss it promotes the engine to its dense
    steady-state tables (one transition load plus one has-emit bit test
    per symbol).  A later miss drops back to the slow path until the next
    clean block re-promotes.
    """

    def __init__(self, engine: LazyDFAEngine, *, record_active: bool = False) -> None:
        self._engine = engine
        self.offset = 0
        self.active_per_cycle: list[int] | None = [] if record_active else None
        self._sid = engine._initial_id

    def feed(self, data: bytes) -> list[ReportEvent]:
        scan_t0 = telemetry.clock()
        engine = self._engine
        reports: list[ReportEvent] = []
        sid = self._sid
        base = self.offset
        length = len(data)
        pos = 0
        promoted_this_feed = False
        guard = current_guard()
        if guard is not None:
            guard.check_deadline("lazydfa", base)
        while pos < length:
            if guard is not None:
                guard.check_deadline("lazydfa", base + pos)
            end = min(pos + _PROMOTE_BLOCK, length)
            if engine._trans_rows is not None:
                sid, pos = self._run_promoted(data, pos, end, sid, base, reports)
            else:
                before = engine._compute_count
                sid = self._run_slow(data, pos, end, sid, base, reports)
                pos = end
                if not promoted_this_feed and engine._compute_count == before:
                    # A full block without a memo miss: warm-up is over.
                    # (At most one promotion per feed, so a slowly growing
                    # subset space cannot thrash table rebuilds.)
                    promoted_this_feed = engine._promote()
        self._sid = sid
        self.offset = base + length
        reports.sort()
        if scan_t0 is not None:
            telemetry.record_scan("lazydfa", scan_t0, length, len(reports))
        return reports

    def _run_slow(self, data, pos, end, sid, base, reports):
        """Memoising path: list-of-rows transitions, computed on demand."""
        engine = self._engine
        active_counts = self.active_per_cycle
        trans = engine._trans
        emits = engine._emits
        id_to_set = engine._id_to_set
        for index in range(pos, end):
            symbol = data[index]
            if active_counts is not None:
                active_counts.append(len(id_to_set[sid]))
            nid = trans[sid][symbol]
            if nid < 0:
                nid = engine._compute(sid, symbol)
            hit = emits[sid].get(symbol)
            if hit is not None:
                for ident, code in hit:
                    reports.append(ReportEvent(base + index, ident, code))
            sid = nid
        return sid

    def _run_promoted(self, data, pos, end, sid, base, reports):
        """Steady-state path over the dense promoted tables.

        Returns ``(sid, reached)``; ``reached < end`` means an unexplored
        transition was hit (computing it invalidated the tables) and the
        caller must continue on the slow path.
        """
        engine = self._engine
        active_counts = self.active_per_cycle
        rows = engine._trans_rows
        emit_bits = engine._emit_bits
        if rows is None or emit_bits is None:
            # Demoted by a concurrent thread between the caller's check and
            # our captures; make no progress and let the caller fall back
            # to the slow path.
            return sid, pos
        emits = engine._emits
        id_to_set = engine._id_to_set
        for index in range(pos, end):
            symbol = data[index]
            if active_counts is not None:
                active_counts.append(len(id_to_set[sid]))
            nid = rows[sid][symbol]
            if nid < 0:
                nid = engine._compute(sid, symbol)
                hit = emits[sid].get(symbol)
                if hit is not None:
                    for ident, code in hit:
                        reports.append(ReportEvent(base + index, ident, code))
                return nid, index + 1
            if (emit_bits[sid] >> symbol) & 1:
                for ident, code in emits[sid][symbol]:
                    reports.append(ReportEvent(base + index, ident, code))
            sid = nid
        return sid, end
