"""Lazy-DFA engine (the Hyperscan-class comparator).

Hyperscan's role in the paper's experiments (Tables III and IV) is to
represent DFA-style CPU engines whose per-symbol cost is a constant-time
table lookup, independent of the NFA active set.  This engine reproduces
that property via on-the-fly subset construction: DFA states (frozen sets of
enabled STEs) and their transitions are built the first time they are
visited and memoised, so steady-state scanning is one table lookup per
symbol.

Counters make the reachable state space input-history-dependent, so this
engine rejects automata containing counter elements — exactly as Hyperscan
rejects features outside its model.
"""

from __future__ import annotations

import numpy as np

from repro.core.automaton import Automaton
from repro.core.elements import STE, StartMode
from repro.engines.base import Engine, ReportEvent, RunResult
from repro.errors import CapacityError, EngineError

__all__ = ["LazyDFAEngine", "LazyDFAStream"]


class LazyDFAEngine(Engine):
    """On-the-fly subset construction with memoised transitions."""

    def __init__(self, automaton: Automaton, *, max_dfa_states: int = 2_000_000) -> None:
        super().__init__(automaton)
        if any(True for _ in automaton.counters()):
            raise EngineError("LazyDFAEngine does not support counter elements")
        self._max_dfa_states = max_dfa_states

        stes: list[STE] = list(automaton.stes())
        self._idents = [ste.ident for ste in stes]
        index = {ste.ident: i for i, ste in enumerate(stes)}
        self._charsets = [ste.charset for ste in stes]
        self._succ = [
            tuple(sorted(index[s] for s in automaton.successors(ste.ident)))
            for ste in stes
        ]
        self._report = [ste.report for ste in stes]
        self._codes = [ste.report_code for ste in stes]
        self._all_input = frozenset(
            index[s.ident] for s in stes if s.start is StartMode.ALL_INPUT
        )
        initial = frozenset(
            index[s.ident]
            for s in stes
            if s.start in (StartMode.ALL_INPUT, StartMode.START_OF_DATA)
        )

        # DFA state table.  _trans[sid] is a length-256 int array; -1 marks
        # a transition not yet computed.  _emits[sid][sym] is the tuple of
        # (ident, code) reports fired when leaving sid on sym.
        self._set_to_id: dict[frozenset[int], int] = {}
        self._id_to_set: list[frozenset[int]] = []
        self._trans: list[np.ndarray] = []
        self._emits: list[dict[int, tuple[tuple[str, object], ...]]] = []
        self._initial_id = self._intern(initial)

    # -- construction ------------------------------------------------------

    def _intern(self, state_set: frozenset[int]) -> int:
        sid = self._set_to_id.get(state_set)
        if sid is None:
            if len(self._id_to_set) >= self._max_dfa_states:
                raise CapacityError(
                    f"lazy DFA exceeded {self._max_dfa_states} states; "
                    "automaton is too nondeterministic for the DFA engine"
                )
            sid = len(self._id_to_set)
            self._set_to_id[state_set] = sid
            self._id_to_set.append(state_set)
            self._trans.append(np.full(256, -1, dtype=np.int64))
            self._emits.append({})
        return sid

    def _compute(self, sid: int, symbol: int) -> int:
        current = self._id_to_set[sid]
        matched = [i for i in current if self._charsets[i].matches(symbol)]
        emits = tuple(
            (self._idents[i], self._codes[i]) for i in matched if self._report[i]
        )
        nxt: set[int] = set(self._all_input)
        for i in matched:
            nxt.update(self._succ[i])
        nid = self._intern(frozenset(nxt))
        self._trans[sid][symbol] = nid
        if emits:
            self._emits[sid][symbol] = emits
        return nid

    @property
    def dfa_state_count(self) -> int:
        """DFA states materialised so far."""
        return len(self._id_to_set)

    # -- execution ---------------------------------------------------------

    def stream(self, *, record_active: bool = False) -> "LazyDFAStream":
        """A streaming session: feed chunks, state persists between feeds."""
        return LazyDFAStream(self, record_active=record_active)

    def run(self, data: bytes, *, record_active: bool = False) -> RunResult:
        session = self.stream(record_active=record_active)
        reports = session.feed(data)
        return RunResult(
            reports=reports,
            cycles=session.offset,
            active_per_cycle=session.active_per_cycle,
        )


class LazyDFAStream:
    """Persistent execution state (the current DFA state id)."""

    def __init__(self, engine: LazyDFAEngine, *, record_active: bool = False) -> None:
        self._engine = engine
        self.offset = 0
        self.active_per_cycle: list[int] | None = [] if record_active else None
        self._sid = engine._initial_id

    def feed(self, data: bytes) -> list[ReportEvent]:
        engine = self._engine
        reports: list[ReportEvent] = []
        active_counts = self.active_per_cycle
        sid = self._sid
        trans = engine._trans
        emits = engine._emits
        base = self.offset
        for index, symbol in enumerate(data):
            if active_counts is not None:
                active_counts.append(len(engine._id_to_set[sid]))
            nid = trans[sid][symbol]
            if nid < 0:
                nid = engine._compute(sid, symbol)
            hit = emits[sid].get(symbol)
            if hit is not None:
                for ident, code in hit:
                    reports.append(ReportEvent(base + index, ident, code))
            sid = nid
        self._sid = sid
        self.offset = base + len(data)
        reports.sort()
        return reports
