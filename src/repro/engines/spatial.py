"""Analytic performance/capacity model for spatial automata architectures.

The paper's hardware numbers are themselves model-derived: REAPR FPGA
throughput is "maximum virtual clock frequency multiplied by the number of
input symbols", and Micron D480 comparisons are capacity comparisons against
one chip's STE budget.  This module reproduces that analytic form so
experiments like Table IV can put modelled spatial results next to measured
CPU results.

On a spatial architecture every state is a circuit, so throughput is
independent of the active set (Section IV); the costs are *capacity* (does
the automaton fit?) and *reconfiguration*.  Benchmarks larger than one chip
are executed as sequential runs of the partitioned automaton, dividing
throughput by the number of partitions — the evaluation approach the paper
prescribes for over-capacity benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.automaton import Automaton

__all__ = [
    "SpatialModel",
    "MICRON_D480",
    "KINTEX_KU060",
]


@dataclass(frozen=True)
class SpatialModel:
    """An analytic spatial automata processor.

    Parameters
    ----------
    name:
        Human-readable architecture name.
    state_capacity:
        STEs that fit on one chip/configuration.
    clock_hz:
        Symbol clock at reference utilisation.
    symbols_per_cycle:
        Input symbols consumed per clock (striding/widening raise this).
    routing_efficiency:
        Fraction of ``state_capacity`` reachable before routing congestion
        forces a new partition (models the D480 routing limits that
        Section II-B discusses; 1.0 = no routing constraint).
    fmax_derate_per_doubling:
        Fractional clock loss per doubling of placed states beyond 1/16 of
        capacity — a coarse stand-in for place-and-route fmax degradation on
        FPGAs.  0 disables derating.
    """

    name: str
    state_capacity: int
    clock_hz: float
    symbols_per_cycle: int = 1
    routing_efficiency: float = 1.0
    fmax_derate_per_doubling: float = 0.0

    @property
    def effective_capacity(self) -> int:
        """States usable per partition once routing limits are applied."""
        return max(1, int(self.state_capacity * self.routing_efficiency))

    def chips_required(self, automaton: Automaton | int) -> int:
        """Partitions (sequential runs) needed to execute the automaton."""
        states = automaton if isinstance(automaton, int) else automaton.n_states
        return max(1, math.ceil(states / self.effective_capacity))

    def fits(self, automaton: Automaton | int) -> bool:
        return self.chips_required(automaton) == 1

    def utilization(self, automaton: Automaton | int) -> float:
        """Fraction of one chip's *usable* state budget the automaton occupies.

        Measured against :attr:`effective_capacity` so it is consistent
        with :meth:`chips_required` / :meth:`fits`: utilization <= 1.0 iff
        the automaton fits on one chip.  (Historically this divided by the
        raw ``state_capacity``, so a D480 automaton between effective and
        raw capacity reported < 100% utilization while ``fits()`` was
        False.)  Use :meth:`raw_utilization` for the routing-blind figure.
        """
        states = automaton if isinstance(automaton, int) else automaton.n_states
        return states / self.effective_capacity

    def raw_utilization(self, automaton: Automaton | int) -> float:
        """Fraction of the raw silicon state budget, ignoring routing."""
        states = automaton if isinstance(automaton, int) else automaton.n_states
        return states / self.state_capacity

    def clock_for(self, automaton: Automaton | int) -> float:
        """Modelled clock after fmax derating for the placed size."""
        states = automaton if isinstance(automaton, int) else automaton.n_states
        if self.fmax_derate_per_doubling <= 0 or states <= 0:
            return self.clock_hz
        per_partition = min(states, self.effective_capacity)
        threshold = max(1, self.state_capacity // 16)
        if per_partition <= threshold:
            return self.clock_hz
        doublings = math.log2(per_partition / threshold)
        derate = (1.0 - self.fmax_derate_per_doubling) ** doublings
        return self.clock_hz * derate

    def throughput_bytes_per_sec(self, automaton: Automaton | int) -> float:
        """Modelled steady-state input throughput for the whole automaton.

        Over-capacity automata are run as ``chips_required`` sequential
        passes over the input, dividing throughput accordingly.
        """
        passes = self.chips_required(automaton)
        return self.clock_for(automaton) * self.symbols_per_cycle / passes

    def runtime_seconds(self, automaton: Automaton | int, n_symbols: int) -> float:
        """Modelled wall-clock time to stream ``n_symbols`` input symbols."""
        return n_symbols / self.throughput_bytes_per_sec(automaton)


#: Micron D480 Automata Processor: 49,152 STEs per chip at a 133 MHz symbol
#: clock.  ``routing_efficiency`` reflects the hierarchical routing matrix
#: that limited mesh benchmarks to a fraction of state capacity (Section II).
MICRON_D480 = SpatialModel(
    name="Micron D480 AP",
    state_capacity=49_152,
    clock_hz=133e6,
    routing_efficiency=0.85,
)

#: Xilinx Kintex Ultrascale XCKU060 running REAPR-style automata overlays
#: (Table IV's FPGA target): large capacity, higher clock, with fmax
#: derating as designs fill the device.
KINTEX_KU060 = SpatialModel(
    name="Xilinx Kintex Ultrascale KU060 (REAPR)",
    state_capacity=600_000,
    clock_hz=250e6,
    fmax_derate_per_doubling=0.08,
)
