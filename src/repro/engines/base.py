"""Engine interfaces and result types.

An *engine* executes an :class:`~repro.core.automaton.Automaton` over a byte
stream and produces :class:`ReportEvent` objects.  All engines implement the
same semantics (pinned by cross-engine property tests):

* Cycle ``t`` consumes input symbol ``data[t]``.
* An STE is *enabled* at cycle ``t`` if a predecessor matched/fired at cycle
  ``t - 1``, or it is an ``ALL_INPUT`` start, or ``t == 0`` and it is a
  ``START_OF_DATA`` start.
* An enabled STE *matches* if ``data[t]`` is in its charset; matching STEs
  enable their successors for cycle ``t + 1`` and report if flagged.
* A counter receives one *count event* per cycle in which at least one of
  its predecessors matched/fired.  On reaching its target it *fires*:
  successors are enabled for the next cycle, and it reports if flagged.
  ``LATCH`` counters keep firing on every subsequent count event,
  ``ROLLOVER`` counters reset to zero, ``STOP`` counters go inert.

The **active set** at cycle ``t`` is the number of elements enabled at ``t``
(states that attempt a match) — the paper's CPU-performance proxy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.automaton import Automaton

__all__ = ["ReportEvent", "RunResult", "Engine"]


@dataclass(frozen=True, order=True)
class ReportEvent:
    """One report: element ``ident`` reported at input offset ``offset``.

    ``code`` carries the benchmark-level payload (rule id, class label, ...)
    so full kernels stay interpretable (Section VIII of the paper).
    """

    offset: int
    ident: str
    code: object = field(default=None, compare=False)


@dataclass
class RunResult:
    """The outcome of running an engine over an input stream."""

    reports: list[ReportEvent]
    cycles: int
    #: Per-cycle enabled-element counts; filled when requested.
    active_per_cycle: list[int] | None = None

    @property
    def report_count(self) -> int:
        return len(self.reports)

    @property
    def mean_active_set(self) -> float:
        """Average enabled elements per input symbol (Table I column)."""
        if not self.active_per_cycle:
            return 0.0
        return sum(self.active_per_cycle) / len(self.active_per_cycle)

    def reporting_cycles(self) -> set[int]:
        """The set of input offsets at which at least one report fired."""
        return {event.offset for event in self.reports}


class Engine(abc.ABC):
    """Common engine interface: compile once, run many streams."""

    def __init__(self, automaton: Automaton) -> None:
        self.automaton = automaton

    @abc.abstractmethod
    def run(self, data: bytes, *, record_active: bool = False) -> RunResult:
        """Execute over ``data`` from a fresh initial state."""

    def count_reports(self, data: bytes) -> int:
        """Convenience: number of report events over ``data``."""
        return self.run(data).report_count
