"""Module-level engine compile cache.

Compiling an engine (packing charsets, flattening successor tables) is
O(states x alphabet) and dominates short scans: ``parallel_scan`` used to
rebuild a full :class:`~repro.engines.vector.VectorEngine` per segment per
call, and benchmark loops recompile the same automaton over and over.
This cache memoises compiled engines keyed by

    (automaton fingerprint, engine class, construction options)

so repeated compiles of structurally identical automata — including copies
that crossed a process boundary, as in process-pool workers — hit the same
entry.  The store is a bounded LRU (engines for the full-scale suite are
large, so unbounded growth is not acceptable) guarded by a lock so thread
pools can share it.

Cached engines are shared objects: all engines in this library are
immutable after construction with per-run state held in stream sessions,
so sharing is safe.  :class:`~repro.engines.lazydfa.LazyDFAEngine` grows
its memo table across runs; that growth happens under the engine's own
lock (see the thread-safety contract in :mod:`repro.engines.lazydfa`), so
one lazy DFA served from this cache can be hammered from many threads.

**Degraded engines are never cached under the original key.**  The
resilience fallback ladder (:mod:`repro.resilience.ladder`) looks each
rung up under that rung's *own* class, so a scan degraded from the lazy
DFA to, say, the bitset engine leaves the ``LazyDFAEngine`` entry
untouched for concurrent callers.  As a backstop, a cache hit is
revalidated against the requested class: an entry of the wrong type is
evicted and recompiled (``cache.type_mismatch_evicted``) rather than
returned.

The fingerprint is a structural SHA-256 over elements, charsets, start and
report flags, edges and reset wires.  It is cached on the automaton object
and revalidated against ``(n_states, n_edges)``; in-place mutations that
preserve both counts (e.g. swapping one charset) are not detected, so call
:func:`automaton_fingerprint` with ``use_cache=False`` after such surgery.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import telemetry
from repro.core.automaton import Automaton
from repro.core.elements import CounterElement, STE
from repro.engines.base import Engine
from repro.engines.vector import VectorEngine
from repro.errors import CapacityError

__all__ = [
    "automaton_fingerprint",
    "compiled_engine",
    "auto_engine",
    "clear_engine_cache",
    "engine_cache_info",
    "set_engine_cache_limit",
]

_FINGERPRINT_ATTR = "_repro_fingerprint"

_lock = threading.Lock()
_cache: "OrderedDict[tuple, Engine]" = OrderedDict()
_maxsize = 32
_hits = 0
_misses = 0


def automaton_fingerprint(automaton: Automaton, *, use_cache: bool = True) -> str:
    """Structural SHA-256 fingerprint of an automaton.

    Two automata with the same elements (idents, charsets, start modes,
    report flags/codes, counter targets/modes), edges and reset wires get
    the same fingerprint, regardless of object identity or pickling.  The
    digest is stashed on the automaton and revalidated against
    ``(n_states, n_edges)``; pass ``use_cache=False`` to force a
    recomputation after an in-place mutation that preserves both counts.
    """
    guard = (automaton.n_states, automaton.n_edges)
    stamp = getattr(automaton, _FINGERPRINT_ATTR, None)
    if use_cache and stamp is not None and stamp[0] == guard:
        return stamp[1]
    h = hashlib.sha256()
    update = h.update
    for element in automaton.elements():
        if isinstance(element, STE):
            update(b"S")
            update(element.ident.encode())
            update(b"\x00")
            update(element.charset._mask.to_bytes(32, "little"))
            update(element.start.name.encode())
        elif isinstance(element, CounterElement):
            update(b"C")
            update(element.ident.encode())
            update(b"\x00")
            update(str(element.target).encode())
            update(element.mode.name.encode())
        else:  # pragma: no cover - defensive
            update(b"?")
            update(repr(element).encode())
        update(b"\x01" if element.report else b"\x02")
        update(repr(element.report_code).encode())
        update(b"\x03")
    for src in automaton.idents():
        update(src.encode())
        update(b"\x04")
        for dst in sorted(automaton.successors(src)):
            update(dst.encode())
            update(b"\x00")
        update(b"\x05")
    for src, counter in sorted(automaton.reset_edges()):
        update(b"R")
        update(src.encode())
        update(b"\x00")
        update(counter.encode())
        update(b"\x06")
    digest = h.hexdigest()
    try:
        setattr(automaton, _FINGERPRINT_ATTR, (guard, digest))
    except AttributeError:  # pragma: no cover - slotted subclasses
        pass
    return digest


def compiled_engine(
    automaton: Automaton,
    engine_cls: type[Engine] = VectorEngine,
    **options,
) -> Engine:
    """A compiled engine for ``automaton``, memoised across calls.

    ``options`` are forwarded to the engine constructor and participate in
    the cache key, so e.g. different ``max_dfa_states`` budgets coexist.
    """
    global _hits, _misses
    key = (
        automaton_fingerprint(automaton),
        engine_cls,
        tuple(sorted(options.items())),
    )
    with _lock:
        engine = _cache.get(key)
        if engine is not None and type(engine) is not engine_cls:
            # Degraded-engine rule: a hit must be exactly the class the
            # caller asked for.  A fallback ladder that rewrote an entry
            # with a lower-rung engine (or any other type confusion) would
            # otherwise hand every future caller of the *original* engine
            # the degraded one, silently and forever.  Evict and recompile.
            del _cache[key]
            engine = None
            telemetry.incr("cache.type_mismatch_evicted")
        if engine is not None:
            _cache.move_to_end(key)
            _hits += 1
            telemetry.incr("cache.hit")
            return engine
        _misses += 1
        telemetry.incr("cache.miss")
    # Compile outside the lock: construction can take seconds and must not
    # serialise unrelated workers.  A racing duplicate compile is benign.
    engine = engine_cls(automaton, **options)
    with _lock:
        _cache[key] = engine
        _cache.move_to_end(key)
        while len(_cache) > _maxsize:
            _cache.popitem(last=False)
            telemetry.incr("cache.eviction")
    return engine


def auto_engine(automaton: Automaton, **options) -> Engine:
    """The best general-purpose CPU engine for this automaton, cached.

    :class:`~repro.engines.bitset.BitsetEngine` when the automaton fits
    under its quadratic-successor-mask cap, else
    :class:`~repro.engines.vector.VectorEngine` (whose CSR successor
    tables scale to the multi-million-state full-size builds).
    """
    from repro.engines.bitset import BitsetEngine

    try:
        return compiled_engine(automaton, BitsetEngine, **options)
    except CapacityError:
        return compiled_engine(automaton, VectorEngine)


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss statistics of the engine compile cache."""

    hits: int
    misses: int
    size: int
    maxsize: int


def engine_cache_info() -> CacheInfo:
    """Current cache statistics (for benchmarks and diagnostics)."""
    with _lock:
        return CacheInfo(hits=_hits, misses=_misses, size=len(_cache), maxsize=_maxsize)


def clear_engine_cache() -> None:
    """Drop every cached engine and reset the statistics."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def set_engine_cache_limit(maxsize: int) -> None:
    """Resize the LRU (evicting oldest entries if shrinking)."""
    global _maxsize
    if maxsize < 1:
        raise ValueError("cache limit must be at least 1")
    with _lock:
        _maxsize = maxsize
        while len(_cache) > _maxsize:
            _cache.popitem(last=False)
