"""Literal-prefiltered scanning (the Hyperscan decomposition strategy).

Hyperscan's core trick — and the reason it anchors the paper's CPU
comparisons — is pattern decomposition: extract literal factors that every
match must contain, scan for those with a fast multi-literal matcher, and
run the full automaton only around factor hits.  This module implements
that strategy on our substrate:

* :func:`required_factors` analyses a regex AST and returns a set of
  literal strings such that every match contains at least one of them
  (``None`` when no useful factor exists);
* :class:`PrefilterScanner` compiles a ruleset, builds one Aho–Corasick
  matcher over all factors, and confirms candidate rules with their NFA —
  over a bounded window when the rule's match length is finite, else over
  the full stream.

The scanner is report-equivalent to running every rule automaton over the
whole input (property-tested), but rules whose factors never occur cost
nothing beyond the shared literal scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.baselines.aho_corasick import AhoCorasick
from repro.core.automaton import Automaton
from repro.engines.base import ReportEvent, RunResult
from repro.errors import EngineError
from repro.engines.vector import VectorEngine
from repro.regex.ast_nodes import Alt, Concat, Empty, Literal, Node, Repeat
from repro.regex.compile import compile_parsed
from repro.regex.parser import parse_regex

__all__ = ["required_factors", "max_match_length", "PrefilterScanner"]

_MIN_FACTOR = 2  # factors shorter than this gate poorly; treat as absent


def _single_char(node: Node) -> int | None:
    if isinstance(node, Literal) and node.charset.cardinality() == 1:
        return next(iter(node.charset))
    return None


def required_factors(node: Node) -> frozenset[bytes] | None:
    """Literal factors such that every match contains at least one.

    Returns ``None`` when no factor of length >= 2 is guaranteed.
    """
    if isinstance(node, (Empty,)):
        return None
    if isinstance(node, Literal):
        return None  # a single char is below the useful factor length
    if isinstance(node, Repeat):
        if node.min >= 1:
            return required_factors(node.child)
        return None  # optional: nothing guaranteed
    if isinstance(node, Alt):
        option_factors = []
        for option in node.options:
            factors = required_factors(option)
            if factors is None:
                return None  # one branch has no factor: no guarantee
            option_factors.append(factors)
        merged = frozenset().union(*option_factors)
        return merged if merged else None
    if isinstance(node, Concat):
        # literal runs of adjacent single-char parts
        best: frozenset[bytes] | None = None

        def consider(candidate: frozenset[bytes] | None):
            nonlocal best
            if candidate is None:
                return
            # prefer the candidate whose *shortest* factor is longest
            if best is None or min(map(len, candidate)) > min(map(len, best)):
                best = candidate

        run = bytearray()
        for part in node.parts:
            ch = _single_char(part)
            if ch is not None:
                run.append(ch)
                continue
            if len(run) >= _MIN_FACTOR:
                consider(frozenset([bytes(run)]))
            run = bytearray()
            consider(required_factors(part))
        if len(run) >= _MIN_FACTOR:
            consider(frozenset([bytes(run)]))
        return best
    return None


def max_match_length(automaton: Automaton) -> int | None:
    """Longest input span a match can cover; ``None`` if unbounded.

    Computed as the longest start-to-report path; a cycle on any such path
    makes the match length unbounded.  An automaton with no start states
    returns 0 (nothing is ever enabled, so no span is coverable).
    """
    order: list[str] = []
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(ident: str) -> bool:
        """Post-order DFS; returns False when a cycle is reachable."""
        stack = [(ident, iter(automaton.successors(ident)))]
        state[ident] = 0
        while stack:
            node, successors = stack[-1]
            advanced = False
            for nxt in successors:
                mark = state.get(nxt)
                if mark == 0:
                    return False  # back edge: cycle
                if mark is None:
                    state[nxt] = 0
                    stack.append((nxt, iter(automaton.successors(nxt))))
                    advanced = True
                    break
            if not advanced:
                state[node] = 1
                order.append(node)
                stack.pop()
        return True

    for start in automaton.start_elements():
        if start.ident not in state:
            if not visit(start.ident):
                return None

    depth: dict[str, int] = {}
    for ident in order:  # reverse topological emitted by post-order
        depth[ident] = 1 + max(
            (depth[s] for s in automaton.successors(ident) if s in depth),
            default=0,
        )
    lengths = [depth[s.ident] for s in automaton.start_elements() if s.ident in depth]
    return max(lengths) if lengths else 0


@dataclass
class _CompiledRule:
    code: object
    automaton: Automaton
    engine: VectorEngine
    factors: frozenset[bytes] | None
    window: int | None  # max match length; None = unbounded
    anchored: bool = False


class PrefilterScanner:
    """Multi-rule scanner with literal prefiltering."""

    def __init__(self, rules: list[tuple[object, str]]) -> None:
        """``rules`` are (report_code, regex) pairs."""
        self.rules: list[_CompiledRule] = []
        factor_owner: list[tuple[bytes, int]] = []
        for code, pattern in rules:
            parsed = parse_regex(pattern)
            automaton = compile_parsed(parsed, report_code=code)
            # A degenerate rule automaton (nothing enabled, or nothing to
            # report) silently contributes zero matches forever; fail the
            # compile with a typed error instead.
            if not automaton.start_elements():
                raise EngineError(
                    f"prefilter rule {code!r} ({pattern!r}): automaton has no "
                    "start states, so it can never be enabled"
                )
            if not automaton.reporting_elements():
                raise EngineError(
                    f"prefilter rule {code!r} ({pattern!r}): automaton has no "
                    "reporting states, so it can never match"
                )
            factors = required_factors(parsed.ast)
            compiled = _CompiledRule(
                code=code,
                automaton=automaton,
                engine=VectorEngine(automaton),
                factors=factors,
                window=max_match_length(automaton),
                anchored=parsed.anchored,
            )
            rule_index = len(self.rules)
            self.rules.append(compiled)
            if factors is not None:
                for factor in factors:
                    factor_owner.append((factor, rule_index))
        self._factors = [f for f, _ in factor_owner]
        self._factor_rules = [r for _, r in factor_owner]
        self._matcher = AhoCorasick(self._factors) if self._factors else None
        self._unfactored = [
            i for i, rule in enumerate(self.rules) if rule.factors is None
        ]

    @property
    def gated_rules(self) -> int:
        """Rules that are skipped entirely unless a factor occurs."""
        return len(self.rules) - len(self._unfactored)

    def scan(self, data: bytes) -> RunResult:
        """Run all rules; equivalent to full scans of every automaton."""
        scan_t0 = telemetry.clock()
        # Dedupe on (offset, ident, code): ReportEvent equality ignores the
        # code, but two rules sharing a pattern produce same-named states
        # with different codes and both reports must survive.
        events: dict[tuple, ReportEvent] = {}

        def record(event: ReportEvent) -> None:
            events[(event.offset, event.ident, repr(event.code))] = event
        # candidate windows per rule from factor hits
        n_factor_hits = 0
        rules_confirmed = 0
        rules_gated_off = 0
        confirm_bytes = 0
        hits: dict[int, list[int]] = {}
        if self._matcher is not None:
            for offset, factor_index in self._matcher.search(data):
                hits.setdefault(self._factor_rules[factor_index], []).append(offset)
                n_factor_hits += 1

        for rule_index, rule in enumerate(self.rules):
            if rule.factors is None:
                confirm_bytes += len(data)
                for event in rule.engine.run(data).reports:
                    record(event)
                continue
            offsets = hits.get(rule_index)
            if not offsets:
                rules_gated_off += 1
                continue  # factor absent: rule cannot match
            rules_confirmed += 1
            if rule.window is None:
                confirm_bytes += len(data)
                for event in rule.engine.run(data).reports:
                    record(event)
                continue
            window = rule.window
            if rule.anchored:
                # anchored matches live in the first `window` bytes; a
                # slice not starting at 0 would re-anchor incorrectly
                if min(offsets) <= window:
                    confirm_bytes += min(window, len(data))
                    for event in rule.engine.run(data[:window]).reports:
                        record(event)
                continue
            # merge overlapping candidate windows, then confirm
            spans: list[list[int]] = []
            for hit in sorted(offsets):
                start = max(0, hit - 2 * window)
                end = min(len(data), hit + window)
                if spans and start <= spans[-1][1]:
                    spans[-1][1] = max(spans[-1][1], end)
                else:
                    spans.append([start, end])
            for start, end in spans:
                confirm_bytes += end - start
                for event in rule.engine.run(data[start:end]).reports:
                    record(
                        ReportEvent(event.offset + start, event.ident, event.code)
                    )
        reports = sorted(events.values(), key=lambda e: (e.offset, e.ident))
        if scan_t0 is not None:
            telemetry.record_scan("prefilter", scan_t0, len(data), len(reports))
            telemetry.incr("prefilter.factor_hits", n_factor_hits)
            telemetry.incr("prefilter.rules_confirmed", rules_confirmed)
            telemetry.incr("prefilter.rules_gated_off", rules_gated_off)
            telemetry.incr("prefilter.confirm_bytes", confirm_bytes)
        return RunResult(reports=reports, cycles=len(data))
