"""Pure-Python reference engine.

This is the library's semantic oracle: the most direct possible encoding of
the execution model in :mod:`repro.engines.base`.  Every other engine is
property-tested against it.  Its per-cycle cost is proportional to the
active set, which also makes it the faithful stand-in for VASim's
performance behaviour in the Table III experiment (AP-padding states inflate
the active set and therefore CPU runtime).
"""

from __future__ import annotations

from repro import telemetry
from repro.core.automaton import Automaton
from repro.core.elements import CounterElement, CounterMode, STE, StartMode
from repro.engines.base import Engine, ReportEvent, RunResult
from repro.resilience.guards import GUARD_BLOCK, current_guard

__all__ = ["ReferenceEngine", "ReferenceStream"]


class _CounterState:
    __slots__ = ("element", "count", "latched", "stopped")

    def __init__(self, element: CounterElement) -> None:
        self.element = element
        self.count = 0
        self.latched = False
        self.stopped = False

    def reset(self) -> None:
        """Clear count and latch/stop state (the reset port firing)."""
        self.count = 0
        self.latched = False
        self.stopped = False

    def on_count_event(self) -> bool:
        """Apply one count event; return True if the counter fires."""
        if self.stopped:
            return False
        if self.latched:
            return True
        self.count += 1
        if self.count >= self.element.target:
            mode = self.element.mode
            if mode is CounterMode.LATCH:
                self.latched = True
            elif mode is CounterMode.ROLLOVER:
                self.count = 0
            elif mode is CounterMode.STOP:
                self.stopped = True
            return True
        return False


class ReferenceEngine(Engine):
    """Direct set-based simulation of a homogeneous automaton."""

    def __init__(self, automaton: Automaton) -> None:
        super().__init__(automaton)
        compile_t0 = telemetry.clock()
        self._stes: dict[str, STE] = {e.ident: e for e in automaton.stes()}
        self._counters: dict[str, CounterElement] = {
            e.ident: e for e in automaton.counters()
        }
        self._succ = {ident: automaton.successors(ident) for ident in automaton.idents()}
        self._all_input = {
            e.ident for e in automaton.stes() if e.start is StartMode.ALL_INPUT
        }
        self._start_of_data = {
            e.ident for e in automaton.stes() if e.start is StartMode.START_OF_DATA
        }
        self._reset_feeds: dict[str, list[str]] = {}
        for src, counter in automaton.reset_edges():
            self._reset_feeds.setdefault(src, []).append(counter)
        telemetry.record_compile("reference", compile_t0, len(self._stes))

    def stream(
        self, *, record_active: bool = False, record_trace: bool = False
    ) -> "ReferenceStream":
        """A streaming session: feed chunks, state persists between feeds.

        ``record_trace`` additionally accumulates which elements were ever
        enabled / ever matched (used by the static-analyzer cross-check).
        """
        return ReferenceStream(
            self, record_active=record_active, record_trace=record_trace
        )

    def run(self, data: bytes, *, record_active: bool = False) -> RunResult:
        session = self.stream(record_active=record_active)
        reports = session.feed(data)
        return RunResult(
            reports=reports,
            cycles=session.offset,
            active_per_cycle=session.active_per_cycle,
        )


class ReferenceStream:
    """Persistent execution state for :class:`ReferenceEngine`.

    ``feed`` consumes a chunk and returns the reports it produced (with
    stream-global offsets); chunk boundaries are invisible to the automaton
    (property-tested: any chunking yields the ``run()`` report stream).
    """

    def __init__(
        self,
        engine: ReferenceEngine,
        *,
        record_active: bool = False,
        record_trace: bool = False,
    ) -> None:
        self._engine = engine
        self.offset = 0
        self.active_per_cycle: list[int] | None = [] if record_active else None
        #: Elements ever enabled / ever matched-or-fired (trace mode only).
        self.ever_enabled: set[str] | None = set() if record_trace else None
        self.ever_matched: set[str] | None = set() if record_trace else None
        self._counter_state = {
            ident: _CounterState(element)
            for ident, element in engine._counters.items()
        }
        self._enabled: set[str] = set(engine._start_of_data) | set(engine._all_input)

    def feed(self, data: bytes) -> list[ReportEvent]:
        scan_t0 = telemetry.clock()
        engine = self._engine
        reports: list[ReportEvent] = []
        active_counts = self.active_per_cycle
        counter_state = self._counter_state
        enabled = self._enabled
        base = self.offset
        guard = current_guard()
        if guard is not None:
            # Entry check so a scan that arrives past its deadline (e.g.
            # after an injected stall) trips before consuming anything.
            guard.check_deadline("reference", base)
        for index, symbol in enumerate(data):
            offset = base + index
            if guard is not None and index % GUARD_BLOCK == 0:
                guard.check_deadline("reference", offset)
            if active_counts is not None:
                active_counts.append(len(enabled))
            if self.ever_enabled is not None:
                self.ever_enabled |= enabled

            fired: list[str] = []
            counter_events: set[str] = set()
            for ident in enabled:
                ste = engine._stes[ident]
                if ste.charset.matches(symbol):
                    fired.append(ident)
                    if ste.report:
                        reports.append(ReportEvent(offset, ident, ste.report_code))

            next_enabled: set[str] = set()
            reset_events: set[str] = set()
            for ident in fired:
                for succ in engine._succ[ident]:
                    if succ in engine._stes:
                        next_enabled.add(succ)
                    else:
                        counter_events.add(succ)
                for counter_ident in engine._reset_feeds.get(ident, ()):
                    reset_events.add(counter_ident)

            # Resets apply before this cycle's count events (Section XI
            # extended-automata semantics).
            for counter_ident in reset_events:
                counter_state[counter_ident].reset()

            if self.ever_matched is not None:
                self.ever_matched.update(fired)

            # Counters: one count event per cycle with >= 1 matching predecessor.
            for counter_ident in sorted(counter_events):
                state = counter_state[counter_ident]
                if state.on_count_event():
                    if self.ever_matched is not None:
                        self.ever_matched.add(counter_ident)
                    element = state.element
                    if element.report:
                        reports.append(
                            ReportEvent(offset, counter_ident, element.report_code)
                        )
                    for succ in engine._succ[counter_ident]:
                        if succ in engine._stes:
                            next_enabled.add(succ)
                        # counter -> counter chains are not supported; the
                        # Automaton builder never produces them.

            next_enabled |= engine._all_input
            enabled = next_enabled

        self._enabled = enabled
        self.offset = base + len(data)
        reports.sort()
        if scan_t0 is not None:
            telemetry.record_scan("reference", scan_t0, len(data), len(reports))
        return reports
