"""Input-parallel scanning (the Parallel Automata Processor mechanism).

The paper's capacity argument assumes "2x capacity (and 2x performance
with input parallelization)" — Subramaniyan & Das's technique of splitting
the input across automaton replicas.  The subtlety is cross-boundary
matches: a segment cannot see matches that started in its predecessor.
For automata with a *finite maximum match length* L the classic fix is
overlap: each segment (except the first) is extended L-1 symbols to the
left, and reports landing in the overlap are attributed to the previous
segment's scan (deduplicated).

:func:`split_with_overlap` computes the segmentation, :func:`parallel_scan`
runs it (serially or on a process pool) and merges reports; a property test
pins equality with the single-stream scan.  Automata with unbounded match
length (cycles on a reporting path) cannot be segment-scanned this way and
are rejected.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro import telemetry
from repro.core.automaton import Automaton
from repro.engines.base import Engine, ReportEvent, RunResult
from repro.engines.cache import compiled_engine
from repro.engines.prefilter import max_match_length
from repro.engines.vector import VectorEngine
from repro.errors import EngineError

__all__ = ["Segment", "split_with_overlap", "parallel_scan", "parallel_speedup_model"]


@dataclass(frozen=True)
class Segment:
    """One input segment: scan [scan_start, end), keep reports >= keep_from."""

    scan_start: int
    keep_from: int
    end: int


def split_with_overlap(
    data_length: int, n_segments: int, overlap: int
) -> list[Segment]:
    """Partition ``[0, data_length)`` into segments with left overlap.

    The keep ranges ``[keep_from, end)`` always form a covering,
    non-overlapping partition of the input, every segment is non-empty
    (sizes differ by at most one symbol), and no more segments are
    produced than there are symbols — ``n_segments > data_length``
    degenerates to one segment per symbol rather than to empty or dropped
    segments.  A zero-length input yields the single empty segment.
    """
    if n_segments < 1:
        raise ValueError("need at least one segment")
    if overlap < 0:
        raise ValueError("overlap cannot be negative")
    count = max(1, min(n_segments, data_length))
    base, extra = divmod(data_length, count)
    segments = []
    keep_from = 0
    for index in range(count):
        end = keep_from + base + (1 if index < extra else 0)
        segments.append(Segment(max(0, keep_from - overlap), keep_from, end))
        keep_from = end
    return segments


def _scan_segment(args):
    automaton, data, segment, engine_cls, collect = args
    # ``collect`` carries the parent's telemetry switch across the process
    # boundary; pool workers start with the import default (disabled).
    # Thread-pool workers share the parent registry, so only toggle when
    # the flag is actually off here.
    was_enabled = telemetry.is_enabled()
    if collect and not was_enabled:
        telemetry.enable()
    before = telemetry.snapshot() if collect else None
    # The compile cache keys on the automaton's structural fingerprint, so
    # every segment of every call — including segments handled by the same
    # process-pool worker across tasks, where the pickled automaton is a
    # fresh object each time — reuses one compiled engine per worker.
    engine = compiled_engine(automaton, engine_cls)
    with telemetry.span("parallel.segment"):
        result = engine.run(data[segment.scan_start : segment.end])
    events = [
        ReportEvent(event.offset + segment.scan_start, event.ident, event.code)
        for event in result.reports
        if event.offset + segment.scan_start >= segment.keep_from
    ]
    delta = telemetry.diff_snapshots(before, telemetry.snapshot()) if collect else None
    if collect and not was_enabled:
        telemetry.disable()
    return events, delta


def parallel_scan(
    automaton: Automaton,
    data: bytes,
    n_segments: int,
    *,
    pool=None,
    engine_cls: type[Engine] | None = None,
) -> RunResult:
    """Scan ``data`` as ``n_segments`` independent overlapped segments.

    Requires an unanchored automaton (anchored matches belong to segment 0
    only and would need special casing) with finite match length.  Pass a
    ``concurrent.futures`` executor as ``pool`` to actually parallelise;
    the default runs segments serially (the semantics are the point — on a
    spatial architecture each segment is a hardware replica).  Segment
    engines default to :class:`VectorEngine` and are compiled once per
    worker through the engine cache; pass ``engine_cls`` (e.g.
    :class:`~repro.engines.bitset.BitsetEngine`) to pick the engine.
    """
    from repro.core.elements import StartMode

    if any(s.start is StartMode.START_OF_DATA for s in automaton.stes()):
        raise EngineError("parallel_scan requires an unanchored automaton")
    window = max_match_length(automaton)
    if window is None:
        raise EngineError(
            "automaton has unbounded match length; segment overlap cannot "
            "bound cross-boundary matches"
        )
    segments = split_with_overlap(len(data), n_segments, max(window - 1, 0))
    cls = engine_cls if engine_cls is not None else VectorEngine
    collect = telemetry.is_enabled()
    telemetry.incr("parallel.scans")
    telemetry.incr("parallel.segments", len(segments))
    tasks = [(automaton, data, segment, cls, collect) for segment in segments]
    if pool is None:
        parts = [_scan_segment(task) for task in tasks]
    else:
        parts = list(pool.map(_scan_segment, tasks))
    # Counter/timer deltas recorded inside *other processes* (a process
    # pool) are merged back here; same-pid deltas (serial path or thread
    # pools) already live in this registry.
    pid = os.getpid()
    for _, delta in parts:
        if delta is not None and delta.get("pid") != pid:
            telemetry.merge(delta)
    reports = sorted(event for part, _ in parts for event in part)
    return RunResult(reports=reports, cycles=len(data))


def parallel_speedup_model(
    data_length: int, n_segments: int, match_window: int
) -> float:
    """Ideal speedup accounting for overlap re-scanning.

    With L-1 symbols of overlap per segment the total work is
    ``data_length + (n-1)(L-1)`` symbols spread over ``n`` replicas.
    """
    if n_segments < 1:
        raise ValueError("need at least one segment")
    overlap = max(match_window - 1, 0) if n_segments > 1 else 0
    per_segment = data_length / n_segments + overlap
    return data_length / per_segment
