"""Input-parallel scanning (the Parallel Automata Processor mechanism).

The paper's capacity argument assumes "2x capacity (and 2x performance
with input parallelization)" — Subramaniyan & Das's technique of splitting
the input across automaton replicas.  The subtlety is cross-boundary
matches: a segment cannot see matches that started in its predecessor.
For automata with a *finite maximum match length* L the classic fix is
overlap: each segment (except the first) is extended L-1 symbols to the
left, and reports landing in the overlap are attributed to the previous
segment's scan (deduplicated).

:func:`split_with_overlap` computes the segmentation, :func:`parallel_scan`
runs it (serially or on a process pool) and merges reports; a property test
pins equality with the single-stream scan.  Automata with unbounded match
length (cycles on a reporting path) cannot be segment-scanned this way and
are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.automaton import Automaton
from repro.engines.base import Engine, RunResult
from repro.engines.vector import VectorEngine

__all__ = ["Segment", "split_with_overlap", "parallel_scan", "parallel_speedup_model"]


@dataclass(frozen=True)
class Segment:
    """One input segment: scan [scan_start, end), keep reports >= keep_from."""

    scan_start: int
    keep_from: int
    end: int


def split_with_overlap(
    data_length: int, n_segments: int, overlap: int
) -> list[Segment]:
    """Partition ``[0, data_length)`` into segments with left overlap.

    The keep ranges ``[keep_from, end)`` always form a covering,
    non-overlapping partition of the input, every segment is non-empty
    (sizes differ by at most one symbol), and no more segments are
    produced than there are symbols — ``n_segments > data_length``
    degenerates to one segment per symbol rather than to empty or dropped
    segments.  A zero-length input yields the single empty segment.
    """
    if n_segments < 1:
        raise ValueError("need at least one segment")
    if overlap < 0:
        raise ValueError("overlap cannot be negative")
    count = max(1, min(n_segments, data_length))
    base, extra = divmod(data_length, count)
    segments = []
    keep_from = 0
    for index in range(count):
        end = keep_from + base + (1 if index < extra else 0)
        segments.append(Segment(max(0, keep_from - overlap), keep_from, end))
        keep_from = end
    return segments


def parallel_scan(
    automaton: Automaton,
    data: bytes,
    n_segments: int,
    *,
    pool=None,
    engine_cls: type[Engine] | None = None,
) -> RunResult:
    """Scan ``data`` as ``n_segments`` independent overlapped segments.

    Requires an unanchored automaton (anchored matches belong to segment 0
    only and would need special casing) with finite match length.  Pass a
    ``concurrent.futures`` executor as ``pool`` to actually parallelise;
    the default runs segments serially (the semantics are the point — on a
    spatial architecture each segment is a hardware replica).  Segment
    engines default to :class:`VectorEngine` and are compiled once per
    worker through the engine cache; pass ``engine_cls`` (e.g.
    :class:`~repro.engines.bitset.BitsetEngine`) to pick the engine.

    This is the *strict mode* of
    :func:`repro.resilience.supervisor.supervised_parallel_scan`: one
    attempt per segment, no timeouts, no fallback — the first segment
    failure re-raises in the caller.  Use the supervised form directly
    for timeouts, crash recovery, retries, and poison-segment isolation.
    """
    # Imported lazily: the supervisor imports the engine registry, which
    # imports this module.
    from repro.errors import EngineFailure
    from repro.resilience.supervisor import SupervisorConfig, supervised_parallel_scan

    outcome = supervised_parallel_scan(
        automaton,
        data,
        n_segments,
        pool=pool,
        engine=engine_cls if engine_cls is not None else VectorEngine,
        config=SupervisorConfig(max_attempts=1),
    )
    if not outcome.complete:
        bad = outcome.poisoned[0]
        if bad.exception is not None:
            raise bad.exception
        raise EngineFailure(
            "parallel", bad.error or "segment scan failed", segment=bad.index
        )
    return outcome.result


def parallel_speedup_model(
    data_length: int, n_segments: int, match_window: int
) -> float:
    """Ideal speedup accounting for overlap re-scanning.

    With L-1 symbols of overlap per segment the total work is
    ``data_length + (n-1)(L-1)`` symbols spread over ``n`` replicas.
    """
    if n_segments < 1:
        raise ValueError("need at least one segment")
    overlap = max(match_window - 1, 0) if n_segments > 1 else 0
    per_segment = data_length / n_segments + overlap
    return data_length / per_segment
