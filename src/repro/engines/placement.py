"""Routing-architecture placement model (the Section II-B story).

ANMLZoo's Levenshtein benchmark "maximizes the routing resources of the AP,
but only uses 6% of the architecture's state capacity", because "the
Micron D480's tree-based routing architecture caused this inefficiency,
and ... a more traditional, 2D or island style routing fabric allowed for
much higher utilization" (Wadden et al., FCCM'17).  This module models that
effect analytically so the trade-off can be studied per benchmark:

* every automaton state costs one state unit;
* every state also costs *routing units* — superlinear in its fan-out on a
  hierarchical (tree) fabric whose switch ports saturate, linear on an
  island-style fabric;
* a chip has fixed budgets of both; placement stops at whichever budget
  saturates first, and ``utilization`` is the fraction of state capacity
  actually used at that point.

The model is deliberately simple (no geometric place-and-route) but
reproduces the qualitative Section II-B result: mesh automata are
routing-bound to single-digit state utilization on tree fabrics and far
higher on island fabrics, while chain-structured benchmarks are
state-bound on both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.automaton import Automaton

__all__ = ["RoutingFabric", "PlacementReport", "TREE_FABRIC", "ISLAND_FABRIC", "place"]


@dataclass(frozen=True)
class RoutingFabric:
    """A spatial fabric's state and routing budgets.

    ``fanout_exponent`` models switch-port pressure: a state with fan-out
    ``d`` consumes ``d ** fanout_exponent`` routing units.  Hierarchical
    (tree) fabrics pay superlinearly for high fan-out because wide
    activations must ascend the routing tree; island fabrics pay linearly.
    """

    name: str
    state_capacity: int
    routing_capacity: int
    fanout_exponent: float

    def routing_cost(self, automaton: Automaton) -> float:
        """Routing units the automaton's activation wiring consumes."""
        total = 0.0
        for ident in automaton.idents():
            total += automaton.out_degree(ident) ** self.fanout_exponent
        for _src, _counter in automaton.reset_edges():
            total += 1.0
        return total


@dataclass(frozen=True)
class PlacementReport:
    """Outcome of placing one automaton on one fabric."""

    fabric: str
    states: int
    routing_units: float
    chips_required: int
    bound: str  # "state" | "routing"
    utilization: float  # fraction of one chip's state capacity used

    def __str__(self) -> str:
        return (
            f"{self.fabric}: {self.chips_required} chip(s), "
            f"{self.bound}-bound, {100 * self.utilization:.1f}% state utilization"
        )


def place(automaton: Automaton, fabric: RoutingFabric) -> PlacementReport:
    """Model placing ``automaton`` onto ``fabric``.

    The automaton is spread over as many chips as its *dominant* resource
    demands; utilization is states-per-chip over state capacity, which
    drops below 100% exactly when routing is the binding constraint.
    """
    states = automaton.n_states
    routing = fabric.routing_cost(automaton)
    chips_by_state = max(1, math.ceil(states / fabric.state_capacity))
    chips_by_routing = max(1, math.ceil(routing / fabric.routing_capacity))
    chips = max(chips_by_state, chips_by_routing)
    bound = "routing" if chips_by_routing > chips_by_state else "state"
    utilization = states / (chips * fabric.state_capacity)
    return PlacementReport(
        fabric=fabric.name,
        states=states,
        routing_units=routing,
        chips_required=chips,
        bound=bound,
        utilization=utilization,
    )


#: D480-like hierarchical routing: routing budget tuned so chain automata
#: (fan-out ~1) are state-bound, while fan-out pays quadratically.
TREE_FABRIC = RoutingFabric(
    name="hierarchical (D480-like)",
    state_capacity=49_152,
    routing_capacity=98_304,  # 2 routing units per state slot
    fanout_exponent=2.0,
)

#: Island-style 2D fabric (FPGA-like): same state budget, linear fan-out
#: cost and a proportionally larger routing pool.
ISLAND_FABRIC = RoutingFabric(
    name="island-style 2D",
    state_capacity=49_152,
    routing_capacity=589_824,  # 12 routing units per state slot
    fanout_exponent=1.0,
)
