"""Execution engines: reference, vectorised, lazy-DFA, and spatial models."""

from repro.engines.base import Engine, ReportEvent, RunResult
from repro.engines.lazydfa import LazyDFAEngine, LazyDFAStream
from repro.engines.parallel import parallel_scan, parallel_speedup_model, split_with_overlap
from repro.engines.placement import ISLAND_FABRIC, PlacementReport, RoutingFabric, TREE_FABRIC, place
from repro.engines.prefilter import PrefilterScanner
from repro.engines.reference import ReferenceEngine, ReferenceStream
from repro.engines.spatial import KINTEX_KU060, MICRON_D480, SpatialModel
from repro.engines.vector import VectorEngine, VectorStream

__all__ = [
    "Engine",
    "KINTEX_KU060",
    "LazyDFAEngine",
    "LazyDFAStream",
    "ISLAND_FABRIC",
    "PlacementReport",
    "PrefilterScanner",
    "RoutingFabric",
    "TREE_FABRIC",
    "parallel_scan",
    "parallel_speedup_model",
    "place",
    "split_with_overlap",
    "MICRON_D480",
    "ReferenceEngine",
    "ReferenceStream",
    "ReportEvent",
    "RunResult",
    "SpatialModel",
    "VectorEngine",
    "VectorStream",
]
