"""Execution engines: reference, vectorised, bit-parallel, lazy-DFA, spatial.

``ENGINE_REGISTRY`` maps the short names used by the CLI ``--engine`` flag
and the benchmark harness to engine classes; ``compiled_engine`` /
``auto_engine`` memoise compiled engines across calls (see
:mod:`repro.engines.cache`).
"""

from repro.engines.base import Engine, ReportEvent, RunResult
from repro.engines.bitset import BitsetEngine, BitsetStream
from repro.engines.cache import (
    automaton_fingerprint,
    auto_engine,
    clear_engine_cache,
    compiled_engine,
    engine_cache_info,
    set_engine_cache_limit,
)
from repro.engines.lazydfa import LazyDFAEngine, LazyDFAStream
from repro.engines.parallel import parallel_scan, parallel_speedup_model, split_with_overlap
from repro.engines.placement import ISLAND_FABRIC, PlacementReport, RoutingFabric, TREE_FABRIC, place
from repro.engines.prefilter import PrefilterScanner
from repro.engines.reference import ReferenceEngine, ReferenceStream
from repro.engines.spatial import KINTEX_KU060, MICRON_D480, SpatialModel
from repro.engines.vector import VectorEngine, VectorStream

#: Short name -> engine class, for CLI flags and benchmark harnesses.
ENGINE_REGISTRY: dict[str, type[Engine]] = {
    "reference": ReferenceEngine,
    "vector": VectorEngine,
    "bitset": BitsetEngine,
    "dfa": LazyDFAEngine,
}

__all__ = [
    "Engine",
    "ENGINE_REGISTRY",
    "KINTEX_KU060",
    "BitsetEngine",
    "BitsetStream",
    "LazyDFAEngine",
    "LazyDFAStream",
    "ISLAND_FABRIC",
    "PlacementReport",
    "PrefilterScanner",
    "RoutingFabric",
    "TREE_FABRIC",
    "automaton_fingerprint",
    "auto_engine",
    "clear_engine_cache",
    "compiled_engine",
    "engine_cache_info",
    "parallel_scan",
    "parallel_speedup_model",
    "place",
    "set_engine_cache_limit",
    "split_with_overlap",
    "MICRON_D480",
    "ReferenceEngine",
    "ReferenceStream",
    "ReportEvent",
    "RunResult",
    "SpatialModel",
    "VectorEngine",
    "VectorStream",
]
