"""Bit-parallel packed-bitmask NFA engine (the CPU hot path).

The active set is one packed bitmask: bit ``i`` is set iff state ``i`` is
enabled.  One step is (a) AND with the precomputed per-symbol membership
mask (256 masks, packed with the same ``np.packbits`` layout as
:class:`~repro.engines.vector.VectorEngine`), then (b) OR of the matched
states' precomputed successor bitmasks.  Reports are harvested from the
matched mask only on cycles where the report-mask AND is nonzero, and
``record_active`` is a popcount — so Table I statistics reproduce exactly.

Two structural decisions make this engine fast where the numpy engines are
not:

* **Masks are CPython big integers**, not numpy arrays.  A big int *is* a
  packed word array operated on in C, and a whole-mask AND/OR is a single
  interpreter call with no per-call numpy dispatch overhead.  (Measured on
  the Snort ablation: a numpy ``uint64[words]`` variant of the same loop —
  ``bitwise_and(out=)`` + ``flatnonzero`` gather/OR-reduce with fully
  preallocated scratch — runs 10-20x *slower* than the big-int loop,
  because three-to-six numpy calls per symbol cost more than the whole
  step.  This is the same engineering lesson as the repo's
  :class:`~repro.baselines.shift_and.ShiftAndMatcher`.)
* **ALL_INPUT start states are lifted out of the loop.**  Their matches
  depend only on the current symbol, so their successor-OR, report lists
  and counter feed/reset events are precomputed per symbol (256 entries).
  The per-symbol loop then only walks the *non-start* matched bits, which
  on low-activity workloads (Snort) averages below one bit per symbol.

Successor propagation dispatches per chunk of symbols between two paths,
picked from the running matched-set density:

* **sparse path** — walk the set bits of the matched mask one at a time
  (``m & -m``) and OR that state's successor mask; cost proportional to
  the matched count.  Wins when active sets are small.
* **block path** — walk the matched mask a byte-word at a time (skipping
  zero words) and OR a lazily memoised per-(word, value) successor mask
  from :attr:`_block_lut`; cost proportional to ``n/8`` independent of
  density (the memoised equivalent of a dense boolean matmul row).  Wins
  when active sets are large.

Per-state successor bitmasks are inherently O(n^2) bits in the worst case,
so construction refuses automata above ``max_states`` (default 65536) with
:class:`~repro.errors.CapacityError`; use
:func:`repro.engines.cache.auto_engine` to fall back to ``VectorEngine``
for the multi-million-state full-scale builds.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.core.automaton import Automaton
from repro.core.elements import CounterElement, STE, StartMode
from repro.engines.base import Engine, ReportEvent, RunResult
from repro.engines.reference import _CounterState
from repro.errors import CapacityError
from repro.resilience.guards import current_guard

__all__ = ["BitsetEngine", "BitsetStream"]

_CHUNK = 65536  # states per chunk when packing the charset matrix
_BLOCK_SYMBOLS = 512  # symbols between density-heuristic re-evaluations


class BitsetEngine(Engine):
    """Bit-parallel active-set simulation of a homogeneous automaton."""

    def __init__(self, automaton: Automaton, *, max_states: int = 65536) -> None:
        super().__init__(automaton)
        compile_t0 = telemetry.clock()
        stes: list[STE] = list(automaton.stes())
        n = len(stes)
        if n > max_states:
            raise CapacityError(
                f"automaton has {n} STEs; BitsetEngine's per-state successor "
                f"bitmasks are quadratic, so it is capped at {max_states} "
                "states (use VectorEngine or raise max_states)"
            )
        self._idents = [ste.ident for ste in stes]
        self._index = {ste.ident: i for i, ste in enumerate(stes)}
        self._n = n
        self._nbytes = (n + 7) // 8

        # Per-symbol membership masks, packed exactly like VectorEngine's
        # _charbits and then adopted as big ints (bit i = state i).
        charbits = np.zeros((256, self._nbytes), dtype=np.uint8)
        for base in range(0, n, _CHUNK):
            chunk = stes[base : base + _CHUNK]
            block = np.empty((len(chunk), 256), dtype=bool)
            for row, ste in enumerate(chunk):
                block[row] = ste.charset.to_bool_array()
            packed = np.packbits(block.T, axis=1, bitorder="little")
            charbits[:, base // 8 : base // 8 + packed.shape[1]] = packed
        self._charmask = [
            int.from_bytes(charbits[sym].tobytes(), "little") for sym in range(256)
        ]

        # Per-state successor bitmasks (STE -> STE edges only); counter
        # feeds and reset wires go through the per-state dicts below.
        succ = [0] * n
        self._counter_feeds: dict[int, tuple[str, ...]] = {}
        for ste in stes:
            i = self._index[ste.ident]
            acc = 0
            feeds: list[str] = []
            for dst in automaton.successors(ste.ident):
                if isinstance(automaton[dst], STE):
                    acc |= 1 << self._index[dst]
                else:
                    feeds.append(dst)
            succ[i] = acc
            if feeds:
                self._counter_feeds[i] = tuple(feeds)
        self._succ_int = succ
        self._reset_feeds: dict[int, tuple[str, ...]] = {}
        for src, counter in automaton.reset_edges():
            if src in self._index:
                i = self._index[src]
                self._reset_feeds[i] = self._reset_feeds.get(i, ()) + (counter,)

        self._report_int = 0
        for i, ste in enumerate(stes):
            if ste.report:
                self._report_int |= 1 << i
        self._report_codes = [ste.report_code for ste in stes]
        self._feed_int = 0
        for i in self._counter_feeds:
            self._feed_int |= 1 << i
        for i in self._reset_feeds:
            self._feed_int |= 1 << i

        all_input = 0
        initial_rest = 0
        for i, ste in enumerate(stes):
            if ste.start is StartMode.ALL_INPUT:
                all_input |= 1 << i
            elif ste.start is StartMode.START_OF_DATA:
                initial_rest |= 1 << i
        self._all_input = all_input
        self._not_all = ~all_input
        self._all_count = all_input.bit_count()
        self._initial_rest = initial_rest

        # Counters (rare; handled per-event in Python, as in VectorEngine).
        self._counters: dict[str, CounterElement] = {
            c.ident: c for c in automaton.counters()
        }
        self._counter_succ_int: dict[str, int] = {}
        for ident in self._counters:
            acc = 0
            for dst in automaton.successors(ident):
                if isinstance(automaton[dst], STE):
                    acc |= 1 << self._index[dst]
            self._counter_succ_int[ident] = acc
        self._has_counters = bool(self._counters)

        # ALL_INPUT start states match as a function of the symbol alone:
        # precompute their successor-OR, reports, and counter feed/reset
        # events once per symbol so the hot loop never touches them.
        start_next = [0] * 256
        start_reports: list[tuple[int, ...]] = [()] * 256
        start_events: list[tuple[str, ...]] = [()] * 256
        start_resets: list[tuple[str, ...]] = [()] * 256
        for ste in stes:
            if ste.start is not StartMode.ALL_INPUT:
                continue
            i = self._index[ste.ident]
            feeds = self._counter_feeds.get(i, ())
            resets = self._reset_feeds.get(i, ())
            for sym in ste.charset:
                start_next[sym] |= succ[i]
                if ste.report:
                    start_reports[sym] += (i,)
                if feeds:
                    start_events[sym] += feeds
                if resets:
                    start_resets[sym] += resets
        not_all = self._not_all
        self._start_next = [mask & not_all for mask in start_next]
        self._start_reports = [tuple(sorted(r)) for r in start_reports]
        self._start_events = start_events
        self._start_resets = start_resets
        # Fused per-symbol row (membership mask, premasked start successors,
        # start reports): one list index in the hot loop instead of three.
        self._sym_tab = list(
            zip(self._charmask, self._start_next, self._start_reports)
        )

        # Lazily memoised block-path LUT: (byte_position << 8 | byte_value)
        # -> OR of the successor masks of those eight states.
        self._block_lut: dict[int, int] = {}
        # Density cutover between the sparse and block paths: the sparse
        # per-bit walk costs ~1 unit per matched bit, the block walk ~2
        # units per mask byte regardless of density.
        self._block_cutover = max(4, n >> 2)
        telemetry.record_compile("bitset", compile_t0, n)

    # -- helpers -----------------------------------------------------------

    def _lut_entry(self, key: int) -> int:
        """Build (and memoise) the successor-OR of one matched-mask byte."""
        base = (key >> 8) << 3
        byte = key & 0xFF
        succ = self._succ_int
        acc = 0
        while byte:
            low = byte & -byte
            acc |= succ[base + low.bit_length() - 1]
            byte ^= low
        self._block_lut[key] = acc
        return acc

    # -- execution ---------------------------------------------------------

    def stream(self, *, record_active: bool = False) -> "BitsetStream":
        """A streaming session: feed chunks, state persists between feeds."""
        return BitsetStream(self, record_active=record_active)

    def run(self, data: bytes, *, record_active: bool = False) -> RunResult:
        session = self.stream(record_active=record_active)
        reports = session.feed(data)
        return RunResult(
            reports=reports,
            cycles=session.offset,
            active_per_cycle=session.active_per_cycle,
        )


class BitsetStream:
    """Persistent execution state for :class:`BitsetEngine`.

    The state is the non-start part of the enabled mask (ALL_INPUT states
    are implicitly always enabled) plus the counter states and the current
    sparse/block path choice, so chunk boundaries are invisible.
    """

    def __init__(self, engine: BitsetEngine, *, record_active: bool = False) -> None:
        self._engine = engine
        self.offset = 0
        self.active_per_cycle: list[int] | None = [] if record_active else None
        self._counter_state = {
            ident: _CounterState(element)
            for ident, element in engine._counters.items()
        }
        self._rest = engine._initial_rest
        self._use_block = False

    def feed(self, data: bytes) -> list[ReportEvent]:
        scan_t0 = telemetry.clock()
        engine = self._engine
        reports: list[ReportEvent] = []
        base = self.offset
        rest = self._rest
        use_block = self._use_block
        cutover = engine._block_cutover
        pos = 0
        length = len(data)
        total_pop = 0
        guard = current_guard()
        if guard is not None:
            guard.check_deadline("bitset", base)
        while pos < length:
            if guard is not None:
                guard.check_deadline("bitset", base + pos)
            end = min(pos + _BLOCK_SYMBOLS, length)
            step = self._run_block if use_block else self._run_sparse
            rest, matched_pop = step(data, pos, end, rest, base, reports)
            use_block = matched_pop > cutover * (end - pos)
            total_pop += matched_pop
            pos = end
        self._rest = rest
        self._use_block = use_block
        self.offset = base + length
        reports.sort()
        if scan_t0 is not None:
            telemetry.record_scan("bitset", scan_t0, length, len(reports))
            telemetry.incr("engine.matched_states.bitset", total_pop)
        return reports

    # Both path loops share the same skeleton: record popcount, AND with
    # the symbol mask, emit precomputed start-state reports, OR successor
    # masks of the matched bits into the precomputed start-successor mask,
    # then apply the (rare) counter machinery.  They differ only in how
    # the matched bits are walked.

    def _run_sparse(self, data, pos, end, rest, base, reports):
        """Per-bit walk of the matched mask; O(matched count) per symbol.

        The no-match arm is the hot one on low-activity workloads: one
        fused table row, one AND, and the next mask comes straight from
        the premasked start-successor table.
        """
        engine = self._engine
        tab = engine._sym_tab
        succ = engine._succ_int
        rep_int = engine._report_int
        feed_int = engine._feed_int
        not_all = engine._not_all
        idents = engine._idents
        codes = engine._report_codes
        all_count = engine._all_count
        has_counters = engine._has_counters
        start_events = engine._start_events
        start_resets = engine._start_resets
        active = self.active_per_cycle
        append = reports.append
        pop = 0
        for offset, sym in enumerate(data[pos:end], pos):
            if active is not None:
                active.append(all_count + rest.bit_count())
            mask, nxt0, sr = tab[sym]
            m = rest & mask
            if sr:
                at = base + offset
                for i in sr:
                    append(ReportEvent(at, idents[i], codes[i]))
            if m:
                pop += m.bit_count()
                hits = m & rep_int
                if hits:
                    at = base + offset
                    while hits:
                        low = hits & -hits
                        i = low.bit_length() - 1
                        append(ReportEvent(at, idents[i], codes[i]))
                        hits ^= low
                nxt = nxt0
                mm = m
                while mm:
                    low = mm & -mm
                    nxt |= succ[low.bit_length() - 1]
                    mm ^= low
                if has_counters and (
                    start_events[sym] or start_resets[sym] or m & feed_int
                ):
                    nxt |= self._counter_cycle(
                        sym, m & feed_int, base + offset, reports
                    )
                rest = nxt & not_all
            elif has_counters and (start_events[sym] or start_resets[sym]):
                extra = self._counter_cycle(sym, 0, base + offset, reports)
                rest = (nxt0 | extra) & not_all
            else:
                rest = nxt0
        return rest, pop

    def _run_block(self, data, pos, end, rest, base, reports):
        """Byte-word walk of the matched mask; O(n/8) per symbol."""
        engine = self._engine
        tab = engine._sym_tab
        rep_int = engine._report_int
        feed_int = engine._feed_int
        not_all = engine._not_all
        idents = engine._idents
        codes = engine._report_codes
        all_count = engine._all_count
        has_counters = engine._has_counters
        start_events = engine._start_events
        start_resets = engine._start_resets
        nbytes = engine._nbytes
        lut_get = engine._block_lut.get
        lut_build = engine._lut_entry
        active = self.active_per_cycle
        append = reports.append
        pop = 0
        for offset, sym in enumerate(data[pos:end], pos):
            if active is not None:
                active.append(all_count + rest.bit_count())
            mask, nxt0, sr = tab[sym]
            m = rest & mask
            if sr:
                at = base + offset
                for i in sr:
                    append(ReportEvent(at, idents[i], codes[i]))
            if m:
                pop += m.bit_count()
                hits = m & rep_int
                if hits:
                    at = base + offset
                    while hits:
                        low = hits & -hits
                        i = low.bit_length() - 1
                        append(ReportEvent(at, idents[i], codes[i]))
                        hits ^= low
                nxt = nxt0
                key = -256
                for byte in m.to_bytes(nbytes, "little"):
                    key += 256
                    if byte:
                        entry = lut_get(key | byte)
                        if entry is None:
                            entry = lut_build(key | byte)
                        nxt |= entry
                if has_counters and (
                    start_events[sym] or start_resets[sym] or m & feed_int
                ):
                    nxt |= self._counter_cycle(
                        sym, m & feed_int, base + offset, reports
                    )
                rest = nxt & not_all
            elif has_counters and (start_events[sym] or start_resets[sym]):
                extra = self._counter_cycle(sym, 0, base + offset, reports)
                rest = (nxt0 | extra) & not_all
            else:
                rest = nxt0
        return rest, pop

    def _counter_cycle(self, sym, fed, offset, reports):
        """Apply one cycle of counter resets/events; return fired successors."""
        engine = self._engine
        events = set(engine._start_events[sym])
        resets = set(engine._start_resets[sym])
        counter_feeds = engine._counter_feeds
        reset_feeds = engine._reset_feeds
        while fed:
            low = fed & -fed
            i = low.bit_length() - 1
            events.update(counter_feeds.get(i, ()))
            resets.update(reset_feeds.get(i, ()))
            fed ^= low
        state = self._counter_state
        # Resets apply before this cycle's count events (Section XI).
        for ident in resets:
            state[ident].reset()
        extra = 0
        for ident in sorted(events):
            counter = state[ident]
            if counter.on_count_event():
                element = counter.element
                if element.report:
                    reports.append(ReportEvent(offset, ident, element.report_code))
                extra |= engine._counter_succ_int[ident]
        return extra
