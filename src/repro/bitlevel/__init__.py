"""Bit-level automata construction (Section IX-B)."""

from repro.bitlevel.builder import BitPatternBuilder, bits_of, bytes_to_bits

__all__ = ["BitPatternBuilder", "bits_of", "bytes_to_bits"]
