"""Bit-level pattern builder (Section IX-B).

File metadata patterns contain bit-fields that cross byte boundaries —
e.g. the MS-DOS timestamp in a PKZip local header packs seconds, minutes
and hours into 16 bits.  "Bit-level automata are a much more natural medium
to define complex bit-fields"; this builder constructs them directly:

* :meth:`BitPatternBuilder.bytes` appends exact bytes,
* :meth:`BitPatternBuilder.wildcard_bytes` appends don't-care bytes,
* :meth:`BitPatternBuilder.field` appends an n-bit field restricted to an
  explicit set of allowed values — compiled to a shared-prefix binary trie
  so irregular sets (minutes 0..59 in 6 bits) stay exact.

The finished automaton runs over {0, 1} symbols and is normally passed to
:func:`repro.transforms.striding.stride` for byte-level execution.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.automaton import Automaton
from repro.core.charset import BIT_ONE, BIT_ZERO, CharSet
from repro.core.elements import StartMode
from repro.errors import AutomatonError

__all__ = ["BitPatternBuilder", "bits_of", "bytes_to_bits"]

_BIT_ANY = CharSet.from_ranges([(0, 1)])


def bits_of(value: int, width: int) -> list[int]:
    """``value`` as ``width`` bits, MSB first."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bytes_to_bits(data: bytes) -> bytes:
    """Expand bytes into a {0,1} symbol stream (MSB first per byte)."""
    return bytes((byte >> (7 - i)) & 1 for byte in data for i in range(8))


class BitPatternBuilder:
    """Incrementally build a bit-level pattern automaton.

    The builder keeps a *frontier* of states whose match means "the pattern
    so far has been consumed"; each append wires new structure onto the
    frontier.  Call :meth:`finish` to mark reports and obtain the
    automaton.
    """

    def __init__(self, name: str, *, anchored: bool = False) -> None:
        self.automaton = Automaton(name)
        self._anchored = anchored
        self._frontier: list[str] = []
        self._at_start = True
        self._counter = 0
        self._finished = False

    # -- internal ------------------------------------------------------------

    def _new_state(self, charset: CharSet) -> str:
        ident = f"b{self._counter}"
        self._counter += 1
        start = StartMode.NONE
        if self._at_start:
            start = StartMode.START_OF_DATA if self._anchored else StartMode.ALL_INPUT
        self.automaton.add_ste(ident, charset, start=start)
        return ident

    def _append_single(self, charset: CharSet) -> None:
        ident = self._new_state(charset)
        for source in self._frontier:
            self.automaton.add_edge(source, ident)
        self._frontier = [ident]
        self._at_start = False

    # -- public API ------------------------------------------------------------

    def bit(self, value: int) -> "BitPatternBuilder":
        """Append one exact bit."""
        if value not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        self._append_single(BIT_ONE if value else BIT_ZERO)
        return self

    def bits(self, values: Iterable[int]) -> "BitPatternBuilder":
        for value in values:
            self.bit(value)
        return self

    def bytes(self, data: bytes) -> "BitPatternBuilder":
        """Append exact bytes (MSB first)."""
        return self.bits(bytes_to_bits(data))

    def wildcard_bits(self, count: int) -> "BitPatternBuilder":
        """Append ``count`` don't-care bits."""
        for _ in range(count):
            self._append_single(_BIT_ANY)
        return self

    def wildcard_bytes(self, count: int) -> "BitPatternBuilder":
        return self.wildcard_bits(8 * count)

    def field(self, width: int, allowed: Iterable[int]) -> "BitPatternBuilder":
        """Append a ``width``-bit field restricted to ``allowed`` values.

        Compiled to a *minimized* binary DAG (prefixes shared as a trie,
        equivalent suffixes hash-consed bottom-up), so structured
        constraints stay compact: the full 16-bit MS-DOS timestamp
        relation (43,200 legal values) costs a few dozen states, not
        thousands.
        """
        values = sorted(set(allowed))
        if not values:
            raise AutomatonError("field must allow at least one value")
        if values[-1] >= (1 << width) or values[0] < 0:
            raise AutomatonError(f"field value out of {width}-bit range")
        if len(values) == 1 << width:
            return self.wildcard_bits(width)  # fully wild: no DAG needed

        # 1. Build the prefix trie: (depth, prefix) -> set of child bits.
        children: dict[tuple[int, int], set[int]] = {(-1, 0): set()}
        for value in values:
            bits = bits_of(value, width)
            prefix = 0
            for depth, bitval in enumerate(bits):
                children.setdefault((depth - 1, prefix), set()).add(bitval)
                prefix = (prefix << 1) | bitval
                children.setdefault((depth, prefix), set())

        # 2. Hash-cons bottom-up: nodes with identical bit label and
        #    identical canonical child sets collapse (trie -> DAWG).
        canon_of: dict[tuple[int, int], int] = {}
        signature_id: dict[tuple, int] = {}
        canon_children: dict[int, set[int]] = {}
        canon_bit: dict[int, int] = {}
        for depth in range(width - 1, -1, -1):
            for (d, prefix), kids in children.items():
                if d != depth:
                    continue
                bitval = prefix & 1
                kid_ids = frozenset(
                    canon_of[(depth + 1, (prefix << 1) | kid)] for kid in kids
                )
                signature = (bitval, kid_ids)
                node_id = signature_id.get(signature)
                if node_id is None:
                    node_id = len(signature_id)
                    signature_id[signature] = node_id
                    canon_children[node_id] = set(kid_ids)
                    canon_bit[node_id] = bitval
                canon_of[(depth, prefix)] = node_id

        # 3. Materialise one STE per canonical node, wiring the DAG.
        entry_frontier = list(self._frontier)
        entry_at_start = self._at_start
        state_of: dict[int, str] = {}
        self._at_start = False
        for node_id, bitval in canon_bit.items():
            self._at_start = entry_at_start and any(
                canon_of[(0, b)] == node_id for b in children[(-1, 0)]
            )
            state_of[node_id] = self._new_state(BIT_ONE if bitval else BIT_ZERO)
        for node_id, kids in canon_children.items():
            for kid in kids:
                self.automaton.add_edge(state_of[node_id], state_of[kid])
        roots = {canon_of[(0, b)] for b in children[(-1, 0)]}
        for root in roots:
            for source in entry_frontier:
                self.automaton.add_edge(source, state_of[root])
        leaves = {
            canon_of[(width - 1, prefix)]
            for (depth, prefix) in children
            if depth == width - 1
        }
        self._frontier = [state_of[leaf] for leaf in leaves]
        self._at_start = False
        return self

    def finish(self, *, report_code: object = None) -> Automaton:
        """Mark the frontier as reporting and return the automaton."""
        if self._finished:
            raise AutomatonError("finish() called twice")
        if not self._frontier:
            raise AutomatonError("empty pattern")
        self._finished = True
        for ident in self._frontier:
            element = self.automaton[ident]
            element.report = True
            element.report_code = report_code
        return self.automaton
