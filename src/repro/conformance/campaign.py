"""Fuzz-campaign orchestration: seeds in, divergence summary out.

One campaign runs ``n_seeds`` generated cases through the differential
runner (every fourth case in bit-level mode so striding is covered),
shrinks every divergence to a minimal repro, optionally serialises the
repros to disk, and produces a JSON-ready summary.  The CLI
(``repro conformance``) writes that summary to
``bench_results/CONFORMANCE.json`` so the suite's conformance trajectory
is auditable across PRs.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro import telemetry
from repro.conformance.generator import CaseConfig, random_case
from repro.conformance.runner import Divergence, run_case
from repro.conformance.shrink import save_repro, shrink_case

__all__ = ["CampaignReport", "run_campaign", "summary_dict"]

#: Every Nth seed generates a bit-level case (striding coverage).
_BIT_LEVEL_EVERY = 4


@dataclass
class DivergenceRecord:
    """One divergence plus its shrunk repro."""

    seed: int
    divergence: Divergence
    shrunk_states: int | None = None
    shrunk_input_len: int | None = None
    repro_path: str | None = None


@dataclass
class CampaignReport:
    """The outcome of one conformance campaign."""

    seeds: int
    start_seed: int
    elapsed_s: float
    records: list[DivergenceRecord] = field(default_factory=list)
    #: Seeds actually finished (== ``seeds`` unless truncated/killed).
    completed_seeds: int = 0
    #: True when a ``max_seconds`` budget ended the campaign early.
    truncated: bool = False

    @property
    def clean(self) -> bool:
        return not self.records


def _checker_for(subject: str, **run_kwargs) -> Callable:
    """True iff the case still diverges on ``subject`` (any field)."""

    def check(automaton, data) -> bool:
        return any(
            d.subject == subject for d in run_case(automaton, data, **run_kwargs)
        )

    return check


def run_campaign(
    n_seeds: int,
    *,
    start_seed: int = 0,
    config: CaseConfig | None = None,
    engine_factories=None,
    shrink: bool = True,
    repro_dir=None,
    progress: Callable[[int, int], None] | None = None,
    max_seconds: float | None = None,
    checkpoint=None,
    resume: bool = False,
) -> CampaignReport:
    """Run ``n_seeds`` differential cases; shrink and record divergences.

    ``engine_factories`` is forwarded to :func:`~repro.conformance.runner.run_case`
    (fault-injection tests use it); ``repro_dir`` enables on-disk repro
    serialization, one subdirectory per divergent seed.

    ``max_seconds`` bounds the campaign's wall clock: when the budget
    runs out, remaining seeds are skipped and the report is marked
    ``truncated`` — the summary is still a complete, valid document.
    ``checkpoint``/``resume`` journal per-seed results so a killed
    campaign re-runs only the seeds it never finished
    (docs/RESILIENCE.md).
    """
    from repro.resilience import faults
    from repro.resilience.checkpoint import SweepCheckpoint

    started = time.perf_counter()
    meta = {
        "n_seeds": n_seeds,
        "start_seed": start_seed,
        "bit_level_every": _BIT_LEVEL_EVERY,
        "shrink": shrink,
    }
    ckpt = (
        SweepCheckpoint.open(checkpoint, meta, resume=resume) if checkpoint else None
    )
    report = CampaignReport(seeds=n_seeds, start_seed=start_seed, elapsed_s=0.0)
    for index in range(n_seeds):
        seed = start_seed + index
        if max_seconds is not None and time.perf_counter() - started > max_seconds:
            report.truncated = True
            telemetry.incr("conformance.truncated")
            break
        bit_level = index % _BIT_LEVEL_EVERY == _BIT_LEVEL_EVERY - 1
        cell_key = f"seed::{seed}"
        if ckpt is not None and ckpt.has(cell_key):
            cell = ckpt.get(cell_key)
            report.completed_seeds += 1
            for row in cell["records"]:
                report.records.append(
                    DivergenceRecord(
                        seed=row["seed"],
                        divergence=Divergence(
                            subject=row["subject"],
                            field=row["field"],
                            detail=row["detail"],
                        ),
                        shrunk_states=row["shrunk_states"],
                        shrunk_input_len=row["shrunk_input_len"],
                        repro_path=row["repro_path"],
                    )
                )
            continue
        with telemetry.span("conformance.generate"):
            case = random_case(seed, config=config, bit_level=bit_level)
        run_kwargs = dict(
            engine_factories=engine_factories, bit_level=bit_level
        )
        with telemetry.span("conformance.case"):
            divergences = run_case(case.automaton, case.data, **run_kwargs)
        telemetry.incr("conformance.cases")
        telemetry.incr("conformance.divergences", len(divergences))
        if progress is not None:
            progress(index + 1, len(divergences))
        seed_records: list[DivergenceRecord] = []
        for divergence in divergences:
            record = DivergenceRecord(seed=seed, divergence=divergence)
            if shrink:
                small, small_data = shrink_case(
                    case.automaton,
                    case.data,
                    _checker_for(divergence.subject, **run_kwargs),
                )
                record.shrunk_states = small.n_states
                record.shrunk_input_len = len(small_data)
                if repro_dir is not None:
                    slug = (
                        divergence.subject.replace(":", "_")
                        .replace("[", "_")
                        .replace("]", "")
                        .replace(",", "_")
                        .replace("=", "")
                    )
                    path = save_repro(
                        f"{repro_dir}/case_seed{seed}_{slug}",
                        small,
                        small_data,
                        {
                            "seed": seed,
                            "subject": divergence.subject,
                            "field": divergence.field,
                            "detail": divergence.detail,
                            "bit_level": bit_level,
                        },
                    )
                    record.repro_path = str(path)
            seed_records.append(record)
            report.records.append(record)
        report.completed_seeds += 1
        if ckpt is not None:
            ckpt.record(
                cell_key,
                {
                    "records": [
                        {
                            "seed": r.seed,
                            "subject": r.divergence.subject,
                            "field": r.divergence.field,
                            "detail": r.divergence.detail,
                            "shrunk_states": r.shrunk_states,
                            "shrunk_input_len": r.shrunk_input_len,
                            "repro_path": r.repro_path,
                        }
                        for r in seed_records
                    ]
                },
            )
            faults.maybe_halt_after_cells(len(ckpt.cells))
    report.elapsed_s = time.perf_counter() - started
    if ckpt is not None and not report.truncated:
        ckpt.done()
    return report


def summary_dict(report: CampaignReport, *, goldens_problems=None) -> dict:
    """A JSON-ready campaign summary (the CONFORMANCE.json payload)."""
    return {
        "seeds": report.seeds,
        "start_seed": report.start_seed,
        "completed_seeds": report.completed_seeds,
        "truncated": report.truncated,
        "elapsed_s": round(report.elapsed_s, 3),
        "clean": report.clean and not goldens_problems,
        "divergences": [
            {
                "seed": r.seed,
                "subject": r.divergence.subject,
                "field": r.divergence.field,
                "detail": r.divergence.detail[:400],
                "shrunk_states": r.shrunk_states,
                "shrunk_input_len": r.shrunk_input_len,
                "repro_path": r.repro_path,
            }
            for r in report.records
        ],
        "golden_problems": list(goldens_problems or []),
    }
