"""Differential conformance runner.

Feeds one (automaton, input) case to every registered engine — as a single
``run()`` and as chunked/zero-length-chunk streaming feeds — and to every
semantics-preserving transform (prefix/suffix/bidirectional merging,
widening, striding) with the transformed automaton additionally
round-tripped through the MNRL and ANML io layers, then diffs the
observable behaviour against :class:`~repro.engines.reference.ReferenceEngine`:

* the **report stream** — exact ``(offset, ident, code)`` events for
  engines and io round trips; the per-transform projection (e.g. the
  ``(offset, code)`` *set* for merges, which legally collapse same-code
  duplicates) for transforms;
* the **active-set trace** — enabled elements per cycle;
* the final **counter states** — ``(count, latched, stopped)`` per counter.

Each case is also handed to the static analyzer (:mod:`repro.analysis`):
the analyzer must not crash, and its universal claims (dead states,
unsatisfiable charsets, inert counters) are cross-checked against the
reference trace — the fuzzer deliberately produces the degenerate shapes
those passes flag, so every campaign doubles as an analyzer soundness
campaign.

Any mismatch (or a subject crash) becomes a :class:`Divergence`.  The
runner is the inner loop of :func:`repro.conformance.campaign.run_campaign`
and of the fixed-seed smoke tests; the shrinker replays it to minimise a
failing case.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass

from repro import telemetry
from repro.core.automaton import Automaton
from repro.engines import ENGINE_REGISTRY
from repro.engines.base import Engine
from repro.engines.reference import ReferenceEngine
from repro.errors import ReproError
from repro.io import from_anml, from_mnrl, to_anml, to_mnrl
from repro.transforms import (
    merge_bidirectional,
    merge_common_prefixes,
    merge_common_suffixes,
    pack_bits,
    stride,
    widen,
)

__all__ = ["Divergence", "Outcome", "reference_outcome", "engine_outcome", "run_case"]

#: Chunk sizes used for streaming feeds; 0 means "insert a zero-length
#: feed between every chunk" and rides along with chunk size 3.
_STREAM_CHUNKS = (1, 7)


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement with the reference engine."""

    subject: str  #: e.g. ``engine:bitset[chunk=7]`` or ``transform:widen``
    field: str  #: ``reports`` | ``active`` | ``cycles`` | ``counters`` | ``crash``
    detail: str  #: human-readable expected-vs-actual summary

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.subject}: {self.field} diverged — {self.detail}"


@dataclass
class Outcome:
    """Canonical observable behaviour of one execution."""

    reports: list[tuple[int, str, str]]  #: sorted (offset, ident, repr(code))
    active: list[int]
    cycles: int
    counters: dict[str, tuple[int, bool, bool]]

    def event_set(self) -> frozenset[tuple[int, str]]:
        """The (offset, code) set projection merges must preserve."""
        return frozenset((offset, code) for offset, _ident, code in self.reports)


def _canonical_reports(reports) -> list[tuple[int, str, str]]:
    # ReportEvent.code is excluded from dataclass equality, so canonicalise
    # through repr() — the conformance diff must catch code corruption too.
    return sorted((e.offset, e.ident, repr(e.code)) for e in reports)


def _counter_snapshot(stream) -> dict[str, tuple[int, bool, bool]]:
    states = getattr(stream, "_counter_state", None) or {}
    return {
        ident: (state.count, state.latched, state.stopped)
        for ident, state in states.items()
    }


def _chunks(data: bytes, chunk: int) -> list[bytes]:
    if chunk <= 0:
        return [data]
    parts = [data[i : i + chunk] for i in range(0, len(data), chunk)]
    return parts or [b""]


def engine_outcome(
    engine: Engine, data: bytes, *, chunk: int = 0, zero_feeds: bool = False
) -> Outcome:
    """Run ``engine`` over ``data`` via its streaming session.

    ``chunk > 0`` splits the input into fixed-size feeds; ``zero_feeds``
    additionally interleaves empty feeds (chunk boundaries and zero-length
    feeds must both be invisible to the automaton).
    """
    with telemetry.span(f"conformance.scan.{type(engine).__name__}"):
        stream = engine.stream(record_active=True)
        reports = []
        for part in _chunks(data, chunk):
            if zero_feeds:
                reports.extend(stream.feed(b""))
            reports.extend(stream.feed(part))
        if zero_feeds:
            reports.extend(stream.feed(b""))
    return Outcome(
        reports=_canonical_reports(reports),
        active=list(stream.active_per_cycle or []),
        cycles=stream.offset,
        counters=_counter_snapshot(stream),
    )


def reference_outcome(automaton: Automaton, data: bytes) -> Outcome:
    """The oracle outcome: one whole-input ReferenceEngine run."""
    return engine_outcome(ReferenceEngine(automaton), data)


def _diff(subject: str, expected: Outcome, actual: Outcome) -> list[Divergence]:
    out = []
    if actual.reports != expected.reports:
        out.append(
            Divergence(
                subject,
                "reports",
                f"expected {expected.reports!r}, got {actual.reports!r}",
            )
        )
    if actual.active != expected.active:
        out.append(
            Divergence(
                subject,
                "active",
                f"expected {expected.active!r}, got {actual.active!r}",
            )
        )
    if actual.cycles != expected.cycles:
        out.append(
            Divergence(
                subject, "cycles", f"expected {expected.cycles}, got {actual.cycles}"
            )
        )
    if actual.counters != expected.counters:
        out.append(
            Divergence(
                subject,
                "counters",
                f"expected {expected.counters!r}, got {actual.counters!r}",
            )
        )
    return out


def _crash(subject: str, exc: Exception) -> Divergence:
    return Divergence(subject, "crash", f"{type(exc).__name__}: {exc}")


def default_engine_factories() -> dict[str, Callable[[Automaton], Engine]]:
    """One factory per registered engine (the CLI ``--engine`` names)."""
    return {name: cls for name, cls in ENGINE_REGISTRY.items() if name != "reference"}


# -- transform subjects -------------------------------------------------------


def _mnrl_roundtrip(automaton: Automaton) -> Automaton:
    # Through an actual JSON encode/decode, so JSON-type coercion of report
    # codes is part of what is being tested.
    return from_mnrl(json.loads(json.dumps(to_mnrl(automaton))))


def _anml_roundtrip(automaton: Automaton) -> Automaton:
    return from_anml(to_anml(automaton))


def _merge_subjects(automaton: Automaton):
    yield "transform:prefix_merge", merge_common_prefixes(automaton)[0]
    yield "transform:suffix_merge", merge_common_suffixes(automaton)[0]
    yield "transform:bidirectional", merge_bidirectional(automaton)[0]


def _widen_applicable(automaton: Automaton, data: bytes, pad: int = 0) -> bool:
    if any(True for _ in automaton.counters()):
        return False
    if any(ste.charset.matches(pad) for ste in automaton.stes()):
        return False  # pad symbol inside a charset makes widening ambiguous
    return pad not in data


def _analysis_subjects(automaton: Automaton, data: bytes) -> list[Divergence]:
    """Lint the case and cross-check analyzer claims against the oracle.

    Two subjects: ``analysis:lint`` (the analyzer itself must never crash
    on any fuzzer-generated automaton) and ``analysis:crosscheck`` (every
    universal claim — "state is dead", "charset never matches", "counter
    never fires" — must hold on the ReferenceEngine's recorded trace for
    this input).  A violated claim is an analyzer soundness bug.
    """
    from repro.analysis import analyze
    from repro.analysis.crosscheck import claim_violations

    divergences: list[Divergence] = []
    try:
        report = analyze(automaton)
    except Exception as exc:  # noqa: BLE001 - analyzer crash is a finding
        return [_crash("analysis:lint", exc)]
    try:
        violations = claim_violations(automaton, data, report)
    except Exception as exc:  # noqa: BLE001
        return [_crash("analysis:crosscheck", exc)]
    divergences.extend(
        Divergence("analysis:crosscheck", "claims", violation)
        for violation in violations
    )
    return divergences


def run_case(
    automaton: Automaton,
    data: bytes,
    *,
    engine_factories: dict[str, Callable[[Automaton], Engine]] | None = None,
    include_transforms: bool = True,
    include_analysis: bool = True,
    bit_level: bool = False,
    stream_chunks: tuple[int, ...] = _STREAM_CHUNKS,
) -> list[Divergence]:
    """All divergences of one case against the reference engine.

    ``engine_factories`` overrides the engine set (the fault-injection
    tests pass deliberately broken engines through here); ``bit_level``
    additionally exercises :func:`~repro.transforms.striding.stride` for
    k in {2, 4, 8} over the packed input.  ``include_analysis`` runs the
    static analyzer over the case and cross-checks its universal claims
    against the reference trace (see :mod:`repro.analysis.crosscheck`).
    """
    expected = reference_outcome(automaton, data)
    has_counters = any(True for _ in automaton.counters())
    divergences: list[Divergence] = []
    if include_analysis:
        divergences.extend(_analysis_subjects(automaton, data))

    factories = engine_factories if engine_factories is not None else default_engine_factories()
    for name, factory in factories.items():
        if name == "dfa" and has_counters:
            continue  # LazyDFA rejects counters by contract
        try:
            engine = factory(automaton)
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            divergences.append(_crash(f"engine:{name}", exc))
            continue
        subjects = [(f"engine:{name}", dict(chunk=0))]
        subjects += [
            (f"engine:{name}[chunk={c}]", dict(chunk=c)) for c in stream_chunks
        ]
        subjects.append((f"engine:{name}[chunk=3,zero-feeds]", dict(chunk=3, zero_feeds=True)))
        for subject, kwargs in subjects:
            try:
                outcome = engine_outcome(engine, data, **kwargs)
            except Exception as exc:  # noqa: BLE001
                divergences.append(_crash(subject, exc))
                continue
            divergences.extend(_diff(subject, expected, outcome))

    if not include_transforms:
        return divergences

    # io round trips preserve behaviour exactly.
    for subject, roundtrip in (
        ("io:mnrl-roundtrip", _mnrl_roundtrip),
        ("io:anml-roundtrip", _anml_roundtrip),
    ):
        try:
            back = roundtrip(automaton)
            outcome = reference_outcome(back, data)
        except Exception as exc:  # noqa: BLE001
            divergences.append(_crash(subject, exc))
            continue
        divergences.extend(_diff(subject, expected, outcome))

    # Merging transforms preserve the (offset, code) event *set* (same-code
    # duplicate states legally collapse into one event).  Each transformed
    # automaton is also round-tripped through MNRL before running, so the
    # io layer is exercised on transform output shapes too.
    for subject, merged in _merge_subjects(automaton):
        try:
            merged = _mnrl_roundtrip(merged)
            outcome = reference_outcome(merged, data)
        except Exception as exc:  # noqa: BLE001
            divergences.append(_crash(subject, exc))
            continue
        if outcome.event_set() != expected.event_set():
            divergences.append(
                Divergence(
                    subject,
                    "reports",
                    f"event set expected {sorted(expected.event_set())!r}, "
                    f"got {sorted(outcome.event_set())!r}",
                )
            )

    # Widening: reports move to the trailing pad byte, offset 2t+1 on the
    # pad-interleaved stream.
    if _widen_applicable(automaton, data):
        subject = "transform:widen"
        try:
            widened = _anml_roundtrip(widen(automaton))
            wide_data = bytes(b for sym in data for b in (sym, 0))
            outcome = reference_outcome(widened, wide_data)
        except Exception as exc:  # noqa: BLE001
            divergences.append(_crash(subject, exc))
        else:
            want = sorted((2 * off + 1, code) for off, _ident, code in expected.reports)
            got = sorted((off, code) for off, _ident, code in outcome.reports)
            if want != got:
                divergences.append(
                    Divergence(
                        subject,
                        "reports",
                        f"expected widened events {want!r}, got {got!r}",
                    )
                )

    # Striding (bit-level cases only): a bit report at offset t appears at
    # block t // k, with same-code reports inside one block deduplicated.
    if bit_level and not has_counters:
        for k in (2, 4, 8):
            subject = f"transform:stride-{k}"
            usable = len(data) - len(data) % k
            try:
                strided = _mnrl_roundtrip(stride(automaton, k))
                packed = pack_bits(data[:usable], k=k)
                outcome = reference_outcome(strided, packed)
            except ReproError as exc:
                divergences.append(_crash(subject, exc))
                continue
            except Exception as exc:  # noqa: BLE001
                divergences.append(_crash(subject, exc))
                continue
            want = {
                (off // k, code)
                for off, _ident, code in expected.reports
                if off < usable
            }
            got = {(off, code) for off, _ident, code in outcome.reports}
            if want != got:
                divergences.append(
                    Divergence(
                        subject,
                        "reports",
                        f"expected strided events {sorted(want)!r}, "
                        f"got {sorted(got)!r}",
                    )
                )

    return divergences
