"""Golden report-stream digests for the 24 benchmark generators.

Every AutomataZoo benchmark is a *standard* automaton plus a *standard*
input whose report stream is the ground truth.  This module pins that
ground truth: for each benchmark built at a fixed (scale, seed), it
records

* the structural fingerprint of the generated automaton
  (:func:`repro.engines.cache.automaton_fingerprint` — elements, charsets,
  start/report flags, edges, reset wires),
* a SHA-256 over the standard input slice, and
* a SHA-256 over the canonical report stream of running that input.

The registry lives in ``goldens.json`` next to this module.  A single
regression test compares freshly computed digests against it, so *any*
behavioral drift — in a generator, an input stimulus, an engine, or a
transform feeding them — fails loudly, even when the drift keeps report
counts identical.

Intentional changes are ratified with the escape hatch::

    repro conformance --update-goldens

which recomputes and rewrites the registry (documented in
``docs/TESTING.md``; the diff of ``goldens.json`` then shows exactly which
benchmarks changed behaviour).
"""

from __future__ import annotations

import hashlib
import json
import pathlib

from repro.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.engines import auto_engine
from repro.engines.cache import automaton_fingerprint

__all__ = [
    "GOLDEN_SCALE",
    "GOLDEN_SEED",
    "GOLDEN_LIMIT",
    "benchmark_digest",
    "compute_goldens",
    "goldens_path",
    "load_goldens",
    "save_goldens",
    "check_goldens",
]

#: Fixed build parameters for the registry.  Small enough that computing
#: all 24 digests stays a few seconds; the *per-pattern* construction is
#: scale-invariant, so drift at this scale is drift at full scale.
GOLDEN_SCALE = 0.002
GOLDEN_SEED = 7
GOLDEN_LIMIT = 1500


def goldens_path() -> pathlib.Path:
    """The checked-in registry file (next to this module)."""
    return pathlib.Path(__file__).parent / "goldens.json"


def benchmark_digest(
    name: str,
    *,
    scale: float = GOLDEN_SCALE,
    seed: int = GOLDEN_SEED,
    limit: int = GOLDEN_LIMIT,
) -> dict:
    """Digest of one benchmark's standard automaton + report stream."""
    bench = build_benchmark(name, scale=scale, seed=seed)
    data = bench.input_data[:limit]
    result = auto_engine(bench.automaton).run(data)
    report_hash = hashlib.sha256()
    for event in sorted(
        (e.offset, e.ident, repr(e.code)) for e in result.reports
    ):
        report_hash.update(repr(event).encode())
        report_hash.update(b"\n")
    return {
        "fingerprint": automaton_fingerprint(bench.automaton),
        "input_sha256": hashlib.sha256(data).hexdigest(),
        "report_sha256": report_hash.hexdigest(),
        "states": bench.automaton.n_states,
        "edges": bench.automaton.n_edges,
        "input_len": len(data),
        "report_count": result.report_count,
    }


def compute_goldens(names=None, *, progress=None) -> dict:
    """Digests for every benchmark (or a subset), keyed by name."""
    out = {}
    for name in names if names is not None else BENCHMARK_NAMES:
        if progress is not None:
            progress(name)
        out[name] = benchmark_digest(name)
    return out


def load_goldens(path: str | pathlib.Path | None = None) -> dict:
    source = pathlib.Path(path) if path is not None else goldens_path()
    return json.loads(source.read_text())


def save_goldens(goldens: dict, path: str | pathlib.Path | None = None) -> pathlib.Path:
    target = pathlib.Path(path) if path is not None else goldens_path()
    target.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    return target


def check_goldens(
    names=None, *, path: str | pathlib.Path | None = None, progress=None
) -> list[str]:
    """Compare fresh digests against the registry; returns problem strings.

    An empty list means every generator, input stimulus and the engine
    running them behave byte-for-byte as pinned.
    """
    golden = load_goldens(path)
    problems = []
    selected = list(names) if names is not None else list(BENCHMARK_NAMES)
    for name in selected:
        if name not in golden:
            problems.append(f"{name}: no golden entry (run --update-goldens)")
            continue
        if progress is not None:
            progress(name)
        fresh = benchmark_digest(name)
        for key, want in golden[name].items():
            got = fresh.get(key)
            if got != want:
                problems.append(f"{name}: {key} drifted (golden {want!r}, got {got!r})")
    extra = set(golden) - set(selected)
    if names is None and extra:
        problems.extend(f"{name}: golden entry for unknown benchmark" for name in sorted(extra))
    return problems
