"""Differential conformance subsystem: cross-engine fuzzing, shrinking,
and golden report-stream digests.

* :mod:`repro.conformance.generator` — seeded random automata/inputs
  covering char-class edges, counters, start corners and dead states.
* :mod:`repro.conformance.runner` — diff every engine (whole-run and
  chunked streaming) and every transform (io-round-tripped) against
  :class:`~repro.engines.reference.ReferenceEngine`.
* :mod:`repro.conformance.shrink` — minimise a divergence to a tiny
  on-disk repro case.
* :mod:`repro.conformance.goldens` — pinned digests of the 24 benchmark
  generators' canonical report streams.
* :mod:`repro.conformance.campaign` — N-seed campaigns with a JSON
  summary (``repro conformance --seeds N``).
"""

from repro.conformance.campaign import CampaignReport, run_campaign, summary_dict
from repro.conformance.generator import (
    CaseConfig,
    ConformanceCase,
    random_automaton,
    random_case,
    random_input,
)
from repro.conformance.goldens import (
    benchmark_digest,
    check_goldens,
    compute_goldens,
    goldens_path,
    load_goldens,
    save_goldens,
)
from repro.conformance.runner import (
    Divergence,
    Outcome,
    engine_outcome,
    reference_outcome,
    run_case,
)
from repro.conformance.shrink import load_repro, save_repro, shrink_case

__all__ = [
    "CampaignReport",
    "CaseConfig",
    "ConformanceCase",
    "Divergence",
    "Outcome",
    "benchmark_digest",
    "check_goldens",
    "compute_goldens",
    "engine_outcome",
    "goldens_path",
    "load_goldens",
    "load_repro",
    "random_automaton",
    "random_case",
    "random_input",
    "reference_outcome",
    "run_campaign",
    "run_case",
    "save_goldens",
    "save_repro",
    "shrink_case",
    "summary_dict",
]
