"""Seeded generator of structurally diverse automata and adversarial inputs.

The differential-testing harness (:mod:`repro.conformance.runner`) needs
automata that exercise every corner of the execution model, not just the
shapes the suite generators happen to produce.  This module builds small
random automata from a :class:`random.Random` seed, deliberately covering:

* **char-class edges** — empty sets, singletons, alphabet subsets, the full
  alphabet, out-of-alphabet complements and (rarely) ``ALL_BYTES``;
* **start corners** — ``START_OF_DATA`` and ``ALL_INPUT`` starts, including
  *reporting* start states (report-on-first-symbol is a classic engine
  off-by-one);
* **dead states** — states with neither a start mode nor predecessors,
  which must never match (but still cost active-set bookkeeping if an
  engine mishandles them);
* **counters** — all three :class:`~repro.core.elements.CounterMode`
  behaviours, multiple feeders, counter→STE enables and reset-port wires;
* **self loops and cycles** — sustained activity, the densest engine path.

Inputs are adversarial in the same spirit: uniform segments, long runs of
one symbol (density-heuristic flips), out-of-alphabet bytes, NUL bytes,
and (sometimes) the empty input.

Everything is a pure function of the seed, so a failing case reproduces
from its seed alone and golden digests stay stable across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random

from repro.core.automaton import Automaton
from repro.core.charset import ALL_BYTES, CharSet
from repro.core.elements import CounterMode, StartMode

__all__ = ["CaseConfig", "ConformanceCase", "random_automaton", "random_input", "random_case"]

#: The default byte alphabet cases are built over.  Small on purpose: a
#: tiny alphabet maximises collision probability between charsets and
#: input symbols, which is where divergences live.
DEFAULT_ALPHABET = b"abcd"


@dataclass(frozen=True)
class CaseConfig:
    """Knobs for one generated case."""

    max_states: int = 10
    alphabet: bytes = DEFAULT_ALPHABET
    allow_counters: bool = True
    allow_resets: bool = True
    #: Bit-level mode: charsets over {0, 1} and bit-stream inputs, no
    #: counters — the shape :func:`repro.transforms.striding.stride`
    #: accepts, so striding can be differentially tested.
    bit_level: bool = False
    max_input_len: int = 48


@dataclass(frozen=True)
class ConformanceCase:
    """One generated (automaton, input) pair plus its provenance."""

    seed: int
    automaton: Automaton = field(compare=False)
    data: bytes
    config: CaseConfig = field(default_factory=CaseConfig)


def _random_charset(rng: Random, alphabet: bytes) -> CharSet:
    roll = rng.random()
    if roll < 0.04:
        return CharSet.none()  # never matches: dead edge
    if roll < 0.40:
        return CharSet.single(rng.choice(alphabet))
    if roll < 0.75:
        k = rng.randint(1, len(alphabet))
        return CharSet(rng.sample(list(alphabet), k))
    if roll < 0.88:
        return CharSet(list(alphabet))
    if roll < 0.96:
        # Complement of an alphabet subset: matches out-of-alphabet bytes.
        k = rng.randint(0, len(alphabet) - 1)
        return ~CharSet(rng.sample(list(alphabet), k))
    return ALL_BYTES


def _random_bit_charset(rng: Random) -> CharSet:
    roll = rng.random()
    if roll < 0.45:
        return CharSet.single(rng.randint(0, 1))
    if roll < 0.9:
        return CharSet([0, 1])
    return CharSet.none()


def random_automaton(rng: Random, config: CaseConfig = CaseConfig()) -> Automaton:
    """A structurally diverse random automaton drawn from ``rng``."""
    n = rng.randint(1, config.max_states)
    automaton = Automaton(f"fuzz-{n}")
    for i in range(n):
        if config.bit_level:
            charset = _random_bit_charset(rng)
        else:
            charset = _random_charset(rng, config.alphabet)
        start = rng.choices(
            [StartMode.NONE, StartMode.START_OF_DATA, StartMode.ALL_INPUT],
            weights=[6, 2, 3],
        )[0]
        automaton.add_ste(
            f"s{i}",
            charset,
            start=start,
            # Report-on-start corners are drawn like any other state.
            report=rng.random() < 0.45,
            report_code=i,
        )
    # Random edge set, with an explicit bias toward self loops and 2-cycles
    # (sustained activity) on top of uniform wiring.  Some states end up
    # with no start and no predecessors: dead by construction.
    for _ in range(rng.randint(0, 2 * n)):
        automaton.add_edge(f"s{rng.randrange(n)}", f"s{rng.randrange(n)}")
    if rng.random() < 0.4:
        loop = rng.randrange(n)
        automaton.add_edge(f"s{loop}", f"s{loop}")
    if n >= 2 and rng.random() < 0.3:
        a, b = rng.sample(range(n), 2)
        automaton.add_edge(f"s{a}", f"s{b}")
        automaton.add_edge(f"s{b}", f"s{a}")

    if config.allow_counters and not config.bit_level and rng.random() < 0.5:
        for c in range(rng.randint(1, 2)):
            ident = f"c{c}"
            automaton.add_counter(
                ident,
                rng.randint(1, 4),
                mode=rng.choice(list(CounterMode)),
                report=rng.random() < 0.6,
                report_code=1000 + c,
            )
            for feeder in rng.sample(range(n), rng.randint(1, min(3, n))):
                automaton.add_edge(f"s{feeder}", ident)
            for enabled in rng.sample(range(n), rng.randint(0, min(2, n))):
                automaton.add_edge(ident, f"s{enabled}")
            if config.allow_resets and rng.random() < 0.4:
                automaton.add_reset_edge(f"s{rng.randrange(n)}", ident)
    return automaton


def random_input(rng: Random, config: CaseConfig = CaseConfig()) -> bytes:
    """An adversarial input stream drawn from ``rng``."""
    if config.bit_level:
        length = rng.randint(0, config.max_input_len)
        return bytes(rng.randint(0, 1) for _ in range(length))
    if rng.random() < 0.05:
        return b""  # empty-stream edge case
    target = rng.randint(1, config.max_input_len)
    out = bytearray()
    alphabet = config.alphabet
    while len(out) < target:
        roll = rng.random()
        if roll < 0.55:  # uniform segment
            out.extend(
                rng.choice(alphabet) for _ in range(rng.randint(1, 8))
            )
        elif roll < 0.85:  # run of one symbol (path/density flips)
            out.extend([rng.choice(alphabet)] * rng.randint(2, 12))
        elif roll < 0.95:  # out-of-alphabet byte
            out.append(rng.choice([0x00, 0x7F, 0xFF, max(alphabet) + 1]))
        else:  # NUL run (widening pad symbol)
            out.extend(b"\x00" * rng.randint(1, 4))
    return bytes(out[:target])


def random_case(seed: int, *, config: CaseConfig | None = None, **overrides) -> ConformanceCase:
    """Build the deterministic case for ``seed`` (one :class:`random.Random`)."""
    cfg = config if config is not None else CaseConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    rng = Random(seed)
    automaton = random_automaton(rng, cfg)
    data = random_input(rng, cfg)
    return ConformanceCase(seed=seed, automaton=automaton, data=data, config=cfg)
