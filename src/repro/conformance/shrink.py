"""Automatic minimisation of a diverging conformance case.

Given a failing (automaton, input) pair and a predicate that re-checks the
divergence, the shrinker greedily reduces both halves to a local minimum:

* **input** — delta-debugging style: drop halves, then smaller chunks,
  then single bytes;
* **automaton** — drop whole elements (with incident edges), then single
  edges, then simplify what remains: clear report flags and start modes,
  collapse charsets to one symbol, lower counter targets to 1.

Every candidate is accepted only if the predicate still observes the
divergence, so the final case fails for the same reason the original did.
The result is written to disk as a self-contained repro directory
(``automaton.mnrl`` + ``input.bin`` + ``meta.json``) that
``tests/repros/`` replays as a permanent regression test.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Callable

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import CounterElement, STE, StartMode
from repro.io import from_mnrl, mnrl_dumps

__all__ = ["shrink_case", "save_repro", "load_repro"]

Check = Callable[[Automaton, bytes], bool]


def _safe(check: Check, automaton: Automaton, data: bytes) -> bool:
    """A candidate that crashes the checker itself is rejected."""
    try:
        return bool(check(automaton, data))
    except Exception:  # noqa: BLE001 - shrink must never die on a candidate
        return False


# -- structural edits (all build a fresh Automaton; inputs stay untouched) ----


def _rebuild(
    automaton: Automaton,
    *,
    drop_elements: frozenset[str] = frozenset(),
    drop_edges: frozenset[tuple[str, str]] = frozenset(),
    patch: dict[str, dict] | None = None,
) -> Automaton:
    """Copy ``automaton`` minus some elements/edges, with field overrides.

    ``patch`` maps ident -> attribute overrides (``charset``, ``start``,
    ``report``, ``target``).  Edges incident to dropped elements vanish.
    """
    patch = patch or {}
    out = Automaton(automaton.name)
    for element in automaton.elements():
        if element.ident in drop_elements:
            continue
        over = patch.get(element.ident, {})
        if isinstance(element, STE):
            out.add_ste(
                element.ident,
                over.get("charset", element.charset),
                start=over.get("start", element.start),
                report=over.get("report", element.report),
                report_code=element.report_code,
            )
        elif isinstance(element, CounterElement):
            out.add_counter(
                element.ident,
                over.get("target", element.target),
                mode=element.mode,
                report=over.get("report", element.report),
                report_code=element.report_code,
            )
    for src, dst in automaton.edges():
        if src in drop_elements or dst in drop_elements:
            continue
        if (src, dst) in drop_edges:
            continue
        out.add_edge(src, dst)
    for src, counter in automaton.reset_edges():
        if src in drop_elements or counter in drop_elements:
            continue
        if (src, counter) in drop_edges:
            continue
        out.add_reset_edge(src, counter)
    return out


def _shrink_input(automaton: Automaton, data: bytes, check: Check) -> bytes:
    """ddmin-style byte removal, halving the chunk size down to 1."""
    chunk = max(1, len(data) // 2)
    while chunk >= 1:
        pos = 0
        while pos < len(data):
            candidate = data[:pos] + data[pos + chunk :]
            if _safe(check, automaton, candidate):
                data = candidate  # keep position: next chunk slid into place
            else:
                pos += chunk
        if chunk == 1:
            break
        chunk //= 2
    return data


def _shrink_elements(automaton: Automaton, data: bytes, check: Check) -> Automaton:
    progress = True
    while progress:
        progress = False
        for ident in list(automaton.idents()):
            candidate = _rebuild(automaton, drop_elements=frozenset({ident}))
            if candidate.n_states and _safe(check, candidate, data):
                automaton = candidate
                progress = True
    return automaton


def _shrink_edges(automaton: Automaton, data: bytes, check: Check) -> Automaton:
    wires = list(automaton.edges()) + list(automaton.reset_edges())
    for edge in wires:
        candidate = _rebuild(automaton, drop_edges=frozenset({edge}))
        if _safe(check, candidate, data):
            automaton = candidate
    return automaton


def _simplify_fields(automaton: Automaton, data: bytes, check: Check) -> Automaton:
    for element in list(automaton.elements()):
        ident = element.ident
        if element.report:
            candidate = _rebuild(automaton, patch={ident: {"report": False}})
            if _safe(check, candidate, data):
                automaton = candidate
                element = automaton[ident]
        if isinstance(element, STE):
            if element.start is not StartMode.NONE:
                candidate = _rebuild(
                    automaton, patch={ident: {"start": StartMode.NONE}}
                )
                if _safe(check, candidate, data):
                    automaton = candidate
                    element = automaton[ident]
            if element.charset.cardinality() > 1:
                single = CharSet.single(next(iter(element.charset)))
                candidate = _rebuild(automaton, patch={ident: {"charset": single}})
                if _safe(check, candidate, data):
                    automaton = candidate
        elif isinstance(element, CounterElement) and element.target > 1:
            candidate = _rebuild(automaton, patch={ident: {"target": 1}})
            if _safe(check, candidate, data):
                automaton = candidate
    return automaton


def shrink_case(
    automaton: Automaton,
    data: bytes,
    check: Check,
    *,
    max_rounds: int = 8,
) -> tuple[Automaton, bytes]:
    """Minimise a failing case; ``check`` must be True on the input case.

    Alternates input and structure reduction until a whole round makes no
    progress (or ``max_rounds`` is hit — a safety valve, normal cases
    converge in 2-3 rounds).
    """
    if not _safe(check, automaton, data):
        raise ValueError("shrink_case called with a case the checker rejects")
    for _round in range(max_rounds):
        before = (automaton.n_states, automaton.n_edges, len(data))
        data = _shrink_input(automaton, data, check)
        automaton = _shrink_elements(automaton, data, check)
        automaton = _shrink_edges(automaton, data, check)
        automaton = _simplify_fields(automaton, data, check)
        if (automaton.n_states, automaton.n_edges, len(data)) == before:
            break
    return automaton, data


# -- repro serialization ------------------------------------------------------


def save_repro(
    directory: str | pathlib.Path,
    automaton: Automaton,
    data: bytes,
    meta: dict,
) -> pathlib.Path:
    """Write a self-contained repro case directory; returns its path."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / "automaton.mnrl").write_text(mnrl_dumps(automaton, indent=2))
    (path / "input.bin").write_bytes(data)
    (path / "meta.json").write_text(json.dumps(meta, indent=2, default=repr) + "\n")
    return path


def load_repro(directory: str | pathlib.Path) -> tuple[Automaton, bytes, dict]:
    """Load a repro case saved by :func:`save_repro`."""
    path = pathlib.Path(directory)
    automaton = from_mnrl(json.loads((path / "automaton.mnrl").read_text()))
    data = (path / "input.bin").read_bytes()
    meta = json.loads((path / "meta.json").read_text())
    return automaton, data, meta
