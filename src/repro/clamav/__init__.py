"""ClamAV virus-signature substrate."""

from repro.clamav.signature import (
    ClamAVSignature,
    hex_sig_to_regex,
    parse_database,
    parse_signature,
)

__all__ = [
    "ClamAVSignature",
    "hex_sig_to_regex",
    "parse_database",
    "parse_signature",
]
