"""ClamAV signature database substrate.

ClamAV's body-based signatures (``.ndb`` format) are hex strings with
wildcards: ``Name:TargetType:Offset:HexSignature``, where the hex signature
supports ``??`` (wildcard byte), nibble wildcards ``a?``/``?a``, ``*``
(any-length gap), ``{n-m}`` (bounded gap), and ``(aa|bb)`` alternation.
"These patterns are converted to regular expressions using a tool supplied
with the benchmark and then compiled to automata" (Section IV); this module
is that tool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PatternError
from repro.yara.hexstring import nibble_charset_regex

__all__ = ["ClamAVSignature", "parse_signature", "parse_database", "hex_sig_to_regex"]

_HEX = "0123456789abcdefABCDEF"
_ANY_BYTE = r"[\x00-\xff]"


@dataclass(frozen=True)
class ClamAVSignature:
    """One ``.ndb`` signature."""

    name: str
    target_type: int  # 0 = any file
    offset: str  # '*' or a decimal anchor
    hex_sig: str

    @property
    def anchored(self) -> bool:
        return self.offset != "*"

    def to_regex(self, *, max_unbounded_gap: int | None = 64) -> str:
        """The signature body as a regex for the automata compiler."""
        body = hex_sig_to_regex(self.hex_sig, max_unbounded_gap=max_unbounded_gap)
        if self.anchored and self.offset != "0":
            body = _ANY_BYTE + f"{{{int(self.offset)}}}" + body
        if self.anchored:
            body = "^" + body
        return body


def hex_sig_to_regex(hex_sig: str, *, max_unbounded_gap: int | None = 64) -> str:
    """Convert a ClamAV hex signature body into a regex.

    ``*`` gaps become bounded wildcard runs when ``max_unbounded_gap`` is
    set (ClamAV itself bounds match windows); pass ``None`` to emit true
    unbounded gaps.
    """
    out: list[str] = []
    i = 0
    sig = hex_sig.strip()
    if not sig:
        raise PatternError("empty hex signature")
    while i < len(sig):
        ch = sig[i]
        if ch == "*":
            if max_unbounded_gap is None:
                out.append(_ANY_BYTE + "*")
            else:
                out.append(_ANY_BYTE + f"{{0,{max_unbounded_gap}}}")
            i += 1
        elif ch == "{":
            end = sig.find("}", i)
            if end < 0:
                raise PatternError(f"unterminated jump in signature: {sig[i:i+10]!r}")
            body = sig[i + 1 : end]
            if "-" in body:
                lo_s, hi_s = body.split("-", 1)
                lo = int(lo_s) if lo_s else 0
                hi = int(hi_s) if hi_s else None
            else:
                lo = hi = int(body)
            if hi is None:
                if max_unbounded_gap is not None:
                    hi = lo + max_unbounded_gap
                    out.append(_ANY_BYTE + f"{{{lo},{hi}}}")
                else:
                    out.append(_ANY_BYTE + f"{{{lo},}}")
            elif hi < lo:
                raise PatternError(f"inverted jump {{{body}}}")
            else:
                out.append(_ANY_BYTE + f"{{{lo},{hi}}}")
            i = end + 1
        elif ch == "(":
            # alternation of hex alternatives
            end = sig.find(")", i)
            if end < 0:
                raise PatternError("unterminated alternation")
            alternatives = sig[i + 1 : end].split("|")
            rendered = [
                hex_sig_to_regex(alt, max_unbounded_gap=max_unbounded_gap)
                for alt in alternatives
            ]
            out.append("(?:" + "|".join(rendered) + ")")
            i = end + 1
        elif ch in _HEX or ch == "?":
            if i + 1 >= len(sig) or (sig[i + 1] not in _HEX and sig[i + 1] != "?"):
                raise PatternError(f"lone nibble at {i} in signature")
            out.append(nibble_charset_regex(ch, sig[i + 1]))
            i += 2
        elif ch.isspace():
            i += 1
        else:
            raise PatternError(f"bad character {ch!r} in hex signature")
    return "".join(out)


def parse_signature(line: str) -> ClamAVSignature:
    """Parse one ``Name:TargetType:Offset:HexSignature`` line."""
    parts = line.strip().split(":")
    if len(parts) != 4:
        raise PatternError(f"signature needs 4 colon-separated fields: {line[:50]!r}")
    name, target, offset, hex_sig = parts
    if not name:
        raise PatternError("signature has no name")
    try:
        target_type = int(target)
    except ValueError:
        raise PatternError(f"bad target type {target!r}") from None
    if offset != "*" and not offset.isdigit():
        raise PatternError(f"bad offset {offset!r}")
    return ClamAVSignature(name=name, target_type=target_type, offset=offset, hex_sig=hex_sig)


def parse_database(text: str) -> list[ClamAVSignature]:
    """Parse a ``.ndb``-style database (one signature per line)."""
    out = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        out.append(parse_signature(line))
    return out
