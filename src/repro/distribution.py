"""On-disk benchmark suite distribution (the AutomataZoo repository layout).

The original AutomataZoo ships as a repository: one directory per
benchmark holding the automaton (ANML/MNRL), the standard input stimulus,
and generation notes.  This module writes and reads that layout::

    <root>/
      manifest.json                 suite-level metadata (scale, seed, rows)
      <benchmark-slug>/
        automaton.mnrl              the benchmark automaton
        input.bin                   the standard input stimulus
        benchmark.json              name, domain, statistics, meta

so generated suites can be consumed by external tools (or re-loaded here
without re-running the generators).
"""

from __future__ import annotations

import json
import pathlib
import re

from repro.benchmarks.registry import BENCHMARK_NAMES, build_benchmark
from repro.benchmarks.spec import Benchmark
from repro.io.mnrl import dumps as mnrl_dumps
from repro.io.mnrl import loads as mnrl_loads
from repro.stats.static import compute_static_stats

__all__ = ["slugify", "export_suite", "load_benchmark", "load_manifest"]


def slugify(name: str) -> str:
    """A filesystem-safe directory name for a benchmark."""
    slug = re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")
    return slug or "benchmark"


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def export_suite(
    root: str | pathlib.Path,
    *,
    scale: float = 0.01,
    seed: int = 0,
    names=None,
) -> pathlib.Path:
    """Generate and write the suite; returns the manifest path."""
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    selected = list(names) if names is not None else list(BENCHMARK_NAMES)
    manifest_rows = []
    for name in selected:
        bench = build_benchmark(name, scale=scale, seed=seed)
        slug = slugify(name)
        bench_dir = root / slug
        bench_dir.mkdir(exist_ok=True)
        (bench_dir / "automaton.mnrl").write_text(mnrl_dumps(bench.automaton))
        (bench_dir / "input.bin").write_bytes(bench.input_data)
        stats = compute_static_stats(bench.automaton)
        record = {
            "name": bench.name,
            "domain": bench.domain,
            "input": bench.input_desc,
            "compressible": bench.compressible,
            "states": stats.states,
            "edges": stats.edges,
            "subgraphs": stats.subgraph_count,
            "input_bytes": len(bench.input_data),
            "meta": _jsonable(bench.meta),
        }
        (bench_dir / "benchmark.json").write_text(json.dumps(record, indent=2))
        manifest_rows.append({"slug": slug, **record})
    manifest_path = root / "manifest.json"
    manifest_path.write_text(
        json.dumps(
            {"suite": "AutomataZoo (reproduction)", "scale": scale, "seed": seed,
             "benchmarks": manifest_rows},
            indent=2,
        )
    )
    return manifest_path


def load_manifest(root: str | pathlib.Path) -> dict:
    """Read a suite manifest."""
    return json.loads((pathlib.Path(root) / "manifest.json").read_text())


def load_benchmark(root: str | pathlib.Path, name_or_slug: str) -> Benchmark:
    """Re-load one exported benchmark (automaton + input + metadata)."""
    root = pathlib.Path(root)
    slug = slugify(name_or_slug)
    bench_dir = root / slug
    if not bench_dir.exists():
        raise FileNotFoundError(f"no exported benchmark at {bench_dir}")
    record = json.loads((bench_dir / "benchmark.json").read_text())
    automaton = mnrl_loads((bench_dir / "automaton.mnrl").read_text())
    return Benchmark(
        name=record["name"],
        domain=record["domain"],
        input_desc=record["input"],
        automaton=automaton,
        input_data=(bench_dir / "input.bin").read_bytes(),
        compressible=record.get("compressible", True),
        meta=record.get("meta", {}),
    )
