"""Aho–Corasick multi-pattern exact matching.

The classical CPU-native algorithm for multi-literal search.  In the
reproduction it plays two roles: a non-automata-engine comparator for the
literal-heavy benchmarks (ClamAV/YARA exact strings), and an independent
oracle for testing literal rulesets compiled through the regex pipeline.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

__all__ = ["AhoCorasick"]


class AhoCorasick:
    """An Aho–Corasick matcher over byte patterns.

    >>> ac = AhoCorasick([b"he", b"she", b"his"])
    >>> sorted(ac.search(b"ushers"))
    [(3, 0), (3, 1)]
    """

    def __init__(self, patterns: Iterable[bytes]) -> None:
        self.patterns: list[bytes] = [bytes(p) for p in patterns]
        if any(not p for p in self.patterns):
            raise ValueError("empty patterns are not allowed")
        # Trie as parallel arrays; node 0 is the root.
        self._next: list[dict[int, int]] = [{}]
        self._fail: list[int] = [0]
        self._out: list[list[int]] = [[]]
        for pattern_id, pattern in enumerate(self.patterns):
            self._insert(pattern, pattern_id)
        self._build_failure_links()

    def _insert(self, pattern: bytes, pattern_id: int) -> None:
        node = 0
        for symbol in pattern:
            nxt = self._next[node].get(symbol)
            if nxt is None:
                nxt = len(self._next)
                self._next.append({})
                self._fail.append(0)
                self._out.append([])
                self._next[node][symbol] = nxt
            node = nxt
        self._out[node].append(pattern_id)

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for child in self._next[0].values():
            queue.append(child)
        while queue:
            node = queue.popleft()
            for symbol, child in self._next[node].items():
                queue.append(child)
                fallback = self._fail[node]
                while fallback and symbol not in self._next[fallback]:
                    fallback = self._fail[fallback]
                self._fail[child] = self._next[fallback].get(symbol, 0)
                if self._fail[child] == child:
                    self._fail[child] = 0
                self._out[child] = self._out[child] + self._out[self._fail[child]]

    @property
    def n_nodes(self) -> int:
        return len(self._next)

    def search(self, data: bytes) -> Iterator[tuple[int, int]]:
        """Yield ``(end_offset, pattern_id)`` for every occurrence.

        ``end_offset`` is the index of the last byte of the match,
        matching the engines' report-offset convention.
        """
        node = 0
        for offset, symbol in enumerate(data):
            while node and symbol not in self._next[node]:
                node = self._fail[node]
            node = self._next[node].get(symbol, 0)
            for pattern_id in self._out[node]:
                yield (offset, pattern_id)

    def count(self, data: bytes) -> int:
        """Total number of occurrences of all patterns in ``data``."""
        return sum(1 for _ in self.search(data))
