"""String-scoring baselines: Hamming scan, Sellers DP, Myers bit-parallel.

These are the non-automata algorithms that compute the same kernels as the
mesh benchmarks (Section X), used both as comparators and as independent
oracles for the Hamming/Levenshtein automata generators:

* :func:`hamming_matches` — vectorised sliding-window mismatch counting.
* :func:`levenshtein_matches` — Sellers' streaming edit-distance DP
  (reference semantics: substring ending at offset t within distance d).
* :class:`MyersMatcher` — Myers' bit-parallel approximate matcher, the
  fast CPU-native algorithm for the same kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hamming_matches", "levenshtein_matches", "MyersMatcher"]


def hamming_matches(pattern: bytes, text: bytes, d: int) -> list[int]:
    """End offsets t where text[t-l+1 .. t] is within Hamming distance d.

    Vectorised over all windows; the CPU-native comparator for the Hamming
    mesh automata.
    """
    l = len(pattern)
    if l == 0:
        raise ValueError("pattern must be non-empty")
    if len(text) < l:
        return []
    t = np.frombuffer(text, dtype=np.uint8)
    p = np.frombuffer(pattern, dtype=np.uint8)
    windows = np.lib.stride_tricks.sliding_window_view(t, l)
    mismatches = (windows != p).sum(axis=1)
    return [int(i) + l - 1 for i in np.flatnonzero(mismatches <= d)]


def levenshtein_matches(pattern: bytes, text: bytes, d: int) -> list[int]:
    """End offsets t where some substring ending at t is within edit
    distance d of ``pattern`` (Sellers' algorithm).

    Column-by-column DP with the column vectorised in numpy; exact
    reference semantics for the Levenshtein mesh automata.
    """
    m = len(pattern)
    if m == 0:
        raise ValueError("pattern must be non-empty")
    p = np.frombuffer(pattern, dtype=np.uint8)
    column = np.arange(m + 1, dtype=np.int64)  # D[:, -1] boundary
    out: list[int] = []
    for offset, symbol in enumerate(text):
        prev = column
        column = np.empty_like(prev)
        column[0] = 0  # match may start anywhere
        sub = prev[:-1] + (p != symbol)
        ins = prev[1:] + 1
        column[1:] = np.minimum(sub, ins)
        # Deletions propagate down the column; a sequential min-scan.
        for i in range(1, m + 1):
            if column[i - 1] + 1 < column[i]:
                column[i] = column[i - 1] + 1
        if column[m] <= d:
            out.append(offset)
    return out


class MyersMatcher:
    """Myers' bit-parallel approximate string matching (edit distance).

    Computes the same end-offset stream as :func:`levenshtein_matches` in
    O(n) word operations for patterns up to the word size — the fast
    CPU-native algorithm referenced by mesh benchmark comparisons.
    Patterns longer than 64 symbols use Python's arbitrary-precision ints,
    staying bit-parallel at reduced constant factor.
    """

    def __init__(self, pattern: bytes, d: int) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = bytes(pattern)
        self.d = d
        self._m = len(pattern)
        self._peq = [0] * 256
        for i, symbol in enumerate(self.pattern):
            self._peq[symbol] |= 1 << i

    def search(self, text: bytes) -> list[int]:
        """End offsets where edit distance of a suffix match is <= d."""
        m = self._m
        mask = (1 << m) - 1
        high_bit = 1 << (m - 1)
        pv = mask
        mv = 0
        score = m
        out: list[int] = []
        for offset, symbol in enumerate(text):
            eq = self._peq[symbol]
            xv = eq | mv
            xh = (((eq & pv) + pv) ^ pv) | eq
            ph = mv | ~(xh | pv) & mask
            mh = pv & xh
            if ph & high_bit:
                score += 1
            elif mh & high_bit:
                score -= 1
            # Search (Sellers) semantics: D[0, j] = 0 for all j, so the
            # row-0 horizontal delta is 0 — shift without the |1 that the
            # global-alignment variant of Myers' algorithm uses.
            ph = ph << 1
            mh = mh << 1
            pv = (mh | ~(xv | ph)) & mask
            mv = ph & xv
            if score <= self.d:
                out.append(offset)
        return out
