"""Non-automata baseline algorithms computing the same kernels."""

from repro.baselines.aho_corasick import AhoCorasick
from repro.baselines.forest_native import FlatTree, NativeForest
from repro.baselines.matchers import MyersMatcher, hamming_matches, levenshtein_matches
from repro.baselines.shift_and import ShiftAndMatcher

__all__ = [
    "AhoCorasick",
    "FlatTree",
    "MyersMatcher",
    "NativeForest",
    "ShiftAndMatcher",
    "hamming_matches",
    "levenshtein_matches",
]
