"""Vectorised native Random Forest inference (the scikit-learn comparator).

Table IV compares automata-based Random Forest inference against "native"
decision-tree computation (scikit-learn, single- and multi-threaded).  This
module is that comparator: trees are flattened into numpy node arrays and a
whole batch of samples traverses all levels simultaneously, plus a
process-pool variant standing in for the multi-threaded case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.forest import RandomForest
from repro.ml.tree import DecisionTree

__all__ = ["FlatTree", "NativeForest"]


@dataclass(frozen=True)
class FlatTree:
    """A decision tree flattened to parallel arrays for batch inference."""

    feature: np.ndarray  # int32, -1 for leaves
    threshold: np.ndarray  # int16
    left: np.ndarray  # int32 child index
    right: np.ndarray  # int32 child index
    label: np.ndarray  # int32, valid at leaves

    @classmethod
    def from_tree(cls, tree: DecisionTree) -> "FlatTree":
        nodes = []
        index_of = {}

        def visit(node):
            index_of[id(node)] = len(nodes)
            nodes.append(node)
            if not node.is_leaf:
                visit(node.left)
                visit(node.right)

        visit(tree.root)
        n = len(nodes)
        feature = np.full(n, -1, dtype=np.int32)
        threshold = np.zeros(n, dtype=np.int16)
        left = np.zeros(n, dtype=np.int32)
        right = np.zeros(n, dtype=np.int32)
        label = np.zeros(n, dtype=np.int32)
        for i, node in enumerate(nodes):
            if node.is_leaf:
                label[i] = node.label
            else:
                feature[i] = node.feature
                threshold[i] = node.threshold
                left[i] = index_of[id(node.left)]
                right[i] = index_of[id(node.right)]
        return cls(feature, threshold, left, right, label)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Batch prediction: all samples advance one level per iteration."""
        position = np.zeros(len(x), dtype=np.int32)
        active = self.feature[position] >= 0
        while active.any():
            idx = position[active]
            feats = self.feature[idx]
            go_left = x[active, feats] <= self.threshold[idx]
            position[active] = np.where(go_left, self.left[idx], self.right[idx])
            active = self.feature[position] >= 0
        return self.label[position].astype(np.int64)


class NativeForest:
    """Batch-vectorised forest inference with an optional process pool."""

    def __init__(self, forest: RandomForest) -> None:
        self.n_classes = forest.n_classes
        self.flat_trees = [FlatTree.from_tree(t) for t in forest.trees]

    def predict(self, x: np.ndarray) -> np.ndarray:
        votes = np.zeros((len(x), self.n_classes), dtype=np.int64)
        for tree in self.flat_trees:
            predictions = tree.predict(x)
            votes[np.arange(len(x)), predictions] += 1
        return votes.argmax(axis=1)

    def predict_parallel(
        self, x: np.ndarray, n_workers: int = 4, *, pool=None
    ) -> np.ndarray:
        """Multi-worker inference (Table IV's "Scikit Learn MT" analogue).

        Splits the sample batch across a process pool; falls back to the
        serial path for tiny batches where pool overhead dominates.  Pass a
        pre-created ``concurrent.futures`` executor as ``pool`` to amortise
        worker start-up across calls (as a long-running service would).
        """
        if len(x) < 4 * n_workers:
            return self.predict(x)
        if pool is not None:
            parts = list(pool.map(self.predict, np.array_split(x, n_workers)))
            return np.concatenate(parts)
        from concurrent.futures import ProcessPoolExecutor

        chunks = np.array_split(x, n_workers)
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            parts = list(pool.map(self.predict, chunks))
        return np.concatenate(parts)
