"""Shift-And bit-parallel matching for fixed-length class patterns.

Matches a sequence of character sets (a fixed-length "extended literal",
e.g. a ClamAV hex signature without jumps) against a stream in O(n) word
operations.  Used as the exact-match CPU baseline and as an independent
oracle for fixed-length automata.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.charset import CharSet

__all__ = ["ShiftAndMatcher"]


class ShiftAndMatcher:
    """Bit-parallel matcher for a fixed sequence of character sets."""

    def __init__(self, positions: Sequence[CharSet]) -> None:
        if not positions:
            raise ValueError("pattern must have at least one position")
        self.positions = list(positions)
        self._m = len(positions)
        self._b = [0] * 256
        for i, charset in enumerate(self.positions):
            bit = 1 << i
            for symbol in charset:
                self._b[symbol] |= bit

    @classmethod
    def from_bytes(cls, pattern: bytes) -> "ShiftAndMatcher":
        return cls([CharSet.single(b) for b in pattern])

    def search(self, data: bytes) -> list[int]:
        """End offsets (inclusive) of every match in ``data``."""
        high = 1 << (self._m - 1)
        state = 0
        out: list[int] = []
        for offset, symbol in enumerate(data):
            state = ((state << 1) | 1) & self._b[symbol]
            if state & high:
                out.append(offset)
        return out
