"""Graphviz DOT export for automata (debugging and documentation).

Renders homogeneous automata in the visual vocabulary automata-processing
papers use: boxes labelled with the state's character set, doubled borders
for reporting states, arrow-less entry markers for start states, diamonds
for counters, and dashed edges for reset wires.
"""

from __future__ import annotations

import re

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import CounterElement, STE, StartMode

__all__ = ["to_dot"]

#: A trailing backslash escape that truncation may have cut in half
#: (``\``, ``\x``, ``\x4``); complete ``\xNN`` sequences do not match.
_PARTIAL_ESCAPE = re.compile(r"\\(x[0-9a-fA-F]?)?$")


def _charset_label(charset: CharSet, max_len: int = 16) -> str:
    if charset.is_full():
        return "*"
    label = repr(charset)[len("CharSet[") : -1]
    if len(label) > max_len:
        label = label[: max_len - 1]
        # Never leave half a repr escape (e.g. ``'\x4``) dangling before
        # the ellipsis; strip backslashes until the tail is whole.
        while _PARTIAL_ESCAPE.search(label):
            label = _PARTIAL_ESCAPE.sub("", label)
        label += "…"
    return label


def _escape(text: str) -> str:
    """Escape ``text`` for use inside a double-quoted DOT string.

    Beyond ``\\`` and ``"``, control and other non-printable characters
    (legal in idents and raw-byte charset labels) are rendered as literal
    ``\\xNN`` / ``\\uNNNN`` text — a raw newline or NUL inside a quoted
    DOT id breaks Graphviz parsing outright.
    """
    out = []
    for ch in text:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch.isprintable():
            out.append(ch)
        elif ord(ch) <= 0xFF:
            out.append(f"\\\\x{ord(ch):02x}")
        else:
            out.append(f"\\\\u{ord(ch):04x}")
    return "".join(out)


def to_dot(automaton: Automaton, *, max_states: int = 2000) -> str:
    """Render ``automaton`` as a DOT digraph string.

    Refuses automata above ``max_states`` (layouts degrade into hairballs;
    raise the cap deliberately if needed).
    """
    if automaton.n_states > max_states:
        raise ValueError(
            f"automaton has {automaton.n_states} states; refusing to render "
            f"more than {max_states} (pass max_states= to override)"
        )
    lines = [f'digraph "{_escape(automaton.name)}" {{', "  rankdir=LR;"]
    for element in automaton.elements():
        ident = _escape(element.ident)
        if isinstance(element, STE):
            label = _escape(_charset_label(element.charset))
            attrs = [f'label="{ident}\\n{label}"', "shape=box"]
            if element.report:
                attrs.append("peripheries=2")
            if element.start is StartMode.ALL_INPUT:
                attrs.append('style=filled fillcolor="#d0e8ff"')
            elif element.start is StartMode.START_OF_DATA:
                attrs.append('style=filled fillcolor="#d8ffd8"')
        else:
            assert isinstance(element, CounterElement)
            attrs = [
                f'label="{ident}\\ncount>={element.target}\\n{element.mode.value}"',
                "shape=diamond",
            ]
            if element.report:
                attrs.append("peripheries=2")
        lines.append(f'  "{ident}" [{" ".join(attrs)}];')
    for src, dst in automaton.edges():
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}";')
    for src, counter in automaton.reset_edges():
        lines.append(
            f'  "{_escape(src)}" -> "{_escape(counter)}" '
            f'[style=dashed label="rst"];'
        )
    lines.append("}")
    return "\n".join(lines)
