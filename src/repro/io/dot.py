"""Graphviz DOT export for automata (debugging and documentation).

Renders homogeneous automata in the visual vocabulary automata-processing
papers use: boxes labelled with the state's character set, doubled borders
for reporting states, arrow-less entry markers for start states, diamonds
for counters, and dashed edges for reset wires.
"""

from __future__ import annotations

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import CounterElement, STE, StartMode

__all__ = ["to_dot"]


def _charset_label(charset: CharSet, max_len: int = 16) -> str:
    if charset.is_full():
        return "*"
    label = repr(charset)[len("CharSet[") : -1]
    if len(label) > max_len:
        label = label[: max_len - 1] + "…"
    return label


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(automaton: Automaton, *, max_states: int = 2000) -> str:
    """Render ``automaton`` as a DOT digraph string.

    Refuses automata above ``max_states`` (layouts degrade into hairballs;
    raise the cap deliberately if needed).
    """
    if automaton.n_states > max_states:
        raise ValueError(
            f"automaton has {automaton.n_states} states; refusing to render "
            f"more than {max_states} (pass max_states= to override)"
        )
    lines = [f'digraph "{_escape(automaton.name)}" {{', "  rankdir=LR;"]
    for element in automaton.elements():
        ident = _escape(element.ident)
        if isinstance(element, STE):
            label = _escape(_charset_label(element.charset))
            attrs = [f'label="{ident}\\n{label}"', "shape=box"]
            if element.report:
                attrs.append("peripheries=2")
            if element.start is StartMode.ALL_INPUT:
                attrs.append('style=filled fillcolor="#d0e8ff"')
            elif element.start is StartMode.START_OF_DATA:
                attrs.append('style=filled fillcolor="#d8ffd8"')
        else:
            assert isinstance(element, CounterElement)
            attrs = [
                f'label="{ident}\\ncount>={element.target}\\n{element.mode.value}"',
                "shape=diamond",
            ]
            if element.report:
                attrs.append("peripheries=2")
        lines.append(f'  "{ident}" [{" ".join(attrs)}];')
    for src, dst in automaton.edges():
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}";')
    for src, counter in automaton.reset_edges():
        lines.append(
            f'  "{_escape(src)}" -> "{_escape(counter)}" '
            f'[style=dashed label="rst"];'
        )
    lines.append("}")
    return "\n".join(lines)
