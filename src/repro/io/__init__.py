"""Automata interchange formats: MNRL (JSON) and ANML (XML)."""

from repro.io.anml import from_anml, to_anml
from repro.io.dot import to_dot
from repro.io.mnrl import from_mnrl, to_mnrl
from repro.io.mnrl import dumps as mnrl_dumps
from repro.io.mnrl import loads as mnrl_loads

__all__ = [
    "from_anml",
    "from_mnrl",
    "mnrl_dumps",
    "mnrl_loads",
    "to_anml",
    "to_dot",
    "to_mnrl",
]
