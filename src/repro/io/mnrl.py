"""MNRL (MNCaRT Network Representation Language) serialization.

MNRL is the JSON automata interchange format of the MNCaRT ecosystem the
paper standardises on ("MNCaRT includes the VASim automata SDK and
pcre2mnrl, a regular expression to automata compiler").  This module
exports/imports the subset MNRL uses for homogeneous automata:

* ``hState`` nodes — homogeneous states with a ``symbolSet`` attribute,
  ``enable`` semantics (``onActivateIn`` / ``onStartAndActivateIn`` /
  ``always``), and optional reporting with a ``reportId``;
* ``upCounter`` nodes — threshold counters with ``target`` and ``mode``.

Report ids survive a round trip when they are JSON-native (str/int/float/
bool/None/lists); tuples come back as lists (JSON has no tuple type).
"""

from __future__ import annotations

import json

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import CounterElement, CounterMode, STE, StartMode
from repro.errors import ReproError
from repro.regex.charclass import parse_class

__all__ = ["to_mnrl", "from_mnrl", "dumps", "loads"]

_ENABLE_OF = {
    StartMode.NONE: "onActivateIn",
    StartMode.START_OF_DATA: "onStartAndActivateIn",
    StartMode.ALL_INPUT: "always",
}
_START_OF = {v: k for k, v in _ENABLE_OF.items()}

_MODE_OF = {
    CounterMode.LATCH: "latch",
    CounterMode.ROLLOVER: "rollover",
    CounterMode.STOP: "stop",
}
_COUNTER_MODE_OF = {v: k for k, v in _MODE_OF.items()}


def _symbol_set(charset: CharSet) -> str:
    """Render a charset as an MNRL symbolSet class string."""
    if charset.is_full():
        return r"[\x00-\xff]"
    if charset.is_empty():
        # An empty class is invalid PCRE, so the regex parser rejects it;
        # serialise the never-matching state explicitly instead.
        return "[]"
    parts = []
    for lo, hi in charset.ranges():
        if lo == hi:
            parts.append(f"\\x{lo:02x}")
        else:
            parts.append(f"\\x{lo:02x}-\\x{hi:02x}")
    return "[" + "".join(parts) + "]"


def _parse_symbol_set(text: str) -> CharSet:
    if not text.startswith("[") or not text.endswith("]"):
        raise ReproError(f"bad symbolSet: {text!r}")
    if text == "[]":
        return CharSet.none()
    charset, end = parse_class(text, 1)
    if end != len(text):
        raise ReproError(f"trailing characters in symbolSet: {text!r}")
    return charset


def to_mnrl(automaton: Automaton) -> dict:
    """Export an automaton as an MNRL document (a JSON-ready dict)."""
    reset_targets: dict[str, list[str]] = {}
    for src, counter in automaton.reset_edges():
        reset_targets.setdefault(src, []).append(counter)
    nodes = []
    for element in automaton.elements():
        activate = [
            {"id": dst, "portId": "i"} for dst in automaton.successors(element.ident)
        ]
        activate.extend(
            {"id": counter, "portId": "rst"}
            for counter in reset_targets.get(element.ident, ())
        )
        node: dict = {
            "id": element.ident,
            "report": bool(element.report),
            "outputDefs": [{"portId": "o", "width": 1, "activate": activate}],
            "inputDefs": [{"portId": "i", "width": 1}],
        }
        if element.report and element.report_code is not None:
            node["reportId"] = element.report_code
        if isinstance(element, STE):
            node["type"] = "hState"
            node["enable"] = _ENABLE_OF[element.start]
            node["attributes"] = {
                "symbolSet": _symbol_set(element.charset),
                "latched": False,
            }
        elif isinstance(element, CounterElement):
            node["type"] = "upCounter"
            node["enable"] = "onActivateIn"
            node["attributes"] = {
                "threshold": element.target,
                "mode": _MODE_OF[element.mode],
            }
        else:  # pragma: no cover - no other element types exist
            raise ReproError(f"cannot serialise element {element!r}")
        nodes.append(node)
    return {"id": automaton.name, "nodes": nodes}


def from_mnrl(document: dict) -> Automaton:
    """Import an MNRL document produced by :func:`to_mnrl` (or compatible)."""
    automaton = Automaton(document.get("id", "mnrl"))
    nodes = document.get("nodes", [])
    for node in nodes:
        ident = node["id"]
        report = bool(node.get("report", False))
        code = node.get("reportId")
        node_type = node.get("type")
        attributes = node.get("attributes", {})
        if node_type == "hState":
            automaton.add_ste(
                ident,
                _parse_symbol_set(attributes["symbolSet"]),
                start=_START_OF.get(node.get("enable", "onActivateIn"), StartMode.NONE),
                report=report,
                report_code=code,
            )
        elif node_type == "upCounter":
            automaton.add_counter(
                ident,
                int(attributes["threshold"]),
                mode=_COUNTER_MODE_OF.get(attributes.get("mode", "latch")),
                report=report,
                report_code=code,
            )
        else:
            raise ReproError(f"unsupported MNRL node type: {node_type!r}")
    for node in nodes:
        for output in node.get("outputDefs", []):
            for target in output.get("activate", []):
                if target.get("portId") == "rst":
                    automaton.add_reset_edge(node["id"], target["id"])
                else:
                    automaton.add_edge(node["id"], target["id"])
    return automaton


def dumps(automaton: Automaton, **json_kwargs) -> str:
    """Serialize to an MNRL JSON string."""
    return json.dumps(to_mnrl(automaton), **json_kwargs)


def loads(text: str) -> Automaton:
    """Parse an MNRL JSON string."""
    return from_mnrl(json.loads(text))
