"""ANML (Automata Network Markup Language) serialization.

ANML is Micron's XML format for AP automata and the format ANMLZoo shipped
its benchmarks in.  This module writes and reads the dialect the
benchmarks use: ``state-transition-element`` with ``symbol-set``,
``start`` (``start-of-data`` / ``all-input``), ``activate-on-match`` edges
and ``report-on-match``; plus ``counter`` elements with ``target`` /
``at-target`` and ``activate-on-target`` edges.

Report codes are stored in the ``reportcode`` attribute as strings; ints
are recovered on load, anything else comes back as a string.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import CounterElement, CounterMode, STE, StartMode
from repro.errors import ReproError
from repro.regex.charclass import parse_class

__all__ = ["to_anml", "from_anml"]

_START_ATTR = {
    StartMode.START_OF_DATA: "start-of-data",
    StartMode.ALL_INPUT: "all-input",
}
_START_OF = {v: k for k, v in _START_ATTR.items()}

_AT_TARGET = {
    CounterMode.LATCH: "latch",
    CounterMode.ROLLOVER: "roll-over",
    CounterMode.STOP: "pulse",
}
_MODE_OF = {v: k for k, v in _AT_TARGET.items()}


def _symbol_set(charset: CharSet) -> str:
    if charset.is_empty():
        # Matches nothing; the class parser rejects "[]" as invalid PCRE,
        # so the load path special-cases it (round-trip property-tested).
        return "[]"
    parts = []
    for lo, hi in charset.ranges():
        if lo == hi:
            parts.append(f"\\x{lo:02x}")
        else:
            parts.append(f"\\x{lo:02x}-\\x{hi:02x}")
    return "[" + "".join(parts) + "]"


def to_anml(automaton: Automaton) -> str:
    """Serialize an automaton to an ANML XML string."""
    root = ET.Element("anml", version="1.0")
    network = ET.SubElement(root, "automata-network", id=automaton.name)
    resets: dict[str, list[str]] = {}
    for src, counter in automaton.reset_edges():
        resets.setdefault(src, []).append(counter)
    for element in automaton.elements():
        if isinstance(element, STE):
            attrs = {"id": element.ident, "symbol-set": _symbol_set(element.charset)}
            if element.start in _START_ATTR:
                attrs["start"] = _START_ATTR[element.start]
            node = ET.SubElement(network, "state-transition-element", attrs)
            if element.report:
                report_attrs = {}
                if element.report_code is not None:
                    report_attrs["reportcode"] = str(element.report_code)
                ET.SubElement(node, "report-on-match", report_attrs)
            for dst in automaton.successors(element.ident):
                ET.SubElement(node, "activate-on-match", element=dst)
            for counter in resets.get(element.ident, ()):
                ET.SubElement(
                    node, "activate-on-match", element=counter, port="reset"
                )
        elif isinstance(element, CounterElement):
            node = ET.SubElement(
                network,
                "counter",
                id=element.ident,
                target=str(element.target),
                **{"at-target": _AT_TARGET[element.mode]},
            )
            if element.report:
                report_attrs = {}
                if element.report_code is not None:
                    report_attrs["reportcode"] = str(element.report_code)
                ET.SubElement(node, "report-on-target", report_attrs)
            for dst in automaton.successors(element.ident):
                ET.SubElement(node, "activate-on-target", element=dst)
        else:  # pragma: no cover
            raise ReproError(f"cannot serialise element {element!r}")
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _parse_code(text: str | None):
    if text is None:
        return None
    try:
        return int(text)
    except ValueError:
        return text


def from_anml(text: str) -> Automaton:
    """Parse an ANML XML string into an automaton."""
    root = ET.fromstring(text)
    network = root.find("automata-network")
    if network is None:
        raise ReproError("no <automata-network> in ANML document")
    automaton = Automaton(network.get("id", "anml"))
    edges: list[tuple[str, str]] = []
    reset_wires: list[tuple[str, str]] = []
    for node in network:
        ident = node.get("id")
        if ident is None:
            raise ReproError(f"element without id: {node.tag}")
        if node.tag == "state-transition-element":
            symbol_set = node.get("symbol-set", "")
            if not symbol_set.startswith("["):
                raise ReproError(f"bad symbol-set {symbol_set!r}")
            if symbol_set == "[]":
                charset = CharSet.none()
            else:
                charset, end = parse_class(symbol_set, 1)
                if end != len(symbol_set):
                    raise ReproError(f"trailing junk in symbol-set {symbol_set!r}")
            report = node.find("report-on-match")
            automaton.add_ste(
                ident,
                charset,
                start=_START_OF.get(node.get("start", ""), StartMode.NONE),
                report=report is not None,
                report_code=_parse_code(report.get("reportcode")) if report is not None else None,
            )
            for act in node.findall("activate-on-match"):
                if act.get("port") == "reset":
                    reset_wires.append((ident, act.get("element")))
                else:
                    edges.append((ident, act.get("element")))
        elif node.tag == "counter":
            report = node.find("report-on-target")
            automaton.add_counter(
                ident,
                int(node.get("target", "1")),
                mode=_MODE_OF.get(node.get("at-target", "latch")),
                report=report is not None,
                report_code=_parse_code(report.get("reportcode")) if report is not None else None,
            )
            edges.extend(
                (ident, act.get("element"))
                for act in node.findall("activate-on-target")
            )
        else:
            raise ReproError(f"unsupported ANML element: {node.tag!r}")
    for src, dst in edges:
        automaton.add_edge(src, dst)
    for src, counter in reset_wires:
        automaton.add_reset_edge(src, counter)
    return automaton
