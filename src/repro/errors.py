"""Exception hierarchy for the repro (AutomataZoo reproduction) library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutomatonError(ReproError):
    """An automaton is structurally invalid (dangling edge, bad id, ...)."""


class RegexError(ReproError):
    """A regular expression could not be parsed or compiled."""


class RegexUnsupportedError(RegexError):
    """The expression uses a feature outside the supported PCRE subset.

    Mirrors pcre2mnrl's behaviour of rejecting (rather than mis-compiling)
    constructs like back-references: AutomataZoo only admits patterns its
    open-source toolchain can compile.
    """


class PatternError(ReproError):
    """A domain pattern (YARA, PROSITE, ClamAV, Snort, ...) is malformed."""


class EngineError(ReproError):
    """An execution engine was misused or hit an unrecoverable state."""


class CapacityError(ReproError):
    """An automaton does not fit the resources of a spatial architecture."""
