"""Exception hierarchy for the repro (AutomataZoo reproduction) library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutomatonError(ReproError):
    """An automaton is structurally invalid (dangling edge, bad id, ...)."""


class TransformPreconditionError(AutomatonError):
    """A transform's structural preconditions do not hold.

    Subclasses :class:`AutomatonError` (callers catching the old ad-hoc
    errors keep working) and carries the analyzer diagnostics that
    explain *which* precondition failed, with stable ``AZ4xx`` codes.
    """

    def __init__(self, transform: str, diagnostics) -> None:
        self.transform = transform
        self.diagnostics = list(diagnostics)
        details = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(f"{transform} preconditions violated: {details}")


class LintError(ReproError):
    """A generated automaton failed static analysis (``repro.analysis``).

    Raised by the lint-gated benchmark registry when a generator emits an
    automaton with unsuppressed error-severity diagnostics.
    """

    def __init__(self, name: str, diagnostics) -> None:
        self.benchmark = name
        self.diagnostics = list(diagnostics)
        details = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(f"benchmark {name!r} failed lint: {details}")


class RegexError(ReproError):
    """A regular expression could not be parsed or compiled."""


class RegexUnsupportedError(RegexError):
    """The expression uses a feature outside the supported PCRE subset.

    Mirrors pcre2mnrl's behaviour of rejecting (rather than mis-compiling)
    constructs like back-references: AutomataZoo only admits patterns its
    open-source toolchain can compile.
    """


class PatternError(ReproError):
    """A domain pattern (YARA, PROSITE, ClamAV, Snort, ...) is malformed."""


class EngineError(ReproError):
    """An execution engine was misused or hit an unrecoverable state."""


class CapacityError(ReproError):
    """An automaton does not fit the resources of a spatial architecture."""
