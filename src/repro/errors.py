"""Exception hierarchy for the repro (AutomataZoo reproduction) library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutomatonError(ReproError):
    """An automaton is structurally invalid (dangling edge, bad id, ...)."""


class TransformPreconditionError(AutomatonError):
    """A transform's structural preconditions do not hold.

    Subclasses :class:`AutomatonError` (callers catching the old ad-hoc
    errors keep working) and carries the analyzer diagnostics that
    explain *which* precondition failed, with stable ``AZ4xx`` codes.
    """

    def __init__(self, transform: str, diagnostics) -> None:
        self.transform = transform
        self.diagnostics = list(diagnostics)
        details = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(f"{transform} preconditions violated: {details}")


class LintError(ReproError):
    """A generated automaton failed static analysis (``repro.analysis``).

    Raised by the lint-gated benchmark registry when a generator emits an
    automaton with unsuppressed error-severity diagnostics.
    """

    def __init__(self, name: str, diagnostics) -> None:
        self.benchmark = name
        self.diagnostics = list(diagnostics)
        details = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(f"benchmark {name!r} failed lint: {details}")


class RegexError(ReproError):
    """A regular expression could not be parsed or compiled."""


class RegexUnsupportedError(RegexError):
    """The expression uses a feature outside the supported PCRE subset.

    Mirrors pcre2mnrl's behaviour of rejecting (rather than mis-compiling)
    constructs like back-references: AutomataZoo only admits patterns its
    open-source toolchain can compile.
    """


class PatternError(ReproError):
    """A domain pattern (YARA, PROSITE, ClamAV, Snort, ...) is malformed."""


class EngineError(ReproError):
    """An execution engine was misused or hit an unrecoverable state."""


class CapacityError(ReproError):
    """An automaton does not fit the resources of a spatial architecture."""


class InputError(ReproError):
    """An input file is truncated or malformed.

    Carries the file ``path`` and the byte ``offset`` of the first
    structural problem, so loader failures point at bytes instead of
    surfacing a bare ``struct.error``/``IndexError``.
    """

    def __init__(self, path, offset: int, message: str) -> None:
        self.path = str(path)
        self.offset = offset
        self.detail = message
        super().__init__(f"{self.path}: offset {offset}: {message}")

    def __reduce__(self):
        return (type(self), (self.path, self.offset, self.detail))


class ResilienceError(ReproError):
    """Base for resource-guard and supervised-execution failures.

    Everything the :mod:`repro.resilience` layer raises or isolates is a
    subclass, so the fallback ladder and the supervised pool can catch
    one type to mean "this attempt failed in a controlled, reported way".
    """


class ScanTimeout(ResilienceError):
    """A scan overran its wall-clock deadline.

    Raised by a :class:`~repro.resilience.guards.ScanGuard` at block
    granularity inside an engine's feed loop; carries which engine was
    running, how far it got, and the budget it blew.
    """

    def __init__(
        self, engine: str, offset: int, budget_s: float, segment: int | None = None
    ) -> None:
        self.engine = engine
        self.offset = offset
        self.budget_s = budget_s
        self.segment = segment
        where = f" (segment {segment})" if segment is not None else ""
        super().__init__(
            f"{engine} scan{where} exceeded {budget_s:.3f}s wall-clock "
            f"budget at offset {offset}"
        )

    def __reduce__(self):
        # Guard trips happen inside pool workers; default exception
        # pickling re-calls __init__ with .args (the message) only.
        return (type(self), (self.engine, self.offset, self.budget_s, self.segment))


class MemoryBudgetExceeded(ResilienceError):
    """A memoisation structure outgrew its byte budget.

    Raised by the lazy-DFA memo guard after demotion (dropping the dense
    promoted tables) was not enough; the fallback ladder turns it into a
    rerun on the next engine down.
    """

    def __init__(
        self, engine: str, used_bytes: int, budget_bytes: int, offset: int | None = None
    ) -> None:
        self.engine = engine
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes
        self.offset = offset
        super().__init__(
            f"{engine} memo grew to ~{used_bytes:,} bytes, over the "
            f"{budget_bytes:,}-byte budget"
        )

    def __reduce__(self):
        return (
            type(self),
            (self.engine, self.used_bytes, self.budget_bytes, self.offset),
        )


class WorkerCrash(ResilienceError):
    """A parallel-scan worker died (dead process or broken pool)."""

    def __init__(self, segment: int, attempt: int, detail: str = "worker died") -> None:
        self.segment = segment
        self.attempt = attempt
        self.detail = detail
        super().__init__(f"segment {segment} attempt {attempt}: {detail}")

    def __reduce__(self):
        return (type(self), (self.segment, self.attempt, self.detail))


class EngineFailure(ResilienceError):
    """One engine attempt failed; carries engine/segment/offset context.

    Also the terminal error of a fallback ladder whose every rung failed
    (``engine`` is then ``"ladder"`` and ``detail`` lists the per-rung
    failures).
    """

    def __init__(
        self,
        engine: str,
        detail: str,
        *,
        segment: int | None = None,
        offset: int | None = None,
    ) -> None:
        self.engine = engine
        self.detail = detail
        self.segment = segment
        self.offset = offset
        where = f" (segment {segment})" if segment is not None else ""
        super().__init__(f"{engine}{where}: {detail}")

    def __reduce__(self):
        return (
            _rebuild_engine_failure,
            (type(self), self.engine, self.detail, self.segment, self.offset),
        )


def _rebuild_engine_failure(cls, engine, detail, segment, offset):
    return cls(engine, detail, segment=segment, offset=offset)


class CheckpointMismatch(ResilienceError):
    """A sweep checkpoint was recorded under different parameters.

    Resuming with a mismatched (names, engines, scale, seed, ...) tuple
    would silently mix incompatible cells; refuse instead.
    """

    def __init__(self, path, detail: str) -> None:
        self.path = str(path)
        self.detail = detail
        super().__init__(f"{self.path}: {detail}")

    def __reduce__(self):
        return (type(self), (self.path, self.detail))
