"""YARA malware-rule substrate (Section IX-A)."""

from repro.yara.hexstring import (
    hex_string_to_regex,
    nibble_charset_regex,
    tokenize_hex_string,
)
from repro.yara.parser import YaraRule, YaraString, evaluate_condition, parse_yara

__all__ = [
    "YaraRule",
    "YaraString",
    "evaluate_condition",
    "hex_string_to_regex",
    "nibble_charset_regex",
    "parse_yara",
    "tokenize_hex_string",
]
