"""YARA hex-string patterns → regular expressions (Section IX-A).

YARA hex strings describe byte sequences at nibble (4-bit) granularity::

    9C 50 A1 ?? (?A ?? 00 | 66 A9 D?) ?? 58 0F 85

``??`` is a full wildcard byte, ``A?``/``?A`` constrain one nibble,
``[n-m]`` is a bounded jump (run of wildcards), ``[n-]`` unbounded, and
``( .. | .. )`` alternates byte sequences.  Most automata toolchains only
speak byte-level patterns, so the paper's pipeline converts "nibble-level
pattern wildcards ... into a complex byte-level character set within the
regular expression"; this module is that converter.
"""

from __future__ import annotations

from repro.errors import PatternError

__all__ = ["nibble_charset_regex", "hex_string_to_regex", "tokenize_hex_string"]

_HEX = "0123456789abcdefABCDEF"
_ANY_BYTE = r"[\x00-\xff]"


def nibble_charset_regex(high: str, low: str) -> str:
    """Regex snippet for one byte with possibly-wildcard nibbles.

    ``high``/``low`` are hex digits or ``?``.
    """
    if high == "?" and low == "?":
        return _ANY_BYTE
    if high != "?" and low != "?":
        return rf"\x{high}{low}".lower()
    if low == "?":
        # fixed high nibble: a contiguous 16-byte range
        base = int(high, 16) << 4
        return rf"[\x{base:02x}-\x{base + 15:02x}]"
    # fixed low nibble: 16 bytes spaced 0x10 apart
    nib = int(low, 16)
    options = "".join(rf"\x{(h << 4) | nib:02x}" for h in range(16))
    return f"[{options}]"


def tokenize_hex_string(text: str) -> list[tuple[str, object]]:
    """Tokenise a hex string into (kind, value) pairs.

    Kinds: ``byte`` (high, low nibble chars), ``jump`` ((lo, hi|None)),
    ``alt_open``, ``alt_sep``, ``alt_close``.
    """
    tokens: list[tuple[str, object]] = []
    i = 0
    text = text.strip()
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == "(":
            tokens.append(("alt_open", None))
            i += 1
        elif ch == "|":
            tokens.append(("alt_sep", None))
            i += 1
        elif ch == ")":
            tokens.append(("alt_close", None))
            i += 1
        elif ch == "[":
            end = text.find("]", i)
            if end < 0:
                raise PatternError(f"unterminated jump in hex string: {text[i:i+10]!r}")
            body = text[i + 1 : end].strip()
            if "-" in body:
                lo_s, hi_s = body.split("-", 1)
                lo = int(lo_s) if lo_s.strip() else 0
                hi = int(hi_s) if hi_s.strip() else None
            else:
                lo = hi = int(body)
            if hi is not None and hi < lo:
                raise PatternError(f"inverted jump bounds [{body}]")
            tokens.append(("jump", (lo, hi)))
            i = end + 1
        elif ch in _HEX or ch == "?":
            if i + 1 >= len(text) or (text[i + 1] not in _HEX and text[i + 1] != "?"):
                raise PatternError(f"lone nibble at position {i} in hex string")
            tokens.append(("byte", (ch, text[i + 1])))
            i += 2
        else:
            raise PatternError(f"bad character {ch!r} in hex string")
    return tokens


def hex_string_to_regex(text: str, *, max_unbounded_jump: int | None = None) -> str:
    """Convert a YARA hex string to a regex our compiler accepts.

    Unbounded jumps ``[n-]`` become ``{n,}`` wildcard runs.  When
    ``max_unbounded_jump`` is set they are clamped to ``{n,max}`` instead,
    which keeps counted-expansion sizes bounded for very long signatures.
    """
    tokens = tokenize_hex_string(text)
    out: list[str] = []
    depth = 0
    for kind, value in tokens:
        if kind == "byte":
            out.append(nibble_charset_regex(*value))
        elif kind == "jump":
            lo, hi = value
            if hi is None:
                if max_unbounded_jump is not None:
                    hi = max(lo, max_unbounded_jump)
                    out.append(_ANY_BYTE + f"{{{lo},{hi}}}")
                elif lo == 0:
                    out.append(_ANY_BYTE + "*")
                else:
                    out.append(_ANY_BYTE + f"{{{lo},}}")
            elif lo == hi:
                out.append(_ANY_BYTE + f"{{{lo}}}" if lo != 1 else _ANY_BYTE)
            else:
                out.append(_ANY_BYTE + f"{{{lo},{hi}}}")
        elif kind == "alt_open":
            out.append("(?:")
            depth += 1
        elif kind == "alt_sep":
            if depth == 0:
                raise PatternError("alternation separator outside a group")
            out.append("|")
        elif kind == "alt_close":
            if depth == 0:
                raise PatternError("unbalanced ) in hex string")
            out.append(")")
            depth -= 1
    if depth != 0:
        raise PatternError("unbalanced ( in hex string")
    if not out:
        raise PatternError("empty hex string")
    return "".join(out)
