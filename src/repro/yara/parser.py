"""Mini YARA rule parser (the plyara stand-in of Section IX-A).

Supports the subset of YARA the benchmark pipeline needs: rules with a
``strings`` section containing hex strings (``{ ... }``), text strings
(``"..."`` with ``nocase``/``wide``/``ascii``/``fullword`` modifiers), and
regex strings (``/.../``), plus a ``condition`` over the string ids
(``any of them``, ``all of them``, and and/or combinations of ``$id``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import PatternError

__all__ = ["YaraString", "YaraRule", "parse_yara", "evaluate_condition"]

_STRING_MODIFIERS = {"nocase", "wide", "ascii", "fullword"}


@dataclass(frozen=True)
class YaraString:
    """One entry of a rule's strings section."""

    ident: str  # includes the leading $
    kind: str  # "hex" | "text" | "regex"
    value: str  # hex body / literal text / bare regex
    modifiers: frozenset[str] = field(default=frozenset())

    @property
    def is_wide(self) -> bool:
        return "wide" in self.modifiers

    @property
    def is_nocase(self) -> bool:
        return "nocase" in self.modifiers


@dataclass(frozen=True)
class YaraRule:
    name: str
    tags: tuple[str, ...]
    strings: tuple[YaraString, ...]
    condition: str

    def string(self, ident: str) -> YaraString:
        for string in self.strings:
            if string.ident == ident:
                return string
        raise KeyError(ident)


_RULE_HEADER = re.compile(r"rule\s+(?P<name>\w+)\s*(?::\s*(?P<tags>[\w\s]+?))?\s*\{")
_STRING_LINE = re.compile(r"^\s*(?P<ident>\$\w*)\s*=\s*(?P<body>.+?)\s*$")


def _parse_string_body(ident: str, body: str) -> YaraString:
    body = body.strip()
    if body.startswith("{"):
        end = body.rfind("}")
        if end < 0:
            raise PatternError(f"unterminated hex string for {ident}")
        return YaraString(ident, "hex", body[1:end].strip())
    if body.startswith('"'):
        end = body.rfind('"')
        if end == 0:
            raise PatternError(f"unterminated text string for {ident}")
        text = body[1:end]
        modifiers = frozenset(
            word for word in body[end + 1 :].split() if word in _STRING_MODIFIERS
        )
        unknown = set(body[end + 1 :].split()) - _STRING_MODIFIERS
        if unknown:
            raise PatternError(f"unknown string modifiers {unknown} for {ident}")
        return YaraString(ident, "text", text, modifiers)
    if body.startswith("/"):
        end = body.rfind("/")
        if end == 0:
            raise PatternError(f"unterminated regex string for {ident}")
        modifiers = frozenset(
            word for word in body[end + 1 :].split() if word in _STRING_MODIFIERS
        )
        return YaraString(ident, "regex", body[1:end], modifiers)
    raise PatternError(f"unrecognised string body for {ident}: {body[:30]!r}")


def parse_yara(text: str) -> list[YaraRule]:
    """Parse a YARA source file into rules."""
    rules: list[YaraRule] = []
    pos = 0
    while True:
        header = _RULE_HEADER.search(text, pos)
        if header is None:
            break
        name = header.group("name")
        tags = tuple((header.group("tags") or "").split())
        # find the matching closing brace (strings/conditions contain no
        # nested braces except hex strings, which we track)
        depth = 1
        i = header.end()
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        if depth:
            raise PatternError(f"unterminated rule {name}")
        body = text[header.end() : i - 1]
        pos = i

        strings: list[YaraString] = []
        condition = ""
        section = None
        for line in body.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("//"):
                continue
            lowered = stripped.lower()
            if lowered.startswith("meta:"):
                section = "meta"
                continue
            if lowered.startswith("strings:"):
                section = "strings"
                stripped = stripped[len("strings:") :].strip()
                if not stripped:
                    continue
                # fall through: a string defined on the same line
            if lowered.startswith("condition:"):
                section = "condition"
                condition = stripped[len("condition:") :].strip()
                continue
            if section == "strings":
                match = _STRING_LINE.match(stripped)
                if match is None:
                    raise PatternError(f"bad string line in {name}: {stripped!r}")
                strings.append(
                    _parse_string_body(match.group("ident"), match.group("body"))
                )
            elif section == "condition" and stripped:
                condition = (condition + " " + stripped).strip()
        if not strings:
            raise PatternError(f"rule {name} has no strings")
        if not condition:
            raise PatternError(f"rule {name} has no condition")
        rules.append(YaraRule(name, tags, tuple(strings), condition))
    return rules


def evaluate_condition(rule: YaraRule, matched: set[str]) -> bool:
    """Evaluate a rule condition given the set of matched string idents.

    Supports ``any of them``, ``all of them``, ``N of them``, and
    boolean combinations of ``$id`` with and/or/not and parentheses.
    """
    condition = rule.condition.strip()
    all_ids = [s.ident for s in rule.strings]
    lowered = condition.lower()
    of_them = re.fullmatch(r"(any|all|\d+)\s+of\s+them", lowered)
    if of_them:
        quantifier = of_them.group(1)
        count = sum(1 for ident in all_ids if ident in matched)
        if quantifier == "any":
            return count >= 1
        if quantifier == "all":
            return count == len(all_ids)
        return count >= int(quantifier)

    # boolean expression over $ids: translate to python and eval safely
    tokens = re.findall(r"\$\w+|\(|\)|and|or|not", condition)
    if "".join(tokens).replace("(", "").replace(")", "") == "":
        raise PatternError(f"unsupported condition: {condition!r}")
    expression = " ".join(
        str(token in matched) if token.startswith("$") else token for token in tokens
    )
    try:
        return bool(eval(expression, {"__builtins__": {}}, {}))
    except SyntaxError as exc:
        raise PatternError(f"unsupported condition: {condition!r}") from exc
