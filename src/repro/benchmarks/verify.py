"""Suite self-verification: does a generated benchmark behave as designed?

``verify_benchmark`` runs family-specific semantic checks on a
:class:`~repro.benchmarks.spec.Benchmark` — planted virus fragments are
detected, mesh report rates track the analytic model, PRNG chains emit one
face per cycle, the forest classifies far above chance, and so on —
returning a list of human-readable problems (empty = healthy).  This is
the suite's regression safety net: any generator change that silently
breaks a benchmark's semantics fails these checks at every scale.
"""

from __future__ import annotations

from repro.benchmarks.spec import Benchmark
from repro.engines.vector import VectorEngine
from repro.profiling.analytic import hamming_match_probability

__all__ = ["verify_benchmark"]

_INPUT_SLICE = 20_000


def _run(benchmark: Benchmark, *, record_active: bool = False):
    engine = VectorEngine(benchmark.automaton)
    return engine.run(benchmark.input_data[:_INPUT_SLICE], record_active=record_active)


def _verify_structure(benchmark: Benchmark, problems: list[str]) -> None:
    try:
        benchmark.automaton.validate()
    except Exception as exc:  # noqa: BLE001 - collected, not raised
        problems.append(f"automaton fails validation: {exc}")
    if benchmark.states == 0:
        problems.append("automaton is empty")
    if not benchmark.input_data:
        problems.append("standard input is empty")


def _verify_clamav(benchmark: Benchmark, problems: list[str]) -> None:
    result = VectorEngine(benchmark.automaton).run(benchmark.input_data)
    detected = {event.code for event in result.reports}
    missing = set(benchmark.meta.get("planted", ())) - detected
    if missing:
        problems.append(f"planted virus fragments not detected: {sorted(missing)}")


def _verify_yara(benchmark: Benchmark, problems: list[str]) -> None:
    result = VectorEngine(benchmark.automaton).run(benchmark.input_data)
    fired_rules = {event.code[0] for event in result.reports}
    planted = set(benchmark.meta.get("planted", ()))
    # wide benchmarks include only wide strings; planted rules without
    # wide strings legitimately cannot fire there
    if benchmark.name == "YARA Wide":
        return
    missing = planted - fired_rules
    if missing:
        problems.append(f"planted YARA rules never fired: {sorted(missing)[:5]}")


def _verify_hamming(benchmark: Benchmark, problems: list[str]) -> None:
    l, d = benchmark.meta["l"], benchmark.meta["d"]
    n_filters = benchmark.meta["filters"]
    result = _run(benchmark)
    symbols = min(len(benchmark.input_data), _INPUT_SLICE)
    expected = hamming_match_probability(l, d) * symbols * n_filters
    observed = len({(r.offset, r.code[0]) for r in result.reports})
    # Poisson-ish tolerance: generous bounds, catches gross breakage only
    if expected >= 5 and not (0.2 * expected <= observed <= 5 * expected):
        problems.append(
            f"hamming report count {observed} far from analytic {expected:.1f}"
        )
    if expected < 1 and observed > 50:
        problems.append(f"hamming reports {observed} where ~none expected")


def _verify_apprng(benchmark: Benchmark, problems: list[str]) -> None:
    result = _run(benchmark)
    n_chains = benchmark.meta["chains"]
    symbols = min(len(benchmark.input_data), _INPUT_SLICE)
    expected = (symbols - 1) * n_chains
    if result.report_count != expected:
        problems.append(
            f"PRNG emitted {result.report_count} faces, expected {expected} "
            "(one per chain per cycle after the first)"
        )


def _verify_random_forest(benchmark: Benchmark, problems: list[str]) -> None:
    accuracy = benchmark.meta.get("accuracy", 0.0)
    if accuracy < 0.3:  # 10-class chance is 0.1
        problems.append(f"forest accuracy {accuracy:.2f} barely above chance")


def _verify_seqmatch(benchmark: Benchmark, problems: list[str]) -> None:
    result = _run(benchmark)
    n_patterns = benchmark.meta["patterns"]
    if benchmark.meta.get("counters"):
        counters = sum(1 for _ in benchmark.automaton.counters())
        if counters != n_patterns:
            problems.append(f"{counters} counters for {n_patterns} patterns")
        if result.report_count > n_patterns:
            problems.append("STOP counters reported more than once each")


_FAMILY_CHECKS = {
    "ClamAV": _verify_clamav,
    "YARA": _verify_yara,
    "YARA Wide": _verify_yara,
    "AP PRNG 4-sided": _verify_apprng,
    "AP PRNG 8-sided": _verify_apprng,
}


def verify_benchmark(benchmark: Benchmark) -> list[str]:
    """Run structural + family-specific checks; return problems found."""
    problems: list[str] = []
    _verify_structure(benchmark, problems)
    if problems:
        return problems  # structural failure: skip semantic checks

    if benchmark.name.startswith("Hamming"):
        _verify_hamming(benchmark, problems)
    elif benchmark.name.startswith("Random Forest"):
        _verify_random_forest(benchmark, problems)
    elif benchmark.name.startswith("Seq. Match"):
        _verify_seqmatch(benchmark, problems)
    else:
        check = _FAMILY_CHECKS.get(benchmark.name)
        if check is not None:
            check(benchmark, problems)
        else:
            # generic: the standard input must exercise the automaton —
            # if no state ever matches, the active set never rises above
            # the self-enabling start states and nothing reports
            result = _run(benchmark, record_active=True)
            baseline = result.active_per_cycle[0] if result.active_per_cycle else 0
            if (
                not result.reports
                and all(a <= baseline for a in result.active_per_cycle)
            ):
                problems.append("standard input never activates any state")
    return problems
