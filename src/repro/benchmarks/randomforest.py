"""Random Forest benchmarks (variants A/B/C of Table II).

Tracy et al.'s kernel converts a trained decision-tree ensemble to automata:
every root-to-leaf path becomes one chain (one subgraph), the input stream
is the quantised feature vector, and a report's code is the path's class
label, so the automaton's report stream is a *full, interpretable
classification kernel* — the property Section VIII exploits to compare
against native tree inference.

Encoding (our design; see DESIGN.md):

* A classification input is ``DELIM`` followed by the F selected feature
  values (quantised to 0..254) in fixed feature order.
* A path chain is a ``DELIM``-matching all-input anchor followed by one STE
  per feature position up to the path's last tested feature: tested
  features carry the path's admissible value range, untested ones a
  0..254 wildcard.  The final state reports ``(tree_id, label)``.

This preserves the paper's two trade-off axes exactly: states scale with
leaves x path depth (max_leaves), and symbols per classification — hence
spatial-architecture runtime — scale with the feature count.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import StartMode
from repro.engines.base import Engine
from repro.engines.vector import VectorEngine
from repro.ml.dataset import make_digits, select_features
from repro.ml.forest import RandomForest

__all__ = [
    "DELIM",
    "VARIANTS",
    "ForestVariant",
    "TrainedVariant",
    "forest_to_automaton",
    "encode_samples",
    "classify_with_automaton",
    "train_variant",
]

#: Vector delimiter symbol; feature values are quantised below it.
DELIM = 255
_WILDCARD = CharSet.from_ranges([(0, DELIM - 1)])


@dataclass(frozen=True)
class ForestVariant:
    """One Table II row's hyperparameters."""

    name: str
    n_features: int
    max_leaves: int
    n_trees: int = 20


#: The paper's three benchmark variants (Table II).
VARIANTS = {
    "A": ForestVariant("A", n_features=270, max_leaves=400),
    "B": ForestVariant("B", n_features=200, max_leaves=400),
    "C": ForestVariant("C", n_features=200, max_leaves=800),
}


def forest_to_automaton(forest: RandomForest, n_features: int) -> Automaton:
    """Convert a trained forest into the benchmark automaton.

    One chain per root-to-leaf path; ``automaton`` reports ``(tree, label)``
    at the path's last tested feature position.
    """
    automaton = Automaton("random-forest")
    for chain_index, (tree_index, path) in enumerate(forest.all_paths()):
        bounds = path.as_dict()
        last = max(bounds) if bounds else -1
        prefix = f"c{chain_index}"
        anchor = automaton.add_ste(
            f"{prefix}.d", CharSet.single(DELIM), start=StartMode.ALL_INPUT
        ).ident
        previous = anchor
        for feature in range(last + 1):
            if feature in bounds:
                lo, hi = bounds[feature]
                hi = min(hi, DELIM - 1)
                # A path requiring value > 254 is unreachable in the
                # clipped stream; give it an unmatchable charset.
                charset = CharSet.from_ranges([(lo, hi)]) if lo <= hi else CharSet.none()
            else:
                charset = _WILDCARD
            is_last = feature == last
            ident = automaton.add_ste(
                f"{prefix}.f{feature}",
                charset,
                report=is_last,
                report_code=(tree_index, path.label) if is_last else None,
            ).ident
            automaton.add_edge(previous, ident)
            previous = ident
        if last == -1:
            # Degenerate single-leaf tree: report straight after the anchor.
            automaton.add_ste(
                f"{prefix}.any",
                _WILDCARD,
                report=True,
                report_code=(tree_index, path.label),
            )
            automaton.add_edge(anchor, f"{prefix}.any")
    return automaton


def encode_samples(x: np.ndarray) -> bytes:
    """Encode a batch of samples as the benchmark input stream."""
    clipped = np.minimum(x, DELIM - 1).astype(np.uint8)
    n, f = clipped.shape
    out = np.empty((n, f + 1), dtype=np.uint8)
    out[:, 0] = DELIM
    out[:, 1:] = clipped
    return out.tobytes()


def classify_with_automaton(
    automaton: Automaton,
    x: np.ndarray,
    *,
    n_classes: int,
    engine: Engine | None = None,
) -> np.ndarray:
    """Run the automaton kernel and majority-vote the reported labels.

    Ties break toward the lowest label, matching ``np.argmax`` in the
    native implementations so the two kernels are exactly comparable.
    """
    n, f = x.shape
    if engine is None:
        engine = VectorEngine(automaton)
    result = engine.run(encode_samples(x))
    votes: list[Counter] = [Counter() for _ in range(n)]
    for event in result.reports:
        sample = event.offset // (f + 1)
        _tree, label = event.code
        votes[sample][label] += 1
    out = np.zeros(n, dtype=np.int64)
    for i, counter in enumerate(votes):
        if counter:
            best = max(counter.values())
            out[i] = min(label for label, c in counter.items() if c == best)
    return out


@dataclass
class TrainedVariant:
    """A trained Table II variant plus its automaton and data split."""

    variant: ForestVariant
    forest: RandomForest
    automaton: Automaton
    features: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    accuracy: float

    @property
    def states(self) -> int:
        return self.automaton.n_states

    @property
    def symbols_per_classification(self) -> int:
        """Input symbols per classification — the spatial runtime driver."""
        return len(self.features) + 1


def train_variant(
    variant: ForestVariant,
    *,
    n_train: int = 2000,
    n_test: int = 500,
    seed: int = 0,
    scale: float = 1.0,
) -> TrainedVariant:
    """Train one benchmark variant end to end.

    ``scale`` shrinks trees and features proportionally (floor of 10
    features / 8 leaves) so tests and benches can run quickly while
    preserving the A/B/C relationships.
    """
    n_features = max(10, int(variant.n_features * scale))
    max_leaves = max(8, int(variant.max_leaves * scale))
    digits = make_digits(n_train=n_train, n_test=n_test, seed=seed)
    features = select_features(digits.train_x, digits.train_y, n_features)
    # Clip to the encodable value range so the automaton kernel and the
    # native kernel see byte-identical features.
    train_x = np.minimum(digits.train_x[:, features], DELIM - 1)
    test_x = np.minimum(digits.test_x[:, features], DELIM - 1)
    forest = RandomForest(
        n_trees=variant.n_trees, max_leaves=max_leaves, seed=seed
    ).fit(train_x, digits.train_y)
    automaton = forest_to_automaton(forest, n_features)
    accuracy = forest.accuracy(test_x, digits.test_y)
    return TrainedVariant(
        variant=variant,
        forest=forest,
        automaton=automaton,
        features=features,
        test_x=test_x,
        test_y=digits.test_y,
        accuracy=accuracy,
    )
