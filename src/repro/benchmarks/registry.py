"""The AutomataZoo suite registry: all 24 benchmarks behind one interface.

Every builder takes ``scale`` and ``seed``.  ``scale=1.0`` reproduces the
paper's benchmark parameters (Table I); smaller scales shrink pattern
counts and input sizes proportionally so the whole suite can be generated
and simulated on a laptop in minutes.  Scaling factors touch only the
*number* of patterns/filters and input length, never the per-pattern
construction, so per-subgraph statistics match the full-size suite.
"""

from __future__ import annotations

from collections.abc import Callable

from repro import telemetry
from repro.benchmarks import seqmatch
from repro.benchmarks.apprng import build_apprng_benchmark, random_input
from repro.benchmarks.brill import build_brill_automaton, generate_brill_rules
from repro.benchmarks.clamav import build_clamav_benchmark
from repro.benchmarks.crispr import cas_off_filter, cas_ot_filter, generate_guides
from repro.benchmarks.filecarving import build_filecarving_automaton
from repro.benchmarks.mesh import hamming_automaton, levenshtein_automaton
from repro.benchmarks.protomata import build_protomata_benchmark
from repro.benchmarks.randomforest import (
    VARIANTS,
    encode_samples,
    train_variant,
)
from repro.benchmarks.snort import build_snort_automaton
from repro.benchmarks.spec import Benchmark
from repro.benchmarks.yara_bench import (
    compile_yara_rules,
    generate_malware_corpus,
    generate_yara_ruleset,
)
from repro.core.automaton import Automaton
from repro.inputs.corpus import generate_tagged_corpus
from repro.inputs.diskimage import build_disk_image
from repro.inputs.dna import random_dna, random_dna_patterns

from repro.inputs.pcap import synthetic_pcap
from repro.snort.ruleset_gen import generate_ruleset

__all__ = ["BENCHMARK_NAMES", "build_benchmark", "build_suite"]


def _count(base: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale)))


# -- per-domain builders ------------------------------------------------------


def _snort(scale: float, seed: int) -> Benchmark:
    rules = generate_ruleset(_count(3000, scale, 20), seed=seed)
    automaton, included, _ = build_snort_automaton(rules)
    return Benchmark(
        name="Snort",
        domain="Network Intrusion Detection",
        input_desc="PCAP file",
        automaton=automaton,
        input_data=synthetic_pcap(_count(2000, scale, 20), seed=seed),
        meta={"rules": len(included)},
    )


def _clamav(scale: float, seed: int) -> Benchmark:
    bench = build_clamav_benchmark(
        _count(33_171, scale, 10), seed=seed, n_files=_count(12, max(scale, 0.25), 4)
    )
    return Benchmark(
        name="ClamAV",
        domain="Virus Detection",
        input_desc="Disk image",
        automaton=bench.automaton,
        input_data=bench.image.data,
        meta={"signatures": len(bench.signatures), "planted": bench.planted},
    )


def _protomata(scale: float, seed: int) -> Benchmark:
    bench = build_protomata_benchmark(
        _count(1309, scale, 10),
        n_residues=_count(200_000, scale, 2_000),
        seed=seed,
    )
    return Benchmark(
        name="Protomata",
        domain="Motif Search",
        input_desc="Uniprot Database",
        automaton=bench.automaton,
        input_data=bench.proteome,
        meta={"motifs": len(bench.motifs)},
    )


def _brill(scale: float, seed: int) -> Benchmark:
    rules = generate_brill_rules(_count(5000, scale, 20), seed=seed)
    return Benchmark(
        name="Brill",
        domain="Part of Speech Tagging",
        input_desc="Brown Corpus",
        automaton=build_brill_automaton(rules),
        input_data=generate_tagged_corpus(_count(500_000, scale, 2_000), seed=seed),
        meta={"rules": len(rules)},
    )


def _random_forest(variant_key: str) -> Callable[[float, int], Benchmark]:
    def build(scale: float, seed: int) -> Benchmark:
        trained = train_variant(
            VARIANTS[variant_key],
            n_train=_count(2000, max(scale, 0.1), 200),
            n_test=_count(500, max(scale, 0.1), 50),
            seed=seed,
            scale=max(scale, 0.05),
        )
        return Benchmark(
            name=f"Random Forest {variant_key}",
            domain="Machine Learning",
            input_desc="Custom",
            automaton=trained.automaton,
            input_data=encode_samples(trained.test_x),
            meta={
                "accuracy": trained.accuracy,
                "features": len(trained.features),
                "symbols_per_classification": trained.symbols_per_classification,
            },
        )

    return build


def _mesh(kernel: str, l: int, d: int) -> Callable[[float, int], Benchmark]:
    def build(scale: float, seed: int) -> Benchmark:
        n_filters = _count(1000, scale, 5)
        patterns = random_dna_patterns(n_filters, l, seed=seed)
        union = Automaton(f"{kernel}-{l}x{d}")
        builder = hamming_automaton if kernel == "Hamming" else levenshtein_automaton
        for index, pattern in enumerate(patterns):
            union.merge(
                builder(pattern, d, pattern_id=index), prefix=f"f{index}."
            )
        return Benchmark(
            name=f"{kernel} {l}x{d}",
            domain="String Similarity",
            input_desc="Random DNA",
            automaton=union,
            input_data=random_dna(_count(1_000_000, scale, 5_000), seed=seed + 1),
            meta={"filters": n_filters, "l": l, "d": d},
        )

    return build


def _seqmatch(p: int, with_counter: bool) -> Callable[[float, int], Benchmark]:
    def build(scale: float, seed: int) -> Benchmark:
        n_patterns = _count(1719, scale, 5)
        patterns = seqmatch.generate_patterns(n_patterns, p=p, w=6, seed=seed)
        union = Automaton(f"seqmatch-6w{p}p{'-wC' if with_counter else ''}")
        for index, pattern in enumerate(patterns):
            union.merge(
                seqmatch.sequence_pattern_automaton(
                    pattern,
                    pattern_id=index,
                    with_counter=with_counter,
                    min_support=2,
                ),
                prefix=f"p{index}.",
            )
        database = seqmatch.generate_database(_count(5_000, scale, 50), seed=seed + 1)
        suffix = " wC" if with_counter else ""
        return Benchmark(
            name=f"Seq. Match 6w {p}p{suffix}",
            domain="Ordered Pattern Counting",
            input_desc="Custom",
            automaton=union,
            input_data=seqmatch.encode_database(database),
            meta={"patterns": n_patterns, "counters": with_counter},
        )

    return build


def _entity(scale: float, seed: int) -> Benchmark:
    from repro.benchmarks.entity import build_entity_benchmark

    bench = build_entity_benchmark(
        n_names=_count(10_000, scale, 10),
        n_records=_count(100_000, scale, 100),
        seed=seed,
    )
    return Benchmark(
        name="Entity Resolution",
        domain="Duplicate entry identification",
        input_desc="100k names",
        automaton=bench.automaton,
        input_data=bench.stream,
        meta={"names": len(bench.names), "duplicates": len(bench.duplicates)},
    )


def _crispr(style: str) -> Callable[[float, int], Benchmark]:
    def build(scale: float, seed: int) -> Benchmark:
        guides = generate_guides(_count(2000, scale, 5), seed=seed)
        union = Automaton(f"crispr-{style}")
        for index, guide in enumerate(guides):
            if style == "OFF":
                sub = cas_off_filter(guide, 3, guide_id=index)
            else:
                sub = cas_ot_filter(guide, 2, guide_id=index)
            union.merge(sub, prefix=f"g{index}.")
        return Benchmark(
            name=f"CRISPR Cas{'Offinder' if style == 'OFF' else 'OT'}",
            domain="DNA pattern search",
            input_desc="DNA",
            automaton=union,
            input_data=random_dna(_count(500_000, scale, 5_000), seed=seed + 1),
            meta={"filters": len(guides), "style": style},
        )

    return build


def _yara(wide: bool) -> Callable[[float, int], Benchmark]:
    def build(scale: float, seed: int) -> Benchmark:
        rules = generate_yara_ruleset(_count(10_000, scale, 10), seed=seed)
        automaton, _ = compile_yara_rules(rules, wide=wide)
        corpus, planted = generate_malware_corpus(
            rules, n_files=_count(40, scale, 3), seed=seed + 1, wide=wide
        )
        return Benchmark(
            name="YARA Wide" if wide else "YARA",
            domain="Malware pattern search",
            input_desc="Malware files",
            automaton=automaton,
            input_data=corpus,
            meta={"rules": len(rules), "planted": sorted(planted)},
        )

    return build


def _filecarving(scale: float, seed: int) -> Benchmark:
    kinds = ["zip", "mpeg2", "mp4", "jpeg", "text", "png"] * _count(4, scale, 1)
    image = build_disk_image(kinds, seed=seed)
    return Benchmark(
        name="File Carving",
        domain="File metadata search",
        input_desc="Multi-media files",
        automaton=build_filecarving_automaton(),
        input_data=image.data,
        meta={"files": len(kinds)},
    )


def _apprng(n_faces: int) -> Callable[[float, int], Benchmark]:
    def build(scale: float, seed: int) -> Benchmark:
        n_chains = _count(1000, scale, 5)
        return Benchmark(
            name=f"AP PRNG {n_faces}-sided",
            domain="Pseudo-random number generation",
            input_desc="Pseudo-random bytes",
            automaton=build_apprng_benchmark(n_faces, n_chains, seed=seed),
            input_data=random_input(_count(100_000, scale, 2_000), seed=seed + 1),
            compressible=False,
            meta={"chains": n_chains},
        )

    return build


_BUILDERS: dict[str, Callable[[float, int], Benchmark]] = {
    "Snort": _snort,
    "ClamAV": _clamav,
    "Protomata": _protomata,
    "Brill": _brill,
    "Random Forest A": _random_forest("A"),
    "Random Forest B": _random_forest("B"),
    "Random Forest C": _random_forest("C"),
    "Hamming 18x3": _mesh("Hamming", 18, 3),
    "Hamming 22x5": _mesh("Hamming", 22, 5),
    "Hamming 31x10": _mesh("Hamming", 31, 10),
    "Levenshtein 19x3": _mesh("Levenshtein", 19, 3),
    "Levenshtein 24x5": _mesh("Levenshtein", 24, 5),
    "Levenshtein 37x10": _mesh("Levenshtein", 37, 10),
    "Seq. Match 6w 6p": _seqmatch(6, False),
    "Seq. Match 6w 6p wC": _seqmatch(6, True),
    "Seq. Match 6w 10p": _seqmatch(10, False),
    "Seq. Match 6w 10p wC": _seqmatch(10, True),
    "Entity Resolution": _entity,
    "CRISPR CasOffinder": _crispr("OFF"),
    "CRISPR CasOT": _crispr("OT"),
    "YARA": _yara(False),
    "YARA Wide": _yara(True),
    "File Carving": _filecarving,
    "AP PRNG 4-sided": _apprng(4),
    "AP PRNG 8-sided": _apprng(8),
}

#: The 24 paper benchmarks plus the extra AP PRNG variant row, in Table I
#: order (the paper counts AP PRNG's two variants as one benchmark slot).
BENCHMARK_NAMES: tuple[str, ...] = tuple(_BUILDERS)


def build_benchmark(
    name: str, *, scale: float = 1.0, seed: int = 0, lint: bool = True
) -> Benchmark:
    """Build one benchmark by its Table I name.

    Every built automaton is lint-gated through :mod:`repro.analysis`:
    unsuppressed ERROR diagnostics raise :class:`~repro.errors.LintError`
    rather than handing a malformed automaton to an engine.  Suppressions
    live in :data:`repro.analysis.suppressions.BENCHMARK_SUPPRESSIONS`;
    pass ``lint=False`` only when deliberately building a broken automaton
    (e.g. to reproduce a lint failure).
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {list(_BUILDERS)}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    with telemetry.span(f"benchmark.build.{name}"):
        bench = builder(scale, seed)
    if lint:
        from repro.analysis import lint_benchmark
        from repro.errors import LintError

        with telemetry.span(f"benchmark.lint.{name}"):
            report = lint_benchmark(name, bench.automaton)
        if report.errors:
            raise LintError(name, report.errors)
    return bench


def build_suite(
    *, scale: float = 1.0, seed: int = 0, names=None, lint: bool = True
) -> list[Benchmark]:
    """Build the whole suite (or a subset) at one scale."""
    selected = list(names) if names is not None else list(BENCHMARK_NAMES)
    return [
        build_benchmark(name, scale=scale, seed=seed, lint=lint)
        for name in selected
    ]
