"""The benchmark bundle type shared by the suite registry."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.automaton import Automaton

__all__ = ["Benchmark"]


@dataclass
class Benchmark:
    """One AutomataZoo benchmark: automaton + standard input + metadata.

    ``compressible`` mirrors Table I's "NA" entries: AP PRNG is excluded
    from prefix-merge statistics because merging probability-slice states
    would change its statistical behaviour.
    """

    name: str
    domain: str
    input_desc: str
    automaton: Automaton
    input_data: bytes
    compressible: bool = True
    meta: dict = field(default_factory=dict)

    @property
    def states(self) -> int:
        return self.automaton.n_states

    def __repr__(self) -> str:
        return (
            f"Benchmark({self.name!r}, states={self.states:,}, "
            f"input={len(self.input_data):,}B)"
        )
