"""The 24 AutomataZoo benchmark generators and the suite registry."""

from repro.benchmarks.registry import BENCHMARK_NAMES, build_benchmark, build_suite
from repro.benchmarks.spec import Benchmark

__all__ = ["BENCHMARK_NAMES", "Benchmark", "build_benchmark", "build_suite"]
