"""The ClamAV virus-detection benchmark.

Unlike ANMLZoo's (one executable as input, zero detections), the
AutomataZoo ClamAV benchmark compiles the *full* signature database and
scans "a disk image including various files and two embedded virus
fragments ... that trigger ClamAV rules" (Section IV).  This module
generates a synthetic signature database, materialises two of its
signatures into concrete virus fragments, embeds them into a disk image,
and compiles the database to one automaton.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.clamav.signature import ClamAVSignature
from repro.core.automaton import Automaton
from repro.inputs.diskimage import DiskImage, build_disk_image
from repro.regex.compile import compile_ruleset

__all__ = [
    "generate_signature_db",
    "materialize_signature",
    "build_clamav_benchmark",
    "ClamAVBenchmark",
]

_HEX_DIGITS = "0123456789abcdef"


def generate_signature_db(
    n_signatures: int = 60,
    *,
    seed: int = 0,
    min_bytes: int = 10,
    max_bytes: int = 32,
) -> list[ClamAVSignature]:
    """A synthetic ``.ndb`` database.

    ~70% plain hex bodies, ~20% with wildcard bytes or nibbles, ~10% with
    bounded jumps — matching the flavour mix of real body signatures.
    """
    rng = random.Random(seed)
    signatures = []
    for index in range(n_signatures):
        length = rng.randint(min_bytes, max_bytes)
        parts = []
        roll = rng.random()
        for position in range(length):
            if roll > 0.7 and rng.random() < 0.12 and 0 < position < length - 1:
                choice = rng.random()
                if choice < 0.5:
                    parts.append("??")
                elif choice < 0.75:
                    parts.append(rng.choice(_HEX_DIGITS) + "?")
                else:
                    parts.append("?" + rng.choice(_HEX_DIGITS))
            else:
                parts.append(rng.choice(_HEX_DIGITS) + rng.choice(_HEX_DIGITS))
        if roll > 0.9 and length > 8:
            split = rng.randint(3, length - 3)
            lo = rng.randint(0, 4)
            hi = lo + rng.randint(1, 6)
            parts.insert(split, f"{{{lo}-{hi}}}")
        signatures.append(
            ClamAVSignature(
                name=f"Synth.Virus.{index}",
                target_type=0,
                offset="*",
                hex_sig="".join(parts),
            )
        )
    return signatures


def materialize_signature(signature: ClamAVSignature, *, seed: int = 0) -> bytes:
    """Concrete bytes matching a signature (wildcards resolved randomly).

    Used to synthesise the "virus fragments" embedded in the disk image.
    """
    rng = random.Random(seed)
    out = bytearray()
    sig = signature.hex_sig
    i = 0
    while i < len(sig):
        ch = sig[i]
        if ch == "{":
            end = sig.index("}", i)
            body = sig[i + 1 : end]
            lo = int(body.split("-")[0] or 0) if "-" in body else int(body)
            out += bytes(rng.randrange(256) for _ in range(lo))
            i = end + 1
        elif ch == "*":
            i += 1  # shortest gap: zero bytes
        elif ch == "(":
            end = sig.index(")", i)
            alternative = sig[i + 1 : end].split("|")[0]
            inner = ClamAVSignature("x", 0, "*", alternative)
            out += materialize_signature(inner, seed=rng.randrange(2**30))
            i = end + 1
        else:
            high, low = sig[i], sig[i + 1]
            if high == "?":
                high = rng.choice(_HEX_DIGITS)
            if low == "?":
                low = rng.choice(_HEX_DIGITS)
            out.append(int(high + low, 16))
            i += 2
    return bytes(out)


@dataclass
class ClamAVBenchmark:
    """The compiled benchmark plus its input and ground truth."""

    automaton: Automaton
    signatures: list[ClamAVSignature]
    image: DiskImage
    planted: list[str]  # names of the embedded virus signatures


def build_clamav_benchmark(
    n_signatures: int = 60,
    *,
    seed: int = 0,
    n_files: int = 8,
) -> ClamAVBenchmark:
    """Generate database + disk image, compile, and bundle."""
    rng = random.Random(seed)
    signatures = generate_signature_db(n_signatures, seed=seed)
    planted = rng.sample(signatures, 2)  # the paper's two virus fragments
    inserts = [
        (f"virus:{sig.name}", materialize_signature(sig, seed=seed + 1 + k))
        for k, sig in enumerate(planted)
    ]
    kinds = [rng.choice(["text", "png", "jpeg", "zip", "mp4"]) for _ in range(n_files)]
    image = build_disk_image(kinds, seed=seed, inserts=inserts)
    patterns = [(sig.name, sig.to_regex()) for sig in signatures]
    automaton, rejected = compile_ruleset(patterns, name="clamav", skip_unsupported=True)
    if rejected:
        kept = {code for code, _ in rejected}
        signatures = [s for s in signatures if s.name not in kept]
    return ClamAVBenchmark(
        automaton=automaton,
        signatures=signatures,
        image=image,
        planted=[sig.name for sig in planted],
    )
