"""The File Carving benchmark (Sections IV and IX-B).

Identifies file headers/footers and forensic metadata in a raw byte stream.
Exact-match header carvers false-positive heavily, so this benchmark's
header patterns validate *structure*, including the sub-byte, cross-byte
bit-fields the paper highlights: the PKZip local header is checked with its
MS-DOS timestamp fields (seconds<=29, minutes<=59, hours<=23) and a
legal compression method, built as a bit-level automaton and 8-strided to
byte level.

The benchmark's nine patterns: zip local header (bit-level), zip
end-of-central-directory, mpeg-2 pack header, mpeg-2 program end, mp4 ftyp
header (bit-level size check), jpeg header, jpeg footer, e-mail addresses,
and US social security numbers (the paper's forensic metadata examples).
"""

from __future__ import annotations


from repro.bitlevel.builder import BitPatternBuilder
from repro.core.automaton import Automaton
from repro.regex.compile import compile_regex
from repro.transforms.striding import stride

__all__ = ["carving_patterns", "build_filecarving_automaton"]


def _dos_time_encodings() -> list[int]:
    """Stream-order (little-endian) encodings of every legal MS-DOS time."""
    out = []
    for hour in range(24):
        for minute in range(60):
            for sec2 in range(30):
                value = (hour << 11) | (minute << 5) | sec2
                out.append(((value & 0xFF) << 8) | (value >> 8))
    return out


def _dos_date_encodings() -> list[int]:
    """Stream-order encodings of legal MS-DOS dates (1980+, sane m/d)."""
    out = []
    for year in range(0, 60):  # 1980..2039
        for month in range(1, 13):
            for day in range(1, 29):  # conservative: valid in every month
                value = (year << 9) | (month << 5) | day
                out.append(((value & 0xFF) << 8) | (value >> 8))
    return out


def zip_local_header_automaton() -> Automaton:
    """PK\\x03\\x04 + version + flags + legal method + valid DOS time/date.

    Built at bit level (the timestamp constraints cross byte boundaries)
    and 8-strided to a byte automaton.
    """
    builder = BitPatternBuilder("zip-local-header")
    builder.bytes(b"PK\x03\x04")
    builder.wildcard_bytes(2)  # version needed to extract
    builder.wildcard_bytes(2)  # general-purpose flags
    # compression method, little-endian: stored (0) or deflate (8)
    builder.field(16, [0 << 8, 8 << 8])
    builder.field(16, _dos_time_encodings())
    builder.field(16, _dos_date_encodings())
    bit_automaton = builder.finish(report_code="zip-header")
    return stride(bit_automaton, 8)


def mp4_ftyp_automaton() -> Automaton:
    """MP4: 4-byte big-endian box size (sane: < 2^24) then 'ftyp'."""
    builder = BitPatternBuilder("mp4-ftyp")
    builder.field(8, [0])  # size byte 3: boxes beyond 16MB are bogus
    builder.wildcard_bytes(2)
    builder.field(8, range(8, 256))  # ftyp boxes are at least 8 bytes
    builder.bytes(b"ftyp")
    bit_automaton = builder.finish(report_code="mp4-ftyp")
    return stride(bit_automaton, 8)


#: The byte-level (regex) patterns of the benchmark.
_REGEX_PATTERNS = [
    ("zip-eocd", r"PK\x05\x06"),
    ("mpeg2-pack", r"\x00\x00\x01\xba"),
    ("mpeg2-end", r"\x00\x00\x01\xb9"),
    ("jpeg-header", r"\xff\xd8\xff[\xe0\xe1]"),
    ("jpeg-footer", r"\xff\xd9"),
    ("email", r"[a-zA-Z0-9._%+\-]{1,16}@[a-zA-Z0-9.\-]{1,16}\.[a-zA-Z]{2,4}"),
    ("ssn", r"[0-9]{3}\-[0-9]{2}\-[0-9]{4}"),
]


def carving_patterns() -> list[tuple[str, Automaton]]:
    """All nine carving patterns as individual automata."""
    out = [
        ("zip-header", zip_local_header_automaton()),
        ("mp4-ftyp", mp4_ftyp_automaton()),
    ]
    for code, pattern in _REGEX_PATTERNS:
        out.append((code, compile_regex(pattern, report_code=code, name=code)))
    return out


def build_filecarving_automaton() -> Automaton:
    """The full File Carving benchmark automaton (nine subgraphs)."""
    union = Automaton("file-carving")
    for index, (_code, automaton) in enumerate(carving_patterns()):
        union.merge(automaton, prefix=f"p{index}.")
    return union
