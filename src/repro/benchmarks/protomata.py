"""The Protomata benchmark: PROSITE motif search over protein sequences.

The paper's point for this domain (Section IV): the application is a
*fixed, canonical* workload — the 1,309 PROSITE motifs — so the benchmark
uses exactly those rules with no synthetic inflation.  We generate a
PROSITE-syntax motif database of the same canonical size and a protein
database stimulus with motif instances planted at known locations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.automaton import Automaton
from repro.prosite.parser import AMINO_ACIDS, prosite_to_regex
from repro.regex.compile import compile_ruleset

__all__ = [
    "CANONICAL_MOTIF_COUNT",
    "generate_motifs",
    "generate_proteome",
    "materialize_motif",
    "build_protomata_benchmark",
    "ProtomataBenchmark",
]

#: The fixed PROSITE database size the paper uses.
CANONICAL_MOTIF_COUNT = 1309


def generate_motifs(count: int = CANONICAL_MOTIF_COUNT, *, seed: int = 0) -> list[str]:
    """``count`` synthetic PROSITE-syntax motifs.

    Element mix modelled on real PROSITE entries: mostly exact residues,
    with wildcard gaps, residue sets, and occasional negated sets.
    """
    rng = random.Random(seed)
    motifs = []
    for _ in range(count):
        n_elements = rng.randint(6, 16)
        parts = []
        for _ in range(n_elements):
            roll = rng.random()
            if roll < 0.55:
                parts.append(rng.choice(AMINO_ACIDS))
            elif roll < 0.75:
                if rng.random() < 0.5:
                    parts.append(f"x({rng.randint(1, 4)})")
                else:
                    parts.append("x")
            elif roll < 0.92:
                size = rng.randint(2, 4)
                parts.append("[" + "".join(rng.sample(AMINO_ACIDS, size)) + "]")
            else:
                size = rng.randint(1, 3)
                parts.append("{" + "".join(rng.sample(AMINO_ACIDS, size)) + "}")
        motifs.append("-".join(parts) + ".")
    return motifs


def materialize_motif(motif: str, *, seed: int = 0) -> bytes:
    """A concrete residue string matching ``motif`` (for planting)."""
    from repro.prosite.parser import parse_pattern_elements

    rng = random.Random(seed)
    out = []
    for element, lo, _hi in parse_pattern_elements(motif):
        if element == "^":
            continue
        for _ in range(lo):
            if element.startswith("["):
                out.append(rng.choice(element[1:-1]))
            else:
                out.append(element)
    return "".join(out).encode("latin-1")


def generate_proteome(
    n_residues: int = 50_000,
    *,
    seed: int = 0,
    planted: list[bytes] | None = None,
) -> bytes:
    """A synthetic protein sequence stream with optional planted motifs."""
    rng = random.Random(seed)
    body = bytearray(
        ord(rng.choice(AMINO_ACIDS)) for _ in range(n_residues)
    )
    for index, fragment in enumerate(planted or []):
        if len(fragment) >= n_residues:
            raise ValueError("planted fragment longer than the proteome")
        position = rng.randrange(0, n_residues - len(fragment))
        body[position : position + len(fragment)] = fragment
    return bytes(body)


@dataclass
class ProtomataBenchmark:
    automaton: Automaton
    motifs: list[str]
    proteome: bytes
    planted: list[int]  # indices of motifs embedded in the proteome


def build_protomata_benchmark(
    n_motifs: int = CANONICAL_MOTIF_COUNT,
    *,
    n_residues: int = 50_000,
    n_planted: int = 5,
    seed: int = 0,
) -> ProtomataBenchmark:
    """Generate motifs + proteome and compile the benchmark automaton."""
    rng = random.Random(seed)
    motifs = generate_motifs(n_motifs, seed=seed)
    planted = rng.sample(range(len(motifs)), min(n_planted, len(motifs)))
    fragments = [
        materialize_motif(motifs[index], seed=seed + index) for index in planted
    ]
    proteome = generate_proteome(n_residues, seed=seed, planted=fragments)
    patterns = [(index, prosite_to_regex(motif)) for index, motif in enumerate(motifs)]
    automaton, rejected = compile_ruleset(
        patterns, name="protomata", skip_unsupported=True
    )
    if rejected:
        raise RuntimeError(f"motif generator produced uncompilable motifs: {rejected}")
    return ProtomataBenchmark(
        automaton=automaton, motifs=motifs, proteome=proteome, planted=planted
    )
