"""ANMLZoo-style spatial standardization (for studying its drawbacks).

ANMLZoo sized every benchmark to exactly one Micron D480 chip, cutting
down over-capacity applications ("generated full decision tree models ...
and then removed tree paths until the automata could be placed-and-routed
using a single AP chip", Section VIII) and inflating under-capacity ones
with synthetic patterns (Protomata, Section II-D).  AutomataZoo argues both
operations damage the benchmark; this module implements the *methodology*
so the damage can be measured:

* :func:`cut_down` — drop whole connected components until the automaton
  fits a state budget (the ANMLZoo trimming operation);
* :func:`inflate` — pad with synthetic copies of existing components until
  a budget is (approximately) filled (the ANMLZoo inflating operation).

The cut-down ablation quantifies Section VIII: a trimmed Random Forest
benchmark no longer computes the trained model, so its classifications
diverge from (and score below) the full kernel's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.automaton import Automaton

__all__ = ["StandardizationResult", "cut_down", "inflate"]


@dataclass
class StandardizationResult:
    """Outcome of a spatial-standardization operation."""

    automaton: Automaton
    states_before: int
    states_after: int
    components_before: int
    components_after: int

    @property
    def size_ratio(self) -> float:
        """after / before — Table I's "Size vs ANMLZoo" flavour of ratio."""
        if self.states_before == 0:
            return 1.0
        return self.states_after / self.states_before


def cut_down(
    automaton: Automaton,
    capacity: int,
    *,
    seed: int = 0,
) -> StandardizationResult:
    """Drop whole components (in random order) until ``capacity`` fits.

    Components are never split — the AP places whole connected automata —
    so the result is a valid but *incomplete* version of the application.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    components = automaton.connected_components()
    rng = random.Random(seed)
    order = list(range(len(components)))
    rng.shuffle(order)

    kept: list[set[str]] = []
    used = 0
    for index in order:
        size = len(components[index])
        if used + size <= capacity:
            kept.append(components[index])
            used += size
    keep_idents = set().union(*kept) if kept else set()

    trimmed = automaton.clone(f"{automaton.name}.cutdown")
    for ident in list(trimmed.idents()):
        if ident not in keep_idents:
            trimmed.remove_element(ident)
    return StandardizationResult(
        automaton=trimmed,
        states_before=automaton.n_states,
        states_after=trimmed.n_states,
        components_before=len(components),
        components_after=len(kept),
    )


def inflate(
    automaton: Automaton,
    capacity: int,
    *,
    seed: int = 0,
) -> StandardizationResult:
    """Pad with cloned components until ``capacity`` is nearly filled.

    The clones are marked ``synthetic`` in their report codes' place (their
    reports are disabled) so they add spatial load without changing the
    kernel's output — mirroring ANMLZoo's synthetic Protomata rules, which
    match no real motifs but occupy the fabric.
    """
    if automaton.n_states > capacity:
        raise ValueError("automaton already exceeds the capacity; cut_down instead")
    components_before = len(automaton.connected_components())
    inflated = automaton.clone(f"{automaton.name}.inflated")
    rng = random.Random(seed)
    donors = automaton.connected_components()
    copy_index = 0
    while donors:
        donor = donors[rng.randrange(len(donors))]
        if inflated.n_states + len(donor) > capacity:
            break
        sub = Automaton("donor")
        ident_map = {}
        for ident in donor:
            element = automaton[ident]
            ident_map[ident] = ident
        # materialise the donor component as its own automaton
        piece = Automaton("piece")
        for ident in donor:
            element = automaton[ident]
            from repro.core.automaton import _clone_element

            clone = _clone_element(element, ident)
            clone.report = False
            clone.report_code = None
            piece.add_element(clone)
        for src, dst in automaton.edges():
            if src in donor and dst in donor:
                piece.add_edge(src, dst)
        for src, counter in automaton.reset_edges():
            if src in donor and counter in donor:
                piece.add_reset_edge(src, counter)
        inflated.merge(piece, prefix=f"synthetic{copy_index}.")
        copy_index += 1
    return StandardizationResult(
        automaton=inflated,
        states_before=automaton.n_states,
        states_after=inflated.n_states,
        components_before=components_before,
        components_after=len(inflated.connected_components()),
    )
