"""The AP PRNG benchmark (Wadden et al., ICCD'16).

Markov chains modelled as automata and driven by uniformly random bytes
become probabilistic: each chain state's outgoing transitions partition the
256-symbol alphabet, so a random symbol selects a successor with
probability proportional to its slice.  Many parallel chains then generate
high-throughput pseudo-random output (the reported face sequence).

An ``n``-sided die chain uses one STE per ordered (face_i -> face_j) pair
(its charset is face_i's probability slice for face_j) plus one reporting
STE per face — ``n^2 + n`` states, exactly the paper's 20 states for the
4-sided and 72 for the 8-sided variants.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.automaton import Automaton
from repro.core.charset import ALL_BYTES, CharSet
from repro.core.elements import StartMode
from repro.engines.base import Engine
from repro.engines.vector import VectorEngine

__all__ = [
    "markov_chain_automaton",
    "build_apprng_benchmark",
    "random_input",
    "extract_output",
]


def markov_chain_automaton(
    n_faces: int,
    *,
    chain_id: object = None,
    seed: int = 0,
    uniform: bool = True,
) -> Automaton:
    """One ``n_faces``-sided die as an automaton.

    ``uniform=True`` gives each transition an equal slice (up to the
    remainder of 256 // n, assigned round-robin); ``uniform=False`` draws a
    random transition matrix instead.
    """
    if n_faces < 2:
        raise ValueError("a die needs at least 2 faces")
    if n_faces > 256:
        raise ValueError("more faces than input symbols")
    rng = random.Random(seed)
    automaton = Automaton(f"apprng-{n_faces}")

    # Per source face: slice boundaries over 0..255.
    slices: dict[tuple[int, int], CharSet] = {}
    for source in range(n_faces):
        if uniform:
            weights = [1] * n_faces
        else:
            weights = [rng.randint(1, 8) for _ in range(n_faces)]
        total = sum(weights)
        cuts = []
        acc = 0
        for weight in weights:
            acc += weight
            cuts.append(round(256 * acc / total))
        lo = 0
        for target, hi in enumerate(cuts):
            hi = max(hi, lo + 1)  # every transition keeps >= 1 symbol
            hi = min(hi, 256 - (n_faces - 1 - target))
            slices[(source, target)] = CharSet.from_ranges([(lo, hi - 1)])
            lo = hi

    for source in range(n_faces):
        for target in range(n_faces):
            automaton.add_ste(
                f"t{source}_{target}",
                slices[(source, target)],
                # face 0 is the initial state of every chain
                start=StartMode.START_OF_DATA if source == 0 else StartMode.NONE,
            )
    for face in range(n_faces):
        automaton.add_ste(
            f"r{face}",
            ALL_BYTES,
            report=True,
            report_code=(chain_id, face),
        )
    for source in range(n_faces):
        for target in range(n_faces):
            for nxt in range(n_faces):
                automaton.add_edge(f"t{source}_{target}", f"t{target}_{nxt}")
            automaton.add_edge(f"t{source}_{target}", f"r{target}")
    return automaton


def build_apprng_benchmark(
    n_faces: int,
    n_chains: int = 1000,
    *,
    seed: int = 0,
    uniform: bool = True,
) -> Automaton:
    """``n_chains`` independent die chains (paper: 1,000 per variant)."""
    union = Automaton(f"apprng-{n_faces}-sided")
    for chain in range(n_chains):
        union.merge(
            markov_chain_automaton(
                n_faces, chain_id=chain, seed=seed + chain, uniform=uniform
            ),
            prefix=f"c{chain}.",
        )
    return union


def random_input(n_symbols: int, *, seed: int = 0) -> bytes:
    """Uniform pseudo-random byte stimulus."""
    return np.random.default_rng(seed).integers(0, 256, n_symbols, dtype=np.uint8).tobytes()


def extract_output(
    automaton: Automaton, data: bytes, *, engine: Engine | None = None
) -> dict[object, list[int]]:
    """Run the PRNG and collect each chain's face sequence (its output)."""
    if engine is None:
        engine = VectorEngine(automaton)
    out: dict[object, list[int]] = {}
    for event in engine.run(data).reports:
        chain_id, face = event.code
        out.setdefault(chain_id, []).append(face)
    return out
