"""The Entity Resolution benchmark.

Finds duplicate mentions of database names in a streaming record list,
tolerating representation variants (initials, "Last, First") and typos
(Bo et al.).  One filter per name (one subgraph each, as in Table I):

* a Levenshtein(d=1) mesh over the canonical "First Last" form — catching
  substitutions, insertions and deletions, and
* exact matchers for the "F. Last" and "Last, First" format variants.

All report the name's index, so the report stream is directly the
duplicate-detection kernel output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks.mesh import levenshtein_automaton
from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import StartMode
from repro.inputs.names import Name, build_name_stream, format_record, generate_names

__all__ = [
    "EntityBenchmark",
    "build_entity_benchmark",
    "detected_pairs",
    "name_filter",
    "resolution_quality",
    "resolve_duplicates",
]


def _literal_chain(automaton: Automaton, prefix: str, text: str, code: object) -> None:
    previous = None
    for index, ch in enumerate(text):
        ident = automaton.add_ste(
            f"{prefix}.{index}",
            CharSet.from_chars(ch),
            start=StartMode.ALL_INPUT if index == 0 else StartMode.NONE,
            report=index == len(text) - 1,
            report_code=code,
        ).ident
        if previous is not None:
            automaton.add_edge(previous, ident)
        previous = ident


def name_filter(name: Name, name_index: int, *, distance: int = 1) -> Automaton:
    """The resolution filter for one database name."""
    automaton = levenshtein_automaton(
        name.full.encode("latin-1"),
        distance,
        pattern_id=name_index,
        name=f"entity-{name_index}",
    )
    _literal_chain(automaton, "v1", format_record(name, 1), (name_index, 0))
    _literal_chain(automaton, "v2", format_record(name, 2), (name_index, 0))
    return automaton


@dataclass
class EntityBenchmark:
    automaton: Automaton
    names: list[Name]
    stream: bytes
    duplicates: list[tuple[int, int]]  # (record_index, name_index)
    record_offsets: list[tuple[int, int]]  # (start, end) byte span per record


def build_entity_benchmark(
    n_names: int = 10_000,
    n_records: int = 100_000,
    *,
    seed: int = 0,
    distance: int = 1,
) -> EntityBenchmark:
    """Generate the name database + record stream and build the automaton.

    Paper defaults: patterns for over 10,000 unique names, a 100k-record
    input stream.
    """
    names = generate_names(n_names, seed=seed)
    stream, duplicates = build_name_stream(names, n_records, seed=seed + 1)
    automaton = Automaton("entity-resolution")
    for index, name in enumerate(names):
        automaton.merge(name_filter(name, index, distance=distance), prefix=f"n{index}.")

    offsets = []
    start = 0
    for index, byte in enumerate(stream):
        if byte == 0x0A:
            offsets.append((start, index))
            start = index + 1
    return EntityBenchmark(
        automaton=automaton,
        names=names,
        stream=stream,
        duplicates=duplicates,
        record_offsets=offsets,
    )


def resolve_duplicates(
    benchmark: EntityBenchmark,
    *,
    engine=None,
) -> dict[int, list[int]]:
    """The full Entity Resolution kernel: ``name_index -> record indices``.

    Runs the benchmark automaton over the record stream and groups the
    detections by database name — the clustering a deduplication system
    would emit.  Record indices are sorted and unique.
    """
    from repro.engines.vector import VectorEngine

    if engine is None:
        engine = VectorEngine(benchmark.automaton)
    result = engine.run(benchmark.stream)
    pairs = detected_pairs(benchmark, result.reports)
    clusters: dict[int, set[int]] = {}
    for record_index, name_index in pairs:
        clusters.setdefault(name_index, set()).add(record_index)
    return {name: sorted(records) for name, records in sorted(clusters.items())}


def resolution_quality(
    benchmark: EntityBenchmark, clusters: dict[int, list[int]]
) -> tuple[float, float]:
    """(precision, recall) of a clustering against the planted ground truth."""
    truth = set(benchmark.duplicates)
    detected = {
        (record, name) for name, records in clusters.items() for record in records
    }
    if not detected:
        return (1.0, 0.0)
    true_positives = len(truth & detected)
    precision = true_positives / len(detected)
    recall = true_positives / len(truth) if truth else 1.0
    return (precision, recall)


def detected_pairs(benchmark: EntityBenchmark, reports) -> set[tuple[int, int]]:
    """Map report events to (record_index, name_index) detections."""
    boundaries = [end for _, end in benchmark.record_offsets]
    out = set()
    for event in reports:
        name_index = event.code[0] if isinstance(event.code, tuple) else event.code
        # binary search the record containing this offset
        lo, hi = 0, len(boundaries) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if boundaries[mid] < event.offset:
                lo = mid + 1
            else:
                hi = mid
        out.add((lo, name_index))
    return out
