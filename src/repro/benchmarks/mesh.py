"""Mesh automata: Hamming and Levenshtein string-scoring filters.

Section X of the paper: mesh automata "positionally encode scores according
to whether or not the input string matches or does not match an encoded
pattern string".  Both families are parameterised by pattern length ``l``
and score threshold ``d``; a benchmark bundles ``N`` filters.

Semantics (validated against the :mod:`repro.baselines.matchers` oracles):

* Hamming(P, d) reports at offset ``t`` iff the window ``data[t-l+1 .. t]``
  differs from ``P`` in at most ``d`` positions.
* Levenshtein(P, d) reports at offset ``t`` iff some substring ending at
  ``t`` is within edit distance ``d`` of ``P`` (Sellers semantics — the
  same stream the CPU-native Myers matcher produces).
"""

from __future__ import annotations

from repro.core.automaton import Automaton
from repro.core.charset import ALL_BYTES, CharSet
from repro.core.elements import StartMode
from repro.core.nfa import NFA

__all__ = ["hamming_automaton", "levenshtein_automaton"]


def hamming_automaton(
    pattern: bytes, d: int, *, pattern_id: object = None, name: str | None = None
) -> Automaton:
    """Build a homogeneous Hamming-distance mesh filter.

    The mesh has two state families per position: ``m{i}e{e}`` ("position i
    matched, e mismatches so far", charset {P[i]}) and ``x{i}e{e}``
    ("position i mismatched", complement charset).  All final-column states
    report with ``(pattern_id, e)`` so score read-out stays interpretable.
    """
    l = len(pattern)
    if l == 0:
        raise ValueError("pattern must be non-empty")
    if d < 0:
        raise ValueError("distance must be >= 0")
    if pattern_id is None:
        pattern_id = pattern.decode("latin-1")
    automaton = Automaton(name if name is not None else f"hamming-{l}x{d}")

    def add_state(kind: str, i: int, e: int) -> str:
        ident = f"{kind}{i}e{e}"
        charset = CharSet.single(pattern[i])
        if kind == "x":
            charset = ~charset
        automaton.add_ste(
            ident,
            charset,
            start=StartMode.ALL_INPUT if i == 0 else StartMode.NONE,
            report=i == l - 1,
            report_code=(pattern_id, e) if i == l - 1 else None,
        )
        return ident

    # m(i, e): position i matched, e total mismatches (e <= min(i, d)).
    # x(i, e): position i mismatched, e total mismatches (1 <= e <= min(i+1, d)).
    for i in range(l):
        for e in range(0, min(i, d) + 1):
            add_state("m", i, e)
        for e in range(1, min(i + 1, d) + 1):
            add_state("x", i, e)
    for i in range(l - 1):
        for e in range(0, min(i, d) + 1):
            automaton.add_edge(f"m{i}e{e}", f"m{i + 1}e{e}")
            if e + 1 <= d:
                automaton.add_edge(f"m{i}e{e}", f"x{i + 1}e{e + 1}")
        for e in range(1, min(i + 1, d) + 1):
            automaton.add_edge(f"x{i}e{e}", f"m{i + 1}e{e}")
            if e + 1 <= d:
                automaton.add_edge(f"x{i}e{e}", f"x{i + 1}e{e + 1}")
    return automaton


def levenshtein_automaton(
    pattern: bytes, d: int, *, pattern_id: object = None, name: str | None = None
) -> Automaton:
    """Build a homogeneous Levenshtein (edit-distance) mesh filter.

    Constructed as the classical (i, e) NFA — match / substitute / insert
    consume a symbol, delete is an epsilon folded into transition closures —
    then homogenised.  Requires ``len(pattern) > d`` (otherwise the empty
    string matches and the filter is meaningless).
    """
    l = len(pattern)
    if l == 0:
        raise ValueError("pattern must be non-empty")
    if not l > d:
        raise ValueError(f"need pattern length > distance, got l={l}, d={d}")
    if pattern_id is None:
        pattern_id = pattern.decode("latin-1")

    nfa = NFA(name if name is not None else f"levenshtein-{l}x{d}")
    for i in range(l + 1):
        for e in range(d + 1):
            nfa.add_state(
                (i, e),
                # Deletion-closure of the (0,0) start: (k, k) for k <= d.
                start_all=(i == e),
                accept=i == l,
                report_code=(pattern_id, e) if i == l else None,
            )

    def deletion_closure(i: int, e: int):
        """(i, e) plus everything reachable by deletions (epsilon)."""
        k = 0
        while i + k <= l and e + k <= d:
            yield (i + k, e + k)
            k += 1

    for i in range(l + 1):
        for e in range(d + 1):
            targets: dict[tuple[int, int], CharSet] = {}

            def add(charset: CharSet, base_i: int, base_e: int):
                for state in deletion_closure(base_i, base_e):
                    targets[state] = targets.get(state, CharSet.none()) | charset

            if i < l:
                add(CharSet.single(pattern[i]), i + 1, e)  # match
                if e < d:
                    add(ALL_BYTES, i + 1, e + 1)  # substitution
            if e < d:
                add(ALL_BYTES, i, e + 1)  # insertion
            for state, charset in targets.items():
                nfa.add_transition((i, e), charset, state)

    return nfa.to_homogeneous(nfa.name)
