"""CRISPR/Cas9 off-target search benchmarks (CasOFFinder / CasOT styles).

Bo et al. built two automata filter designs mirroring the two established
off-target search tools; AutomataZoo ships both so architectures can be
compared on each (Section IV).  A guide RNA is a 20bp DNA pattern followed
by the PAM motif ``NGG``:

* **OFF** (CasOFFinder-style): mismatches only — a Hamming-style mesh over
  the guide, with an exact-PAM tail (``N`` is a wildcard).
* **OT** (CasOT-style): additionally tolerates DNA/RNA bulges (indels) — a
  Levenshtein mesh over guide + PAM, which is why OT filters are ~3x
  larger (Table I: 101 vs 37 states per filter).
"""

from __future__ import annotations

from repro.benchmarks.mesh import levenshtein_automaton
from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import StartMode
from repro.inputs.dna import DNA_ALPHABET, random_dna_patterns

__all__ = ["PAM", "GUIDE_LENGTH", "cas_off_filter", "cas_ot_filter", "generate_guides"]

#: The Cas9 protospacer-adjacent motif: any base then two guanines.
PAM = "NGG"
GUIDE_LENGTH = 20

_DNA_ANY = CharSet.from_chars(DNA_ALPHABET)


def _pam_charsets() -> list[CharSet]:
    out = []
    for ch in PAM:
        if ch == "N":
            out.append(_DNA_ANY)
        else:
            out.append(CharSet.from_chars(ch))
    return out


def cas_off_filter(
    guide: bytes, mismatches: int = 3, *, guide_id: object = None
) -> Automaton:
    """CasOFFinder-style filter: <= ``mismatches`` substitutions in the
    guide, exact PAM.  Reports ``(guide_id, mismatch_count)`` at the last
    PAM base."""
    if len(guide) == 0:
        raise ValueError("guide must be non-empty")
    if guide_id is None:
        guide_id = guide.decode("latin-1")
    automaton = Automaton(f"cas-off-{len(guide)}x{mismatches}")
    d = mismatches

    def add(kind: str, i: int, e: int, charset: CharSet) -> str:
        return automaton.add_ste(
            f"{kind}{i}e{e}",
            charset,
            start=StartMode.ALL_INPUT if i == 0 else StartMode.NONE,
        ).ident

    l = len(guide)
    for i in range(l):
        exact = CharSet.single(guide[i])
        for e in range(0, min(i, d) + 1):
            add("m", i, e, exact)
        for e in range(1, min(i + 1, d) + 1):
            add("x", i, e, _DNA_ANY - exact)
    for i in range(l - 1):
        for e in range(0, min(i, d) + 1):
            automaton.add_edge(f"m{i}e{e}", f"m{i + 1}e{e}")
            if e + 1 <= d:
                automaton.add_edge(f"m{i}e{e}", f"x{i + 1}e{e + 1}")
        for e in range(1, min(i + 1, d) + 1):
            automaton.add_edge(f"x{i}e{e}", f"m{i + 1}e{e}")
            if e + 1 <= d:
                automaton.add_edge(f"x{i}e{e}", f"x{i + 1}e{e + 1}")

    # PAM tail: one chain per surviving mismatch count.
    pam = _pam_charsets()
    for e in range(d + 1):
        sources = [f"m{l - 1}e{e}"]
        if 1 <= e:
            sources.append(f"x{l - 1}e{e}")
        previous = None
        for k, charset in enumerate(pam):
            ident = automaton.add_ste(
                f"p{k}e{e}",
                charset,
                report=k == len(pam) - 1,
                report_code=(guide_id, e) if k == len(pam) - 1 else None,
            ).ident
            if k == 0:
                for source in sources:
                    if source in automaton:
                        automaton.add_edge(source, ident)
            else:
                automaton.add_edge(previous, ident)
            previous = ident
    return automaton


def cas_ot_filter(
    guide: bytes, distance: int = 2, *, guide_id: object = None
) -> Automaton:
    """CasOT-style filter: edit distance (mismatches + bulges) over the
    guide+PAM sequence.  ``N`` in the PAM is modelled as a fixed base per
    filter variant being unnecessary — the Levenshtein mesh's substitution
    tolerance covers the wildcard within the distance budget, so we search
    ``guide + AGG`` at distance ``distance + 1``."""
    if guide_id is None:
        guide_id = guide.decode("latin-1")
    pattern = guide + b"AGG"
    return levenshtein_automaton(
        pattern, distance + 1, pattern_id=guide_id, name=f"cas-ot-{len(guide)}"
    )


def generate_guides(count: int = 2000, *, seed: int = 0) -> list[bytes]:
    """``count`` random 20bp guide RNA sequences (the paper's problem size)."""
    return random_dna_patterns(count, GUIDE_LENGTH, seed=seed)
