"""The Brill part-of-speech tagging benchmark.

Brill tagging corrects tags with learned transformation rules of the form
"change tag A to B when <context>", where contexts reference neighbouring
tags and words.  Each rule's context is a pattern over the (word, tag)
symbol stream; a report marks a position where the rule fires.  ANMLZoo
used 2,050 rules from unreleased software; AutomataZoo uses 5,000 rules
from an open generator — we synthesise 5,000 rules from the standard Brill
template family.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.automaton import Automaton
from repro.inputs.corpus import (
    N_WORD_CLASSES,
    POS_TAGS,
    any_tag_range,
    any_word_range,
    tag_symbol,
    word_symbol,
)
from repro.regex.compile import compile_ruleset

__all__ = [
    "BrillRule",
    "TEMPLATES",
    "apply_brill_rules",
    "build_brill_automaton",
    "generate_brill_rules",
]

#: The classic Brill context template names.
TEMPLATES = (
    "prev_tag",  # previous token's tag is Z
    "next_tag",  # next token's tag is Z
    "prev_two_tags",  # the two previous tags are Z, W
    "surrounding_tags",  # previous tag Z and next tag W
    "prev_word",  # previous token's word class is V
    "cur_word_prev_tag",  # current word class V and previous tag Z
)


@dataclass(frozen=True)
class BrillRule:
    """One transformation rule: retag ``from_tag`` -> ``to_tag`` in context."""

    rule_id: int
    from_tag: str
    to_tag: str
    template: str
    context: tuple  # template-specific parameters

    def to_regex(self) -> str:
        """The rule's firing context as a stream pattern.

        The stream alternates word and tag symbols; the pattern always ends
        on the *current token's tag* so the report offset identifies the
        token being retagged.
        """
        tag = _sym(tag_symbol(self.from_tag))
        any_word = _rng(any_word_range())
        if self.template == "prev_tag":
            (z,) = self.context
            return _sym(tag_symbol(z)) + any_word + tag
        if self.template == "next_tag":
            # context after the current tag: match up to the NEXT tag and
            # report there (offset = next token; consumer subtracts one).
            (z,) = self.context
            return tag + any_word + _sym(tag_symbol(z))
        if self.template == "prev_two_tags":
            z, w = self.context
            return (
                _sym(tag_symbol(z))
                + any_word
                + _sym(tag_symbol(w))
                + any_word
                + tag
            )
        if self.template == "surrounding_tags":
            z, w = self.context
            return _sym(tag_symbol(z)) + any_word + tag + any_word + _sym(tag_symbol(w))
        if self.template == "prev_word":
            (v,) = self.context
            return _sym(word_symbol(v)) + _rng(any_tag_range()) + any_word + tag
        if self.template == "cur_word_prev_tag":
            v, z = self.context
            return _sym(tag_symbol(z)) + _sym(word_symbol(v)) + tag
        raise ValueError(f"unknown template {self.template!r}")


def _sym(symbol: int) -> str:
    return f"\\x{symbol:02x}"


def _rng(bounds: tuple[int, int]) -> str:
    lo, hi = bounds
    return f"[\\x{lo:02x}-\\x{hi:02x}]"


def generate_brill_rules(count: int = 5000, *, seed: int = 0) -> list[BrillRule]:
    """Instantiate ``count`` rules across the template family."""
    rng = random.Random(seed)
    rules = []
    seen = set()
    while len(rules) < count:
        template = rng.choice(TEMPLATES)
        from_tag, to_tag = rng.sample(POS_TAGS, 2)
        if template in ("prev_tag", "next_tag"):
            context = (rng.choice(POS_TAGS),)
        elif template in ("prev_two_tags", "surrounding_tags"):
            context = (rng.choice(POS_TAGS), rng.choice(POS_TAGS))
        elif template == "prev_word":
            context = (rng.randrange(N_WORD_CLASSES),)
        else:
            context = (rng.randrange(N_WORD_CLASSES), rng.choice(POS_TAGS))
        key = (template, from_tag, context)
        if key in seen:
            continue
        seen.add(key)
        rules.append(
            BrillRule(
                rule_id=len(rules),
                from_tag=from_tag,
                to_tag=to_tag,
                template=template,
                context=context,
            )
        )
    return rules


def build_brill_automaton(rules: list[BrillRule]) -> Automaton:
    """Compile a rule list into the benchmark automaton."""
    patterns = [(rule.rule_id, rule.to_regex()) for rule in rules]
    automaton, rejected = compile_ruleset(patterns, name="brill")
    assert not rejected
    return automaton


def _retag_position(rule: BrillRule, report_offset: int) -> int:
    """Stream position of the tag the rule rewrites.

    Patterns end on the current token's tag except ``next_tag``, whose
    pattern extends to the following token's tag (two symbols later).
    """
    if rule.template == "next_tag":
        return report_offset - 2
    return report_offset


def apply_brill_rules(
    corpus: bytes, rules: list[BrillRule]
) -> tuple[bytes, int]:
    """The full Brill kernel: apply every rule, in order, over the stream.

    Brill tagging is sequential: each learned rule scans the *current*
    corpus and rewrites the tags its context matches, so later rules see
    earlier rules' corrections.  Returns ``(retagged_corpus, n_changes)``.
    """
    from repro.engines.vector import VectorEngine
    from repro.regex.compile import compile_regex

    working = bytearray(corpus)
    changes = 0
    for rule in rules:
        automaton = compile_regex(rule.to_regex(), report_code=rule.rule_id)
        result = VectorEngine(automaton).run(bytes(working))
        to_tag = tag_symbol(rule.to_tag)
        for event in result.reports:
            position = _retag_position(rule, event.offset)
            if 0 <= position < len(working):
                if working[position] != to_tag:
                    working[position] = to_tag
                    changes += 1
    return bytes(working), changes
