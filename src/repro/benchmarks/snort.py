"""The Snort benchmark (Section IV) and the Section V rate experiment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.automaton import Automaton
from repro.regex.compile import compile_ruleset
from repro.snort.rules import SnortRule
from repro.stats.dynamic import DynamicStats, measure_dynamic

__all__ = [
    "Section5Stage",
    "build_snort_automaton",
    "evaluate_rules",
    "section5_experiment",
]


def build_snort_automaton(
    rules: list[SnortRule],
    *,
    exclude_modifier_rules: bool = True,
    exclude_isdataat_rules: bool = True,
) -> tuple[Automaton, list[SnortRule], list[tuple[object, str]]]:
    """Compile a ruleset into the benchmark automaton.

    Follows the paper's construction: every rule's pcre that the toolchain
    can compile is included (unsupported patterns like back-references are
    skipped and returned), with the Section V exclusions applied by
    default.  Returns ``(automaton, included_rules, rejected)``.
    """
    included = [
        rule
        for rule in rules
        if not (exclude_modifier_rules and rule.has_snort_modifiers)
        and not (exclude_isdataat_rules and rule.has_isdataat)
    ]
    patterns = [
        (rule.sid, f"/{rule.pcre}/{rule.standard_flags}") for rule in included
    ]
    automaton, rejected = compile_ruleset(patterns, name="snort", skip_unsupported=True)
    rejected_sids = {code for code, _ in rejected}
    included = [rule for rule in included if rule.sid not in rejected_sids]
    return automaton, included, rejected


@dataclass(frozen=True)
class Section5Stage:
    """One row of the Section V report-rate experiment."""

    name: str
    n_rules: int
    stats: DynamicStats

    @property
    def reports_per_symbol(self) -> float:
        return self.stats.reports_per_symbol

    @property
    def reporting_byte_fraction(self) -> float:
        return self.stats.reporting_byte_fraction


def evaluate_rules(
    rules: list[SnortRule],
    packets: list[bytes],
) -> dict[int, list[int]]:
    """Full per-packet Snort kernel: ``sid -> packet indices alerted``.

    A rule alerts on a packet iff its pcre matches the payload AND every
    ``content`` literal occurs in it — the rule-level semantics a
    whole-stream automata benchmark approximates.  Content literals are
    checked with one shared Aho–Corasick pass; pcres with the compiled
    benchmark automaton, per packet.
    """
    from repro.baselines.aho_corasick import AhoCorasick
    from repro.engines.vector import VectorEngine

    automaton, included, _ = build_snort_automaton(
        rules, exclude_modifier_rules=True, exclude_isdataat_rules=True
    )
    engine = VectorEngine(automaton)

    content_index: list[tuple[bytes, int, int]] = []  # (literal, rule_pos, k)
    literals: list[bytes] = []
    for position, rule in enumerate(included):
        for literal in rule.contents:
            literals.append(literal)
            content_index.append((literal, position, len(literals) - 1))
    matcher = AhoCorasick(literals) if literals else None
    literal_rule = [position for _lit, position, _k in content_index]

    alerts: dict[int, list[int]] = {}
    for packet_index, payload in enumerate(packets):
        pcre_hits = {event.code for event in engine.run(payload).reports}
        content_hits: dict[int, set[int]] = {}
        if matcher is not None:
            for _offset, literal_index in matcher.search(payload):
                rule_position = literal_rule[literal_index]
                content_hits.setdefault(rule_position, set()).add(literal_index)
        for position, rule in enumerate(included):
            if rule.sid not in pcre_hits:
                continue
            needed = sum(1 for _l, p, _k in content_index if p == position)
            have = len(content_hits.get(position, ()))
            if have == needed:
                alerts.setdefault(rule.sid, []).append(packet_index)
    return alerts


def section5_experiment(rules: list[SnortRule], data: bytes) -> list[Section5Stage]:
    """Reproduce Section V: measure report rates at the three filter stages.

    Stage 1: all compilable rules (ANMLZoo's approach).
    Stage 2: drop rules with Snort-specific pcre modifiers (paper: ~5x).
    Stage 3: additionally drop ``isdataat`` rules (paper: further ~2x).
    """
    stages = []
    for name, kwargs in [
        ("all rules", dict(exclude_modifier_rules=False, exclude_isdataat_rules=False)),
        ("no modifier rules", dict(exclude_modifier_rules=True, exclude_isdataat_rules=False)),
        ("no modifier/isdataat", dict(exclude_modifier_rules=True, exclude_isdataat_rules=True)),
    ]:
        automaton, included, _ = build_snort_automaton(rules, **kwargs)
        stages.append(
            Section5Stage(
                name=name,
                n_rules=len(included),
                stats=measure_dynamic(automaton, data),
            )
        )
    return stages
