"""Sequence Matching (sequential pattern mining) benchmarks.

The kernel (Wang et al., CF'16): count how many database *sequences*
contain a candidate sequential pattern — an ordered list of itemsets, each
of which must be a subset of some itemset of the sequence, in order.  The
paper ships four variants: pattern lengths p ∈ {6, 10} itemsets of width
up to w = 6, each with and without counter elements ("wC"), plus the
Table III padded variant that models AP soft-reconfiguration filters built
for width 10 but configured for width 6.

Stream encoding: items are symbols 1..250 sorted ascending within an
itemset, itemsets end with :data:`SET_SEP`, sequences end with
:data:`TXN_SEP`.  A filter reports at the sequence separator, so reports
count *sequences containing the pattern* (support), keeping the kernel
interpretable end-to-end; the wC variant instead feeds a counter that
reports only when support reaches a threshold, reproducing the reduced
reporting behaviour the paper describes.
"""

from __future__ import annotations

import random

from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import CounterMode, StartMode

__all__ = [
    "ITEM_MIN",
    "ITEM_MAX",
    "SET_SEP",
    "TXN_SEP",
    "PAD",
    "sequence_pattern_automaton",
    "encode_database",
    "generate_database",
    "generate_patterns",
    "pattern_supported",
    "count_support",
]

ITEM_MIN = 1
ITEM_MAX = 250
SET_SEP = 254
TXN_SEP = 255
#: Symbol reserved for AP-padding states; never emitted by input generators.
PAD = 253

_ITEMS = CharSet.from_ranges([(ITEM_MIN, ITEM_MAX)])
_ITEMS_AND_SET_SEP = _ITEMS | CharSet.single(SET_SEP)


def _validate_pattern(pattern: list[list[int]]) -> None:
    if not pattern:
        raise ValueError("pattern must contain at least one itemset")
    for itemset in pattern:
        if not itemset:
            raise ValueError("itemsets must be non-empty")
        if sorted(set(itemset)) != list(itemset):
            raise ValueError(f"itemset must be strictly ascending: {itemset}")
        if itemset[0] < ITEM_MIN or itemset[-1] > ITEM_MAX:
            raise ValueError(f"items must be in [{ITEM_MIN}, {ITEM_MAX}]")


def sequence_pattern_automaton(
    pattern: list[list[int]],
    *,
    pattern_id: object = None,
    with_counter: bool = False,
    min_support: int = 2,
    pad_to_width: int | None = None,
) -> Automaton:
    """Build the filter automaton for one sequential pattern.

    Structure per itemset block {a1 < ... < ak}: item states ``A_r``
    (charset {a_r}) chained with self-looping skip states ``K_r`` (items
    only, so crossing a :data:`SET_SEP` kills the partial match — subsets
    must match within one itemset).  Blocks are joined through a mandatory
    separator state and a self-looping gap state, enforcing strictly
    increasing itemset indices.  A completed pattern waits for the sequence
    separator and reports there (or feeds a counter when ``with_counter``).

    ``pad_to_width`` models the AP soft-reconfiguration filters of
    Section VII: blocks are built with that many item slots and the unused
    slots become :data:`PAD`-matching states that are enabled by the
    block's live states but never match — no computation, extra activity.
    """
    _validate_pattern(pattern)
    if pad_to_width is not None and pad_to_width < max(len(s) for s in pattern):
        raise ValueError("pad_to_width must be >= the widest itemset")
    if pattern_id is None:
        pattern_id = tuple(tuple(s) for s in pattern)

    automaton = Automaton(f"seqmatch-{len(pattern)}sets")
    previous_exit: str | None = None  # state whose match completes block j-1

    for j, itemset in enumerate(pattern):
        block = f"b{j}"
        entry_sources: list[str] = []
        if j == 0:
            pass  # first item state is ALL_INPUT
        else:
            # Skip the rest of the current itemset, cross a mandatory
            # separator, then optionally skip whole itemsets (gap).
            pre = automaton.add_ste(f"{block}.pre", _ITEMS).ident
            sep = automaton.add_ste(f"{block}.sep", CharSet.single(SET_SEP)).ident
            gap = automaton.add_ste(f"{block}.gap", _ITEMS_AND_SET_SEP).ident
            automaton.add_edge(previous_exit, pre)
            automaton.add_edge(pre, pre)
            automaton.add_edge(pre, sep)
            automaton.add_edge(previous_exit, sep)
            automaton.add_edge(sep, gap)
            automaton.add_edge(gap, gap)
            entry_sources = [sep, gap]

        prev_item: str | None = None
        for r, item in enumerate(itemset):
            ident = automaton.add_ste(
                f"{block}.a{r}",
                CharSet.single(item),
                start=StartMode.ALL_INPUT if j == 0 and r == 0 else StartMode.NONE,
            ).ident
            if r == 0:
                for src in entry_sources:
                    automaton.add_edge(src, ident)
            else:
                skip = automaton.add_ste(f"{block}.k{r - 1}", _ITEMS).ident
                automaton.add_edge(prev_item, skip)
                automaton.add_edge(skip, skip)
                automaton.add_edge(skip, ident)
                automaton.add_edge(prev_item, ident)
            prev_item = ident
        previous_exit = prev_item

        if pad_to_width is not None:
            # Unused slots: dead-end PAD states fed by the block's
            # high-traffic states, mimicking soft-reconfigured AP filters.
            feeders = [f"{block}.gap"] if j > 0 else []
            feeders += [
                f"{block}.k{r}" for r in range(len(itemset) - 1)
            ] + [prev_item]
            for slot in range(len(itemset), pad_to_width):
                pad = automaton.add_ste(f"{block}.pad{slot}", CharSet.single(PAD)).ident
                automaton.add_edge(feeders[slot % len(feeders)], pad)

    # Completed pattern: wait for the sequence separator, report there.
    wait = automaton.add_ste("wait", _ITEMS_AND_SET_SEP).ident
    automaton.add_edge(previous_exit, wait)
    automaton.add_edge(wait, wait)
    if with_counter:
        end = automaton.add_ste("end", CharSet.single(TXN_SEP)).ident
        automaton.add_edge(previous_exit, end)
        automaton.add_edge(wait, end)
        automaton.add_counter(
            "support",
            min_support,
            mode=CounterMode.STOP,
            report=True,
            report_code=pattern_id,
        )
        automaton.add_edge(end, "support")
    else:
        end = automaton.add_ste(
            "end", CharSet.single(TXN_SEP), report=True, report_code=pattern_id
        ).ident
        automaton.add_edge(previous_exit, end)
        automaton.add_edge(wait, end)
    return automaton


# -- database generation and the reference kernel ---------------------------


def generate_database(
    n_sequences: int,
    *,
    n_items: int = 48,
    sets_per_sequence: tuple[int, int] = (4, 12),
    items_per_set: tuple[int, int] = (1, 8),
    seed: int = 0,
) -> list[list[list[int]]]:
    """A synthetic transaction database with a Zipf-ish item distribution."""
    if n_items > ITEM_MAX - ITEM_MIN + 1:
        raise ValueError("item universe exceeds the symbol range")
    rng = random.Random(seed)
    universe = list(range(ITEM_MIN, ITEM_MIN + n_items))
    weights = [1.0 / (rank + 1) for rank in range(n_items)]
    database = []
    for _ in range(n_sequences):
        sequence = []
        for _ in range(rng.randint(*sets_per_sequence)):
            size = min(rng.randint(*items_per_set), n_items)
            itemset = sorted(set(rng.choices(universe, weights=weights, k=size)))
            sequence.append(itemset)
        database.append(sequence)
    return database


def encode_database(database: list[list[list[int]]]) -> bytes:
    """Encode a database as the benchmark's input byte stream."""
    out = bytearray()
    for sequence in database:
        for j, itemset in enumerate(sequence):
            if j > 0:
                out.append(SET_SEP)
            out.extend(itemset)
        out.append(TXN_SEP)
    return bytes(out)


def generate_patterns(
    count: int,
    *,
    p: int = 6,
    w: int = 6,
    n_items: int = 48,
    seed: int = 0,
) -> list[list[list[int]]]:
    """``count`` candidate patterns of ``p`` itemsets, each of width <= w.

    Items are drawn with the same skew as the database generator so a
    realistic fraction of candidates actually occur.
    """
    rng = random.Random(seed + 7)
    universe = list(range(ITEM_MIN, ITEM_MIN + n_items))
    weights = [1.0 / (rank + 1) for rank in range(n_items)]
    patterns = []
    for _ in range(count):
        pattern = []
        for _ in range(p):
            size = rng.randint(1, w)
            itemset = sorted(set(rng.choices(universe, weights=weights, k=size)))
            pattern.append(itemset)
        patterns.append(pattern)
    return patterns


def pattern_supported(pattern: list[list[int]], sequence: list[list[int]]) -> bool:
    """Reference kernel: is the pattern contained in the sequence?"""
    position = 0
    for itemset in pattern:
        needed = set(itemset)
        while position < len(sequence) and not needed.issubset(sequence[position]):
            position += 1
        if position == len(sequence):
            return False
        position += 1
    return True


def count_support(pattern: list[list[int]], database: list[list[list[int]]]) -> int:
    """Number of database sequences containing the pattern."""
    return sum(1 for sequence in database if pattern_supported(pattern, sequence))
