"""The YARA and YARA Wide benchmarks (Sections IV and IX-A).

Pipeline (mirroring the paper's plyara + pcre2mnrl + VASim flow): parse
YARA rules, convert hex strings (nibble wildcards, jumps, alternation) and
text strings to regexes, compile everything into one automaton whose report
codes are ``(rule, string_id)`` pairs — so rule conditions can be evaluated
from the report stream, keeping the kernel end-to-end interpretable.  The
Wide variant applies the widening transformation to rules marked ``wide``.
"""

from __future__ import annotations

import random
import re as _re

from repro.core.automaton import Automaton
from repro.engines.base import Engine
from repro.engines.vector import VectorEngine
from repro.errors import RegexError
from repro.regex.compile import compile_regex
from repro.transforms.widening import widen
from repro.yara.hexstring import hex_string_to_regex
from repro.yara.parser import YaraRule, YaraString, evaluate_condition

__all__ = [
    "string_to_regex",
    "compile_yara_rules",
    "scan",
    "generate_yara_ruleset",
    "generate_malware_corpus",
]


def _escape_literal(text: str) -> str:
    """Escape a text string for our regex dialect (byte-oriented)."""
    out = []
    for ch in text:
        code = ord(ch)
        if code > 255:
            raise RegexError("non-byte character in YARA text string")
        if ch.isalnum():
            out.append(ch)
        else:
            out.append(f"\\x{code:02x}")
    return "".join(out)


def string_to_regex(string: YaraString) -> tuple[str, str]:
    """Convert one YARA string to ``(pattern, flags)`` for the compiler."""
    if string.kind == "hex":
        return hex_string_to_regex(string.value), ""
    if string.kind == "text":
        return _escape_literal(string.value), "i" if string.is_nocase else ""
    if string.kind == "regex":
        return string.value, "i" if string.is_nocase else ""
    raise RegexError(f"unknown string kind {string.kind!r}")


def compile_yara_rules(
    rules: list[YaraRule],
    *,
    wide: bool = False,
    skip_unsupported: bool = True,
) -> tuple[Automaton, list[tuple[str, str]]]:
    """Compile a ruleset into one automaton.

    ``wide=False`` compiles every string as-is (the YARA benchmark);
    ``wide=True`` builds the YARA Wide benchmark: only strings with the
    ``wide`` modifier are included, each passed through the widening
    transformation (two bytes per logical symbol).

    Returns ``(automaton, rejected)`` with ``rejected`` holding
    ``(ident, reason)`` for strings the toolchain cannot compile.
    """
    union = Automaton("yara-wide" if wide else "yara")
    rejected: list[tuple[str, str]] = []
    counter = 0
    for rule in rules:
        for string in rule.strings:
            if wide and not string.is_wide:
                continue
            code = (rule.name, string.ident)
            try:
                pattern, flags = string_to_regex(string)
                sub = compile_regex(pattern, flags, report_code=code)
            except RegexError as exc:
                if not skip_unsupported:
                    raise
                rejected.append((f"{rule.name}{string.ident}", str(exc)))
                continue
            if wide:
                sub = widen(sub)
            union.merge(sub, prefix=f"s{counter}.")
            counter += 1
    return union, rejected


def scan(
    rules: list[YaraRule],
    automaton: Automaton,
    data: bytes,
    *,
    engine: Engine | None = None,
) -> dict[str, bool]:
    """Full YARA kernel: run the automaton, evaluate each rule's condition
    over the set of matched string ids, return rule verdicts."""
    if engine is None:
        engine = VectorEngine(automaton)
    matched_by_rule: dict[str, set[str]] = {rule.name: set() for rule in rules}
    for event in engine.run(data).reports:
        rule_name, ident = event.code
        matched_by_rule.setdefault(rule_name, set()).add(ident)
    return {
        rule.name: evaluate_condition(rule, matched_by_rule[rule.name])
        for rule in rules
    }


# -- synthetic ruleset and corpus -------------------------------------------

_TEXT_FRAGMENTS = [
    "This program cannot be run in DOS mode",
    "CreateRemoteThread",
    "VirtualAllocEx",
    "cmd /c start",
    "HKEY_LOCAL_MACHINE\\Software",
    "botnet.command.server",
    "DecryptPayload",
    "keylogger_start",
]


def generate_yara_ruleset(
    n_rules: int = 40,
    *,
    seed: int = 0,
    wide_fraction: float = 0.25,
) -> list[YaraRule]:
    """Synthetic malware rules mixing hex, text and regex strings."""
    rng = random.Random(seed)
    rules: list[YaraRule] = []
    for index in range(n_rules):
        strings: list[YaraString] = []
        n_strings = rng.randint(1, 3)
        for s in range(n_strings):
            roll = rng.random()
            ident = f"$s{s}"
            if roll < 0.45:
                parts = []
                for position in range(rng.randint(6, 16)):
                    if rng.random() < 0.15 and 0 < position:
                        parts.append(
                            rng.choice(["??", f"{rng.choice('0123456789abcdef')}?"])
                        )
                    else:
                        parts.append(f"{rng.randrange(256):02x}")
                if rng.random() < 0.2:
                    parts.insert(
                        rng.randint(1, len(parts) - 1), f"[{rng.randint(1, 4)}]"
                    )
                strings.append(YaraString(ident, "hex", " ".join(parts)))
            elif roll < 0.85:
                modifiers = set()
                if rng.random() < wide_fraction:
                    modifiers.add("wide")
                if rng.random() < 0.3:
                    modifiers.add("nocase")
                text = rng.choice(_TEXT_FRAGMENTS)
                strings.append(
                    YaraString(ident, "text", text, frozenset(modifiers))
                )
            else:
                token = "".join(rng.choice("abcdef") for _ in range(4))
                strings.append(
                    YaraString(ident, "regex", rf"{token}[0-9]{{2,4}}\.tmp")
                )
        condition = "any of them" if rng.random() < 0.7 else "all of them"
        rules.append(
            YaraRule(
                name=f"Mal_{index:04d}",
                tags=("synthetic",),
                strings=tuple(strings),
                condition=condition,
            )
        )
    return rules


def generate_malware_corpus(
    rules: list[YaraRule],
    n_files: int = 6,
    *,
    seed: int = 0,
    file_size: int = 2048,
    plant_fraction: float = 0.5,
    wide: bool = False,
) -> tuple[bytes, set[str]]:
    """Binary blobs with a subset of rule strings planted.

    Returns ``(corpus, planted_rule_names)``; planted rules get *all* of
    their strings embedded so both any-of and all-of conditions fire.
    ``wide=True`` plants the two-byte (UTF-16LE-style) encoding of
    wide-marked strings, the stimulus for the YARA Wide benchmark.
    """
    rng = random.Random(seed)
    planted: set[str] = set()
    out = bytearray()
    for index in range(n_files):
        blob = bytearray(rng.randrange(256) for _ in range(file_size))
        if rng.random() < plant_fraction and rules:
            rule = rng.choice(rules)
            planted.add(rule.name)
            position = 64
            for string in rule.strings:
                payload = _materialize_string(
                    string, rng, wide=wide and string.is_wide
                )
                blob[position : position + len(payload)] = payload
                position += len(payload) + rng.randint(8, 32)
        out += blob
    return bytes(out), planted


def _materialize_string(
    string: YaraString, rng: random.Random, *, wide: bool = False
) -> bytes:
    if string.kind == "text":
        raw = string.value.encode("latin-1")
        if wide:
            return b"".join(bytes([b, 0]) for b in raw)
        return raw
    if string.kind == "hex":
        out = bytearray()
        for token in string.value.split():
            if token.startswith("["):
                lo = int(_re.findall(r"\d+", token)[0])
                out += bytes(rng.randrange(256) for _ in range(lo))
            elif token == "??":
                out.append(rng.randrange(256))
            elif token.endswith("?"):
                out.append((int(token[0], 16) << 4) | rng.randrange(16))
            elif token.startswith("?"):
                out.append((rng.randrange(16) << 4) | int(token[1], 16))
            else:
                out.append(int(token, 16))
        return bytes(out)
    # regex strings: materialise the token[0-9]{2,4}.tmp template
    match = _re.match(r"([a-f]+)\[0\-9\]\{2,4\}", string.value)
    token = match.group(1) if match else "test"
    return f"{token}{rng.randint(10, 999)}.tmp".encode()
