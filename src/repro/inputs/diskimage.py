"""Synthetic disk images and multimedia files.

The ClamAV benchmark input is "a disk image including various files and two
embedded virus fragments" (Section IV); the File Carving input is a stream
of multimedia files with recoverable headers.  This module synthesises
both: realistic-looking file bodies (text, PNG-like, JPEG-like, ZIP, MPEG)
concatenated into one image, with a ground-truth listing of what lies
where.

:func:`carve`/:func:`load_disk_image` walk an image's file structures
(the File Carving benchmark's ground-truth recovery).  Malformed
structures raise :class:`~repro.errors.InputError` with the path and byte
offset of the problem — never a bare ``struct.error``/``IndexError``
(docs/RESILIENCE.md).
"""

from __future__ import annotations

import pathlib
import random
import struct
from dataclasses import dataclass

from repro.errors import InputError

__all__ = [
    "FileEntry",
    "DiskImage",
    "make_text_file",
    "make_png_like",
    "make_jpeg_like",
    "make_zip_file",
    "make_mpeg2_stream",
    "make_mp4_file",
    "build_disk_image",
    "carve",
    "load_disk_image",
]

_WORDS = (
    "report quarterly summary invoice draft notes meeting agenda backlog "
    "release checklist design review budget forecast schedule minutes"
).split()


@dataclass(frozen=True)
class FileEntry:
    """Ground truth for one file inside a disk image."""

    kind: str
    offset: int
    length: int


@dataclass(frozen=True)
class DiskImage:
    """A synthetic disk image plus its ground-truth file map."""

    data: bytes
    entries: tuple[FileEntry, ...]

    def __len__(self) -> int:
        return len(self.data)


def make_text_file(rng: random.Random, size: int = 400) -> bytes:
    words = []
    while sum(len(w) + 1 for w in words) < size:
        words.append(rng.choice(_WORDS))
    body = " ".join(words)
    return body.encode("latin-1")[:size]


def make_png_like(rng: random.Random, size: int = 600) -> bytes:
    header = b"\x89PNG\r\n\x1a\n" + b"\x00\x00\x00\rIHDR"
    body = bytes(rng.randrange(256) for _ in range(size - len(header) - 12))
    return header + body + b"\x00\x00\x00\x00IEND\xaeB`\x82"


def make_jpeg_like(rng: random.Random, size: int = 500) -> bytes:
    header = b"\xff\xd8\xff\xe0\x00\x10JFIF\x00"
    body = bytes(rng.randrange(256) for _ in range(size - len(header) - 2))
    return header + body + b"\xff\xd9"


def make_zip_file(rng: random.Random, n_entries: int = 2) -> bytes:
    """A structurally plausible ZIP: local headers with MS-DOS timestamps,
    stored payloads, and an end-of-central-directory record."""
    out = bytearray()
    for index in range(n_entries):
        name = f"file{index}.txt".encode()
        payload = make_text_file(rng, rng.randint(40, 160))
        # MS-DOS time: seconds/2 (0-29), minutes (0-59), hours (0-23)
        dos_time = (rng.randint(0, 23) << 11) | (rng.randint(0, 59) << 5) | rng.randint(0, 29)
        dos_date = ((2024 - 1980) << 9) | (rng.randint(1, 12) << 5) | rng.randint(1, 28)
        out += struct.pack(
            "<IHHHHHIIIHH",
            0x04034B50,  # local file header signature "PK\x03\x04"
            20, 0, 0,  # version, flags, method (stored)
            dos_time, dos_date,
            0,  # crc (unchecked by carvers)
            len(payload), len(payload),
            len(name), 0,
        )
        out += name + payload
    out += struct.pack("<IHHHHIIH", 0x06054B50, 0, 0, n_entries, n_entries, 0, 0, 0)
    return bytes(out)


def make_mpeg2_stream(rng: random.Random, n_packs: int = 4) -> bytes:
    """An MPEG-2 program-stream-like blob: pack start codes + payload."""
    out = bytearray()
    for _ in range(n_packs):
        out += b"\x00\x00\x01\xba"  # pack header start code
        out += bytes(rng.randrange(256) for _ in range(rng.randint(60, 180)))
    out += b"\x00\x00\x01\xb9"  # program end code
    return bytes(out)


def make_mp4_file(rng: random.Random, size: int = 500) -> bytes:
    """An MPEG-4-like file: ftyp box then an mdat box."""
    ftyp = struct.pack(">I", 20) + b"ftypisom" + b"\x00\x00\x02\x00isom"
    body_len = max(8, size - len(ftyp))
    mdat = struct.pack(">I", body_len) + b"mdat"
    payload = bytes(rng.randrange(256) for _ in range(body_len - 8))
    return ftyp + mdat + payload


_MAKERS = {
    "text": make_text_file,
    "png": make_png_like,
    "jpeg": make_jpeg_like,
    "zip": make_zip_file,
    "mpeg2": make_mpeg2_stream,
    "mp4": make_mp4_file,
}


def build_disk_image(
    kinds: list[str],
    *,
    seed: int = 0,
    slack: tuple[int, int] = (16, 64),
    inserts: list[tuple[str, bytes]] | None = None,
) -> DiskImage:
    """Concatenate synthetic files (with random inter-file slack bytes).

    ``inserts`` are extra labelled byte blobs (e.g. virus fragments) placed
    between files; they appear in the ground truth with their label.
    """
    rng = random.Random(seed)
    insert_queue = list(inserts or [])
    out = bytearray()
    entries: list[FileEntry] = []
    for index, kind in enumerate(kinds):
        maker = _MAKERS.get(kind)
        if maker is None:
            raise ValueError(f"unknown file kind {kind!r}")
        blob = maker(rng)
        entries.append(FileEntry(kind, len(out), len(blob)))
        out += blob
        out += bytes(rng.randrange(256) for _ in range(rng.randint(*slack)))
        if insert_queue and (index % 2 == 1 or index == len(kinds) - 1):
            label, payload = insert_queue.pop(0)
            entries.append(FileEntry(label, len(out), len(payload)))
            out += payload
            out += bytes(rng.randrange(256) for _ in range(rng.randint(*slack)))
    for label, payload in insert_queue:  # anything left over goes at the end
        entries.append(FileEntry(label, len(out), len(payload)))
        out += payload
    return DiskImage(data=bytes(out), entries=tuple(entries))


_ZIP_LOCAL = struct.Struct("<IHHHHHIIIHH")
_ZIP_EOCD = struct.Struct("<IHHHHIIH")


def _carve_zip(data: bytes, start: int, path) -> int:
    """Walk ZIP local headers from ``start``; return the end offset."""
    offset = start
    while offset + 4 <= len(data):
        signature = struct.unpack_from("<I", data, offset)[0]
        if signature == 0x06054B50:  # end of central directory
            if offset + _ZIP_EOCD.size > len(data):
                raise InputError(
                    path, offset,
                    "truncated ZIP end-of-central-directory record",
                )
            (*_, comment_len) = _ZIP_EOCD.unpack_from(data, offset)
            return offset + _ZIP_EOCD.size + comment_len
        if signature != 0x04034B50:  # local file header
            raise InputError(
                path, offset,
                f"expected ZIP local header or EOCD, found 0x{signature:08X}",
            )
        if offset + _ZIP_LOCAL.size > len(data):
            raise InputError(path, offset, "truncated ZIP local file header")
        fields = _ZIP_LOCAL.unpack_from(data, offset)
        compressed_len, name_len, extra_len = fields[7], fields[9], fields[10]
        end = offset + _ZIP_LOCAL.size + name_len + extra_len + compressed_len
        if end > len(data):
            raise InputError(
                path, offset,
                f"ZIP entry declares {end - offset} bytes but only "
                f"{len(data) - offset} remain",
            )
        offset = end
    raise InputError(path, offset, "ZIP data ends before end-of-central-directory")


def _find_trailer(data: bytes, start: int, trailer: bytes, kind: str, path) -> int:
    end = data.find(trailer, start)
    if end < 0:
        raise InputError(path, start, f"{kind} data has no {trailer!r} trailer")
    return end + len(trailer)


def carve(data: bytes, *, path="<memory>") -> tuple[FileEntry, ...]:
    """Recover the file map of a disk image by walking its structures.

    Scans for the magic of each supported kind and follows that kind's
    framing to the end of the file (ZIP headers, PNG/JPEG trailers, MP4
    box lengths, MPEG-2 end code).  A magic whose framing runs off the
    end of the image — a truncated or corrupt member — raises
    :class:`~repro.errors.InputError` at the offending offset; the parse
    itself never surfaces ``struct.error``/``IndexError``.
    """
    entries: list[FileEntry] = []
    offset = 0
    try:
        while offset < len(data):
            if data.startswith(b"\x89PNG\r\n\x1a\n", offset):
                end = _find_trailer(
                    data, offset, b"IEND\xaeB`\x82", "PNG", path
                )
                entries.append(FileEntry("png", offset, end - offset))
                offset = end
            elif data.startswith(b"\xff\xd8\xff", offset):
                end = _find_trailer(data, offset + 3, b"\xff\xd9", "JPEG", path)
                entries.append(FileEntry("jpeg", offset, end - offset))
                offset = end
            elif data.startswith(b"PK\x03\x04", offset):
                end = _carve_zip(data, offset, path)
                entries.append(FileEntry("zip", offset, end - offset))
                offset = end
            elif data.startswith(b"ftyp", offset + 4) and offset + 8 <= len(data):
                box_len = struct.unpack_from(">I", data, offset)[0]
                if box_len < 8:
                    raise InputError(
                        path, offset, f"MP4 box length {box_len} below header size"
                    )
                end = offset + box_len
                while end + 8 <= len(data) and data[end + 4:end + 8] == b"mdat":
                    mdat_len = struct.unpack_from(">I", data, end)[0]
                    if mdat_len < 8:
                        raise InputError(
                            path, end,
                            f"MP4 box length {mdat_len} below header size",
                        )
                    end += mdat_len
                if end > len(data):
                    raise InputError(
                        path, offset,
                        f"MP4 boxes declare {end - offset} bytes but only "
                        f"{len(data) - offset} remain",
                    )
                entries.append(FileEntry("mp4", offset, end - offset))
                offset = end
            elif data.startswith(b"\x00\x00\x01\xba", offset):
                end = _find_trailer(
                    data, offset, b"\x00\x00\x01\xb9", "MPEG-2", path
                )
                entries.append(FileEntry("mpeg2", offset, end - offset))
                offset = end
            else:
                offset += 1  # slack byte
    except (struct.error, IndexError) as exc:  # pragma: no cover - belt and braces
        raise InputError(path, offset, f"malformed structure: {exc}") from exc
    return tuple(entries)


def load_disk_image(path) -> DiskImage:
    """Read a disk image from disk and carve its file map.

    Structural problems raise :class:`~repro.errors.InputError` carrying
    ``path`` and the byte offset (see :func:`carve`).
    """
    data = pathlib.Path(path).read_bytes()
    return DiskImage(data=data, entries=carve(data, path=path))
