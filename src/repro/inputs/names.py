"""Name generation and error models (the Entity Resolution input).

AutomataZoo "builds an entirely new Entity Resolution toolchain with a name
generator that can introduce arbitrary names of different formats, and also
introduce various errors" (Section IV).  This module is that toolchain's
input half: a syllable-based name generator, record formatting variants,
and a typo model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["Name", "generate_names", "format_record", "corrupt", "build_name_stream"]

_ONSETS = "b br c ch d dr f g gr h j k kl l m n p r s sh st t th v w z".split()
_VOWELS = "a e i o u ai ea ou".split()
_CODAS = "b d k l m n r s t th x".split()

RECORD_SEP = b"\n"


@dataclass(frozen=True)
class Name:
    first: str
    last: str

    @property
    def full(self) -> str:
        return f"{self.first} {self.last}"


def _syllable(rng: random.Random) -> str:
    s = rng.choice(_ONSETS) + rng.choice(_VOWELS)
    if rng.random() < 0.5:
        s += rng.choice(_CODAS)
    return s


def _word(rng: random.Random, n_syllables: int) -> str:
    return "".join(_syllable(rng) for _ in range(n_syllables)).capitalize()


def generate_names(count: int, *, seed: int = 0) -> list[Name]:
    """``count`` unique synthetic names."""
    rng = random.Random(seed)
    names: list[Name] = []
    seen: set[str] = set()
    while len(names) < count:
        name = Name(_word(rng, rng.randint(1, 2)), _word(rng, rng.randint(1, 3)))
        if name.full in seen:
            continue
        seen.add(name.full)
        names.append(name)
    return names


def format_record(name: Name, variant: int) -> str:
    """Render one of the record format variants."""
    if variant == 0:
        return name.full
    if variant == 1:
        return f"{name.first[0]}. {name.last}"
    if variant == 2:
        return f"{name.last}, {name.first}"
    raise ValueError(f"unknown format variant {variant}")


def corrupt(text: str, rng: random.Random, n_errors: int = 1) -> str:
    """Apply ``n_errors`` random character substitutions/insertions/deletions."""
    chars = list(text)
    for _ in range(n_errors):
        if not chars:
            break
        op = rng.choice(("sub", "ins", "del"))
        index = rng.randrange(len(chars))
        letter = rng.choice("abcdefghijklmnopqrstuvwxyz")
        if op == "sub":
            chars[index] = letter
        elif op == "ins":
            chars.insert(index, letter)
        else:
            del chars[index]
    return "".join(chars)


def build_name_stream(
    names: list[Name],
    n_records: int,
    *,
    seed: int = 0,
    duplicate_fraction: float = 0.15,
    error_fraction: float = 0.5,
) -> tuple[bytes, list[tuple[int, int]]]:
    """A newline-separated record stream with noisy duplicates.

    Returns ``(stream, duplicates)`` where each duplicate is
    ``(record_index, name_index)`` ground truth: a record that re-mentions
    a name already in the database (possibly reformatted or corrupted).
    """
    rng = random.Random(seed)
    records: list[str] = []
    duplicates: list[tuple[int, int]] = []
    for index in range(n_records):
        if rng.random() < duplicate_fraction:
            name_index = rng.randrange(len(names))
            text = format_record(names[name_index], rng.choice((0, 0, 1, 2)))
            if rng.random() < error_fraction:
                text = corrupt(text, rng, 1)
            duplicates.append((index, name_index))
            records.append(text)
        else:
            filler = Name(
                _word(rng, rng.randint(1, 2)), _word(rng, rng.randint(1, 3))
            )
            records.append(filler.full)
    stream = RECORD_SEP.join(r.encode("latin-1") for r in records) + RECORD_SEP
    return stream, duplicates
