"""Random DNA input stimulus (Hamming/Levenshtein/CRISPR benchmarks)."""

from __future__ import annotations

import random

__all__ = ["DNA_ALPHABET", "random_dna", "random_dna_patterns", "plant_pattern"]

#: The four base-pair symbols used by every DNA-driven benchmark.
DNA_ALPHABET = b"ACGT"


def random_dna(length: int, *, seed: int = 0) -> bytes:
    """Uniform random DNA of ``length`` base pairs.

    The paper drives mesh profiling with "1,000,000 random DNA base-pair
    inputs"; this is that stimulus, deterministic per seed.
    """
    rng = random.Random(seed)
    return bytes(rng.choice(DNA_ALPHABET) for _ in range(length))


def random_dna_patterns(count: int, length: int, *, seed: int = 0) -> list[bytes]:
    """``count`` independent random DNA pattern strings of ``length``."""
    rng = random.Random(seed)
    return [
        bytes(rng.choice(DNA_ALPHABET) for _ in range(length)) for _ in range(count)
    ]


def plant_pattern(
    stream: bytes,
    pattern: bytes,
    position: int,
    *,
    mutations: int = 0,
    seed: int = 0,
) -> bytes:
    """Embed ``pattern`` into ``stream`` at ``position`` with ``mutations``
    random substitutions — used to build inputs with known ground truth."""
    if position < 0 or position + len(pattern) > len(stream):
        raise ValueError("pattern does not fit at the requested position")
    rng = random.Random(seed)
    mutated = bytearray(pattern)
    for index in rng.sample(range(len(pattern)), mutations):
        alternatives = [b for b in DNA_ALPHABET if b != mutated[index]]
        mutated[index] = rng.choice(alternatives)
    out = bytearray(stream)
    out[position : position + len(pattern)] = mutated
    return bytes(out)
