"""Synthetic tagged corpus (the Brill benchmark input).

The Brill benchmark operates on a part-of-speech-tagged token stream (the
paper uses the Brown corpus).  We synthesise one: a tag-bigram Markov model
over a standard POS tag set emits tag sequences, and each token is encoded
as a (word-class, tag) symbol pair so rules can reference both lexical and
tag context.

Symbol layout: tags occupy :data:`TAG_BASE`.., word classes occupy
:data:`WORD_BASE`.. — disjoint ranges so patterns can use range charsets.

:func:`load_tagged_corpus` validates a corpus file against that layout and
raises :class:`~repro.errors.InputError` with the file path and byte
offset of the first malformed symbol (docs/RESILIENCE.md) rather than
letting a bad stream feed the engines silently.
"""

from __future__ import annotations

import pathlib
import random

from repro.errors import InputError

__all__ = [
    "POS_TAGS",
    "TAG_BASE",
    "WORD_BASE",
    "N_WORD_CLASSES",
    "tag_symbol",
    "word_symbol",
    "any_tag_range",
    "any_word_range",
    "generate_tagged_corpus",
    "load_tagged_corpus",
]

#: A Brown-corpus-flavoured tag set.
POS_TAGS = [
    "NN", "NNS", "NNP", "VB", "VBD", "VBG", "VBN", "VBZ", "JJ", "JJR",
    "RB", "DT", "IN", "PRP", "PRP$", "CC", "CD", "TO", "MD", "WDT",
    "EX", "UH", "POS", "RP", "WP", "JJS", "RBR", "PDT", "SYM", "FW",
]

TAG_BASE = 1
WORD_BASE = 64
N_WORD_CLASSES = 180


def tag_symbol(tag: str) -> int:
    """The stream symbol for a POS tag."""
    return TAG_BASE + POS_TAGS.index(tag)


def word_symbol(word_class: int) -> int:
    """The stream symbol for a word class (0 <= class < N_WORD_CLASSES)."""
    if not 0 <= word_class < N_WORD_CLASSES:
        raise ValueError(f"word class out of range: {word_class}")
    return WORD_BASE + word_class


def any_tag_range() -> tuple[int, int]:
    """Inclusive symbol range covering every tag."""
    return (TAG_BASE, TAG_BASE + len(POS_TAGS) - 1)


def any_word_range() -> tuple[int, int]:
    """Inclusive symbol range covering every word class."""
    return (WORD_BASE, WORD_BASE + N_WORD_CLASSES - 1)


def generate_tagged_corpus(
    n_tokens: int = 20_000,
    *,
    seed: int = 0,
) -> bytes:
    """A (word, tag) symbol stream of ``n_tokens`` tokens.

    Tags follow a random bigram Markov model (so tag contexts have
    realistic non-uniform statistics); word classes are Zipf-distributed
    and weakly correlated with the tag.
    """
    rng = random.Random(seed)
    n_tags = len(POS_TAGS)
    # random but fixed bigram preferences: each tag prefers a few successors
    preferred = {
        t: rng.sample(range(n_tags), 4) for t in range(n_tags)
    }
    word_weights = [1.0 / (1 + k) for k in range(N_WORD_CLASSES)]
    out = bytearray()
    tag = rng.randrange(n_tags)
    for _ in range(n_tokens):
        word = rng.choices(range(N_WORD_CLASSES), weights=word_weights, k=1)[0]
        out.append(WORD_BASE + word)
        out.append(TAG_BASE + tag)
        if rng.random() < 0.7:
            tag = rng.choice(preferred[tag])
        else:
            tag = rng.randrange(n_tags)
    return bytes(out)


def load_tagged_corpus(path) -> bytes:
    """Read and validate a (word, tag) symbol stream from disk.

    The stream must be an even number of bytes (tokens are pairs), word
    symbols must lie in ``[WORD_BASE, WORD_BASE + N_WORD_CLASSES)`` and
    tag symbols in ``[TAG_BASE, TAG_BASE + len(POS_TAGS))``.  The first
    violation raises :class:`~repro.errors.InputError` at its byte offset.
    """
    data = pathlib.Path(path).read_bytes()
    if len(data) % 2:
        raise InputError(
            path, len(data) - 1,
            f"odd stream length {len(data)}: tokens are (word, tag) byte pairs",
        )
    word_end = WORD_BASE + N_WORD_CLASSES
    tag_end = TAG_BASE + len(POS_TAGS)
    for offset in range(0, len(data), 2):
        word, tag = data[offset], data[offset + 1]
        if not WORD_BASE <= word < word_end:
            raise InputError(
                path, offset,
                f"word symbol {word} outside [{WORD_BASE}, {word_end})",
            )
        if not TAG_BASE <= tag < tag_end:
            raise InputError(
                path, offset + 1,
                f"tag symbol {tag} outside [{TAG_BASE}, {tag_end})",
            )
    return data
