"""Synthetic packet-capture stream (the Snort benchmark input).

Builds an HTTP-heavy byte stream — request lines, headers, URL-encoded
queries, and occasional binary payloads — approximating the payload bytes a
PCAP of web traffic feeds a NIDS.  A small fraction of packets embed
"suspicious" tokens so the specific (non-modifier) Snort rules fire
occasionally, as in real traffic.

:func:`save_pcap`/:func:`load_pcap` round-trip packets through the real
libpcap container format, so external captures can feed the benchmark.
The loader never leaks a bare ``struct.error``/``IndexError``: every
structural problem raises :class:`~repro.errors.InputError` with the file
path and byte offset (docs/RESILIENCE.md).
"""

from __future__ import annotations

import pathlib
import random
import struct

from repro.errors import InputError

__all__ = [
    "synthetic_pcap",
    "SUSPICIOUS_TOKENS",
    "PCAP_MAGIC",
    "load_pcap",
    "save_pcap",
]

_PATH_WORDS = [
    "index", "home", "login", "api", "v2", "search", "img", "css", "js",
    "admin", "cart", "static", "posts", "user", "data",
]
_HOSTS = ["example.com", "test.net", "site.org", "cdn.example.com"]
_AGENTS = [
    "Mozilla/5.0 (X11; Linux x86_64)",
    "curl/8.1.2",
    "python-requests/2.31",
    "Googlebot/2.1",
]

#: Tokens the specific Snort rules look for; planted in ~2% of packets.
SUSPICIOUS_TOKENS = [
    b"cmd.exe",
    b"/etc/passwd",
    b"SELECT * FROM",
    b"%c0%af",
    b"powershell -enc",
    b"<script>alert",
]


def _http_packet(rng: random.Random) -> bytes:
    method = rng.choice(["GET", "POST", "GET", "HEAD"])
    path = "/" + "/".join(rng.sample(_PATH_WORDS, rng.randint(1, 3)))
    if rng.random() < 0.5:
        path += "?" + "&".join(
            f"{rng.choice(_PATH_WORDS)}={rng.randint(0, 9999)}"
            for _ in range(rng.randint(1, 3))
        )
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {rng.choice(_HOSTS)}",
        f"User-Agent: {rng.choice(_AGENTS)}",
        f"Content-Length: {rng.randint(0, 4096)}",
        "",
    ]
    packet = ("\r\n".join(lines) + "\r\n").encode("latin-1")
    if rng.random() < 0.3:
        packet += bytes(rng.randrange(256) for _ in range(rng.randint(16, 128)))
    if rng.random() < 0.02:
        packet += rng.choice(SUSPICIOUS_TOKENS) + b"\r\n"
    return packet


def synthetic_packets(n_packets: int = 500, *, seed: int = 0) -> list[bytes]:
    """Individual packet payloads (for per-packet rule evaluation)."""
    rng = random.Random(seed)
    return [_http_packet(rng) for _ in range(n_packets)]


def synthetic_pcap(n_packets: int = 500, *, seed: int = 0) -> bytes:
    """Concatenated payload bytes of ``n_packets`` synthetic packets."""
    return b"".join(synthetic_packets(n_packets, seed=seed))


#: Classic libpcap magic (microsecond timestamps), native byte order.
PCAP_MAGIC = 0xA1B2C3D4

_GLOBAL_HEADER = struct.Struct("<IHHiIII")  # magic, ver, ver, tz, sig, snap, net
_RECORD_HEADER = struct.Struct("<IIII")  # ts_sec, ts_usec, incl_len, orig_len


def save_pcap(path, packets: list[bytes]) -> pathlib.Path:
    """Write packets as a classic little-endian libpcap file."""
    out = bytearray(_GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, 65535, 1))
    for index, packet in enumerate(packets):
        out += _RECORD_HEADER.pack(index, 0, len(packet), len(packet))
        out += packet
    target = pathlib.Path(path)
    target.write_bytes(bytes(out))
    return target


def load_pcap(path) -> list[bytes]:
    """Read packet payloads from a libpcap file (either byte order).

    Raises :class:`~repro.errors.InputError` — with ``path`` and the byte
    ``offset`` of the first structural problem — on a short global header,
    unknown magic, truncated record header, or a record whose declared
    length runs past the end of the file.
    """
    data = pathlib.Path(path).read_bytes()
    if len(data) < _GLOBAL_HEADER.size:
        raise InputError(
            path, len(data),
            f"truncated global header ({len(data)} of {_GLOBAL_HEADER.size} bytes)",
        )
    magic_le = struct.unpack_from("<I", data)[0]
    if magic_le == PCAP_MAGIC:
        order = "<"
    elif struct.unpack_from(">I", data)[0] == PCAP_MAGIC:
        order = ">"
    else:
        raise InputError(path, 0, f"not a pcap file (magic 0x{magic_le:08X})")
    record = struct.Struct(f"{order}IIII")
    packets: list[bytes] = []
    offset = _GLOBAL_HEADER.size
    while offset < len(data):
        if offset + record.size > len(data):
            raise InputError(
                path, offset,
                f"truncated record header for packet {len(packets)} "
                f"({len(data) - offset} of {record.size} bytes)",
            )
        _, _, incl_len, _ = record.unpack_from(data, offset)
        offset += record.size
        if offset + incl_len > len(data):
            raise InputError(
                path, offset,
                f"packet {len(packets)} declares {incl_len} bytes but only "
                f"{len(data) - offset} remain",
            )
        packets.append(data[offset:offset + incl_len])
        offset += incl_len
    return packets
