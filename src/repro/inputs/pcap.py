"""Synthetic packet-capture stream (the Snort benchmark input).

Builds an HTTP-heavy byte stream — request lines, headers, URL-encoded
queries, and occasional binary payloads — approximating the payload bytes a
PCAP of web traffic feeds a NIDS.  A small fraction of packets embed
"suspicious" tokens so the specific (non-modifier) Snort rules fire
occasionally, as in real traffic.
"""

from __future__ import annotations

import random

__all__ = ["synthetic_pcap", "SUSPICIOUS_TOKENS"]

_PATH_WORDS = [
    "index", "home", "login", "api", "v2", "search", "img", "css", "js",
    "admin", "cart", "static", "posts", "user", "data",
]
_HOSTS = ["example.com", "test.net", "site.org", "cdn.example.com"]
_AGENTS = [
    "Mozilla/5.0 (X11; Linux x86_64)",
    "curl/8.1.2",
    "python-requests/2.31",
    "Googlebot/2.1",
]

#: Tokens the specific Snort rules look for; planted in ~2% of packets.
SUSPICIOUS_TOKENS = [
    b"cmd.exe",
    b"/etc/passwd",
    b"SELECT * FROM",
    b"%c0%af",
    b"powershell -enc",
    b"<script>alert",
]


def _http_packet(rng: random.Random) -> bytes:
    method = rng.choice(["GET", "POST", "GET", "HEAD"])
    path = "/" + "/".join(rng.sample(_PATH_WORDS, rng.randint(1, 3)))
    if rng.random() < 0.5:
        path += "?" + "&".join(
            f"{rng.choice(_PATH_WORDS)}={rng.randint(0, 9999)}"
            for _ in range(rng.randint(1, 3))
        )
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {rng.choice(_HOSTS)}",
        f"User-Agent: {rng.choice(_AGENTS)}",
        f"Content-Length: {rng.randint(0, 4096)}",
        "",
    ]
    packet = ("\r\n".join(lines) + "\r\n").encode("latin-1")
    if rng.random() < 0.3:
        packet += bytes(rng.randrange(256) for _ in range(rng.randint(16, 128)))
    if rng.random() < 0.02:
        packet += rng.choice(SUSPICIOUS_TOKENS) + b"\r\n"
    return packet


def synthetic_packets(n_packets: int = 500, *, seed: int = 0) -> list[bytes]:
    """Individual packet payloads (for per-packet rule evaluation)."""
    rng = random.Random(seed)
    return [_http_packet(rng) for _ in range(n_packets)]


def synthetic_pcap(n_packets: int = 500, *, seed: int = 0) -> bytes:
    """Concatenated payload bytes of ``n_packets`` synthetic packets."""
    return b"".join(synthetic_packets(n_packets, seed=seed))
