"""PROSITE protein-motif substrate (Protomata benchmark)."""

from repro.prosite.parser import AMINO_ACIDS, parse_pattern_elements, prosite_to_regex

__all__ = ["AMINO_ACIDS", "parse_pattern_elements", "prosite_to_regex"]
