"""PROSITE motif pattern parser (the Protomata benchmark substrate).

PROSITE patterns describe protein motifs over the 20-letter amino-acid
alphabet, e.g. ``[AC]-x-V-x(4)-{ED}``: elements separated by ``-`` where
``x`` is any residue, ``[...]`` a residue set, ``{...}`` a negated set, and
``(n)``/``(n,m)`` repeat counts.  A leading ``<`` anchors at the sequence
start.  Patterns conventionally end with a ``.``.

The parser emits regexes over the amino-acid byte alphabet for the standard
compiler, mirroring how Roy & Aluru convert Prosite motifs to automata.
"""

from __future__ import annotations

import re

from repro.errors import PatternError

__all__ = ["AMINO_ACIDS", "prosite_to_regex", "parse_pattern_elements"]

#: The 20 standard amino acids (one-letter codes).
AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

_ELEMENT_RE = re.compile(
    r"(?P<body>x|[A-Z]|\[[A-Z]+\]|\{[A-Z]+\})"
    r"(?:\((?P<lo>\d+)(?:,(?P<hi>\d+))?\))?$"
)


def parse_pattern_elements(pattern: str) -> list[tuple[str, int, int]]:
    """Split a PROSITE pattern into ``(element_regex, lo, hi)`` triples."""
    text = pattern.strip()
    if text.endswith("."):
        text = text[:-1]
    if text.endswith(">"):
        raise PatternError(
            "C-terminal anchor '>' is not representable in streaming automata"
        )
    anchored = text.startswith("<")
    if anchored:
        text = text[1:]
    if not text:
        raise PatternError("empty PROSITE pattern")
    out: list[tuple[str, int, int]] = []
    for raw in text.split("-"):
        raw = raw.strip()
        match = _ELEMENT_RE.fullmatch(raw)
        if match is None:
            raise PatternError(f"bad PROSITE element: {raw!r}")
        body = match.group("body")
        lo = int(match.group("lo")) if match.group("lo") else 1
        hi = int(match.group("hi")) if match.group("hi") else lo
        if hi < lo:
            raise PatternError(f"inverted repeat in element {raw!r}")
        if body == "x":
            element = f"[{AMINO_ACIDS}]"
        elif len(body) == 1:
            if body not in AMINO_ACIDS:
                raise PatternError(f"unknown amino acid {body!r}")
            element = body
        elif body.startswith("["):
            residues = body[1:-1]
            bad = set(residues) - set(AMINO_ACIDS)
            if bad:
                raise PatternError(f"unknown residues {bad} in {raw!r}")
            element = f"[{residues}]"
        else:  # {...} negated set
            residues = body[1:-1]
            bad = set(residues) - set(AMINO_ACIDS)
            if bad:
                raise PatternError(f"unknown residues {bad} in {raw!r}")
            allowed = "".join(a for a in AMINO_ACIDS if a not in residues)
            if not allowed:
                raise PatternError(f"element {raw!r} excludes every residue")
            element = f"[{allowed}]"
        out.append((element, lo, hi))
    if anchored:
        out.insert(0, ("^", 1, 1))
    return out


def prosite_to_regex(pattern: str) -> str:
    """Convert a PROSITE pattern to a regex for the automata compiler."""
    parts = []
    for element, lo, hi in parse_pattern_elements(pattern):
        if element == "^":
            parts.append("^")
        elif lo == hi == 1:
            parts.append(element)
        elif lo == hi:
            parts.append(f"{element}{{{lo}}}")
        else:
            parts.append(f"{element}{{{lo},{hi}}}")
    return "".join(parts)
