"""Checkpointed sweeps: journal each cell, resume only what is missing.

A whole-suite sweep (``repro profile``, ``repro conformance``, the
Table-I path) is a grid of independent cells — (benchmark, engine) rows,
fuzz seeds, benchmark summaries.  :class:`SweepCheckpoint` journals each
cell to ``bench_results/*.ckpt.json`` *as it completes*: every record
atomically rewrites the file (write-temp + ``os.replace``), so a kill at
any instant leaves a loadable journal of exactly the finished cells.

Resuming (``--resume``) reopens the journal, verifies the sweep
parameters match (a mismatch raises
:class:`~repro.errors.CheckpointMismatch` rather than silently mixing
incompatible cells), and hands back the completed cells so the sweep
re-runs only the missing ones.  ``resilience.checkpoint.cells_written``
and ``resilience.resume.cells`` counters make the journal/resume
activity visible in telemetry snapshots.

Format (``repro.checkpoint/1``)::

    {
      "schema": "repro.checkpoint/1",
      "meta":  {...sweep parameters...},
      "cells": {"<benchmark>::<engine>": {...cell payload...}, ...}
    }
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro import telemetry
from repro.errors import CheckpointMismatch

__all__ = ["CHECKPOINT_SCHEMA", "SweepCheckpoint"]

CHECKPOINT_SCHEMA = "repro.checkpoint/1"


class SweepCheckpoint:
    """One sweep's on-disk cell journal."""

    def __init__(self, path, meta: dict) -> None:
        self.path = pathlib.Path(path)
        self.meta = meta
        self.cells: dict[str, object] = {}
        self.resumed_cells = 0

    @classmethod
    def open(cls, path, meta: dict, *, resume: bool = False) -> "SweepCheckpoint":
        """A checkpoint at ``path``; loads existing cells when resuming.

        Without ``resume`` an existing journal is discarded (the sweep
        starts over); with it, the stored ``meta`` must equal ``meta``.
        """
        ckpt = cls(path, meta)
        if not resume:
            return ckpt
        try:
            raw = ckpt.path.read_text()
        except FileNotFoundError:
            return ckpt  # nothing to resume; run fresh
        try:
            stored = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointMismatch(path, f"corrupt checkpoint: {exc}") from exc
        if stored.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointMismatch(
                path, f"schema {stored.get('schema')!r} != {CHECKPOINT_SCHEMA!r}"
            )
        if stored.get("meta") != meta:
            raise CheckpointMismatch(
                path,
                f"sweep parameters changed: checkpoint has {stored.get('meta')!r}, "
                f"this run wants {meta!r}",
            )
        ckpt.cells = dict(stored.get("cells", {}))
        ckpt.resumed_cells = len(ckpt.cells)
        telemetry.incr("resilience.resume.sweeps")
        telemetry.incr("resilience.resume.cells", len(ckpt.cells))
        return ckpt

    def has(self, key: str) -> bool:
        return key in self.cells

    def get(self, key: str):
        return self.cells[key]

    def record(self, key: str, payload) -> None:
        """Add one finished cell and flush the journal atomically."""
        self.cells[key] = payload
        telemetry.incr("resilience.checkpoint.cells_written")
        self._flush()

    def done(self) -> None:
        """The sweep completed: the journal has served its purpose."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def _flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "meta": self.meta,
            "cells": self.cells,
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
