"""Deterministic, seed-free fault injection for the resilience layer.

Production code calls the ``maybe_*`` / ``should_*`` hooks at the exact
points where real faults strike — worker entry, scan attempt, memo
growth, sweep journaling.  With no plan installed every hook is a
cheap no-op; tests install a :class:`FaultPlan` (via
:func:`inject_faults`, or by passing the plan through a pickled task
tuple so process-pool workers see it) to force a specific failure on a
specific segment/attempt, deterministically.

The plan is *declarative*: "crash worker on segment 2's first attempt",
"stall segment 1 for 0.2s on its first two attempts", "inflate the
lazy-DFA memo estimate 64x", "every engine fails on segment 3".  No
randomness is involved — the supervising code's jittered backoff is the
only stochastic element, and it is seeded.

One environment hook rides along for process-kill tests:
``REPRO_FAULT_HALT_AFTER_CELLS=N`` makes a checkpointed sweep die with
``os._exit(137)`` (an un-catchable hard kill, as SIGKILL would) after
journaling its Nth cell — the kill-and-resume smoke test uses it.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import telemetry
from repro.errors import EngineFailure, WorkerCrash

__all__ = ["FaultPlan", "inject_faults", "active_plan"]


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject (picklable)."""

    #: Segments whose worker dies (``os._exit`` in a pool process,
    #: :class:`WorkerCrash` in-process) on attempts <= ``crash_attempts``.
    crash_segments: frozenset[int] = frozenset()
    crash_attempts: int = 1
    #: Segments whose scan stalls ``stall_s`` seconds before running, on
    #: attempts <= ``stall_attempts`` (trips per-segment timeouts).
    stall_segments: frozenset[int] = frozenset()
    stall_s: float = 0.0
    stall_attempts: int = 1
    #: Multiplier applied to the lazy-DFA memo byte estimate (inflate to
    #: trip ``memo_bytes`` budgets without building a huge automaton).
    memo_inflation: float = 1.0
    #: Engine names that fail with :class:`EngineFailure` on every scan
    #: attempt (optionally restricted to ``poison_segments``).
    fail_engines: frozenset[str] = frozenset()
    #: Segments on which *every* engine fails — the poison-segment path.
    poison_segments: frozenset[int] = field(default_factory=frozenset)

    def scoped_to_segment(self, engine: str, segment: int | None) -> bool:
        """True if ``engine`` must fail on ``segment`` under this plan."""
        if segment is not None and segment in self.poison_segments:
            return True
        if engine in self.fail_engines:
            return True
        return False


_plan: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The process-wide installed plan (``None`` in production)."""
    return _plan


@contextmanager
def inject_faults(plan: FaultPlan):
    """Install ``plan`` process-wide for the duration (tests only)."""
    global _plan
    previous = _plan
    _plan = plan
    try:
        yield plan
    finally:
        _plan = previous


# -- hooks (no-ops without a plan) -------------------------------------------


def maybe_crash(
    plan: FaultPlan | None, segment: int, attempt: int, parent_pid: int
) -> None:
    """Kill this worker if the plan says so.

    In a *different process* than the supervisor (a process-pool worker)
    the death is real: ``os._exit``, which the pool surfaces as a broken
    pool.  In the supervisor's own process (serial path, thread pools) a
    hard exit would kill the suite, so the crash degrades to raising
    :class:`WorkerCrash` — same recovery path, survivable harness.
    """
    plan = plan if plan is not None else _plan
    if plan is None or segment not in plan.crash_segments:
        return
    if attempt > plan.crash_attempts:
        return
    if os.getpid() != parent_pid:
        os._exit(1)
    raise WorkerCrash(segment, attempt, "injected worker crash")


def maybe_stall(plan: FaultPlan | None, segment: int, attempt: int) -> None:
    """Sleep out the injected stall for this segment/attempt."""
    plan = plan if plan is not None else _plan
    if plan is None or segment not in plan.stall_segments:
        return
    if attempt > plan.stall_attempts or plan.stall_s <= 0:
        return
    time.sleep(plan.stall_s)


def maybe_fail_engine(engine: str, segment: int | None) -> None:
    """Raise :class:`EngineFailure` if the plan poisons this attempt."""
    if _plan is not None and _plan.scoped_to_segment(engine, segment):
        telemetry.incr("resilience.fault.engine_failure")
        raise EngineFailure(engine, "injected engine failure", segment=segment)


def memo_inflation() -> float:
    """The memo-estimate multiplier (1.0 without a plan)."""
    return _plan.memo_inflation if _plan is not None else 1.0


def maybe_halt_after_cells(cells_written: int) -> None:
    """Hard-kill the process after N journaled cells (env-driven).

    ``os._exit`` skips every finally/atexit, so the checkpoint on disk is
    exactly what a SIGKILL mid-sweep would leave behind.
    """
    limit = os.environ.get("REPRO_FAULT_HALT_AFTER_CELLS")
    if limit and cells_written >= int(limit):
        os._exit(137)
