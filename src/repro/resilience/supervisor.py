"""Supervised parallel scanning: timeouts, crash recovery, poison isolation.

:func:`supervised_parallel_scan` is the resilient counterpart of
:func:`repro.engines.parallel.parallel_scan` (which is now a strict-mode
wrapper over this module).  The input is split with
:func:`~repro.engines.parallel.split_with_overlap` exactly as before; what
changes is what happens when a segment scan misbehaves:

* **per-segment timeouts** — each pool future is awaited with
  ``segment_timeout_s``; an overrun is treated as a failed attempt, not a
  hung sweep;
* **crash detection** — a dead worker process surfaces as
  ``BrokenExecutor`` / ``BrokenProcessPool``; the supervisor records a
  :class:`~repro.errors.WorkerCrash` for the affected segments and keeps
  going (remaining in-flight segments are retried too, since a broken
  pool loses them all);
* **bounded retry with jittered backoff** — failed segments are retried
  up to ``max_attempts`` times *in the supervisor's own process* through
  the engine fallback ladder (:func:`~repro.resilience.ladder
  .resilient_scan`), with ``min(cap, base * 2**(attempt-1))`` backoff
  jittered by a seeded RNG so retries are reproducible;
* **poison-segment isolation** — a segment that exhausts its attempts is
  quarantined as a structured :class:`SegmentReport` with ``error`` set;
  the scan completes with a partial (but deterministic) result instead
  of dying, and ``complete`` is ``False``.

The merge is deterministic regardless of completion order: reports are
re-offset into stream coordinates, filtered to each segment's keep
range, and sorted — identical segments in, identical stream out.

Telemetry: ``resilience.segment.timeout``, ``resilience.segment.crash``,
``resilience.pool.broken``, ``resilience.segment.retries``,
``resilience.segment.poisoned``, plus the ladder/guard counters emitted
by the per-attempt machinery.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field

from repro import telemetry
from repro.core.automaton import Automaton
from repro.engines import ENGINE_REGISTRY
from repro.engines.base import ReportEvent, RunResult
from repro.engines.cache import compiled_engine
from repro.engines.parallel import Segment, split_with_overlap
from repro.engines.prefilter import max_match_length
from repro.errors import (
    EngineError,
    EngineFailure,
    ReproError,
    ScanTimeout,
    WorkerCrash,
)
from repro.resilience import faults
from repro.resilience.guards import ScanBudget, ScanGuard, guard_scope
from repro.resilience.ladder import ladder_from, resilient_scan

__all__ = [
    "SegmentReport",
    "SupervisedScanResult",
    "SupervisorConfig",
    "supervised_parallel_scan",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """How hard the supervisor tries before quarantining a segment."""

    #: Wall-clock allowance per pool-submitted segment attempt; ``None``
    #: waits indefinitely (strict mode).
    segment_timeout_s: float | None = None
    #: Total attempts per segment (first pool attempt + supervised
    #: retries).  1 means fail-fast: any segment error aborts the scan.
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    #: Seeds the backoff jitter so retry timing is reproducible.
    seed: int = 0
    #: Per-attempt engine resource budget (deadline, memo bytes).
    budget: ScanBudget | None = None
    #: Retry attempts walk the fallback ladder from the primary engine
    #: down; ``False`` pins every attempt to the primary engine.
    ladder_retries: bool = True

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Jittered exponential backoff before retry ``attempt`` (>= 2)."""
        base = min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 2))
        return base * (0.5 + rng.random())


@dataclass
class SegmentReport:
    """What happened to one segment: who scanned it, at what cost."""

    index: int
    segment: Segment
    engine: str | None = None  #: engine that completed it (None if poisoned)
    attempts: int = 0
    #: ``(engine, "ErrorType: message")`` per failed rung/attempt.
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: Terminal error string for a quarantined (poison) segment.
    error: str | None = None
    #: The last exception object (strict-mode callers re-raise it).
    exception: Exception | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SupervisedScanResult:
    """A supervised scan: merged result plus per-segment provenance."""

    result: RunResult
    segments: list[SegmentReport]

    @property
    def complete(self) -> bool:
        """True when every segment's reports made it into ``result``."""
        return all(report.ok for report in self.segments)

    @property
    def poisoned(self) -> list[SegmentReport]:
        return [report for report in self.segments if not report.ok]

    @property
    def degraded(self) -> bool:
        return any(report.failures for report in self.segments)


def _scan_segment_supervised(args):
    """Pool-side single attempt: scan one pre-sliced chunk, return events.

    Module-level and fed only picklable arguments so it works on process
    pools.  Mirrors the telemetry protocol of the original serial path:
    spans/counters recorded here are snapshotted and the delta shipped
    back for pid-aware merging in the supervisor.
    """
    (automaton, chunk, segment, index, engine_cls, label, collect, plan,
     parent_pid, budget) = args
    was_enabled = telemetry.is_enabled()
    if collect and not was_enabled:
        telemetry.enable()
    before = telemetry.snapshot() if collect else None
    try:
        faults.maybe_crash(plan, index, 1, parent_pid)
        faults.maybe_stall(plan, index, 1)
        if plan is not None and plan.scoped_to_segment(label, index):
            raise EngineFailure(label, "injected engine failure", segment=index)
        engine = compiled_engine(automaton, engine_cls)
        guard = ScanGuard(budget, segment=index) if budget else None
        with telemetry.span("parallel.segment"), guard_scope(guard):
            result = engine.run(chunk)
        events = [
            ReportEvent(event.offset + segment.scan_start, event.ident, event.code)
            for event in result.reports
            if event.offset + segment.scan_start >= segment.keep_from
        ]
        error = None
    except ReproError as exc:
        # Ship library failures back as values: the supervisor owns the
        # retry decision, and structured returns survive any pool.
        events, error = None, exc
    delta = telemetry.diff_snapshots(before, telemetry.snapshot()) if collect else None
    if collect and not was_enabled:
        telemetry.disable()
    return events, delta, error


def _note_failure(report: SegmentReport, engine: str, error: Exception) -> None:
    """Record one failed attempt on ``report`` (with crash accounting)."""
    if isinstance(error, WorkerCrash):
        telemetry.incr("resilience.segment.crash")
    report.failures.append((engine, f"{type(error).__name__}: {error}"))
    report.exception = error


def _merge_worker_delta(delta) -> None:
    """Merge a worker's telemetry delta unless it is already local.

    Counter/timer deltas recorded inside *other processes* (a process
    pool) must be merged back; same-pid deltas (serial path or thread
    pools) already live in this registry.
    """
    if delta is not None and delta.get("pid") != os.getpid():
        telemetry.merge(delta)


def _retry_segment(
    automaton: Automaton,
    data: bytes,
    segment: Segment,
    report: SegmentReport,
    engine_cls,
    label: str,
    config: SupervisorConfig,
    rng: random.Random,
) -> list[ReportEvent] | None:
    """Supervisor-side retries for one failed segment.

    Runs in the supervisor's process (the pool may be broken), walking
    the fallback ladder per attempt.  Returns the keep-filtered events,
    or ``None`` once the segment is poisoned.
    """
    if config.ladder_retries and label in ENGINE_REGISTRY:
        ladder = ladder_from(label)
    elif label in ENGINE_REGISTRY:
        ladder = (label,)
    else:
        ladder = (engine_cls,)  # non-registry engine: rerun it directly
    chunk = data[segment.scan_start : segment.end]
    while report.attempts < config.max_attempts:
        report.attempts += 1
        telemetry.incr("resilience.segment.retries")
        time.sleep(config.backoff_s(report.attempts, rng))
        try:
            faults.maybe_crash(None, report.index, report.attempts, os.getpid())
            faults.maybe_stall(None, report.index, report.attempts)
            outcome = resilient_scan(
                automaton,
                chunk,
                ladder=ladder,
                budget=config.budget,
                segment=report.index,
            )
        except ReproError as exc:
            _note_failure(report, "retry", exc)
            continue
        report.engine = outcome.engine
        report.failures.extend(outcome.fallbacks)
        return [
            ReportEvent(event.offset + segment.scan_start, event.ident, event.code)
            for event in outcome.result.reports
            if event.offset + segment.scan_start >= segment.keep_from
        ]
    telemetry.incr("resilience.segment.poisoned")
    report.engine = None
    report.error = report.failures[-1][1] if report.failures else "exhausted attempts"
    return None


def supervised_parallel_scan(
    automaton: Automaton,
    data: bytes,
    n_segments: int,
    *,
    pool=None,
    engine="vector",
    config: SupervisorConfig | None = None,
) -> SupervisedScanResult:
    """Scan ``data`` in overlapped segments under supervision.

    Same segmentation preconditions as
    :func:`~repro.engines.parallel.parallel_scan` (unanchored automaton,
    finite match length).  ``pool`` is any ``concurrent.futures``
    executor; without one, segments run serially in-process (first
    attempts still honour budgets and fault hooks).  ``engine`` is the
    *primary* engine — a registry name or an :class:`Engine` subclass;
    retries degrade down the fallback ladder from there.
    """
    from repro.core.elements import StartMode

    if isinstance(engine, str):
        if engine not in ENGINE_REGISTRY:
            raise EngineError(f"unknown engine {engine!r}")
        engine_cls, label = ENGINE_REGISTRY[engine], engine
    else:
        engine_cls = engine
        label = next(
            (n for n, c in ENGINE_REGISTRY.items() if c is engine_cls),
            engine_cls.__name__,
        )
    if any(s.start is StartMode.START_OF_DATA for s in automaton.stes()):
        raise EngineError("parallel_scan requires an unanchored automaton")
    window = max_match_length(automaton)
    if window is None:
        raise EngineError(
            "automaton has unbounded match length; segment overlap cannot "
            "bound cross-boundary matches"
        )
    config = config or SupervisorConfig()
    segments = split_with_overlap(len(data), n_segments, max(window - 1, 0))
    collect = telemetry.is_enabled()
    telemetry.incr("parallel.scans")
    telemetry.incr("parallel.segments", len(segments))
    plan = faults.active_plan()
    parent_pid = os.getpid()
    reports = [SegmentReport(index=i, segment=s) for i, s in enumerate(segments)]
    events_by_segment: list[list[ReportEvent] | None] = [None] * len(segments)

    def task_for(index: int):
        segment = segments[index]
        return (
            automaton,
            data[segment.scan_start : segment.end],
            segment,
            index,
            engine_cls,
            label,
            collect,
            plan,
            parent_pid,
            config.budget,
        )

    failed: list[int] = []
    if pool is None:
        for index in range(len(segments)):
            reports[index].attempts = 1
            events, delta, error = _scan_segment_supervised(task_for(index))
            _merge_worker_delta(delta)
            if error is not None:
                _note_failure(reports[index], label, error)
                failed.append(index)
            else:
                reports[index].engine = label
                events_by_segment[index] = events
    else:
        futures = {index: pool.submit(_scan_segment_supervised, task_for(index))
                   for index in range(len(segments))}
        pool_broken = False
        for index, future in futures.items():
            reports[index].attempts = 1
            if pool_broken:
                # A broken pool loses every in-flight task; don't block on
                # futures that can no longer complete.
                _note_failure(
                    reports[index], label, WorkerCrash(index, 1, "pool broken")
                )
                failed.append(index)
                continue
            try:
                events, delta, error = future.result(timeout=config.segment_timeout_s)
            except FuturesTimeoutError:
                telemetry.incr("resilience.segment.timeout")
                future.cancel()
                _note_failure(
                    reports[index],
                    label,
                    ScanTimeout(
                        label,
                        segments[index].scan_start,
                        config.segment_timeout_s or 0.0,
                        segment=index,
                    ),
                )
                failed.append(index)
                continue
            except BrokenExecutor:
                telemetry.incr("resilience.pool.broken")
                pool_broken = True
                _note_failure(reports[index], label, WorkerCrash(index, 1))
                failed.append(index)
                continue
            _merge_worker_delta(delta)
            if error is not None:
                _note_failure(reports[index], label, error)
                failed.append(index)
            else:
                reports[index].engine = label
                events_by_segment[index] = events

    if failed and config.max_attempts > 1:
        rng = random.Random(config.seed)
        for index in failed:
            events_by_segment[index] = _retry_segment(
                automaton, data, segments[index], reports[index],
                engine_cls, label, config, rng
            )
    elif failed:
        for index in failed:
            telemetry.incr("resilience.segment.poisoned")
            reports[index].error = reports[index].failures[-1][1]

    merged = sorted(
        event
        for events in events_by_segment
        if events is not None
        for event in events
    )
    return SupervisedScanResult(
        result=RunResult(reports=merged, cycles=len(data)),
        segments=reports,
    )
