"""Scan resource guards: wall-clock deadlines and memo byte budgets.

A :class:`ScanGuard` is installed around one scan attempt with
:func:`guard_scope`; engines look it up with :func:`current_guard` at feed
entry and consult it at *block* granularity (every ~1k symbols), never
per symbol, so a guarded scan pays a handful of time checks per feed and
an unguarded scan pays one thread-local read.

The guard is thread-local: engines are shared objects (the compile cache
hands one instance to every thread), but budgets belong to the *scan*,
so two threads scanning the same engine can carry different deadlines.

Two budgets exist today:

* ``wall_s`` — a per-attempt deadline.  Tripping raises
  :class:`~repro.errors.ScanTimeout` with the engine label and the offset
  reached.
* ``memo_bytes`` — a cap on the lazy-DFA memo table.  The engine first
  *demotes* (drops its dense promoted tables and stops re-promoting);
  when the raw memo alone exceeds the budget it raises
  :class:`~repro.errors.MemoryBudgetExceeded` — hard degradation, which
  the fallback ladder turns into a rerun on the next engine down.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro import telemetry
from repro.errors import MemoryBudgetExceeded, ScanTimeout

__all__ = ["ScanBudget", "ScanGuard", "current_guard", "guard_scope"]

#: Symbols between deadline checks in engines without a natural block loop.
GUARD_BLOCK = 1024


@dataclass(frozen=True)
class ScanBudget:
    """Declarative resource budget for one scan attempt (picklable)."""

    wall_s: float | None = None
    memo_bytes: int | None = None

    def __bool__(self) -> bool:
        return self.wall_s is not None or self.memo_bytes is not None


class ScanGuard:
    """One scan attempt's armed budget (deadline computed at arm time)."""

    __slots__ = ("budget", "deadline", "memo_budget", "segment")

    def __init__(self, budget: ScanBudget, *, segment: int | None = None) -> None:
        self.budget = budget
        self.deadline = (
            time.perf_counter() + budget.wall_s if budget.wall_s is not None else None
        )
        self.memo_budget = budget.memo_bytes
        self.segment = segment

    def check_deadline(self, engine: str, offset: int) -> None:
        """Raise :class:`ScanTimeout` if the wall-clock budget is spent."""
        if self.deadline is not None and time.perf_counter() > self.deadline:
            telemetry.incr("resilience.guard.timeout")
            telemetry.incr(f"resilience.guard.timeout.{engine}")
            raise ScanTimeout(
                engine, offset, self.budget.wall_s or 0.0, segment=self.segment
            )

    def check_memo(self, engine: str, used_bytes: int) -> None:
        """Raise :class:`MemoryBudgetExceeded` if the memo budget is blown."""
        if self.memo_budget is not None and used_bytes > self.memo_budget:
            telemetry.incr("resilience.guard.memo_budget")
            raise MemoryBudgetExceeded(engine, used_bytes, self.memo_budget)

    def memo_headroom(self, used_bytes: int) -> bool:
        """True if ``used_bytes`` still fits the memo budget (no raise)."""
        return self.memo_budget is None or used_bytes <= self.memo_budget


_local = threading.local()


def current_guard() -> ScanGuard | None:
    """The guard installed for this thread's current scan, if any."""
    return getattr(_local, "guard", None)


@contextmanager
def guard_scope(guard: ScanGuard | None):
    """Install ``guard`` for the current thread for the duration.

    ``None`` is accepted (and is a no-op) so callers can write one
    ``with guard_scope(maybe_guard):`` regardless of whether a budget is
    in force.  Nested scopes restore the outer guard on exit.
    """
    if guard is None:
        yield None
        return
    previous = getattr(_local, "guard", None)
    _local.guard = guard
    try:
        yield guard
    finally:
        _local.guard = previous
