"""Resilient execution: guards, fallback ladders, supervision, resume.

The paper's methodology depends on completing whole-suite sweeps, so
failure handling is a first-class subsystem rather than ad-hoc
try/excepts (docs/RESILIENCE.md):

* a **typed failure taxonomy** (:class:`~repro.errors.ScanTimeout`,
  :class:`~repro.errors.MemoryBudgetExceeded`,
  :class:`~repro.errors.WorkerCrash`, :class:`~repro.errors.EngineFailure`)
  carrying engine/segment/offset context;
* **resource guards** (:mod:`repro.resilience.guards`) — wall-clock
  deadlines checked at block granularity in every engine's feed loop,
  and a byte budget on the lazy-DFA memo;
* an **engine fallback ladder** (:mod:`repro.resilience.ladder`,
  ``lazydfa -> bitset -> vector -> reference``) that reruns a
  failed/over-budget scan on the next engine down;
* a **supervised parallel scan** (:mod:`repro.resilience.supervisor`)
  with per-segment timeouts, crash detection, bounded retry with
  jittered backoff, and poison-segment isolation;
* **checkpointed sweeps** (:mod:`repro.resilience.checkpoint`) so a
  killed ``repro profile`` / ``repro conformance`` / ``repro table1``
  resumes from its journal instead of starting over;
* deterministic **fault injection** (:mod:`repro.resilience.faults`)
  so every failure path above is testable.

Every guard trip, retry, fallback, and resume emits telemetry counters
(``resilience.*``), so PROFILE.json records exactly how degraded a run
was.
"""

from repro.errors import (
    CheckpointMismatch,
    EngineFailure,
    InputError,
    MemoryBudgetExceeded,
    ResilienceError,
    ScanTimeout,
    WorkerCrash,
)
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.faults import FaultPlan, inject_faults
from repro.resilience.guards import ScanBudget, ScanGuard, current_guard, guard_scope

# The ladder and supervisor import the engine registry, and the engines
# import repro.resilience.guards — importing them here eagerly would be a
# cycle.  PEP 562 lazy re-export keeps `from repro.resilience import
# resilient_scan` working while this package's import stays leaf-light.
_LAZY = {
    "DEFAULT_LADDER": "ladder",
    "LadderOutcome": "ladder",
    "ladder_from": "ladder",
    "resilient_scan": "ladder",
    "SegmentReport": "supervisor",
    "SupervisedScanResult": "supervisor",
    "SupervisorConfig": "supervisor",
    "supervised_parallel_scan": "supervisor",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.resilience' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"repro.resilience.{module}"), name)

__all__ = [
    "DEFAULT_LADDER",
    "CheckpointMismatch",
    "EngineFailure",
    "FaultPlan",
    "InputError",
    "LadderOutcome",
    "MemoryBudgetExceeded",
    "ResilienceError",
    "ScanBudget",
    "ScanGuard",
    "ScanTimeout",
    "SegmentReport",
    "SupervisedScanResult",
    "SupervisorConfig",
    "SweepCheckpoint",
    "WorkerCrash",
    "current_guard",
    "guard_scope",
    "inject_faults",
    "ladder_from",
    "resilient_scan",
    "supervised_parallel_scan",
]
