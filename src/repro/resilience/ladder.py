"""The engine fallback ladder: ``lazydfa -> bitset -> vector -> reference``.

One :func:`resilient_scan` call walks the ladder top-down: each rung
compiles (through the shared engine cache) and runs the scan under a
fresh :class:`~repro.resilience.guards.ScanGuard`.  A rung that trips a
guard (:class:`~repro.errors.ScanTimeout`,
:class:`~repro.errors.MemoryBudgetExceeded`), refuses the automaton
(:class:`~repro.errors.EngineError`, :class:`~repro.errors.CapacityError`)
or fails outright (:class:`~repro.errors.EngineFailure`) is recorded and
the scan *reruns from scratch* on the next engine down.  The ladder ends
at :class:`~repro.engines.reference.ReferenceEngine`, the semantic
oracle — slow, but with no capacity limits — so only a wall-clock
deadline (or a poison fault) can exhaust the whole ladder, which raises
:class:`~repro.errors.EngineFailure` with the per-rung failure list.

Budgets are **per attempt**: each rung gets its own deadline, so a memo
blow-up on the lazy DFA does not eat the bitset rerun's time.  Every
fallback increments ``resilience.fallback`` /
``resilience.fallback.<engine>``; a scan that completed below its first
rung increments ``resilience.ladder.degraded``.

Cache-safety contract (the "degraded engine" rule): every rung obtains
its engine via :func:`~repro.engines.cache.compiled_engine` *under that
rung's own class key*.  A fallback therefore never caches — and never
returns to a concurrent caller — a lower-ladder engine under the
original engine's fingerprint key; the compile cache additionally
revalidates entry types (see :mod:`repro.engines.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.core.automaton import Automaton
from repro.engines import ENGINE_REGISTRY
from repro.engines.base import RunResult
from repro.engines.cache import compiled_engine
from repro.errors import CapacityError, EngineError, EngineFailure, ResilienceError
from repro.resilience import faults
from repro.resilience.guards import ScanBudget, ScanGuard, guard_scope

__all__ = ["DEFAULT_LADDER", "LadderOutcome", "ladder_from", "resilient_scan"]

#: Fastest-first: DFA table lookups, bit-parallel NFA, vectorised
#: active-set, then the pure-Python oracle as the rung of last resort.
DEFAULT_LADDER: tuple[str, ...] = ("dfa", "bitset", "vector", "reference")

#: Exceptions that mean "this rung failed; try the next one down":
#: guard trips (ScanTimeout, MemoryBudgetExceeded) and injected faults
#: are ResilienceErrors; engines refuse automata with EngineError /
#: CapacityError.  Anything else (a genuine bug, MemoryError,
#: KeyboardInterrupt) is not the ladder's to swallow and propagates.
_FALLBACK_ERRORS = (ResilienceError, CapacityError, EngineError)


@dataclass
class LadderOutcome:
    """One resilient scan: the result plus how degraded it was."""

    result: RunResult
    engine: str  #: registry name of the engine that completed the scan
    #: ``(engine, "ErrorType: message")`` for every rung that failed.
    fallbacks: list[tuple[str, str]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.fallbacks)


def ladder_from(engine: str, ladder: tuple[str, ...] = DEFAULT_LADDER) -> tuple[str, ...]:
    """The ladder starting at ``engine`` (or just ``(engine,)`` if it is
    not a rung — e.g. an engine outside the CPU set)."""
    if engine in ladder:
        return ladder[ladder.index(engine):]
    return (engine,)


def resilient_scan(
    automaton: Automaton,
    data: bytes,
    *,
    ladder: tuple[str, ...] = DEFAULT_LADDER,
    budget: ScanBudget | None = None,
    record_active: bool = False,
    segment: int | None = None,
) -> LadderOutcome:
    """Scan ``data``, degrading down ``ladder`` until an engine completes.

    ``budget`` applies per attempt (fresh deadline per rung).  ``segment``
    is context for error messages, telemetry, and the fault-injection
    hooks (the supervised pool passes the segment index through).
    """
    if not ladder:
        raise ValueError("ladder needs at least one engine")
    fallbacks: list[tuple[str, str]] = []
    for rung in ladder:
        # Rungs are registry names; an engine *class* is also accepted so
        # callers with a non-registry engine can still use the machinery.
        if isinstance(rung, str):
            engine_cls, name = ENGINE_REGISTRY[rung], rung
        else:
            engine_cls, name = rung, rung.__name__
        try:
            faults.maybe_fail_engine(name, segment)
            engine = compiled_engine(automaton, engine_cls)
            guard = ScanGuard(budget, segment=segment) if budget else None
            with guard_scope(guard):
                result = engine.run(data, record_active=record_active)
        except _FALLBACK_ERRORS as exc:
            fallbacks.append((name, f"{type(exc).__name__}: {exc}"))
            telemetry.incr("resilience.fallback")
            telemetry.incr(f"resilience.fallback.{name}")
            continue
        if fallbacks:
            telemetry.incr("resilience.ladder.degraded")
        return LadderOutcome(result=result, engine=name, fallbacks=fallbacks)
    detail = "; ".join(f"{name}: {err}" for name, err in fallbacks)
    raise EngineFailure("ladder", f"every rung failed ({detail})", segment=segment)
