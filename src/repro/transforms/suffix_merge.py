"""Suffix-merging optimization (the dual of prefix merging).

Two states are forward-indistinguishable when they have the same character
set, start mode, report behaviour, and the same (merged) *successor* set:
any token reaching either produces identical futures, so they can merge.
Iterating backwards-to-fixpoint folds common pattern suffixes the way
prefix merging folds shared prefixes; running both passes alternately
(:func:`merge_bidirectional`) gives the full VASim-style compression.

Like prefix merging, the pass preserves the *set* of (offset, report-code)
events (property-tested).  Two same-coded reporting states firing on the
same cycle collapse into one event after merging — report multiplicity per
identical code is not preserved, matching VASim's behaviour.  Counters
never merge.
"""

from __future__ import annotations

from repro.core.automaton import Automaton
from repro.core.elements import CounterElement, STE
from repro.transforms.prefix_merge import MergeStats, merge_common_prefixes

__all__ = ["merge_common_suffixes", "merge_bidirectional"]


def merge_common_suffixes(automaton: Automaton) -> tuple[Automaton, MergeStats]:
    """Return a suffix-merged copy of ``automaton`` plus statistics.

    Like prefix merging, rejects report-code repr collisions (AZ406).
    """
    from repro.analysis.preconditions import check_merge, require

    require(check_merge(automaton), "suffix-merge")
    idents = list(automaton.idents())
    parent: dict[str, str] = {ident: ident for ident in idents}

    def find(ident: str) -> str:
        root = ident
        while parent[root] != root:
            root = parent[root]
        while parent[ident] != root:
            parent[ident], ident = root, parent[ident]
        return root

    succ = {i: automaton.successors(i) for i in idents}
    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        groups: dict[tuple, str] = {}
        for ident in idents:
            if find(ident) != ident:
                continue
            element = automaton[ident]
            if isinstance(element, CounterElement):
                continue
            signature = (
                element.charset.mask,
                element.start,
                element.report,
                repr(element.report_code) if element.report else None,
                frozenset(find(s) for s in succ[ident]),
            )
            existing = groups.get(signature)
            if existing is None:
                groups[signature] = ident
            else:
                parent[ident] = existing
                changed = True

    merged = Automaton(automaton.name)
    for ident in idents:
        if find(ident) != ident:
            continue
        element = automaton[ident]
        if isinstance(element, STE):
            merged.add_ste(
                ident,
                element.charset,
                start=element.start,
                report=element.report,
                report_code=element.report_code,
            )
        else:
            merged.add_counter(
                ident,
                element.target,
                mode=element.mode,
                report=element.report,
                report_code=element.report_code,
            )
    for src, dst in automaton.edges():
        merged.add_edge(find(src), find(dst))
    for src, counter in automaton.reset_edges():
        merged.add_reset_edge(find(src), find(counter))

    return merged, MergeStats(
        states_before=automaton.n_states,
        states_after=merged.n_states,
        passes=passes,
    )


def merge_bidirectional(
    automaton: Automaton, *, max_rounds: int = 8
) -> tuple[Automaton, MergeStats]:
    """Alternate prefix and suffix merging to a joint fixpoint."""
    before = automaton.n_states
    current = automaton
    total_passes = 0
    for _round in range(max_rounds):
        current, prefix_stats = merge_common_prefixes(current)
        current, suffix_stats = merge_common_suffixes(current)
        total_passes += prefix_stats.passes + suffix_stats.passes
        if (
            prefix_stats.states_after == prefix_stats.states_before
            and suffix_stats.states_after == suffix_stats.states_before
        ):
            break
    return current, MergeStats(
        states_before=before,
        states_after=current.n_states,
        passes=total_passes,
    )
