"""k-striding: transform an automaton to consume k symbols per cycle.

Section IX-B of the paper uses 8-striding to turn bit-level automata (over
symbols {0, 1}) into byte-level automata executable by ordinary engines:
each strided transition consumes 8 bits (one byte, most-significant bit
first, matching how file formats document bit-fields).

The construction walks every length-k symbol block from every state (and
from pseudo start states) through the original automaton, producing an
edge-labelled NFA over the original states plus per-report-code accept
sinks; :meth:`~repro.core.nfa.NFA.to_homogeneous` then yields a byte-level
homogeneous automaton.

Report semantics: if a bit-level report fires anywhere inside a consumed
block, the strided automaton reports at that block's offset with the same
report code.  For byte-aligned patterns (the file-carving use-case) this is
exact; for unaligned patterns it coarsens the offset to block granularity.
"""

from __future__ import annotations

from repro.analysis.preconditions import check_stride, require
from repro.core.automaton import Automaton
from repro.core.charset import CharSet
from repro.core.elements import StartMode
from repro.core.nfa import NFA

__all__ = ["stride", "pack_bits"]


def pack_bits(bits: bytes, *, k: int = 8) -> bytes:
    """Pack a stream of 0/1 symbols into k-bit block symbols (MSB first).

    The inverse view of what a k-strided automaton consumes.  Trailing bits
    that do not fill a block are dropped (a strided automaton cannot
    consume a partial block).
    """
    if any(b > 1 for b in bits):
        raise ValueError("input symbols must be 0 or 1")
    out = bytearray()
    for base in range(0, len(bits) - k + 1, k):
        value = 0
        for bit in bits[base : base + k]:
            value = (value << 1) | bit
        out.append(value)
    return bytes(out)


def stride(automaton: Automaton, k: int = 8) -> Automaton:
    """Return the k-strided equivalent of a (typically bit-level) automaton.

    The input alphabet is inferred from the automaton's charsets; each
    strided symbol packs k input symbols (MSB first), so
    ``bits_per_symbol * k`` must be at most 8.  Counters are unsupported.
    """
    if k < 1:
        raise ValueError("stride factor must be >= 1")
    # Raises TransformPreconditionError (AZ401 counters, AZ402 alphabet
    # width) instead of producing a silently-wrong automaton.
    require(check_stride(automaton, k), "stride")

    stes = list(automaton.stes())
    if not stes:
        return Automaton(f"{automaton.name}.x{k}")
    index = {ste.ident: i for i, ste in enumerate(stes)}

    max_symbol = max(max(ste.charset, default=0) for ste in stes)
    bits_per_symbol = max(1, max_symbol.bit_length())
    n_input_symbols = 1 << bits_per_symbol

    # Bitmask-based stepping machinery over original states.
    symbol_masks = []
    for symbol in range(n_input_symbols):
        mask = 0
        for i, ste in enumerate(stes):
            if ste.charset.matches(symbol):
                mask |= 1 << i
        symbol_masks.append(mask)
    succ_mask = [0] * len(stes)
    for ste in stes:
        i = index[ste.ident]
        for dst in automaton.successors(ste.ident):
            succ_mask[i] |= 1 << index[dst]
    report_mask = 0
    code_of: dict[int, object] = {}
    for ste in stes:
        if ste.report:
            i = index[ste.ident]
            report_mask |= 1 << i
            code_of[i] = ste.report_code
    all_input_mask = 0
    anchored_mask = 0
    for ste in stes:
        if ste.start is StartMode.ALL_INPUT:
            all_input_mask |= 1 << index[ste.ident]
        elif ste.start is StartMode.START_OF_DATA:
            anchored_mask |= 1 << index[ste.ident]

    def iter_bits(mask: int):
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def walk(initial: int, inject_all_input: bool):
        """All k-symbol walks from the ``initial`` enabled-set mask.

        Yields ``(block_value, end_mask, report_codes)`` per surviving
        block, exploring the symbol tree depth-first so shared prefixes are
        stepped once.
        """
        results: list[tuple[int, int, frozenset]] = []

        def recurse(depth: int, value: int, enabled: int, codes: frozenset):
            if depth == k:
                if enabled or codes:
                    results.append((value, enabled, codes))
                return
            for symbol in range(n_input_symbols):
                matched = enabled & symbol_masks[symbol]
                reporters = matched & report_mask
                nxt = 0
                for i in iter_bits(matched):
                    nxt |= succ_mask[i]
                if inject_all_input:
                    nxt |= all_input_mask
                new_codes = codes
                if reporters:
                    new_codes = codes | {code_of[i] for i in iter_bits(reporters)}
                if nxt or new_codes:
                    recurse(
                        depth + 1, (value << bits_per_symbol) | symbol, nxt, new_codes
                    )

        recurse(0, 0, initial, frozenset())
        return results

    # Build the strided NFA: original states + pseudo-starts + accept sinks.
    nfa = NFA(f"{automaton.name}.x{k}")
    START_ALL = ("#start-all",)
    START_ANCHOR = ("#start-anchor",)
    acc_states: dict[str, object] = {}

    def acc_state(code: object):
        key = repr(code)
        if key not in acc_states:
            state = ("#acc", key)
            nfa.add_state(state, accept=True, report_code=code)
            acc_states[key] = state
        return acc_states[key]

    for i in range(len(stes)):
        nfa.add_state(i)

    def emit(src: object, initial: int, inject: bool) -> None:
        by_target: dict[object, int] = {}
        for value, end_mask, codes in walk(initial, inject):
            for i in iter_bits(end_mask):
                by_target[i] = by_target.get(i, 0) | (1 << value)
            for code in codes:
                target = acc_state(code)
                by_target[target] = by_target.get(target, 0) | (1 << value)
        for target, mask in by_target.items():
            nfa.add_transition(src, CharSet.from_mask(mask), target)

    if all_input_mask:
        # Active before every block: covers matches starting at any bit of
        # the block (mid-block start-state injection included).
        nfa.add_state(START_ALL, start_all=True)
        emit(START_ALL, all_input_mask, inject=True)
    if anchored_mask:
        # Active before block 0 only: matches anchored to stream start.
        nfa.add_state(START_ANCHOR, start=True)
        emit(START_ANCHOR, anchored_mask, inject=False)
    for i in range(len(stes)):
        # A token at state i means "i was enabled at the block boundary";
        # mid-block injections are covered by START_ALL every block.
        emit(i, 1 << i, inject=False)

    return nfa.to_homogeneous(f"{automaton.name}.x{k}")
