"""Widening: adapt a byte automaton to 2-byte-per-symbol (wide) streams.

YARA "wide" strings match UTF-16LE-encoded ASCII: every pattern byte is
followed by a zero byte.  Section IX-A of the paper implements widening "as
a VASim automata transformation [that] pads the automata with states that
only recognize zero"; this module is that pass.

Every STE ``s`` gains a companion pad state ``z_s`` matching only the pad
symbol; original edges ``u -> v`` are rerouted ``z_u -> v``, and reporting
moves to the pad state so a report fires only after the full wide encoding
(including the trailing zero) has been consumed.
"""

from __future__ import annotations

from repro.analysis.preconditions import check_widen, require
from repro.core.automaton import Automaton
from repro.core.charset import CharSet

__all__ = ["widen"]


def widen(automaton: Automaton, *, pad_symbol: int = 0) -> Automaton:
    """Return the widened equivalent of ``automaton``.

    The result matches the original patterns on streams where every
    original symbol is followed by ``pad_symbol``; reports fire at the
    offset of the trailing pad byte.  Counters are not supported (the
    paper's widened YARA rules contain none), and a charset containing
    the pad symbol is rejected (AZ404): the widened automaton would
    confuse pattern bytes with padding and match the wrong language.
    """
    require(check_widen(automaton, pad_symbol), "widen")
    pad = CharSet.single(pad_symbol)

    wide = Automaton(f"{automaton.name}.wide")
    for ste in automaton.stes():
        wide.add_ste(ste.ident, ste.charset, start=ste.start)
        wide.add_ste(
            f"{ste.ident}~pad",
            pad,
            report=ste.report,
            report_code=ste.report_code,
        )
        wide.add_edge(ste.ident, f"{ste.ident}~pad")
    for src, dst in automaton.edges():
        wide.add_edge(f"{src}~pad", dst)
    return wide
